/// Micro-benchmarks (google-benchmark) for the RLNC codec across segment
/// sizes — the "computational complexity" axis of the paper's
/// resilience-complexity trade-off. The paper states decoding costs
/// ≈ O(s) operations per input block [8]; BM_DecodeSegment reports
/// per-block time so the linear trend in s is directly visible, and
/// BM_Encode / BM_Recode cover the source and relay costs that motivate
/// keeping s in the 20–40 range.

#include <benchmark/benchmark.h>

#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "sim/random.h"

namespace {

using namespace icollect;
constexpr std::size_t kBlockBytes = 1024;

std::vector<std::vector<std::uint8_t>> make_originals(std::size_t s,
                                                      sim::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> blocks(s);
  for (auto& b : blocks) {
    b.resize(kBlockBytes);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.gf_element());
  }
  return blocks;
}

void BM_Encode(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{11};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_Encode)->Arg(1)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Recode(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{12};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  coding::SegmentBuffer buf{{1, 0}, s};
  for (std::size_t k = 0; k < s; ++k) buf.add(k + 1, enc.encode(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.recode(rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_Recode)->Arg(1)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_DecodeSegment(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{13};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  // Pre-generate enough coded blocks to complete the decode.
  std::vector<coding::CodedBlock> blocks;
  for (std::size_t k = 0; k < s + 8; ++k) blocks.push_back(enc.encode(rng));
  for (auto _ : state) {
    coding::Decoder dec{{1, 0}, s, kBlockBytes};
    std::size_t k = 0;
    while (!dec.complete()) dec.add(blocks[k++]);
    benchmark::DoNotOptimize(dec.rank());
  }
  // Report per-original-block throughput: the paper's O(s)/block claim
  // shows as items/s shrinking linearly with s.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s * kBlockBytes));
}
BENCHMARK(BM_DecodeSegment)->Arg(1)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_InnovationCheck(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{14};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  coding::Decoder dec{{1, 0}, s, 0};
  for (std::size_t k = 0; k + 1 < s; ++k) {
    coding::CodedBlock b = enc.encode(rng);
    b.payload.clear();
    dec.add(b);
  }
  coding::CodedBlock probe = enc.encode(rng);
  probe.payload.clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.is_innovative(probe));
  }
}
BENCHMARK(BM_InnovationCheck)->Arg(5)->Arg(20)->Arg(40);

void BM_WireSerialize(benchmark::State& state) {
  sim::Rng rng{15};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(20, rng)};
  const coding::CodedBlock b = enc.encode(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coding::wire::serialize(b));
  }
}
BENCHMARK(BM_WireSerialize);

}  // namespace

BENCHMARK_MAIN();
