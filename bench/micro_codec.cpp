/// Micro-benchmarks (google-benchmark) for the RLNC codec across segment
/// sizes — the "computational complexity" axis of the paper's
/// resilience-complexity trade-off. The paper states decoding costs
/// ≈ O(s) operations per input block [8]; BM_DecodeSegment reports
/// per-block time so the linear trend in s is directly visible, and
/// BM_Encode / BM_Recode cover the source and relay costs that motivate
/// keeping s in the 20–40 range.
///
/// The codec paths are registered once per GF(2^8) kernel the CPU
/// supports ("BM_DecodeSegment<avx2>/20" vs "<scalar>"), so one run
/// shows how much of the SIMD speedup survives at protocol level
/// (blocks/s decoded end to end).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "gf/kernels.h"
#include "sim/random.h"

namespace {

using namespace icollect;
using gf::Kernels;
constexpr std::size_t kBlockBytes = 1024;

std::vector<std::vector<std::uint8_t>> make_originals(std::size_t s,
                                                      sim::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> blocks(s);
  for (auto& b : blocks) {
    b.resize(kBlockBytes);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.gf_element());
  }
  return blocks;
}

/// Run the benchmark body with `kind` active; restore auto-dispatch.
class KernelGuard {
 public:
  explicit KernelGuard(Kernels::Kind kind) { Kernels::select(kind); }
  ~KernelGuard() { Kernels::select(Kernels::Kind::kAuto); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;
};

void BM_Encode(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{11};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  coding::CodedBlock out;
  for (auto _ : state) {
    enc.encode_into(out, rng);
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}

void BM_Recode(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{12};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  coding::SegmentBuffer buf{{1, 0}, s};
  for (std::size_t k = 0; k < s; ++k) buf.add(k + 1, enc.encode(rng));
  coding::CodedBlock out;
  for (auto _ : state) {
    buf.recode_into(out, rng);
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}

void BM_DecodeSegment(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{13};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  // Pre-generate enough coded blocks to complete the decode.
  std::vector<coding::CodedBlock> blocks;
  for (std::size_t k = 0; k < s + 8; ++k) blocks.push_back(enc.encode(rng));
  for (auto _ : state) {
    coding::Decoder dec{{1, 0}, s, kBlockBytes};
    std::size_t k = 0;
    while (!dec.complete()) dec.add(blocks[k++]);
    benchmark::DoNotOptimize(dec.rank());
  }
  // Report per-original-block throughput: the paper's O(s)/block claim
  // shows as items/s shrinking linearly with s.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s * kBlockBytes));
}

void BM_InnovationCheck(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{14};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(s, rng)};
  coding::Decoder dec{{1, 0}, s, 0};
  for (std::size_t k = 0; k + 1 < s; ++k) {
    coding::CodedBlock b = enc.encode(rng);
    b.payload.clear();
    dec.add(b);
  }
  coding::CodedBlock probe = enc.encode(rng);
  probe.payload.clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.is_innovative(probe));
  }
}
BENCHMARK(BM_InnovationCheck)->Arg(5)->Arg(20)->Arg(40);

void BM_WireSerialize(benchmark::State& state) {
  sim::Rng rng{15};
  const coding::SegmentEncoder enc{{1, 0}, make_originals(20, rng)};
  const coding::CodedBlock b = enc.encode(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coding::wire::serialize(b));
  }
}
BENCHMARK(BM_WireSerialize);

void register_kernel_benchmarks() {
  const Kernels::Kind kinds[] = {Kernels::Kind::kScalar,
                                 Kernels::Kind::kSsse3,
                                 Kernels::Kind::kAvx2};
  for (const auto kind : kinds) {
    if (!Kernels::supported(kind)) continue;
    const std::string tag = std::string("<") + Kernels::name(kind) + ">";
    benchmark::RegisterBenchmark(("BM_Encode" + tag).c_str(), BM_Encode,
                                 kind)
        ->Arg(1)
        ->Arg(5)
        ->Arg(10)
        ->Arg(20)
        ->Arg(40);
    benchmark::RegisterBenchmark(("BM_Recode" + tag).c_str(), BM_Recode,
                                 kind)
        ->Arg(1)
        ->Arg(5)
        ->Arg(10)
        ->Arg(20)
        ->Arg(40);
    benchmark::RegisterBenchmark(("BM_DecodeSegment" + tag).c_str(),
                                 BM_DecodeSegment, kind)
        ->Arg(1)
        ->Arg(5)
        ->Arg(10)
        ->Arg(20)
        ->Arg(40);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
