/// Reproduces **Figure 6**: data saved in each peer — the average number
/// of original blocks buffered in the network that the servers have not
/// reconstructed yet, per peer; λ = 20, μ = 10, γ = 1, curves per c.
///
/// Three series per c:
///   ode        — Theorem 4: s·Σ_{i≥s}(w̃_i − m̃_i^s)
///   sim-degree — the paper's decodability proxy (segment degree ≥ s)
///   sim-rank   — exact: union rank of all buffered coefficient vectors
///                equals s (only the real-coding content can tell this)
///
/// Expected shape: saved data decreases with s (higher throughput means
/// more is already reconstructed) and decreases with c; by Theorem 1 the
/// *total* buffered data is the same regardless of s — only its
/// "freshness" changes.

#include <cstdio>

#include "bench_util.h"
#include "ode/closed_form.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  const double lambda = 20.0;
  const double mu = 10.0;
  const double gamma = 1.0;
  const std::vector<double> capacities{2.0, 5.0, 10.0};
  const std::vector<std::size_t> sizes{1, 2, 5, 10, 20, 30, 40};

  std::printf("== Figure 6: original blocks saved per peer vs s ==\n");
  std::printf("lambda=%.0f mu=%.0f gamma=%.0f\n", lambda, mu, gamma);
  std::printf("(total buffered blocks per peer is ~rho=%.1f regardless of s; "
              "'saved' counts the not-yet-reconstructed share)\n\n",
              ode::closed_form::rho(lambda, mu, gamma));

  bench::Table table{{"s", "ode c=2", "deg c=2", "rank c=2", "ode c=5",
                      "deg c=5", "rank c=5", "ode c=10", "deg c=10",
                      "rank c=10"}};

  bench::SteadyStateSweep sweep{"fig6"};
  auto make_cfg = [&](std::size_t s, double c) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = bench::scaled_peers(150);
    cfg.lambda = lambda;
    cfg.mu = mu;
    cfg.gamma = gamma;
    cfg.segment_size = s;
    cfg.buffer_cap = 160;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(c);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    return cfg;
  };
  std::vector<std::vector<std::size_t>> handles;
  for (const std::size_t s : sizes) {
    auto& per_c = handles.emplace_back();
    for (const double c : capacities) {
      per_c.push_back(sweep.add(make_cfg(s, c), 10.0, 25.0));
    }
  }
  sweep.run();

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{std::to_string(sizes[i])};
    for (std::size_t j = 0; j < capacities.size(); ++j) {
      const auto ode_sol =
          CollectionSystem::analyze(make_cfg(sizes[i], capacities[j]));
      const auto& sim = sweep.result(handles[i][j]);
      row.push_back(fmt(ode_sol.saved_blocks_per_peer(), 2));
      row.push_back(bench::fmt_ci(sim.mean.saved_per_peer_degree,
                                  sim.ci95.saved_per_peer_degree,
                                  sim.replicas, 2));
      row.push_back(bench::fmt_ci(sim.mean.saved_per_peer_rank,
                                  sim.ci95.saved_per_peer_rank, sim.replicas,
                                  2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.to_csv(bench::maybe_csv("fig6_saved_data").get());

  std::printf(
      "\nshape checks: saved data decreases with s and with c; the exact\n"
      "rank census tracks the degree proxy from below.\n");
  return 0;
}
