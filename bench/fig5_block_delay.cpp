/// Reproduces **Figure 5**: average block delivery delay T(s) for
/// different segment sizes; λ = 20, μ = 10, γ = 1, curves per c.
///
/// Two series per c:
///   ode — Theorem 3's formula (17), T = Σw̃_i/λ − Σm̃_i^s/(λσ), a
///         Little's-law proxy over all segments. (Note: (17) can dip
///         below zero at s = 1 for large c — when a big fraction of the
///         alive segments are already decoded-and-alive, the "good time"
///         subtraction overshoots. The paper's choice of c keeps it
///         positive; we print the raw value.)
///   sim — direct measurement: mean over decoded segments of
///         (decode time − injection time)/s.
///
/// Expected shape: a peak at small s (≈ 5) and decline for larger s;
/// delay is lower when capacity c is larger.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  const double lambda = 20.0;
  const double mu = 10.0;
  const double gamma = 1.0;
  const std::vector<double> capacities{2.0, 5.0};
  const std::vector<std::size_t> sizes{1, 2, 3, 5, 8, 10, 15, 20, 30, 40};

  std::printf("== Figure 5: average block delivery delay vs s ==\n");
  std::printf("lambda=%.0f mu=%.0f gamma=%.0f\n\n", lambda, mu, gamma);

  bench::Table table{
      {"s", "ode c=2", "sim c=2", "ode c=5", "sim c=5"}};

  bench::SteadyStateSweep sweep{"fig5"};
  auto make_cfg = [&](std::size_t s, double c) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = bench::scaled_peers(150);
    cfg.lambda = lambda;
    cfg.mu = mu;
    cfg.gamma = gamma;
    cfg.segment_size = s;
    cfg.buffer_cap = 160;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(c);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    return cfg;
  };
  std::vector<std::vector<std::size_t>> handles;
  for (const std::size_t s : sizes) {
    auto& per_c = handles.emplace_back();
    for (const double c : capacities) {
      per_c.push_back(sweep.add(make_cfg(s, c), 10.0, 30.0));
    }
  }
  sweep.run();

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{std::to_string(sizes[i])};
    for (std::size_t j = 0; j < capacities.size(); ++j) {
      const auto ode =
          CollectionSystem::analyze(make_cfg(sizes[i], capacities[j]));
      const auto& sim = sweep.result(handles[i][j]);
      row.push_back(fmt(ode.block_delay()));
      row.push_back(bench::fmt_ci(sim.mean.mean_block_delay,
                                  sim.ci95.mean_block_delay, sim.replicas));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.to_csv(bench::maybe_csv("fig5_block_delay").get());

  std::printf(
      "\nshape checks: delay peaks at small s (~3-8) and declines for\n"
      "large s; the scarcer capacity (c=2) has the larger delays.\n");
  return 0;
}
