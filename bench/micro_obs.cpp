/// \file micro_obs.cpp
/// Micro-benchmarks for the telemetry layer's hot-path contracts: a
/// Counter::inc is one add, a disabled ProfScope is one branch, a ring
/// push is a copy + index math, and a snapshot touches every registered
/// metric exactly once. Run these when changing obs/ internals — the
/// "no measurable regression when telemetry is disabled" guarantee of
/// the instrumented engine rests on the Disabled numbers staying flat.

#include <benchmark/benchmark.h>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/snapshotter.h"
#include "obs/trace_pipeline.h"
#include "proto/trace.h"

namespace {

using namespace icollect;

void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("events");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterInc);

void BM_ProfScopeDisabled(benchmark::State& state) {
  // The null-timer path every instrumented event pays with profiling off.
  obs::Profiler::Timer* timer = nullptr;
  benchmark::DoNotOptimize(timer);
  for (auto _ : state) {
    const obs::ProfScope scope{timer};
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProfScopeDisabled);

void BM_ProfScopeEnabled(benchmark::State& state) {
  obs::Profiler prof;
  auto& timer = prof.timer("evt");
  for (auto _ : state) {
    const obs::ProfScope scope{&timer};
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProfScopeEnabled);

void BM_TraceRingPush(benchmark::State& state) {
  obs::TraceBuffer buf{4096};
  proto::TraceEvent ev;
  ev.kind = proto::TraceEventKind::kGossipSent;
  ev.segment = coding::SegmentId{1, 2};
  for (auto _ : state) {
    ev.at += 1.0;
    buf.record(ev);
  }
  benchmark::DoNotOptimize(buf);
}
BENCHMARK(BM_TraceRingPush);

void BM_TraceEventToString(benchmark::State& state) {
  proto::TraceEvent ev;
  ev.kind = proto::TraceEventKind::kServerPull;
  ev.at = 123.456;
  ev.slot = 17;
  ev.segment = coding::SegmentId{7, 9};
  ev.aux = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.to_string());
  }
}
BENCHMARK(BM_TraceEventToString);

void BM_TraceEventJson(benchmark::State& state) {
  proto::TraceEvent ev;
  ev.kind = proto::TraceEventKind::kServerPull;
  ev.at = 123.456;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::trace_event_json(ev));
  }
}
BENCHMARK(BM_TraceEventJson);

void BM_SnapshotSample(benchmark::State& state) {
  // No files open: measures the registry walk + row formatting alone,
  // for a registry the size of the Network bridge (~35 gauges).
  obs::MetricsRegistry reg;
  const auto n = static_cast<std::size_t>(state.range(0));
  double source = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    reg.gauge("g" + std::to_string(i), [&source] { return source; });
  }
  obs::Snapshotter snap{reg, 1.0};
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    source += 1.0;
    snap.sample(t);
  }
}
BENCHMARK(BM_SnapshotSample)->Arg(35);

}  // namespace

BENCHMARK_MAIN();
