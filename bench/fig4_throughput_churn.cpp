/// Reproduces **Figure 4**: session throughput as a function of peer
/// bandwidth μ under different scenarios; λ = 8, γ = 1.
///
/// The paper contrasts ample capacity (c = 8 = λ) against scarce
/// capacity (c = 2 ≪ λ), each with s ∈ {1, 20}, in a static network
/// (solid lines) and under severe churn (dashed lines; exponential
/// lifetimes with replacement).
///
/// Expected shape (see EXPERIMENTS.md for the full discussion):
///   * c = 8: buffering is unnecessary; under churn, larger s and larger
///     μ *hurt* (the paper's headline for this figure) — reproduced.
///   * c = 2: larger s helps, churn or not — reproduced.
///   * The prose additionally claims higher μ helps at scarce capacity;
///     the paper's own fluid model gives flat-at-capacity (s = 20) or
///     μ-declining (s = 1) curves there, and the simulation agrees with
///     the model — we report the model-faithful result.

#include <cstdio>

#include "bench_util.h"
#include "ode/indirect_ode.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  const double lambda = 8.0;
  const double gamma = 1.0;
  const double mean_lifetime = 2.0;  // severe churn: E[L] = 2 time units
  const std::vector<double> mus{2.0, 4.0, 6.0, 10.0, 14.0, 18.0};

  struct ScenarioDef {
    double c;
    std::size_t s;
    bool churn;
  };
  const std::vector<ScenarioDef> scenarios{
      {8.0, 1, false},  {8.0, 1, true},  {8.0, 20, false}, {8.0, 20, true},
      {2.0, 1, false},  {2.0, 1, true},  {2.0, 20, false}, {2.0, 20, true},
  };

  std::printf("== Figure 4: throughput vs mu, static vs churn ==\n");
  std::printf("lambda=%.0f gamma=%.0f, churn lifetime E[L]=%.1f\n\n", lambda,
              gamma, mean_lifetime);

  bench::Table table{{"mu", "c=8 s=1", "c=8 s=1 churn", "c=8 s=20",
                      "c=8 s=20 churn", "c=2 s=1", "c=2 s=1 churn",
                      "c=2 s=20", "c=2 s=20 churn"}};

  // One parallel sweep over (fidelity x mu x scenario); per-point seeds
  // derive from the bench seed tree instead of the old `90 + mu` (which
  // reused one stream for all eight scenarios at each mu).
  const std::vector<p2p::CollectionFidelity> fidelities{
      p2p::CollectionFidelity::kStateCounter,
      p2p::CollectionFidelity::kRealCoding};
  bench::SteadyStateSweep sweep{"fig4"};
  std::vector<std::size_t> handles;
  for (const auto fidelity : fidelities) {
    for (const double mu : mus) {
      for (const auto& sc : scenarios) {
        p2p::ProtocolConfig cfg;
        cfg.num_peers = bench::scaled_peers(150);
        cfg.lambda = lambda;
        cfg.mu = mu;
        cfg.gamma = gamma;
        cfg.segment_size = sc.s;
        cfg.buffer_cap = 140;
        cfg.num_servers = 4;
        cfg.set_normalized_capacity(sc.c);
        cfg.fidelity = fidelity;
        cfg.churn.enabled = sc.churn;
        cfg.churn.mean_lifetime = mean_lifetime;
        handles.push_back(sweep.add(cfg, 10.0, 30.0));
      }
    }
  }
  sweep.run();

  std::size_t next = 0;
  for (const auto fidelity : fidelities) {
    std::printf("-- fidelity: %s --\n", p2p::to_string(fidelity));
    bench::Table fid_table = table;
    for (const double mu : mus) {
      std::vector<std::string> row{fmt(mu, 0)};
      for (std::size_t k = 0; k < scenarios.size(); ++k) {
        const auto& sim = sweep.result(handles[next++]);
        row.push_back(bench::fmt_ci(sim.mean.normalized_throughput,
                                    sim.ci95.normalized_throughput,
                                    sim.replicas));
      }
      fid_table.add_row(std::move(row));
    }
    fid_table.print();
    fid_table.to_csv(
        bench::maybe_csv(std::string("fig4_throughput_churn_") +
                         p2p::to_string(fidelity))
            .get());
    std::printf("\n");
  }

  // Churn-extended fluid model (library extension): exact for the
  // peer side (replacement = jump to degree 0); mean-field on the
  // segment side. Sharp at s=1; an upper bound at large s, where the
  // neglected within-peer loss correlation is what actually breaks
  // segments — the mechanism behind the paper's Fig. 4 narrative.
  std::printf("-- churn-extended fluid model, s=1 (sharp regime) --\n");
  bench::Table ode_table{{"mu", "ode c=8 churn", "ode c=2 churn"}};
  for (const double mu : mus) {
    std::vector<std::string> row{fmt(mu, 0)};
    for (const double c : {8.0, 2.0}) {
      ode::OdeParams p;
      p.lambda = lambda;
      p.mu = mu;
      p.gamma = gamma;
      p.c = c;
      p.s = 1;
      p.churn_rate = 1.0 / mean_lifetime;
      row.push_back(fmt(ode::IndirectOde{p}.solve().normalized_throughput()));
    }
    ode_table.add_row(std::move(row));
  }
  ode_table.print();
  ode_table.to_csv(bench::maybe_csv("fig4_churn_ode_s1").get());

  std::printf(
      "\nshape checks: with c=8 (ample), churn + s=20 underperforms s=1 at\n"
      "moderate-to-high mu and degrades as mu rises (the paper's headline);\n"
      "with c=2 (scarce), s=20 beats s=1 with and without churn. Throughput\n"
      "is non-increasing in mu in every series, exactly as the paper's own\n"
      "fluid model predicts (see EXPERIMENTS.md on the prose's mu claim).\n"
      "The churn-extended ODE matches the s=1 churn simulation within ~2%%.\n");
  return 0;
}
