/// Micro-benchmarks (google-benchmark) for the GF(2^8) arithmetic layer:
/// the per-byte cost that bounds every coding operation in the system.

#include <benchmark/benchmark.h>

#include <vector>

#include "gf/gf256.h"
#include "gf/gf_matrix.h"
#include "gf/gf_vector.h"
#include "sim/random.h"

namespace {

using namespace icollect;

void BM_ScalarMul(benchmark::State& state) {
  sim::Rng rng{1};
  std::vector<gf::Element> a(4096), b(4096);
  rng.fill_gf(a);
  rng.fill_gf(b);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::GF256::mul(a[i & 4095], b[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_ScalarMul);

void BM_ScalarInv(benchmark::State& state) {
  std::size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gf::GF256::inv(static_cast<gf::Element>(1 + (i & 254))));
    ++i;
  }
}
BENCHMARK(BM_ScalarInv);

void BM_AddScaled(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{2};
  std::vector<gf::Element> dst(n), src(n);
  rng.fill_gf(dst);
  rng.fill_gf(src);
  gf::Element c = 1;
  for (auto _ : state) {
    gf::add_scaled(dst, src, c);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<gf::Element>(c + 1) == 0 ? 1 : static_cast<gf::Element>(c + 1);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AddScaled)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{3};
  std::vector<gf::Element> a(n), b(n);
  rng.fill_gf(a);
  rng.fill_gf(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::dot(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(1024);

void BM_MatrixRank(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{4};
  gf::Matrix m{n, n};
  for (std::size_t r = 0; r < n; ++r) rng.fill_gf(m.row(r));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rank());
  }
}
BENCHMARK(BM_MatrixRank)->Arg(8)->Arg(32)->Arg(64);

void BM_MatrixInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{5};
  gf::Matrix m{1, 1};
  do {
    gf::Matrix candidate{n, n};
    for (std::size_t r = 0; r < n; ++r) rng.fill_gf(candidate.row(r));
    if (candidate.invertible()) {
      m = candidate;
      break;
    }
  } while (true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverse());
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
