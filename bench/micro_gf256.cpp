/// Micro-benchmarks (google-benchmark) for the GF(2^8) arithmetic layer:
/// the per-byte cost that bounds every coding operation in the system.
///
/// The bulk primitives (add_assign / scale_assign / add_scaled / dot) are
/// registered once per kernel the CPU supports — "BM_AddScaled<avx2>/4096"
/// vs "BM_AddScaled<scalar>/4096" — so one run yields the full
/// scalar/SSSE3/AVX2 speedup matrix. scripts/run_bench.py consumes the
/// JSON output and distills it into BENCH_gf_kernels.json.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gf/gf256.h"
#include "gf/gf_matrix.h"
#include "gf/kernels.h"
#include "sim/random.h"

namespace {

using namespace icollect;
using gf::Kernels;

void BM_ScalarMul(benchmark::State& state) {
  sim::Rng rng{1};
  std::vector<gf::Element> a(4096), b(4096);
  rng.fill_gf(a);
  rng.fill_gf(b);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::GF256::mul(a[i & 4095], b[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_ScalarMul);

void BM_ScalarInv(benchmark::State& state) {
  std::size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gf::GF256::inv(static_cast<gf::Element>(1 + (i & 254))));
    ++i;
  }
}
BENCHMARK(BM_ScalarInv);

/// Run `state` with `kind` active, restoring auto-dispatch afterwards.
class KernelGuard {
 public:
  explicit KernelGuard(Kernels::Kind kind) { Kernels::select(kind); }
  ~KernelGuard() { Kernels::select(Kernels::Kind::kAuto); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;
};

void BM_AddScaled(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{2};
  std::vector<gf::Element> dst(n), src(n);
  rng.fill_gf(dst);
  rng.fill_gf(src);
  gf::Element c = 1;
  for (auto _ : state) {
    Kernels::active().add_scaled(dst.data(), src.data(), c, n);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<gf::Element>(c + 1) == 0
            ? 1
            : static_cast<gf::Element>(c + 1);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ScaleAssign(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{6};
  std::vector<gf::Element> dst(n);
  rng.fill_gf(dst);
  gf::Element c = 2;
  for (auto _ : state) {
    Kernels::active().scale_assign(dst.data(), c, n);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<gf::Element>(c + 1) < 2 ? 2
                                            : static_cast<gf::Element>(c + 1);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_AddAssign(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{7};
  std::vector<gf::Element> dst(n), src(n);
  rng.fill_gf(dst);
  rng.fill_gf(src);
  for (auto _ : state) {
    Kernels::active().add_assign(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Dot(benchmark::State& state, Kernels::Kind kind) {
  const KernelGuard guard{kind};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{3};
  std::vector<gf::Element> a(n), b(n);
  rng.fill_gf(a);
  rng.fill_gf(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Kernels::active().dot(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_MatrixRank(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{4};
  gf::Matrix m{n, n};
  for (std::size_t r = 0; r < n; ++r) rng.fill_gf(m.row(r));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rank());
  }
}
BENCHMARK(BM_MatrixRank)->Arg(8)->Arg(32)->Arg(64);

void BM_MatrixInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{5};
  gf::Matrix m{1, 1};
  do {
    gf::Matrix candidate{n, n};
    for (std::size_t r = 0; r < n; ++r) rng.fill_gf(candidate.row(r));
    if (candidate.invertible()) {
      m = candidate;
      break;
    }
  } while (true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverse());
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(8)->Arg(32);

void register_kernel_benchmarks() {
  const Kernels::Kind kinds[] = {Kernels::Kind::kScalar,
                                 Kernels::Kind::kSsse3,
                                 Kernels::Kind::kAvx2};
  for (const auto kind : kinds) {
    if (!Kernels::supported(kind)) continue;
    const std::string tag = std::string("<") + Kernels::name(kind) + ">";
    benchmark::RegisterBenchmark(("BM_AddScaled" + tag).c_str(),
                                 BM_AddScaled, kind)
        ->Arg(64)
        ->Arg(256)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_ScaleAssign" + tag).c_str(),
                                 BM_ScaleAssign, kind)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_AddAssign" + tag).c_str(),
                                 BM_AddAssign, kind)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_Dot" + tag).c_str(), BM_Dot, kind)
        ->Arg(64)
        ->Arg(1024);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
