/// Reproduces **Theorem 1** numerically: storage overhead and buffer
/// occupancy across a (λ, μ, s) sweep. Three independent computations
/// must agree:
///   closed — the fixed point ρ = (1 − z̃_0)μ/γ + λ/γ (s = 1 form)
///   ode    — steady state of system (7)
///   sim    — time-weighted mean buffered blocks per peer
/// and the overhead must stay below the theorem's bound μ/γ.

#include <cstdio>

#include "bench_util.h"
#include "ode/closed_form.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  struct Case {
    double lambda;
    double mu;
    std::size_t s;
  };
  const std::vector<Case> cases{
      {20.0, 10.0, 1}, {20.0, 10.0, 10}, {20.0, 10.0, 40},
      {8.0, 4.0, 1},   {8.0, 4.0, 20},   {4.0, 16.0, 8},
      {1.0, 2.0, 1},   {2.0, 1.0, 2},
  };
  const double gamma = 1.0;

  std::printf("== Theorem 1: storage overhead (bound: mu/gamma) ==\n\n");
  bench::Table table{{"lambda", "mu", "s", "rho closed", "rho ode",
                      "rho sim", "overhead sim", "bound mu/g", "z0 closed",
                      "z0 sim"}};

  bench::SteadyStateSweep sweep{"thm1"};
  auto make_cfg = [&](const Case& cs) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = bench::scaled_peers(150);
    cfg.lambda = cs.lambda;
    cfg.mu = cs.mu;
    cfg.gamma = gamma;
    cfg.segment_size = cs.s;
    cfg.buffer_cap =
        static_cast<std::size_t>(3.0 * (cs.lambda + cs.mu) / gamma) + 4 * cs.s;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(cs.lambda / 4.0);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    return cfg;
  };
  std::vector<std::size_t> handles;
  for (const auto& cs : cases) handles.push_back(sweep.add(make_cfg(cs), 12.0, 30.0));
  sweep.run();

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& cs = cases[i];
    const double rho_closed =
        ode::closed_form::rho(cs.lambda, cs.mu, gamma);
    const double z0_closed =
        ode::closed_form::steady_z0(cs.lambda, cs.mu, gamma);
    const auto ode_sol = CollectionSystem::analyze(make_cfg(cs));
    const auto& sim = sweep.result(handles[i]);

    table.add_row({fmt(cs.lambda, 0), fmt(cs.mu, 0), std::to_string(cs.s),
                   fmt(rho_closed, 2), fmt(ode_sol.rho(), 2),
                   bench::fmt_ci(sim.mean.mean_blocks_per_peer,
                                 sim.ci95.mean_blocks_per_peer, sim.replicas,
                                 2),
                   bench::fmt_ci(sim.mean.storage_overhead,
                                 sim.ci95.storage_overhead, sim.replicas, 2),
                   fmt(cs.mu / gamma, 1), fmt(z0_closed, 4),
                   bench::fmt_ci(sim.mean.empty_fraction,
                                 sim.ci95.empty_fraction, sim.replicas, 4)});
  }
  table.print();
  table.to_csv(bench::maybe_csv("thm1_storage_overhead").get());
  std::printf(
      "\nshape checks: the three rho columns agree; overhead stays below\n"
      "mu/gamma; z0 matches for s=1 (batch injection at s>1 perturbs z0\n"
      "only marginally at these loads).\n");
  return 0;
}
