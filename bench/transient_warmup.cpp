/// Transient validation (not a paper figure): the fluid model's warm-up
/// trajectory e(t), z0(t) against the event-driven simulation, from the
/// empty network. Justifies the 10-unit warm-up every other harness
/// uses and demonstrates the ODE transient API.

#include <cstdio>

#include "bench_util.h"
#include "ode/closed_form.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  p2p::ProtocolConfig cfg;
  cfg.num_peers = bench::scaled_peers(200);
  cfg.lambda = 20.0;
  cfg.mu = 10.0;
  cfg.gamma = 1.0;
  cfg.segment_size = 10;
  cfg.buffer_cap = 160;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(5.0);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.seed = 2;

  std::printf("== warm-up transient: ODE vs simulation ==\n");
  std::printf("lambda=20 mu=10 gamma=1 c=5 s=10 (rho_inf = %.1f)\n\n",
              ode::closed_form::rho(cfg.lambda, cfg.mu, cfg.gamma));

  const auto sys = ode::IndirectOde{CollectionSystem::ode_params(cfg)};
  const auto traj = sys.transient(12.0, 1.0);

  // The simulation sampled at the same instants: blocks per peer is an
  // instantaneous quantity, so read the TimeWeighted's current value.
  p2p::Network net{cfg};
  bench::Table table{{"t", "ode e(t)", "sim e(t)", "ode z0(t)",
                      "sim z0(t)"}};
  std::size_t k = 0;
  for (double t = 0.0; t <= 12.0 && k < traj.size(); t += 1.0, ++k) {
    net.run_until(t);
    const double sim_e = net.metrics().total_blocks.value() /
                         static_cast<double>(cfg.num_peers);
    std::size_t empty = 0;
    for (std::size_t slot = 0; slot < cfg.num_peers; ++slot) {
      if (net.peer(slot).buffer().empty()) ++empty;
    }
    const double sim_z0 =
        static_cast<double>(empty) / static_cast<double>(cfg.num_peers);
    table.add_row({fmt(t, 0), fmt(traj[k].e, 2), fmt(sim_e, 2),
                   fmt(traj[k].z0, 4), fmt(sim_z0, 4)});
  }
  table.print();
  table.to_csv(bench::maybe_csv("transient_warmup").get());
  std::printf(
      "\nshape checks: both trajectories fill from empty to rho within\n"
      "~5 time units and agree pointwise within finite-N noise — the\n"
      "10-unit warm-up used across the harnesses is comfortably past the\n"
      "transient.\n");
  return 0;
}
