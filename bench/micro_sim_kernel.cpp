/// Micro-benchmarks (google-benchmark) for the discrete-event kernel —
/// the substrate every protocol simulation runs on. Establishes the
/// events/second budget that sizes the figure sweeps.

#include <benchmark/benchmark.h>

#include "p2p/network.h"
#include "sim/poisson_process.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace icollect;

void BM_ScheduleAndFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    sim.run_until(1000.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleAndFire);

void BM_ScheduleCancelHalf(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.schedule_at(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run_until(1000.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleCancelHalf);

void BM_PoissonProcessChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Rng rng{7};
    std::uint64_t fires = 0;
    sim::PoissonProcess p{sim, rng, 100.0, [&] { ++fires; }};
    p.start();
    sim.run_until(50.0);
    benchmark::DoNotOptimize(fires);
  }
}
BENCHMARK(BM_PoissonProcessChurn);

/// End-to-end protocol events per second at a Fig. 3 operating point.
void BM_NetworkSimulation(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = 100;
    cfg.lambda = 20.0;
    cfg.mu = 10.0;
    cfg.gamma = 1.0;
    cfg.segment_size = s;
    cfg.buffer_cap = 120;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(5.0);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    cfg.seed = 3;
    p2p::Network net{cfg};
    net.run_until(2.0);
    events += net.metrics().blocks_injected + net.metrics().gossip_sent +
              net.metrics().ttl_expirations + net.servers().pulls();
    benchmark::DoNotOptimize(net.throughput());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_NetworkSimulation)->Arg(1)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
