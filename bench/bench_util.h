#pragma once

/// \file bench_util.h
/// Shared plumbing for the figure-reproduction harnesses: scale control,
/// simulation runners, and aligned table printing.
///
/// Every figure binary prints the series the paper plots, with both the
/// analytical (ODE) and simulated values where applicable. Set
/// ICOLLECT_BENCH_SCALE to trade accuracy for speed:
///   ICOLLECT_BENCH_SCALE=0.3  quick smoke run
///   (unset)                   default, a few minutes total for all figures
///   ICOLLECT_BENCH_SCALE=3    publication-quality averaging

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/collection_system.h"
#include "p2p/network.h"
#include "stats/csv.h"
#include "stats/summary.h"

namespace icollect::bench {

/// Global scale multiplier from the environment (default 1.0).
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("ICOLLECT_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::strtod(env, nullptr);
    return v > 0.0 ? v : 1.0;
  }();
  return s;
}

/// Population size / durations scaled from defaults.
inline std::size_t scaled_peers(std::size_t base) {
  const double v = static_cast<double>(base) * scale();
  return v < 20.0 ? 20 : static_cast<std::size_t>(v);
}
inline double scaled_time(double base) {
  return base * (scale() < 1.0 ? scale() : 1.0 + (scale() - 1.0) * 0.5);
}

/// One steady-state simulation measurement.
struct SimPoint {
  double normalized_throughput = 0.0;
  double goodput = 0.0;
  double mean_block_delay = 0.0;
  double mean_blocks_per_peer = 0.0;
  double empty_fraction = 0.0;
  double saved_per_peer_degree = 0.0;
  double saved_per_peer_rank = 0.0;
  double storage_overhead = 0.0;
  std::uint64_t segments_lost = 0;
  std::uint64_t segments_injected = 0;
};

/// Replication count for simulated points (ICOLLECT_BENCH_REPS, default 1):
/// each figure point is averaged over this many independent seeds.
inline int reps() {
  static const int r = [] {
    const char* env = std::getenv("ICOLLECT_BENCH_REPS");
    if (env == nullptr) return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 && v <= 1000 ? static_cast<int>(v) : 1;
  }();
  return r;
}

/// Run a network to steady state (warm-up, then measure) and snapshot.
inline SimPoint run_steady_state_once(const p2p::ProtocolConfig& cfg,
                                      double warm = 10.0,
                                      double measure = 25.0) {
  p2p::Network net{cfg};
  net.warm_up(scaled_time(warm));
  net.run_until(net.now() + scaled_time(measure));
  SimPoint pt;
  pt.normalized_throughput = net.normalized_throughput();
  pt.goodput = net.normalized_goodput();
  pt.mean_block_delay = net.mean_block_delay();
  pt.mean_blocks_per_peer = net.mean_blocks_per_peer();
  pt.empty_fraction = net.empty_peer_fraction();
  pt.storage_overhead = net.storage_overhead();
  const auto census = net.saved_data_census();
  const auto n = static_cast<double>(cfg.num_peers);
  pt.saved_per_peer_degree = census.saved_original_blocks_degree / n;
  pt.saved_per_peer_rank = census.saved_original_blocks_rank / n;
  pt.segments_lost = net.metrics().segments_lost;
  pt.segments_injected = net.metrics().segments_injected;
  return pt;
}

/// run_steady_state_once averaged over reps() independent seeds.
inline SimPoint run_steady_state(p2p::ProtocolConfig cfg, double warm = 10.0,
                                 double measure = 25.0) {
  const int n = reps();
  if (n == 1) return run_steady_state_once(cfg, warm, measure);
  SimPoint acc;
  for (int r = 0; r < n; ++r) {
    cfg.seed = cfg.seed * 1000003ULL + static_cast<std::uint64_t>(r) + 1;
    const SimPoint p = run_steady_state_once(cfg, warm, measure);
    acc.normalized_throughput += p.normalized_throughput;
    acc.goodput += p.goodput;
    acc.mean_block_delay += p.mean_block_delay;
    acc.mean_blocks_per_peer += p.mean_blocks_per_peer;
    acc.empty_fraction += p.empty_fraction;
    acc.saved_per_peer_degree += p.saved_per_peer_degree;
    acc.saved_per_peer_rank += p.saved_per_peer_rank;
    acc.storage_overhead += p.storage_overhead;
    acc.segments_lost += p.segments_lost;
    acc.segments_injected += p.segments_injected;
  }
  const double k = 1.0 / n;
  acc.normalized_throughput *= k;
  acc.goodput *= k;
  acc.mean_block_delay *= k;
  acc.mean_blocks_per_peer *= k;
  acc.empty_fraction *= k;
  acc.saved_per_peer_degree *= k;
  acc.saved_per_peer_rank *= k;
  acc.storage_overhead *= k;
  acc.segments_lost /= static_cast<std::uint64_t>(n);
  acc.segments_injected /= static_cast<std::uint64_t>(n);
  return acc;
}

/// Directory for optional CSV export (ICOLLECT_CSV_DIR); nullptr when
/// unset. Each figure bench mirrors its printed table into
/// `<dir>/<name>.csv` so results plot directly.
inline std::unique_ptr<stats::CsvWriter> maybe_csv(const std::string& name) {
  const char* dir = std::getenv("ICOLLECT_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  return std::make_unique<stats::CsvWriter>(std::string{dir} + "/" + name +
                                            ".csv");
}

/// Aligned markdown-ish table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_{std::move(headers)} {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Mirror the table into a CSV file (no-op if writer is null).
  void to_csv(stats::CsvWriter* csv) const {
    if (csv == nullptr) return;
    csv->write_row(headers_);
    for (const auto& row : rows_) csv->write_row(row);
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) rule += "+";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + cell + std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace icollect::bench
