#pragma once

/// \file bench_util.h
/// Shared plumbing for the figure-reproduction harnesses: scale control,
/// the Monte-Carlo steady-state sweep (replicas x cells fanned over the
/// runner's thread pool), and aligned table printing.
///
/// Every figure binary prints the series the paper plots, with both the
/// analytical (ODE) and simulated values where applicable; simulated
/// cells report `mean±ci95` over independent replicas. Environment
/// knobs:
///   ICOLLECT_BENCH_SCALE=0.3  quick smoke run (population/duration)
///   ICOLLECT_BENCH_SCALE=3    publication-quality sizing
///   ICOLLECT_BENCH_REPS=8     replicas per simulated point (default 4)
///   ICOLLECT_BENCH_JOBS=8     worker threads (default: hardware)
///   ICOLLECT_BENCH_SEED=S     root of the seed tree (default built-in)
///
/// Seeding: every simulated point draws its replica seeds from
/// runner::SeedSequence rooted at (ICOLLECT_BENCH_SEED, bench name,
/// cell index, replica index) — no bench hand-rolls seed arithmetic, so
/// no two curve parameters ever share an RNG stream.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/collection_system.h"
#include "p2p/network.h"
#include "runner/sweep_runner.h"
#include "stats/csv.h"
#include "stats/summary.h"

namespace icollect::bench {

/// Global scale multiplier from the environment (default 1.0).
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("ICOLLECT_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::strtod(env, nullptr);
    return v > 0.0 ? v : 1.0;
  }();
  return s;
}

/// Population size / durations scaled from defaults.
inline std::size_t scaled_peers(std::size_t base) {
  const double v = static_cast<double>(base) * scale();
  return v < 20.0 ? 20 : static_cast<std::size_t>(v);
}
inline double scaled_time(double base) {
  return base * (scale() < 1.0 ? scale() : 1.0 + (scale() - 1.0) * 0.5);
}

/// One steady-state simulation measurement (a replica mean, or a CI
/// half-width, depending on which half of SimStats it sits in).
struct SimPoint {
  double normalized_throughput = 0.0;
  double goodput = 0.0;
  double mean_block_delay = 0.0;
  double mean_blocks_per_peer = 0.0;
  double empty_fraction = 0.0;
  double saved_per_peer_degree = 0.0;
  double saved_per_peer_rank = 0.0;
  double storage_overhead = 0.0;
  double segments_lost = 0.0;
  double segments_injected = 0.0;
};

/// Replication count for simulated points (ICOLLECT_BENCH_REPS,
/// default 4): each figure point aggregates this many independent
/// replicas, reported as mean ± 95% CI.
inline std::size_t reps() {
  static const std::size_t r = [] {
    const char* env = std::getenv("ICOLLECT_BENCH_REPS");
    if (env == nullptr) return std::size_t{4};
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 && v <= 1000 ? static_cast<std::size_t>(v)
                               : std::size_t{4};
  }();
  return r;
}

/// Worker threads for the bench sweep (ICOLLECT_BENCH_JOBS, default:
/// hardware concurrency).
inline std::size_t jobs() {
  static const std::size_t j = [] {
    const char* env = std::getenv("ICOLLECT_BENCH_JOBS");
    const long v = env != nullptr ? std::strtol(env, nullptr, 10) : 0;
    return runner::ThreadPool::resolve_jobs(v);
  }();
  return j;
}

/// Root of the bench seed tree (ICOLLECT_BENCH_SEED).
inline std::uint64_t seed_root() {
  static const std::uint64_t s = [] {
    const char* env = std::getenv("ICOLLECT_BENCH_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : 0x1CDC52008ULL;  // icdcs'2008
  }();
  return s;
}

/// The process-wide worker pool, sized by jobs().
inline runner::ThreadPool& pool() {
  static runner::ThreadPool p{jobs()};
  return p;
}

/// FNV-1a, used to give each bench binary its own branch of the seed
/// tree so figures never share replica streams.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Mean and 95%-CI half-width over the replicas of one simulated point.
struct SimStats {
  SimPoint mean;
  SimPoint ci95;
  std::size_t replicas = 0;
};

/// Monte-Carlo steady-state sweep: declare every simulated point of a
/// figure up front with add(), execute them all with run() — each
/// (point, replica) pair is one task on the shared pool, so a 30-point
/// figure with 4 replicas exposes 120-way parallelism — then read the
/// per-point aggregates with result().
class SteadyStateSweep {
 public:
  /// `bench_name` selects this bench's branch of the seed tree.
  explicit SteadyStateSweep(std::string_view bench_name)
      : seeds_{runner::SeedSequence{seed_root()}.child(fnv1a(bench_name))} {}

  /// Register one simulated point; returns its handle for result().
  /// Warm-up and measure durations are in unscaled units (the global
  /// ICOLLECT_BENCH_SCALE policy is applied here).
  std::size_t add(const p2p::ProtocolConfig& cfg, double warm = 10.0,
                  double measure = 25.0) {
    runner::ReplicaPlan plan;
    plan.config = cfg;
    plan.warm = scaled_time(warm);
    plan.measure = scaled_time(measure);
    plan.replicas = reps();
    runner::SweepCell cell;
    cell.label = std::to_string(cells_.size());
    cell.plan = plan;
    cells_.push_back(std::move(cell));
    return cells_.size() - 1;
  }

  /// Execute every registered point (replicas x points in parallel).
  void run() {
    const runner::SweepRunner sweep{seeds_};
    const auto results = sweep.run(cells_, pool());
    stats_.clear();
    stats_.reserve(results.size());
    for (std::size_t c = 0; c < results.size(); ++c) {
      const auto& agg = results[c].aggregate;
      const auto n =
          static_cast<double>(cells_[c].plan.config.num_peers);
      SimStats st;
      st.replicas = agg.replicas();
      st.mean = extract(agg, n, false);
      st.ci95 = extract(agg, n, true);
      stats_.push_back(st);
    }
  }

  [[nodiscard]] const SimStats& result(std::size_t handle) const {
    return stats_.at(handle);
  }

 private:
  static SimPoint extract(const runner::AggregateReport& agg, double n_peers,
                          bool ci) {
    const auto get = [&](std::string_view name) {
      return ci ? runner::ci95_half_width(agg.metric(name))
                : agg.metric(name).mean();
    };
    SimPoint p;
    p.normalized_throughput = get("normalized_throughput");
    p.goodput = get("normalized_goodput");
    p.mean_block_delay = get("mean_block_delay");
    p.mean_blocks_per_peer = get("mean_blocks_per_peer");
    p.empty_fraction = get("empty_peer_fraction");
    p.saved_per_peer_degree = get("saved_original_blocks_degree") / n_peers;
    p.saved_per_peer_rank = get("saved_original_blocks_rank") / n_peers;
    p.storage_overhead = get("storage_overhead");
    p.segments_lost = get("segments_lost");
    p.segments_injected = get("segments_injected");
    return p;
  }

  runner::SeedSequence seeds_;
  std::vector<runner::SweepCell> cells_;
  std::vector<SimStats> stats_;
};

/// Directory for optional CSV export (ICOLLECT_CSV_DIR); nullptr when
/// unset. Each figure bench mirrors its printed table into
/// `<dir>/<name>.csv` so results plot directly.
inline std::unique_ptr<stats::CsvWriter> maybe_csv(const std::string& name) {
  const char* dir = std::getenv("ICOLLECT_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  return std::make_unique<stats::CsvWriter>(std::string{dir} + "/" + name +
                                            ".csv");
}

/// Aligned markdown-ish table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_{std::move(headers)} {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Mirror the table into a CSV file (no-op if writer is null).
  void to_csv(stats::CsvWriter* csv) const {
    if (csv == nullptr) return;
    csv->write_row(headers_);
    for (const auto& row : rows_) csv->write_row(row);
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = display_width(headers_[c]);
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], display_width(row[c]));
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) rule += "+";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  /// Terminal columns of a UTF-8 cell: count code points, not bytes
  /// (the ± of a mean±ci cell is two bytes, one column).
  static std::size_t display_width(const std::string& s) {
    std::size_t w = 0;
    for (const char ch : s) {
      if ((static_cast<unsigned char>(ch) & 0xC0U) != 0x80U) ++w;
    }
    return w;
  }

  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + cell +
              std::string(width[c] - display_width(cell) + 1, ' ');
      if (c + 1 < width.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// "mean±ci" cell for a replicated point; collapses to the bare mean
/// when only one replica ran (no interval to report).
inline std::string fmt_ci(double mean, double ci, std::size_t replicas,
                          int prec = 3) {
  if (replicas < 2) return fmt(mean, prec);
  return fmt(mean, prec) + "±" + fmt(ci, prec);
}

}  // namespace icollect::bench
