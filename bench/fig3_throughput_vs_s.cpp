/// Reproduces **Figure 3**: normalized session throughput as a function
/// of segment size s, one curve per normalized server capacity c, with
/// the capacity dash-lines c/λ. Parameters as in the paper: λ = 20,
/// μ = 10, γ = 1, c ∈ {2, 5, 10}.
///
/// Two series per c:
///   ode  — Theorem 2 evaluated on the steady state of systems (7)/(8)/(12)
///   sim  — the event-driven simulation at the paper's state-counter
///          collection fidelity (the process the ODEs model)
///
/// Expected shape: throughput rises with s toward the capacity line;
/// s ≈ 20–30 is already close; approaching capacity is harder for larger
/// c (the benefit of indirection is most salient when capacity is scarce).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  const double lambda = 20.0;
  const double mu = 10.0;
  const double gamma = 1.0;
  const std::vector<double> capacities{2.0, 5.0, 10.0};
  const std::vector<std::size_t> sizes{1, 2, 4, 6, 8, 10, 15, 20, 30, 40};

  std::printf("== Figure 3: session throughput vs segment size ==\n");
  std::printf("lambda=%.0f mu=%.0f gamma=%.0f (throughput normalized by N*lambda)\n\n",
              lambda, mu, gamma);
  for (const double c : capacities) {
    std::printf("capacity line for c=%.0f: %.3f\n", c,
                std::min(c / lambda, 1.0));
  }
  std::printf("\n");

  bench::Table table{{"s", "ode c=2", "sim c=2", "ode c=5", "sim c=5",
                      "ode c=10", "sim c=10"}};

  // Declare every (s, c) point, then execute the whole grid as one
  // parallel Monte-Carlo sweep (replicas x points tasks); seeds derive
  // from (bench root, "fig3", point, replica) — never reused across
  // curve parameters.
  bench::SteadyStateSweep sweep{"fig3"};
  auto make_cfg = [&](std::size_t s, double c) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = bench::scaled_peers(150);
    cfg.lambda = lambda;
    cfg.mu = mu;
    cfg.gamma = gamma;
    cfg.segment_size = s;
    cfg.buffer_cap = 160;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(c);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    return cfg;
  };
  std::vector<std::vector<std::size_t>> handles;
  for (const std::size_t s : sizes) {
    auto& per_c = handles.emplace_back();
    for (const double c : capacities) per_c.push_back(sweep.add(make_cfg(s, c)));
  }
  sweep.run();

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{std::to_string(sizes[i])};
    for (std::size_t j = 0; j < capacities.size(); ++j) {
      const auto ode = CollectionSystem::analyze(make_cfg(sizes[i], capacities[j]));
      const auto& sim = sweep.result(handles[i][j]);
      row.push_back(fmt(ode.normalized_throughput()));
      row.push_back(bench::fmt_ci(sim.mean.normalized_throughput,
                                  sim.ci95.normalized_throughput,
                                  sim.replicas));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.to_csv(bench::maybe_csv("fig3_throughput_vs_s").get());

  std::printf(
      "\nshape checks: throughput increases with s and approaches the\n"
      "capacity line; a small segment size (20-40) suffices; larger c is\n"
      "harder to saturate.\n");
  return 0;
}
