/// Ablation A2 — gossip segment-scheduling policies (library extension;
/// the paper fixes uniform selection, which its ODE analysis assumes).
///
/// Hypothesis, motivated by the last-words finding in A1: a peer's most
/// recent segments are the least replicated when it departs, because
/// uniform gossip splits μ across everything it buffers. Newest-first
/// scheduling front-loads replication of fresh data and should improve
/// last-words recovery; rarest-first (local view) should act similarly
/// but weaker. The cost to watch: steady-state throughput must not
/// regress (older segments still get served — by other peers).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace icollect;
  using bench::fmt;

  const double kWindow = 1.0;
  const double kRun = 40.0;

  std::printf("== Ablation: gossip segment-selection policy ==\n");
  std::printf(
      "lambda=20 mu=10 gamma=1 c=5 s=10, churn E[L]=4, last-words "
      "window=%.1f\n\n",
      kWindow);

  bench::Table table{{"policy", "normalized thr", "departed recovery",
                      "last-words recovery", "segments lost"}};

  for (const auto policy :
       {p2p::GossipPolicy::kUniformSegment, p2p::GossipPolicy::kNewestFirst,
        p2p::GossipPolicy::kRarestFirst}) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = bench::scaled_peers(120);
    cfg.lambda = 20.0;
    cfg.mu = 10.0;
    cfg.gamma = 1.0;
    cfg.segment_size = 10;
    cfg.buffer_cap = 120;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(5.0);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    cfg.gossip_policy = policy;
    cfg.churn.enabled = true;
    cfg.churn.mean_lifetime = 4.0;
    cfg.seed = 515;

    p2p::Network net{cfg};
    net.warm_up(10.0);
    net.run_until(net.now() + kRun);

    table.add_row(
        {p2p::to_string(policy), fmt(net.normalized_throughput()),
         fmt(net.departed_data_stats().recovery_fraction()),
         fmt(net.last_words_stats(kWindow).recovery_fraction()),
         std::to_string(net.metrics().segments_lost)});
  }
  table.print();
  table.to_csv(bench::maybe_csv("ablation_gossip_policy").get());

  std::printf(
      "\nshape checks: newest-first roughly doubles last-words recovery\n"
      "over the paper's uniform rule at a ~5%% throughput cost. Rarest-\n"
      "first backfires: locally-rare segments are mostly *other peers'*\n"
      "gossip-received ones (1 block) rather than the peer's own fresh\n"
      "segments (s blocks), so peers recirculate stale data and starve\n"
      "their own — local rarity is not global rarity.\n");
  return 0;
}
