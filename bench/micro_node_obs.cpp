/// \file micro_node_obs.cpp
/// Overhead gate for live-node instrumentation: drive the same seeded
/// loopback cluster workload bare and with full telemetry attached (a
/// metrics registry of per-node gauges + latency histograms and a trace
/// sink), and fail if the instrumented hot path is more than
/// ICOLLECT_OBS_OVERHEAD_TOL (default 5%) slower.
///
/// Methodology: the two variants alternate A/B/A/B... and each keeps
/// its minimum over several rounds — the min is the run least disturbed
/// by the scheduler, and interleaving cancels thermal/frequency drift.
/// Exit 0 within tolerance, 1 over it (and prints both timings either
/// way, so CI logs double as a coarse perf series).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "node/cluster.h"
#include "obs/metrics_registry.h"
#include "proto/trace.h"

namespace {

using namespace icollect;

node::ClusterConfig workload_config() {
  node::ClusterConfig cfg;
  cfg.num_peers = 8;
  cfg.num_servers = 2;
  cfg.segment_size = 4;
  cfg.buffer_cap = 32;
  cfg.payload_bytes = 32;
  cfg.lambda = 8.0;
  cfg.mu = 4.0;
  cfg.gamma = 1.0;
  cfg.server_rate = 24.0;
  cfg.segments_per_peer = 0;  // unbounded: steady-state gossip + pulls
  cfg.seed = 17;
  cfg.net.seed = 17;
  return cfg;
}

constexpr double kVirtualSeconds = 80.0;

/// One full workload run; returns wall seconds. The checksum keeps the
/// optimizer honest and double-checks the two variants did equal work.
double run_once(bool instrumented, std::uint64_t* checksum) {
  obs::MetricsRegistry registry;
  std::uint64_t trace_events = 0;
  const auto t0 = std::chrono::steady_clock::now();
  node::LoopbackCluster cluster{workload_config(),
                                instrumented ? &registry : nullptr};
  if (instrumented) {
    cluster.set_trace_sink(
        [&trace_events](const proto::TraceEvent&) { ++trace_events; });
  }
  cluster.run_for(kVirtualSeconds);
  const auto t1 = std::chrono::steady_clock::now();
  *checksum = cluster.pulls_sent() + cluster.gossip_sent() +
              cluster.innovative_pulls();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  double tol = 0.05;
  if (const char* env = std::getenv("ICOLLECT_OBS_OVERHEAD_TOL")) {
    tol = std::strtod(env, nullptr);
    if (tol <= 0.0) tol = 0.05;
  }

  constexpr int kRounds = 7;
  double bare_min = 1e300;
  double instr_min = 1e300;
  std::uint64_t bare_sum = 0;
  std::uint64_t instr_sum = 0;
  // Warm-up round (allocator, page faults) discarded from both mins.
  std::uint64_t sink = 0;
  run_once(false, &sink);
  run_once(true, &sink);
  for (int r = 0; r < kRounds; ++r) {
    double t = run_once(false, &bare_sum);
    if (t < bare_min) bare_min = t;
    t = run_once(true, &instr_sum);
    if (t < instr_min) instr_min = t;
  }

  if (bare_sum != instr_sum) {
    std::fprintf(stderr,
                 "micro_node_obs: FAIL: instrumentation changed the run "
                 "(checksum %llu vs %llu)\n",
                 static_cast<unsigned long long>(bare_sum),
                 static_cast<unsigned long long>(instr_sum));
    return 1;
  }

  const double overhead = instr_min / bare_min - 1.0;
  std::printf(
      "micro_node_obs: bare=%.4fs instrumented=%.4fs overhead=%+.2f%% "
      "(tolerance %.0f%%, checksum %llu)\n",
      bare_min, instr_min, 100.0 * overhead, 100.0 * tol,
      static_cast<unsigned long long>(bare_sum));
  if (overhead > tol) {
    std::fprintf(stderr,
                 "micro_node_obs: FAIL: instrumented hot path is %.2f%% "
                 "slower (tolerance %.0f%%)\n",
                 100.0 * overhead, 100.0 * tol);
    return 1;
  }
  return 0;
}
