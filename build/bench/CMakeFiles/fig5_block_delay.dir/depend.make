# Empty dependencies file for fig5_block_delay.
# This may be replaced when dependencies are built.
