file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput_churn.dir/fig4_throughput_churn.cpp.o"
  "CMakeFiles/fig4_throughput_churn.dir/fig4_throughput_churn.cpp.o.d"
  "fig4_throughput_churn"
  "fig4_throughput_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
