
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_sim_kernel.cpp" "bench/CMakeFiles/micro_sim_kernel.dir/micro_sim_kernel.cpp.o" "gcc" "bench/CMakeFiles/micro_sim_kernel.dir/micro_sim_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icollect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/icollect_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/icollect_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/icollect_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/icollect_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/icollect_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/icollect_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
