# Empty dependencies file for thm1_storage_overhead.
# This may be replaced when dependencies are built.
