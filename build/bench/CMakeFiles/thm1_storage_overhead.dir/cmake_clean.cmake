file(REMOVE_RECURSE
  "CMakeFiles/thm1_storage_overhead.dir/thm1_storage_overhead.cpp.o"
  "CMakeFiles/thm1_storage_overhead.dir/thm1_storage_overhead.cpp.o.d"
  "thm1_storage_overhead"
  "thm1_storage_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm1_storage_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
