# Empty compiler generated dependencies file for fig6_saved_data.
# This may be replaced when dependencies are built.
