# Empty compiler generated dependencies file for fig3_throughput_vs_s.
# This may be replaced when dependencies are built.
