file(REMOVE_RECURSE
  "CMakeFiles/fig3_throughput_vs_s.dir/fig3_throughput_vs_s.cpp.o"
  "CMakeFiles/fig3_throughput_vs_s.dir/fig3_throughput_vs_s.cpp.o.d"
  "fig3_throughput_vs_s"
  "fig3_throughput_vs_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_throughput_vs_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
