# Empty compiler generated dependencies file for ablation_baseline_vs_indirect.
# This may be replaced when dependencies are built.
