file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_vs_indirect.dir/ablation_baseline_vs_indirect.cpp.o"
  "CMakeFiles/ablation_baseline_vs_indirect.dir/ablation_baseline_vs_indirect.cpp.o.d"
  "ablation_baseline_vs_indirect"
  "ablation_baseline_vs_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_vs_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
