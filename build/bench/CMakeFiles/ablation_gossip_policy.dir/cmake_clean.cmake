file(REMOVE_RECURSE
  "CMakeFiles/ablation_gossip_policy.dir/ablation_gossip_policy.cpp.o"
  "CMakeFiles/ablation_gossip_policy.dir/ablation_gossip_policy.cpp.o.d"
  "ablation_gossip_policy"
  "ablation_gossip_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gossip_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
