# Empty dependencies file for ablation_gossip_policy.
# This may be replaced when dependencies are built.
