# Empty dependencies file for sim_vs_ode_test.
# This may be replaced when dependencies are built.
