file(REMOVE_RECURSE
  "CMakeFiles/sim_vs_ode_test.dir/sim_vs_ode_test.cpp.o"
  "CMakeFiles/sim_vs_ode_test.dir/sim_vs_ode_test.cpp.o.d"
  "sim_vs_ode_test"
  "sim_vs_ode_test.pdb"
  "sim_vs_ode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_vs_ode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
