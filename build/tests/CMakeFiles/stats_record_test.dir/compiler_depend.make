# Empty compiler generated dependencies file for stats_record_test.
# This may be replaced when dependencies are built.
