file(REMOVE_RECURSE
  "CMakeFiles/stats_record_test.dir/stats_record_test.cpp.o"
  "CMakeFiles/stats_record_test.dir/stats_record_test.cpp.o.d"
  "stats_record_test"
  "stats_record_test.pdb"
  "stats_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
