file(REMOVE_RECURSE
  "CMakeFiles/peer_buffer_test.dir/peer_buffer_test.cpp.o"
  "CMakeFiles/peer_buffer_test.dir/peer_buffer_test.cpp.o.d"
  "peer_buffer_test"
  "peer_buffer_test.pdb"
  "peer_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
