# Empty dependencies file for peer_buffer_test.
# This may be replaced when dependencies are built.
