file(REMOVE_RECURSE
  "CMakeFiles/ode_transient_test.dir/ode_transient_test.cpp.o"
  "CMakeFiles/ode_transient_test.dir/ode_transient_test.cpp.o.d"
  "ode_transient_test"
  "ode_transient_test.pdb"
  "ode_transient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
