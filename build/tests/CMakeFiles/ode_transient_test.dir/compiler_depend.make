# Empty compiler generated dependencies file for ode_transient_test.
# This may be replaced when dependencies are built.
