file(REMOVE_RECURSE
  "CMakeFiles/segment_buffer_test.dir/segment_buffer_test.cpp.o"
  "CMakeFiles/segment_buffer_test.dir/segment_buffer_test.cpp.o.d"
  "segment_buffer_test"
  "segment_buffer_test.pdb"
  "segment_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
