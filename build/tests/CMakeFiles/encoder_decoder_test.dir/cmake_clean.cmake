file(REMOVE_RECURSE
  "CMakeFiles/encoder_decoder_test.dir/encoder_decoder_test.cpp.o"
  "CMakeFiles/encoder_decoder_test.dir/encoder_decoder_test.cpp.o.d"
  "encoder_decoder_test"
  "encoder_decoder_test.pdb"
  "encoder_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
