file(REMOVE_RECURSE
  "CMakeFiles/churn_model_test.dir/churn_model_test.cpp.o"
  "CMakeFiles/churn_model_test.dir/churn_model_test.cpp.o.d"
  "churn_model_test"
  "churn_model_test.pdb"
  "churn_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
