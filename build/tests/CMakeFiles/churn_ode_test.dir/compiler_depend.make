# Empty compiler generated dependencies file for churn_ode_test.
# This may be replaced when dependencies are built.
