file(REMOVE_RECURSE
  "CMakeFiles/churn_ode_test.dir/churn_ode_test.cpp.o"
  "CMakeFiles/churn_ode_test.dir/churn_ode_test.cpp.o.d"
  "churn_ode_test"
  "churn_ode_test.pdb"
  "churn_ode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_ode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
