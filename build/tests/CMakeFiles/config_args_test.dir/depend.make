# Empty dependencies file for config_args_test.
# This may be replaced when dependencies are built.
