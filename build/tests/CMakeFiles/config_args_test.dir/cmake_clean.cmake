file(REMOVE_RECURSE
  "CMakeFiles/config_args_test.dir/config_args_test.cpp.o"
  "CMakeFiles/config_args_test.dir/config_args_test.cpp.o.d"
  "config_args_test"
  "config_args_test.pdb"
  "config_args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
