file(REMOVE_RECURSE
  "CMakeFiles/gf_vector_test.dir/gf_vector_test.cpp.o"
  "CMakeFiles/gf_vector_test.dir/gf_vector_test.cpp.o.d"
  "gf_vector_test"
  "gf_vector_test.pdb"
  "gf_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
