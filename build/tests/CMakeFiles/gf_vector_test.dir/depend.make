# Empty dependencies file for gf_vector_test.
# This may be replaced when dependencies are built.
