file(REMOVE_RECURSE
  "CMakeFiles/streaming_facade_test.dir/streaming_facade_test.cpp.o"
  "CMakeFiles/streaming_facade_test.dir/streaming_facade_test.cpp.o.d"
  "streaming_facade_test"
  "streaming_facade_test.pdb"
  "streaming_facade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
