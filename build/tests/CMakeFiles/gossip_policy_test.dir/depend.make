# Empty dependencies file for gossip_policy_test.
# This may be replaced when dependencies are built.
