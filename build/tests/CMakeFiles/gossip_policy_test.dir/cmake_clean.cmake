file(REMOVE_RECURSE
  "CMakeFiles/gossip_policy_test.dir/gossip_policy_test.cpp.o"
  "CMakeFiles/gossip_policy_test.dir/gossip_policy_test.cpp.o.d"
  "gossip_policy_test"
  "gossip_policy_test.pdb"
  "gossip_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
