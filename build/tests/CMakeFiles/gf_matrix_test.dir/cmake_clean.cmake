file(REMOVE_RECURSE
  "CMakeFiles/gf_matrix_test.dir/gf_matrix_test.cpp.o"
  "CMakeFiles/gf_matrix_test.dir/gf_matrix_test.cpp.o.d"
  "gf_matrix_test"
  "gf_matrix_test.pdb"
  "gf_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
