file(REMOVE_RECURSE
  "CMakeFiles/direct_collector_test.dir/direct_collector_test.cpp.o"
  "CMakeFiles/direct_collector_test.dir/direct_collector_test.cpp.o.d"
  "direct_collector_test"
  "direct_collector_test.pdb"
  "direct_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
