# Empty dependencies file for direct_collector_test.
# This may be replaced when dependencies are built.
