# Empty compiler generated dependencies file for streaming_session_test.
# This may be replaced when dependencies are built.
