file(REMOVE_RECURSE
  "CMakeFiles/streaming_session_test.dir/streaming_session_test.cpp.o"
  "CMakeFiles/streaming_session_test.dir/streaming_session_test.cpp.o.d"
  "streaming_session_test"
  "streaming_session_test.pdb"
  "streaming_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
