# Empty dependencies file for collection_system_test.
# This may be replaced when dependencies are built.
