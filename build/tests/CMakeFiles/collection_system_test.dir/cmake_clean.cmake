file(REMOVE_RECURSE
  "CMakeFiles/collection_system_test.dir/collection_system_test.cpp.o"
  "CMakeFiles/collection_system_test.dir/collection_system_test.cpp.o.d"
  "collection_system_test"
  "collection_system_test.pdb"
  "collection_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collection_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
