# Empty compiler generated dependencies file for batch_decoder_test.
# This may be replaced when dependencies are built.
