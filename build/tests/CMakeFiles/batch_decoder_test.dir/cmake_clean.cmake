file(REMOVE_RECURSE
  "CMakeFiles/batch_decoder_test.dir/batch_decoder_test.cpp.o"
  "CMakeFiles/batch_decoder_test.dir/batch_decoder_test.cpp.o.d"
  "batch_decoder_test"
  "batch_decoder_test.pdb"
  "batch_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
