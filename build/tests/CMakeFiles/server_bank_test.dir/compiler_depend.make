# Empty compiler generated dependencies file for server_bank_test.
# This may be replaced when dependencies are built.
