file(REMOVE_RECURSE
  "CMakeFiles/server_bank_test.dir/server_bank_test.cpp.o"
  "CMakeFiles/server_bank_test.dir/server_bank_test.cpp.o.d"
  "server_bank_test"
  "server_bank_test.pdb"
  "server_bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
