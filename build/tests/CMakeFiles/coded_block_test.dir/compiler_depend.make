# Empty compiler generated dependencies file for coded_block_test.
# This may be replaced when dependencies are built.
