file(REMOVE_RECURSE
  "CMakeFiles/coded_block_test.dir/coded_block_test.cpp.o"
  "CMakeFiles/coded_block_test.dir/coded_block_test.cpp.o.d"
  "coded_block_test"
  "coded_block_test.pdb"
  "coded_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coded_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
