
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/icollect_ode.cpp" "tools/CMakeFiles/icollect_ode_cli.dir/icollect_ode.cpp.o" "gcc" "tools/CMakeFiles/icollect_ode_cli.dir/icollect_ode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ode/CMakeFiles/icollect_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/icollect_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
