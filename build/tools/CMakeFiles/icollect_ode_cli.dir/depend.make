# Empty dependencies file for icollect_ode_cli.
# This may be replaced when dependencies are built.
