file(REMOVE_RECURSE
  "CMakeFiles/icollect_ode_cli.dir/icollect_ode.cpp.o"
  "CMakeFiles/icollect_ode_cli.dir/icollect_ode.cpp.o.d"
  "icollect_ode"
  "icollect_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_ode_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
