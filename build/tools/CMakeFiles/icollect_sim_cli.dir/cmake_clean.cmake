file(REMOVE_RECURSE
  "CMakeFiles/icollect_sim_cli.dir/icollect_sim.cpp.o"
  "CMakeFiles/icollect_sim_cli.dir/icollect_sim.cpp.o.d"
  "icollect_sim"
  "icollect_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
