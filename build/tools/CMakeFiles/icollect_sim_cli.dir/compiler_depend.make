# Empty compiler generated dependencies file for icollect_sim_cli.
# This may be replaced when dependencies are built.
