# Empty dependencies file for icollect_core.
# This may be replaced when dependencies are built.
