file(REMOVE_RECURSE
  "CMakeFiles/icollect_core.dir/collection_system.cpp.o"
  "CMakeFiles/icollect_core.dir/collection_system.cpp.o.d"
  "CMakeFiles/icollect_core.dir/config_args.cpp.o"
  "CMakeFiles/icollect_core.dir/config_args.cpp.o.d"
  "libicollect_core.a"
  "libicollect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
