file(REMOVE_RECURSE
  "libicollect_core.a"
)
