file(REMOVE_RECURSE
  "libicollect_gf.a"
)
