# Empty dependencies file for icollect_gf.
# This may be replaced when dependencies are built.
