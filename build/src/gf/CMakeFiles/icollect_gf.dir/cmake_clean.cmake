file(REMOVE_RECURSE
  "CMakeFiles/icollect_gf.dir/gf256.cpp.o"
  "CMakeFiles/icollect_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/icollect_gf.dir/gf_matrix.cpp.o"
  "CMakeFiles/icollect_gf.dir/gf_matrix.cpp.o.d"
  "libicollect_gf.a"
  "libicollect_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
