file(REMOVE_RECURSE
  "CMakeFiles/icollect_p2p.dir/direct_collector.cpp.o"
  "CMakeFiles/icollect_p2p.dir/direct_collector.cpp.o.d"
  "CMakeFiles/icollect_p2p.dir/network.cpp.o"
  "CMakeFiles/icollect_p2p.dir/network.cpp.o.d"
  "CMakeFiles/icollect_p2p.dir/peer.cpp.o"
  "CMakeFiles/icollect_p2p.dir/peer.cpp.o.d"
  "CMakeFiles/icollect_p2p.dir/server.cpp.o"
  "CMakeFiles/icollect_p2p.dir/server.cpp.o.d"
  "CMakeFiles/icollect_p2p.dir/topology.cpp.o"
  "CMakeFiles/icollect_p2p.dir/topology.cpp.o.d"
  "libicollect_p2p.a"
  "libicollect_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
