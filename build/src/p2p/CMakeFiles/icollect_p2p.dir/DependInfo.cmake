
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/direct_collector.cpp" "src/p2p/CMakeFiles/icollect_p2p.dir/direct_collector.cpp.o" "gcc" "src/p2p/CMakeFiles/icollect_p2p.dir/direct_collector.cpp.o.d"
  "/root/repo/src/p2p/network.cpp" "src/p2p/CMakeFiles/icollect_p2p.dir/network.cpp.o" "gcc" "src/p2p/CMakeFiles/icollect_p2p.dir/network.cpp.o.d"
  "/root/repo/src/p2p/peer.cpp" "src/p2p/CMakeFiles/icollect_p2p.dir/peer.cpp.o" "gcc" "src/p2p/CMakeFiles/icollect_p2p.dir/peer.cpp.o.d"
  "/root/repo/src/p2p/server.cpp" "src/p2p/CMakeFiles/icollect_p2p.dir/server.cpp.o" "gcc" "src/p2p/CMakeFiles/icollect_p2p.dir/server.cpp.o.d"
  "/root/repo/src/p2p/topology.cpp" "src/p2p/CMakeFiles/icollect_p2p.dir/topology.cpp.o" "gcc" "src/p2p/CMakeFiles/icollect_p2p.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coding/CMakeFiles/icollect_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/icollect_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/icollect_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/icollect_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
