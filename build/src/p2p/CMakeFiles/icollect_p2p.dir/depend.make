# Empty dependencies file for icollect_p2p.
# This may be replaced when dependencies are built.
