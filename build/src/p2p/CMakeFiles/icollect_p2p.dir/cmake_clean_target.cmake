file(REMOVE_RECURSE
  "libicollect_p2p.a"
)
