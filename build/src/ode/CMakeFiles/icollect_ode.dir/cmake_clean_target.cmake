file(REMOVE_RECURSE
  "libicollect_ode.a"
)
