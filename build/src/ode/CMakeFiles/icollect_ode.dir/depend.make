# Empty dependencies file for icollect_ode.
# This may be replaced when dependencies are built.
