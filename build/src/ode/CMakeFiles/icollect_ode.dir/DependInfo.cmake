
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/closed_form.cpp" "src/ode/CMakeFiles/icollect_ode.dir/closed_form.cpp.o" "gcc" "src/ode/CMakeFiles/icollect_ode.dir/closed_form.cpp.o.d"
  "/root/repo/src/ode/indirect_ode.cpp" "src/ode/CMakeFiles/icollect_ode.dir/indirect_ode.cpp.o" "gcc" "src/ode/CMakeFiles/icollect_ode.dir/indirect_ode.cpp.o.d"
  "/root/repo/src/ode/rk4.cpp" "src/ode/CMakeFiles/icollect_ode.dir/rk4.cpp.o" "gcc" "src/ode/CMakeFiles/icollect_ode.dir/rk4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/icollect_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
