file(REMOVE_RECURSE
  "CMakeFiles/icollect_ode.dir/closed_form.cpp.o"
  "CMakeFiles/icollect_ode.dir/closed_form.cpp.o.d"
  "CMakeFiles/icollect_ode.dir/indirect_ode.cpp.o"
  "CMakeFiles/icollect_ode.dir/indirect_ode.cpp.o.d"
  "CMakeFiles/icollect_ode.dir/rk4.cpp.o"
  "CMakeFiles/icollect_ode.dir/rk4.cpp.o.d"
  "libicollect_ode.a"
  "libicollect_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
