# Empty compiler generated dependencies file for icollect_coding.
# This may be replaced when dependencies are built.
