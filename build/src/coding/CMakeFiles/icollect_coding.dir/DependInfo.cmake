
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/batch_decoder.cpp" "src/coding/CMakeFiles/icollect_coding.dir/batch_decoder.cpp.o" "gcc" "src/coding/CMakeFiles/icollect_coding.dir/batch_decoder.cpp.o.d"
  "/root/repo/src/coding/coded_block.cpp" "src/coding/CMakeFiles/icollect_coding.dir/coded_block.cpp.o" "gcc" "src/coding/CMakeFiles/icollect_coding.dir/coded_block.cpp.o.d"
  "/root/repo/src/coding/decoder.cpp" "src/coding/CMakeFiles/icollect_coding.dir/decoder.cpp.o" "gcc" "src/coding/CMakeFiles/icollect_coding.dir/decoder.cpp.o.d"
  "/root/repo/src/coding/encoder.cpp" "src/coding/CMakeFiles/icollect_coding.dir/encoder.cpp.o" "gcc" "src/coding/CMakeFiles/icollect_coding.dir/encoder.cpp.o.d"
  "/root/repo/src/coding/segment_buffer.cpp" "src/coding/CMakeFiles/icollect_coding.dir/segment_buffer.cpp.o" "gcc" "src/coding/CMakeFiles/icollect_coding.dir/segment_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/icollect_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
