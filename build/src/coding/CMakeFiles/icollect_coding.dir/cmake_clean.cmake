file(REMOVE_RECURSE
  "CMakeFiles/icollect_coding.dir/batch_decoder.cpp.o"
  "CMakeFiles/icollect_coding.dir/batch_decoder.cpp.o.d"
  "CMakeFiles/icollect_coding.dir/coded_block.cpp.o"
  "CMakeFiles/icollect_coding.dir/coded_block.cpp.o.d"
  "CMakeFiles/icollect_coding.dir/decoder.cpp.o"
  "CMakeFiles/icollect_coding.dir/decoder.cpp.o.d"
  "CMakeFiles/icollect_coding.dir/encoder.cpp.o"
  "CMakeFiles/icollect_coding.dir/encoder.cpp.o.d"
  "CMakeFiles/icollect_coding.dir/segment_buffer.cpp.o"
  "CMakeFiles/icollect_coding.dir/segment_buffer.cpp.o.d"
  "libicollect_coding.a"
  "libicollect_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
