file(REMOVE_RECURSE
  "libicollect_coding.a"
)
