# Empty compiler generated dependencies file for icollect_workload.
# This may be replaced when dependencies are built.
