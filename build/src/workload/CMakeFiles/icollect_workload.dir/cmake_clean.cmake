file(REMOVE_RECURSE
  "CMakeFiles/icollect_workload.dir/generators.cpp.o"
  "CMakeFiles/icollect_workload.dir/generators.cpp.o.d"
  "CMakeFiles/icollect_workload.dir/record_store.cpp.o"
  "CMakeFiles/icollect_workload.dir/record_store.cpp.o.d"
  "CMakeFiles/icollect_workload.dir/stats_record.cpp.o"
  "CMakeFiles/icollect_workload.dir/stats_record.cpp.o.d"
  "CMakeFiles/icollect_workload.dir/streaming_session.cpp.o"
  "CMakeFiles/icollect_workload.dir/streaming_session.cpp.o.d"
  "libicollect_workload.a"
  "libicollect_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
