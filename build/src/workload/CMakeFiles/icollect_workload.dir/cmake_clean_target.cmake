file(REMOVE_RECURSE
  "libicollect_workload.a"
)
