
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cpp" "src/workload/CMakeFiles/icollect_workload.dir/generators.cpp.o" "gcc" "src/workload/CMakeFiles/icollect_workload.dir/generators.cpp.o.d"
  "/root/repo/src/workload/record_store.cpp" "src/workload/CMakeFiles/icollect_workload.dir/record_store.cpp.o" "gcc" "src/workload/CMakeFiles/icollect_workload.dir/record_store.cpp.o.d"
  "/root/repo/src/workload/stats_record.cpp" "src/workload/CMakeFiles/icollect_workload.dir/stats_record.cpp.o" "gcc" "src/workload/CMakeFiles/icollect_workload.dir/stats_record.cpp.o.d"
  "/root/repo/src/workload/streaming_session.cpp" "src/workload/CMakeFiles/icollect_workload.dir/streaming_session.cpp.o" "gcc" "src/workload/CMakeFiles/icollect_workload.dir/streaming_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/icollect_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/icollect_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
