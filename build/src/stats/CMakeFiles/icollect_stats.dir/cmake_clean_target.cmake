file(REMOVE_RECURSE
  "libicollect_stats.a"
)
