file(REMOVE_RECURSE
  "CMakeFiles/icollect_stats.dir/csv.cpp.o"
  "CMakeFiles/icollect_stats.dir/csv.cpp.o.d"
  "libicollect_stats.a"
  "libicollect_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icollect_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
