# Empty dependencies file for icollect_stats.
# This may be replaced when dependencies are built.
