# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "60" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flash_crowd "/root/repo/build/examples/flash_crowd" "60" "1")
set_tests_properties(example_flash_crowd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_churn_resilience "/root/repo/build/examples/churn_resilience" "60" "1")
set_tests_properties(example_churn_resilience PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning" "20")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_segment_lifecycle "/root/repo/build/examples/segment_lifecycle" "60" "1")
set_tests_properties(example_segment_lifecycle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_collection "/root/repo/build/examples/streaming_collection" "40" "1")
set_tests_properties(example_streaming_collection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_icollect_sim "/root/repo/build/tools/icollect_sim" "peers=60" "lambda=8" "s=4" "c=3" "warm=2" "measure=5")
set_tests_properties(tool_icollect_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_icollect_ode "/root/repo/build/tools/icollect_ode" "lambda=8" "mu=4" "c=2" "s=4")
set_tests_properties(tool_icollect_ode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
