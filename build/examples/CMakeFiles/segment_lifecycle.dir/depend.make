# Empty dependencies file for segment_lifecycle.
# This may be replaced when dependencies are built.
