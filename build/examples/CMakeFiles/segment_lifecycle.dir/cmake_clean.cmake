file(REMOVE_RECURSE
  "CMakeFiles/segment_lifecycle.dir/segment_lifecycle.cpp.o"
  "CMakeFiles/segment_lifecycle.dir/segment_lifecycle.cpp.o.d"
  "segment_lifecycle"
  "segment_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
