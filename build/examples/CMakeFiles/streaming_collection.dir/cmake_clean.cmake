file(REMOVE_RECURSE
  "CMakeFiles/streaming_collection.dir/streaming_collection.cpp.o"
  "CMakeFiles/streaming_collection.dir/streaming_collection.cpp.o.d"
  "streaming_collection"
  "streaming_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
