# Empty dependencies file for streaming_collection.
# This may be replaced when dependencies are built.
