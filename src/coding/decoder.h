#pragma once

/// \file decoder.h
/// Progressive Gaussian-elimination decoder for one segment.
///
/// The logging servers run one of these per segment: every pulled coded
/// block is reduced against the rows already held; innovative blocks
/// raise the rank, redundant ones are counted and discarded. When the
/// rank reaches the segment size s, the internal matrix is (by
/// construction of the incremental reduction) the identity and the stored
/// payload rows *are* the original blocks — the "approximately O(s)
/// operations per input block" decoding the paper cites [8].
///
/// Memory layout is built for the hot loop: rows live in two flat,
/// pre-sized arenas (s x s coefficients, s x payload bytes) allocated
/// once at construction, and reduction runs in reusable scratch buffers.
/// After construction, add() and is_innovative() perform ZERO heap
/// allocations — the steady-state decode path (dominated by redundant
/// blocks at high collection states) is pure arithmetic on warm memory.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "gf/gf256.h"

namespace icollect::coding {

class Decoder {
 public:
  /// Decoder for a segment of `segment_size` blocks whose payloads have
  /// `payload_size` bytes (payload_size may be 0 for coefficient-only use).
  Decoder(SegmentId id, std::size_t segment_size, std::size_t payload_size);

  [[nodiscard]] const SegmentId& id() const noexcept { return id_; }
  [[nodiscard]] std::size_t segment_size() const noexcept { return s_; }
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return payload_size_;
  }

  /// Current rank (number of linearly independent blocks absorbed).
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// True once rank() == segment_size(): all originals recoverable.
  [[nodiscard]] bool complete() const noexcept { return rank_ == s_; }

  /// Number of blocks offered that carried no new information.
  [[nodiscard]] std::uint64_t redundant_count() const noexcept {
    return redundant_;
  }

  /// Would this block raise the rank? (const; does not modify state)
  [[nodiscard]] bool is_innovative(const CodedBlock& block) const;

  /// Absorb a coded block. Returns true if it was innovative.
  /// Preconditions: matching segment id, coefficient length s, and (when
  /// payloads are in use) matching payload length.
  bool add(const CodedBlock& block);

  /// The k-th recovered original block, as a view into the decoder's row
  /// arena (valid until the decoder is destroyed). Precondition:
  /// complete().
  [[nodiscard]] std::span<const std::uint8_t> original(std::size_t k) const;

  /// All recovered originals in order, copied out. Precondition:
  /// complete().
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> originals() const;

 private:
  /// Reduce (coeffs, payload) against stored rows in place; returns the
  /// pivot column if a non-zero leading coefficient remains, nullopt if
  /// fully eliminated (non-innovative).
  [[nodiscard]] std::optional<std::size_t> reduce(
      std::span<gf::Element> coeffs,
      std::span<std::uint8_t> payload) const;

  // Row views into the flat arenas; row with pivot at column p is row p.
  [[nodiscard]] std::span<gf::Element> coeff_row(std::size_t p) noexcept {
    return {coeff_rows_.data() + p * s_, s_};
  }
  [[nodiscard]] std::span<const gf::Element> coeff_row(
      std::size_t p) const noexcept {
    return {coeff_rows_.data() + p * s_, s_};
  }
  [[nodiscard]] std::span<std::uint8_t> payload_row(std::size_t p) noexcept {
    return {payload_rows_.data() + p * payload_size_, payload_size_};
  }
  [[nodiscard]] std::span<const std::uint8_t> payload_row(
      std::size_t p) const noexcept {
    return {payload_rows_.data() + p * payload_size_, payload_size_};
  }

  SegmentId id_;
  std::size_t s_;
  std::size_t payload_size_;
  std::size_t rank_ = 0;
  std::uint64_t redundant_ = 0;
  // Flat row arenas, sized once at construction (s*s and s*payload).
  std::vector<gf::Element> coeff_rows_;
  std::vector<std::uint8_t> payload_rows_;
  std::vector<std::uint8_t> present_;  // 1 if row p holds a pivot row
  // Reduction scratch, sized once at construction; mutable so the const
  // is_innovative() probe can reuse it (single-threaded use, as before).
  mutable std::vector<gf::Element> scratch_coeffs_;
  mutable std::vector<std::uint8_t> scratch_payload_;
};

}  // namespace icollect::coding
