#pragma once

/// \file decoder.h
/// Progressive Gaussian-elimination decoder for one segment.
///
/// The logging servers run one of these per segment: every pulled coded
/// block is reduced against the rows already held; innovative blocks
/// raise the rank, redundant ones are counted and discarded. When the
/// rank reaches the segment size s, the internal matrix is (by
/// construction of the incremental reduction) the identity and the stored
/// payload rows *are* the original blocks — the "approximately O(s)
/// operations per input block" decoding the paper cites [8].

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "gf/gf256.h"

namespace icollect::coding {

class Decoder {
 public:
  /// Decoder for a segment of `segment_size` blocks whose payloads have
  /// `payload_size` bytes (payload_size may be 0 for coefficient-only use).
  Decoder(SegmentId id, std::size_t segment_size, std::size_t payload_size);

  [[nodiscard]] const SegmentId& id() const noexcept { return id_; }
  [[nodiscard]] std::size_t segment_size() const noexcept { return s_; }
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return payload_size_;
  }

  /// Current rank (number of linearly independent blocks absorbed).
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// True once rank() == segment_size(): all originals recoverable.
  [[nodiscard]] bool complete() const noexcept { return rank_ == s_; }

  /// Number of blocks offered that carried no new information.
  [[nodiscard]] std::uint64_t redundant_count() const noexcept {
    return redundant_;
  }

  /// Would this block raise the rank? (const; does not modify state)
  [[nodiscard]] bool is_innovative(const CodedBlock& block) const;

  /// Absorb a coded block. Returns true if it was innovative.
  /// Preconditions: matching segment id, coefficient length s, and (when
  /// payloads are in use) matching payload length.
  bool add(const CodedBlock& block);

  /// The k-th recovered original block. Precondition: complete().
  [[nodiscard]] const std::vector<std::uint8_t>& original(
      std::size_t k) const;

  /// All recovered originals in order. Precondition: complete().
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> originals() const;

 private:
  /// Reduce (coeffs, payload) against stored rows in place; returns the
  /// pivot column if a non-zero leading coefficient remains, nullopt if
  /// fully eliminated (non-innovative).
  [[nodiscard]] std::optional<std::size_t> reduce(
      std::vector<gf::Element>& coeffs,
      std::vector<std::uint8_t>& payload) const;

  SegmentId id_;
  std::size_t s_;
  std::size_t payload_size_;
  std::size_t rank_ = 0;
  std::uint64_t redundant_ = 0;
  // Row with pivot at column p lives at rows_[p]; empty rows have no pivot.
  struct Row {
    bool present = false;
    std::vector<gf::Element> coeffs;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Row> rows_;
};

}  // namespace icollect::coding
