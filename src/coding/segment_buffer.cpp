#include "coding/segment_buffer.h"

#include <algorithm>
#include <utility>

#include "coding/decoder.h"
#include "gf/gf_vector.h"

namespace icollect::coding {

SegmentBuffer::SegmentBuffer(SegmentId id, std::size_t segment_size)
    : id_{id}, s_{segment_size} {
  ICOLLECT_EXPECTS(segment_size > 0);
}

std::size_t SegmentBuffer::rank() const {
  if (cached_rank_) return *cached_rank_;
  // Rank of the coefficient rows via a throwaway progressive decoder —
  // block counts per segment are small (O(s)), so this stays cheap.
  Decoder probe{id_, s_, 0};
  for (const auto& st : blocks_) {
    CodedBlock coeff_only;
    coeff_only.segment = id_;
    coeff_only.coefficients = st.block.coefficients;
    probe.add(coeff_only);
    if (probe.complete()) break;
  }
  cached_rank_ = probe.rank();
  return *cached_rank_;
}

void SegmentBuffer::add(BlockHandle handle, CodedBlock block) {
  ICOLLECT_EXPECTS(block.segment == id_);
  ICOLLECT_EXPECTS(block.coefficients.size() == s_);
  ICOLLECT_EXPECTS(!block.is_degenerate());
  blocks_.push_back(Stored{handle, std::move(block)});
  cached_rank_.reset();
}

bool SegmentBuffer::remove(BlockHandle handle) {
  const auto it =
      std::find_if(blocks_.begin(), blocks_.end(),
                   [handle](const Stored& s) { return s.handle == handle; });
  if (it == blocks_.end()) return false;
  blocks_.erase(it);
  cached_rank_.reset();
  return true;
}

bool SegmentBuffer::is_innovative(const CodedBlock& block) const {
  ICOLLECT_EXPECTS(block.segment == id_);
  Decoder probe{id_, s_, 0};
  for (const auto& st : blocks_) {
    CodedBlock coeff_only;
    coeff_only.segment = id_;
    coeff_only.coefficients = st.block.coefficients;
    probe.add(coeff_only);
  }
  CodedBlock candidate;
  candidate.segment = id_;
  candidate.coefficients = block.coefficients;
  return probe.is_innovative(candidate);
}

CodedBlock SegmentBuffer::recode(common::Rng& rng) const {
  CodedBlock out;
  recode_into(out, rng);
  return out;
}

void SegmentBuffer::recode_into(CodedBlock& out, common::Rng& rng) const {
  ICOLLECT_EXPECTS(!blocks_.empty());
  const std::size_t payload_size = blocks_.front().block.payload.size();
  out.segment = id_;
  do {
    out.coefficients.assign(s_, gf::Element{0});
    out.payload.assign(payload_size, 0);
    for (const auto& st : blocks_) {
      const gf::Element c = rng.gf_element();
      if (c == 0) continue;
      gf::add_scaled(out.coefficients, st.block.coefficients, c);
      if (payload_size > 0) {
        gf::add_scaled(out.payload, st.block.payload, c);
      }
    }
  } while (out.is_degenerate());
}

std::vector<BlockHandle> SegmentBuffer::handles() const {
  std::vector<BlockHandle> out;
  out.reserve(blocks_.size());
  for (const auto& st : blocks_) out.push_back(st.handle);
  return out;
}

}  // namespace icollect::coding
