#include "coding/coded_block.h"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace icollect::coding::wire {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xFFU));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

[[nodiscard]] std::uint16_t get_u16(std::span<const std::uint8_t> in,
                                    std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<unsigned>(in[at + 1]) << 8U));
}

[[nodiscard]] std::uint32_t get_u32(std::span<const std::uint8_t> in,
                                    std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<std::uint8_t> serialize(const CodedBlock& block) {
  ICOLLECT_EXPECTS(block.coefficients.size() <=
                   std::numeric_limits<std::uint16_t>::max());
  ICOLLECT_EXPECTS(block.payload.size() <=
                   std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint8_t> out;
  out.reserve(serialized_size(block.coefficients.size(),
                              block.payload.size()));
  put_u32(out, block.segment.origin);
  put_u32(out, block.segment.seq);
  put_u16(out, static_cast<std::uint16_t>(block.coefficients.size()));
  put_u32(out, static_cast<std::uint32_t>(block.payload.size()));
  out.insert(out.end(), block.coefficients.begin(), block.coefficients.end());
  out.insert(out.end(), block.payload.begin(), block.payload.end());
  return out;
}

CodedBlock deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw std::invalid_argument("coded block: truncated header");
  }
  CodedBlock b;
  b.segment.origin = get_u32(bytes, 0);
  b.segment.seq = get_u32(bytes, 4);
  const std::uint16_t s = get_u16(bytes, 8);
  const std::uint32_t payload_len = get_u32(bytes, 10);
  if (s == 0) {
    throw std::invalid_argument("coded block: zero segment size");
  }
  const std::size_t expect = serialized_size(s, payload_len);
  if (bytes.size() != expect) {
    throw std::invalid_argument("coded block: length mismatch");
  }
  b.coefficients.assign(bytes.begin() + kHeaderBytes,
                        bytes.begin() + kHeaderBytes + s);
  b.payload.assign(bytes.begin() + kHeaderBytes + s, bytes.end());
  return b;
}

}  // namespace icollect::coding::wire
