#include "coding/encoder.h"

#include <utility>

#include "gf/gf_vector.h"

namespace icollect::coding {

SegmentEncoder::SegmentEncoder(
    SegmentId id, std::vector<std::vector<std::uint8_t>> originals)
    : id_{id}, originals_{std::move(originals)} {
  ICOLLECT_EXPECTS(!originals_.empty());
  payload_size_ = originals_.front().size();
  for (const auto& b : originals_) {
    ICOLLECT_EXPECTS(b.size() == payload_size_);
  }
}

CodedBlock SegmentEncoder::systematic_block(std::size_t k) const {
  ICOLLECT_EXPECTS(k < originals_.size());
  return CodedBlock::systematic(id_, originals_.size(), k, originals_[k]);
}

CodedBlock SegmentEncoder::encode(common::Rng& rng) const {
  CodedBlock out;
  encode_into(out, rng);
  return out;
}

void SegmentEncoder::encode_into(CodedBlock& out, common::Rng& rng) const {
  out.segment = id_;
  out.coefficients.resize(originals_.size());
  do {
    rng.fill_gf(out.coefficients);
  } while (gf::is_zero(out.coefficients));
  out.payload.assign(payload_size_, 0);
  for (std::size_t j = 0; j < originals_.size(); ++j) {
    gf::add_scaled(out.payload, originals_[j], out.coefficients[j]);
  }
}

}  // namespace icollect::coding
