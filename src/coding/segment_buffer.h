#pragma once

/// \file segment_buffer.h
/// Per-peer storage of the coded blocks a peer holds for one segment,
/// with rank queries and re-encoding ("recoding").
///
/// This realizes the paper's rule that "coding operation is not limited
/// to the source": when a peer holding l coded blocks of segment i
/// transfers to another peer, it draws fresh random coefficients
/// c_1..c_l and sends x = sum_j c_j b_j (Sec. 2). Each stored block is
/// one edge of the bipartite graph G of Sec. 3; TTL expiry removes a
/// block, which can lower the segment's rank at this peer, so rank is
/// recomputed (cached, invalidated on mutation).

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "common/rng.h"

namespace icollect::coding {

/// Stable identifier of a stored block within a peer's buffer; allocated
/// by the owner (see proto::PeerBuffer) and used by TTL expiry events.
using BlockHandle = std::uint64_t;

class SegmentBuffer {
 public:
  SegmentBuffer(SegmentId id, std::size_t segment_size);

  [[nodiscard]] const SegmentId& id() const noexcept { return id_; }
  [[nodiscard]] std::size_t segment_size() const noexcept { return s_; }

  /// Number of stored blocks (the segment's edge multiplicity at this
  /// peer in the bipartite-graph view).
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return blocks_.empty(); }

  /// Rank of the stored coefficient vectors (<= min(block_count, s)).
  [[nodiscard]] std::size_t rank() const;

  /// True if the peer already holds s linearly independent blocks of
  /// this segment — the gossip rule excludes such peers as receivers.
  [[nodiscard]] bool full_rank() const { return rank() == s_; }

  /// Store a block under the caller-allocated handle.
  /// Precondition: the block belongs to this segment and has the right
  /// coefficient length.
  void add(BlockHandle handle, CodedBlock block);

  /// Remove the block with the given handle. Returns true if present.
  bool remove(BlockHandle handle);

  /// Would adding `block` raise this buffer's rank?
  [[nodiscard]] bool is_innovative(const CodedBlock& block) const;

  /// Produce a re-coded block: a uniformly random GF(2^8) combination of
  /// all stored blocks (degenerate all-zero draws are redrawn).
  /// Precondition: !empty().
  [[nodiscard]] CodedBlock recode(common::Rng& rng) const;

  /// recode() into a caller-owned block, reusing its buffers: once
  /// `out`'s vectors have grown to size, repeated calls allocate
  /// nothing — this is what keeps the server pull-and-decode loop
  /// malloc-free. Draws the same RNG stream as recode().
  void recode_into(CodedBlock& out, common::Rng& rng) const;

  /// Handles of all stored blocks (for the owner's bookkeeping).
  [[nodiscard]] std::vector<BlockHandle> handles() const;

  /// Visit every stored block (read-only), e.g. for network-wide rank
  /// censuses.
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    for (const auto& st : blocks_) fn(st.block);
  }

 private:
  struct Stored {
    BlockHandle handle;
    CodedBlock block;
  };

  SegmentId id_;
  std::size_t s_;
  std::vector<Stored> blocks_;
  mutable std::optional<std::size_t> cached_rank_;
};

}  // namespace icollect::coding
