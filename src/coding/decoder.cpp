#include "coding/decoder.h"

#include <algorithm>

#include "gf/gf_vector.h"

namespace icollect::coding {

Decoder::Decoder(SegmentId id, std::size_t segment_size,
                 std::size_t payload_size)
    : id_{id},
      s_{segment_size},
      payload_size_{payload_size},
      coeff_rows_(segment_size * segment_size, gf::Element{0}),
      payload_rows_(segment_size * payload_size, std::uint8_t{0}),
      present_(segment_size, std::uint8_t{0}),
      scratch_coeffs_(segment_size, gf::Element{0}),
      scratch_payload_(payload_size, std::uint8_t{0}) {
  ICOLLECT_EXPECTS(segment_size > 0);
}

std::optional<std::size_t> Decoder::reduce(
    std::span<gf::Element> coeffs, std::span<std::uint8_t> payload) const {
  // Forward elimination against every stored pivot row, in pivot order.
  // After this loop the leading non-zero column (if any) has no stored
  // pivot, so it becomes this block's pivot.
  for (std::size_t p = 0; p < s_; ++p) {
    const gf::Element f = coeffs[p];
    if (f == 0 || present_[p] == 0) continue;
    gf::add_scaled(coeffs, coeff_row(p), f);
    if (!payload.empty()) gf::add_scaled(payload, payload_row(p), f);
  }
  const std::size_t lead = gf::leading_index(coeffs);
  if (lead == s_) return std::nullopt;
  return lead;
}

bool Decoder::is_innovative(const CodedBlock& block) const {
  ICOLLECT_EXPECTS(block.segment == id_);
  ICOLLECT_EXPECTS(block.coefficients.size() == s_);
  if (complete()) return false;
  // Coefficients alone decide innovation; reduce in scratch, no payload.
  std::copy(block.coefficients.begin(), block.coefficients.end(),
            scratch_coeffs_.begin());
  return reduce(scratch_coeffs_, {}).has_value();
}

bool Decoder::add(const CodedBlock& block) {
  ICOLLECT_EXPECTS(block.segment == id_);
  ICOLLECT_EXPECTS(block.coefficients.size() == s_);
  ICOLLECT_EXPECTS(block.payload.empty() ||
                   block.payload.size() == payload_size_);
  if (complete()) {
    ++redundant_;
    return false;
  }
  std::copy(block.coefficients.begin(), block.coefficients.end(),
            scratch_coeffs_.begin());
  const std::span<gf::Element> coeffs{scratch_coeffs_};
  const std::span<std::uint8_t> payload{scratch_payload_};
  if (block.payload.empty()) {
    // Callers may legitimately strip payloads (coefficient-only sweeps);
    // track linear algebra with a zero payload so decode stays consistent.
    std::fill(scratch_payload_.begin(), scratch_payload_.end(),
              std::uint8_t{0});
  } else {
    std::copy(block.payload.begin(), block.payload.end(),
              scratch_payload_.begin());
  }
  const auto pivot = reduce(coeffs, payload);
  if (!pivot) {
    ++redundant_;
    return false;
  }
  const std::size_t p = *pivot;
  // Normalize so the pivot coefficient is exactly 1.
  const gf::Element lead = coeffs[p];
  if (lead != 1) {
    const gf::Element inv = gf::GF256::inv(lead);
    gf::scale_assign(coeffs, inv);
    gf::scale_assign(payload, inv);
  }
  // Back-substitute into already-stored rows so the matrix stays in
  // reduced row-echelon form and completion implies the identity matrix.
  for (std::size_t q = 0; q < s_; ++q) {
    if (present_[q] == 0) continue;
    const gf::Element f = coeff_row(q)[p];
    if (f == 0) continue;
    gf::add_scaled(coeff_row(q), coeffs, f);
    gf::add_scaled(payload_row(q), payload, f);
  }
  std::copy(coeffs.begin(), coeffs.end(), coeff_row(p).begin());
  std::copy(payload.begin(), payload.end(), payload_row(p).begin());
  present_[p] = 1;
  ++rank_;
  return true;
}

std::span<const std::uint8_t> Decoder::original(std::size_t k) const {
  ICOLLECT_EXPECTS(complete());
  ICOLLECT_EXPECTS(k < s_);
  // In RREF at full rank the coefficient matrix is the identity, so the
  // payload stored at pivot k is exactly original block k.
  return payload_row(k);
}

std::vector<std::vector<std::uint8_t>> Decoder::originals() const {
  ICOLLECT_EXPECTS(complete());
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(s_);
  for (std::size_t k = 0; k < s_; ++k) {
    const auto row = payload_row(k);
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

}  // namespace icollect::coding
