#include "coding/decoder.h"

#include "gf/gf_vector.h"

namespace icollect::coding {

Decoder::Decoder(SegmentId id, std::size_t segment_size,
                 std::size_t payload_size)
    : id_{id}, s_{segment_size}, payload_size_{payload_size}, rows_(s_) {
  ICOLLECT_EXPECTS(segment_size > 0);
}

std::optional<std::size_t> Decoder::reduce(
    std::vector<gf::Element>& coeffs,
    std::vector<std::uint8_t>& payload) const {
  // Forward elimination against every stored pivot row, in pivot order.
  // After this loop the leading non-zero column (if any) has no stored
  // pivot, so it becomes this block's pivot.
  for (std::size_t p = 0; p < s_; ++p) {
    const gf::Element f = coeffs[p];
    if (f == 0 || !rows_[p].present) continue;
    gf::add_scaled(coeffs, rows_[p].coeffs, f);
    if (!payload.empty()) gf::add_scaled(payload, rows_[p].payload, f);
  }
  const std::size_t lead = gf::leading_index(coeffs);
  if (lead == s_) return std::nullopt;
  return lead;
}

bool Decoder::is_innovative(const CodedBlock& block) const {
  ICOLLECT_EXPECTS(block.segment == id_);
  ICOLLECT_EXPECTS(block.coefficients.size() == s_);
  if (complete()) return false;
  auto coeffs = block.coefficients;
  std::vector<std::uint8_t> no_payload;  // coefficients decide innovation
  return reduce(coeffs, no_payload).has_value();
}

bool Decoder::add(const CodedBlock& block) {
  ICOLLECT_EXPECTS(block.segment == id_);
  ICOLLECT_EXPECTS(block.coefficients.size() == s_);
  ICOLLECT_EXPECTS(block.payload.empty() ||
                   block.payload.size() == payload_size_);
  if (complete()) {
    ++redundant_;
    return false;
  }
  auto coeffs = block.coefficients;
  auto payload = block.payload;
  if (payload.empty() && payload_size_ > 0) {
    // Callers may legitimately strip payloads (coefficient-only sweeps);
    // track linear algebra with a zero payload so decode stays consistent.
    payload.assign(payload_size_, 0);
  }
  const auto pivot = reduce(coeffs, payload);
  if (!pivot) {
    ++redundant_;
    return false;
  }
  const std::size_t p = *pivot;
  // Normalize so the pivot coefficient is exactly 1.
  const gf::Element lead = coeffs[p];
  if (lead != 1) {
    const gf::Element inv = gf::GF256::inv(lead);
    gf::scale_assign(coeffs, inv);
    gf::scale_assign(payload, inv);
  }
  // Back-substitute into already-stored rows so the matrix stays in
  // reduced row-echelon form and completion implies the identity matrix.
  for (std::size_t q = 0; q < s_; ++q) {
    if (!rows_[q].present) continue;
    const gf::Element f = rows_[q].coeffs[p];
    if (f == 0) continue;
    gf::add_scaled(rows_[q].coeffs, coeffs, f);
    if (!rows_[q].payload.empty()) {
      gf::add_scaled(rows_[q].payload, payload, f);
    }
  }
  rows_[p] = Row{true, std::move(coeffs), std::move(payload)};
  ++rank_;
  return true;
}

const std::vector<std::uint8_t>& Decoder::original(std::size_t k) const {
  ICOLLECT_EXPECTS(complete());
  ICOLLECT_EXPECTS(k < s_);
  // In RREF at full rank the coefficient matrix is the identity, so the
  // payload stored at pivot k is exactly original block k.
  return rows_[k].payload;
}

std::vector<std::vector<std::uint8_t>> Decoder::originals() const {
  ICOLLECT_EXPECTS(complete());
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(s_);
  for (std::size_t k = 0; k < s_; ++k) out.push_back(rows_[k].payload);
  return out;
}

}  // namespace icollect::coding
