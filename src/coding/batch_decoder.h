#pragma once

/// \file batch_decoder.h
/// One-shot segment decoding from a batch of coded blocks via dense
/// Gaussian elimination (gf::Matrix).
///
/// The progressive Decoder is the production path (servers absorb
/// blocks as pulls arrive); this batch variant is the independent
/// reference implementation used to cross-validate it, and the natural
/// API when all blocks are already at hand (e.g. decoding a stored
/// capture, or unit tests).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"

namespace icollect::coding {

class BatchDecoder {
 public:
  /// Rank of the coefficient vectors of `blocks` (all must belong to the
  /// same segment and agree on the segment size; throws
  /// std::invalid_argument otherwise; empty input has rank 0).
  [[nodiscard]] static std::size_t rank(std::span<const CodedBlock> blocks);

  /// True iff `blocks` suffice to reconstruct the segment.
  [[nodiscard]] static bool decodable(std::span<const CodedBlock> blocks);

  /// Reconstruct the original blocks, or nullopt if the batch is rank
  /// deficient. All blocks must carry payloads of equal size.
  [[nodiscard]] static std::optional<std::vector<std::vector<std::uint8_t>>>
  decode(std::span<const CodedBlock> blocks);
};

}  // namespace icollect::coding
