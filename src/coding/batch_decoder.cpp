#include "coding/batch_decoder.h"

#include <stdexcept>

#include "coding/decoder.h"
#include "gf/gf_matrix.h"

namespace icollect::coding {

namespace {

/// Validate batch homogeneity and return the segment size (0 if empty).
std::size_t check_batch(std::span<const CodedBlock> blocks,
                        bool require_payloads) {
  if (blocks.empty()) return 0;
  const SegmentId id = blocks.front().segment;
  const std::size_t s = blocks.front().segment_size();
  const std::size_t payload = blocks.front().payload.size();
  if (s == 0) throw std::invalid_argument("batch decode: empty coefficients");
  for (const auto& b : blocks) {
    if (b.segment != id) {
      throw std::invalid_argument("batch decode: mixed segments");
    }
    if (b.segment_size() != s) {
      throw std::invalid_argument("batch decode: inconsistent segment size");
    }
    if (require_payloads && b.payload.size() != payload) {
      throw std::invalid_argument("batch decode: inconsistent payloads");
    }
  }
  if (require_payloads && payload == 0) {
    throw std::invalid_argument("batch decode: blocks carry no payload");
  }
  return s;
}

}  // namespace

std::size_t BatchDecoder::rank(std::span<const CodedBlock> blocks) {
  const std::size_t s = check_batch(blocks, /*require_payloads=*/false);
  if (s == 0) return 0;
  gf::Matrix m{0, s};
  for (const auto& b : blocks) m.append_row(b.coefficients);
  return m.rank();
}

bool BatchDecoder::decodable(std::span<const CodedBlock> blocks) {
  if (blocks.empty()) return false;
  return rank(blocks) == blocks.front().segment_size();
}

std::optional<std::vector<std::vector<std::uint8_t>>> BatchDecoder::decode(
    std::span<const CodedBlock> blocks) {
  const std::size_t s = check_batch(blocks, /*require_payloads=*/true);
  if (s == 0 || blocks.size() < s) return std::nullopt;

  // Pick s independent rows with a progressive coefficient-only probe
  // (incremental elimination; no per-candidate matrix copies), then
  // solve C * X = P where row k of P is the payload of the k-th chosen
  // block.
  Decoder probe{blocks.front().segment, s, 0};
  CodedBlock candidate;
  candidate.segment = blocks.front().segment;
  std::vector<std::size_t> chosen;
  chosen.reserve(s);
  for (std::size_t i = 0; i < blocks.size() && chosen.size() < s; ++i) {
    candidate.coefficients.assign(blocks[i].coefficients.begin(),
                                  blocks[i].coefficients.end());
    if (probe.add(candidate)) chosen.push_back(i);
  }
  if (chosen.size() < s) return std::nullopt;

  const std::size_t payload = blocks.front().payload.size();
  gf::Matrix coeffs{0, s};
  gf::Matrix payloads{0, payload};
  for (const std::size_t i : chosen) {
    coeffs.append_row(blocks[i].coefficients);
    payloads.append_row(std::span<const std::uint8_t>{
        blocks[i].payload.data(), blocks[i].payload.size()});
  }
  const gf::Matrix originals = coeffs.solve(payloads);
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(s);
  for (std::size_t k = 0; k < s; ++k) {
    const auto row = originals.row(k);
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

}  // namespace icollect::coding
