#pragma once

/// \file coded_block.h
/// A random-linear-coded block: the unit of storage and transfer.
///
/// Per Sec. 2 of the paper, a coded block of segment i is a linear
/// combination of that segment's s original blocks over GF(2^8), and "the
/// coding coefficients used to encode original blocks ... are embedded in
/// the header of the coded block". We model exactly that: a block carries
/// its segment id, the length-s coefficient vector (relative to the
/// original blocks), and the combined payload bytes.
///
/// For large parameter sweeps the payload may be empty: linear-algebraic
/// behaviour (innovation, decodability, redundancy) depends only on the
/// coefficients, so sweeps run with 0-byte payloads while examples and
/// end-to-end tests use real payloads and verify byte-exact recovery.

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "coding/segment_id.h"
#include "gf/gf256.h"
#include "gf/gf_vector.h"

namespace icollect::coding {

struct CodedBlock {
  SegmentId segment;
  std::vector<gf::Element> coefficients;  ///< length = segment size s
  std::vector<std::uint8_t> payload;      ///< combined data (may be empty)

  /// Segment size this block was coded against.
  [[nodiscard]] std::size_t segment_size() const noexcept {
    return coefficients.size();
  }

  /// True if the coefficient vector is all-zero (a degenerate block that
  /// carries no information; honest encoders never emit one).
  [[nodiscard]] bool is_degenerate() const noexcept {
    return gf::is_zero(coefficients);
  }

  /// Build the systematic block e_k (the k-th original block, coefficient
  /// vector = unit vector k).
  [[nodiscard]] static CodedBlock systematic(
      SegmentId id, std::size_t s, std::size_t k,
      std::vector<std::uint8_t> payload) {
    ICOLLECT_EXPECTS(k < s);
    CodedBlock b;
    b.segment = id;
    b.coefficients.assign(s, gf::Element{0});
    b.coefficients[k] = 1;
    b.payload = std::move(payload);
    return b;
  }
};

/// Wire representation of a coded block, so the library is usable as an
/// actual transport payload and not only inside the simulator.
///
/// Layout (little-endian):
///   u32 origin | u32 seq | u16 segment_size s | u32 payload_len
///   | s coefficient bytes | payload bytes
namespace wire {

inline constexpr std::size_t kHeaderBytes = 4 + 4 + 2 + 4;

[[nodiscard]] std::vector<std::uint8_t> serialize(const CodedBlock& block);

/// Parse a serialized block. Throws std::invalid_argument on malformed
/// input (truncation, inconsistent lengths, oversized segment).
[[nodiscard]] CodedBlock deserialize(std::span<const std::uint8_t> bytes);

/// Serialized size of a block with the given shape.
[[nodiscard]] constexpr std::size_t serialized_size(
    std::size_t segment_size, std::size_t payload_len) noexcept {
  return kHeaderBytes + segment_size + payload_len;
}

}  // namespace wire

}  // namespace icollect::coding
