#pragma once

/// \file encoder.h
/// Source-side encoder for one segment.
///
/// Holds the s original blocks B_1..B_s generated at a peer and produces
/// coded blocks x = sum_j c_j B_j with coefficients drawn uniformly at
/// random from GF(2^8) (Sec. 2). Also supports systematic emission (the
/// k-th original with a unit coefficient vector), which peers use to seed
/// their own buffer at injection time.

#include <cstdint>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "common/rng.h"

namespace icollect::coding {

class SegmentEncoder {
 public:
  /// Create an encoder over `originals`, which must be non-empty and all
  /// of the same length (the block payload size).
  SegmentEncoder(SegmentId id,
                 std::vector<std::vector<std::uint8_t>> originals);

  [[nodiscard]] const SegmentId& id() const noexcept { return id_; }
  [[nodiscard]] std::size_t segment_size() const noexcept {
    return originals_.size();
  }
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return payload_size_;
  }
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& originals()
      const noexcept {
    return originals_;
  }

  /// Emit the k-th systematic block.
  [[nodiscard]] CodedBlock systematic_block(std::size_t k) const;

  /// Emit a freshly coded block with uniformly random coefficients. The
  /// all-zero draw (probability 256^-s) is rejected and redrawn so every
  /// emitted block is non-degenerate.
  [[nodiscard]] CodedBlock encode(common::Rng& rng) const;

  /// encode() into a caller-owned block, reusing its buffers: once
  /// `out`'s vectors have grown to size, repeated calls allocate
  /// nothing. Draws the same RNG stream as encode().
  void encode_into(CodedBlock& out, common::Rng& rng) const;

 private:
  SegmentId id_;
  std::vector<std::vector<std::uint8_t>> originals_;
  std::size_t payload_size_;
};

}  // namespace icollect::coding
