#pragma once

/// \file segment_id.h
/// Identity of a coding segment ("generation").
///
/// The paper groups the original statistics blocks produced at each peer
/// into segments of s blocks (Sec. 2, "segment based network coding").
/// A segment is therefore globally identified by the peer that generated
/// it and a per-peer sequence number.

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace icollect::coding {

/// Identifier of the peer that *originated* a segment. Note this is the
/// logical origin identity (stable across the churn replacement model's
/// re-use of peer slots); see p2p::PeerSlot.
using OriginId = std::uint32_t;

struct SegmentId {
  OriginId origin = 0;   ///< peer that generated the segment
  std::uint32_t seq = 0; ///< per-origin sequence number

  friend auto operator<=>(const SegmentId&, const SegmentId&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(origin) + ":" + std::to_string(seq);
  }
};

}  // namespace icollect::coding

template <>
struct std::hash<icollect::coding::SegmentId> {
  std::size_t operator()(const icollect::coding::SegmentId& id) const noexcept {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(id.origin) << 32U) | id.seq;
    // SplitMix64 finalizer: cheap and well-distributed.
    std::uint64_t x = k + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30U)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27U)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31U));
  }
};
