#pragma once

/// \file transport.h
/// The pluggable transport seam between the live-node state machines
/// (src/node/) and whatever actually moves bytes.
///
/// A Transport hands a node an opaque connection handle (NodeId) per
/// remote endpoint and three events: the connection came up, went down,
/// or delivered bytes. Byte delivery is *stream*-shaped — a handler
/// receives whatever chunks the transport produced (a whole frame, half
/// a frame, three frames) and owns reassembly via wire::FrameDecoder —
/// so the node layer behaves identically over the deterministic
/// in-process loopback (net/loopback.h) and real TCP sockets
/// (net/tcp.h). Identity lives one layer up: a NodeId is only a local
/// connection handle; who is on the other end is learned from its
/// HELLO.

#include <cstdint>
#include <span>

namespace icollect::net {

/// Local connection handle. Scoped to one Transport instance; never
/// reused while the connection lives.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFU;

/// Event sink a node registers with its transport. Callbacks fire on
/// the transport's driving thread (all transports here are
/// single-threaded event loops).
class TransportHandler {
 public:
  virtual ~TransportHandler() = default;

  /// The connection identified by `peer` is established (both for
  /// connections we initiated and ones we accepted).
  virtual void on_peer_up(NodeId peer) = 0;

  /// The connection is gone: closed by either side, failed to
  /// establish within its retry budget, or timed out.
  virtual void on_peer_down(NodeId peer) = 0;

  /// Stream bytes arrived from `peer`. The span is only valid for the
  /// duration of the call.
  virtual void on_bytes(NodeId peer, std::span<const std::uint8_t> bytes) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Register the event sink (must outlive the transport's event loop).
  virtual void set_handler(TransportHandler* handler) = 0;

  /// Queue `bytes` for delivery to `peer`. Returns false when the send
  /// is refused — unknown/closed connection or per-peer backpressure
  /// cap exceeded — in which case nothing was queued. Partial sends
  /// never happen at this interface: a frame is queued whole or not at
  /// all.
  virtual bool send(NodeId peer, std::span<const std::uint8_t> bytes) = 0;

  /// Close one connection (on_peer_down fires for it).
  virtual void close_peer(NodeId peer) = 0;
};

}  // namespace icollect::net
