#include "net/loopback.h"

#include <algorithm>
#include <utility>

namespace icollect::net {

LoopbackNet::LoopbackNet(Options opts)
    : opts_{opts}, wheel_{opts.tick_seconds}, rng_{opts.seed} {
  ICOLLECT_EXPECTS(opts.latency >= 0.0);
  ICOLLECT_EXPECTS(opts.latency_jitter >= 0.0);
  ICOLLECT_EXPECTS(opts.drop_probability >= 0.0 &&
                   opts.drop_probability < 1.0);
}

LoopbackNet::Endpoint& LoopbackNet::create_endpoint() {
  const auto id = static_cast<NodeId>(endpoints_.size());
  endpoints_.emplace_back(new Endpoint{this, id});
  for (auto& ep : endpoints_) {
    ep->links_.resize(endpoints_.size(), 0);
  }
  return *endpoints_.back();
}

void LoopbackNet::connect(NodeId a, NodeId b) {
  ICOLLECT_EXPECTS(a != b);
  Endpoint& ea = endpoint(a);
  Endpoint& eb = endpoint(b);
  if (ea.links_[b] != 0) return;  // already wired
  ea.links_[b] = 1;
  eb.links_[a] = 1;
  if (ea.handler_ != nullptr) ea.handler_->on_peer_up(b);
  if (eb.handler_ != nullptr) eb.handler_->on_peer_up(a);
}

void LoopbackNet::sever(NodeId a, NodeId b) {
  Endpoint& ea = endpoint(a);
  Endpoint& eb = endpoint(b);
  if (ea.links_[b] == 0) return;
  ea.links_[b] = 0;
  eb.links_[a] = 0;
  if (ea.handler_ != nullptr) ea.handler_->on_peer_down(b);
  if (eb.handler_ != nullptr) eb.handler_->on_peer_down(a);
}

void LoopbackNet::disconnect(NodeId a, NodeId b) { sever(a, b); }

namespace {
constexpr std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32U) | to;
}
}  // namespace

void LoopbackNet::block_link(NodeId from, NodeId to) {
  ICOLLECT_EXPECTS(from < endpoints_.size() && to < endpoints_.size());
  blocked_links_.insert(link_key(from, to));
}

void LoopbackNet::unblock_link(NodeId from, NodeId to) {
  blocked_links_.erase(link_key(from, to));
}

bool LoopbackNet::link_blocked(NodeId from, NodeId to) const {
  if (endpoints_[from]->isolated_ || endpoints_[to]->isolated_) return true;
  return !blocked_links_.empty() &&
         blocked_links_.count(link_key(from, to)) != 0;
}

void LoopbackNet::set_isolated(NodeId id, bool isolated) {
  endpoint(id).isolated_ = isolated;
}

void LoopbackNet::schedule_partition(double at, double heal_at,
                                     std::vector<NodeId> ids) {
  ICOLLECT_EXPECTS(at >= now());
  ICOLLECT_EXPECTS(heal_at > at);
  for (const NodeId id : ids) {
    ICOLLECT_EXPECTS(id < endpoints_.size());
  }
  wheel_.schedule_after(at - now(), [this, ids] {
    for (const NodeId id : ids) set_isolated(id, true);
  });
  wheel_.schedule_after(heal_at - now(), [this, ids = std::move(ids)] {
    for (const NodeId id : ids) set_isolated(id, false);
  });
}

void LoopbackNet::set_drain_rate(NodeId id, double bytes_per_second) {
  ICOLLECT_EXPECTS(bytes_per_second >= 0.0);
  Endpoint& ep = endpoint(id);
  ep.drain_rate_ = bytes_per_second;
  if (bytes_per_second == 0.0) ep.drain_next_free_ = 0.0;
}

bool LoopbackNet::Endpoint::send(NodeId peer,
                                 std::span<const std::uint8_t> bytes) {
  return hub_->do_send(*this, peer, bytes);
}

void LoopbackNet::Endpoint::close_peer(NodeId peer) {
  if (peer < links_.size() && links_[peer] != 0) hub_->sever(id_, peer);
}

bool LoopbackNet::do_send(Endpoint& from, NodeId to,
                          std::span<const std::uint8_t> bytes) {
  if (to >= endpoints_.size() || from.links_[to] == 0) return false;
  if (from.in_flight_bytes_ + bytes.size() > opts_.send_queue_cap_bytes) {
    ++refusals_;
    return false;
  }
  ++sends_;
  bytes_sent_ += bytes.size();
  if (link_blocked(from.id_, to)) {
    // Injected blackhole: the sender cannot observe the fault (true),
    // the bytes vanish, and no session teardown fires — unlike a
    // severed link, which both sides notice immediately.
    ++fault_drops_;
    return true;
  }
  if (opts_.drop_probability > 0.0 &&
      rng_.bernoulli(opts_.drop_probability)) {
    // The link ate it: the sender believes it sent (true), nothing
    // arrives — exactly the gossip-loss fault the simulator injects.
    ++drops_;
    return true;
  }
  from.in_flight_bytes_ += bytes.size();
  in_flight_total_ += bytes.size();
  if (in_flight_total_ > in_flight_hwm_) in_flight_hwm_ = in_flight_total_;
  auto data = std::make_shared<std::vector<std::uint8_t>>(bytes.begin(),
                                                          bytes.end());
  double delay = opts_.latency;
  if (opts_.latency_jitter > 0.0) {
    delay += rng_.uniform(0.0, opts_.latency_jitter);
  }
  Endpoint& dst = endpoint(to);
  if (dst.drain_rate_ > 0.0) {
    // Slow reader: deliveries serialize through the receiver's drain.
    // The sender's in-flight bytes stay charged until absorption, so a
    // fast sender runs into its send-queue cap — the slowloris fault.
    const double arrival = wheel_.now() + delay;
    const double ready =
        std::max(arrival, dst.drain_next_free_) +
        static_cast<double>(bytes.size()) / dst.drain_rate_;
    dst.drain_next_free_ = ready;
    delay = ready - wheel_.now();
  }
  const NodeId from_id = from.id_;
  wheel_.schedule_after(delay, [this, from_id, to, data = std::move(data)] {
    deliver(from_id, to, data);
  });
  return true;
}

void LoopbackNet::deliver(NodeId from, NodeId to,
                          std::shared_ptr<std::vector<std::uint8_t>> data) {
  Endpoint& src = endpoint(from);
  src.in_flight_bytes_ -= std::min(src.in_flight_bytes_, data->size());
  in_flight_total_ -= std::min(in_flight_total_, data->size());
  Endpoint& dst = endpoint(to);
  // The link may have been severed while the bytes were in flight.
  if (dst.links_[from] == 0 || dst.handler_ == nullptr) return;
  // A partition that started mid-flight eats the bytes too.
  if (link_blocked(from, to)) {
    ++fault_drops_;
    return;
  }
  bytes_delivered_ += data->size();
  ++deliveries_;
  if (opts_.chunk_bytes == 0 || data->size() <= opts_.chunk_bytes) {
    ++chunks_;
    dst.handler_->on_bytes(from, *data);
    return;
  }
  for (std::size_t off = 0; off < data->size();
       off += opts_.chunk_bytes) {
    const std::size_t n = std::min(opts_.chunk_bytes, data->size() - off);
    // Re-check: a handler may close the link mid-delivery.
    if (dst.links_[from] == 0 || dst.handler_ == nullptr) return;
    ++chunks_;
    dst.handler_->on_bytes(from, {data->data() + off, n});
  }
}

void LoopbackNet::attach_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) {
  const auto count = [&](const char* name, const std::uint64_t* v) {
    registry.gauge(prefix + name,
                   [v] { return static_cast<double>(*v); });
  };
  count("sends", &sends_);
  count("drops", &drops_);
  count("fault_drops", &fault_drops_);
  count("queue_drops", &refusals_);
  count("bytes_out", &bytes_sent_);
  count("bytes_in", &bytes_delivered_);
  count("deliveries", &deliveries_);
  count("chunks", &chunks_);
  registry.gauge(prefix + "in_flight_bytes", [this] {
    return static_cast<double>(in_flight_total_);
  });
  registry.gauge(prefix + "in_flight_hwm", [this] {
    return static_cast<double>(in_flight_hwm_);
  });
}

}  // namespace icollect::net
