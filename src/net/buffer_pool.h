#pragma once

/// \file buffer_pool.h
/// Freelist of byte buffers shared by the reactor's IO paths, so frame
/// and send buffers are recycled instead of allocated per operation.
///
/// Every read lands in a pooled buffer that travels (by move) from the
/// reactor shard that filled it to the thread that dispatches it to the
/// handler, then comes back; every send() copies the caller's frame into
/// a pooled buffer that rides the connection's output queue until writev
/// drains it. In steady state the pool therefore reaches a working-set
/// high-water mark and stops touching the allocator entirely — the
/// `hits / (hits + misses)` ratio exported through attach-style gauges
/// is the observable for that.
///
/// Thread safety: acquire/release are mutex-serialized (the critical
/// section is a vector push/pop — nanoseconds against the microseconds
/// of the syscalls they bracket). Buffers themselves are owned by
/// exactly one thread at a time; the pool only stores idle ones.
///
/// Two anti-hoarding rules keep a burst from pinning memory forever:
/// the freelist holds at most `max_buffers` idle buffers, and a buffer
/// whose capacity grew beyond `max_retained_capacity` is dropped on
/// release rather than cached (one 4 MiB outlier must not become a
/// permanent resident).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace icollect::net {

class BufferPool {
 public:
  using Buffer = std::vector<std::uint8_t>;

  struct Options {
    std::size_t max_buffers = 1024;  ///< idle buffers retained
    std::size_t default_capacity = 64U * 1024U;
    std::size_t max_retained_capacity = 1U << 20U;
  };

  BufferPool() : BufferPool(Options{}) {}
  explicit BufferPool(Options opts);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with capacity >= max(min_capacity, default). Reuses an
  /// idle pooled buffer when one is available (a *hit*), otherwise
  /// allocates fresh (a *miss*). Size and contents are unspecified —
  /// callers assign() or resize() before use. Deliberate: preserving the
  /// size means a recycled read buffer is already at chunk size and
  /// resize() is a no-op instead of a 64 KiB zero-fill per recv.
  [[nodiscard]] Buffer acquire(std::size_t min_capacity = 0);

  /// Return a buffer to the freelist (size and capacity kept). Dropped
  /// instead when the freelist is full or the buffer outgrew
  /// max_retained_capacity.
  void release(Buffer&& buf);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t releases = 0;
    std::uint64_t dropped = 0;       ///< released buffers not retained
    std::size_t idle = 0;            ///< buffers in the freelist now
    std::size_t outstanding = 0;     ///< acquired and not yet released
    std::size_t outstanding_hwm = 0;
    std::size_t idle_bytes = 0;      ///< capacity held by the freelist
  };
  [[nodiscard]] Stats stats() const;

  /// hits / (hits + misses); 1.0 before any acquire.
  [[nodiscard]] double hit_rate() const;

 private:
  Options opts_;
  mutable std::mutex mu_;
  std::vector<Buffer> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t outstanding_hwm_ = 0;
};

}  // namespace icollect::net
