#include "net/epoll_reactor.h"

#if defined(ICOLLECT_HAVE_EPOLL)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/assert.h"

namespace icollect::net {

namespace {

// epoll_event.data tags for the two non-connection fds each shard may
// watch. Conn pointers are heap-allocated and can never equal these.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;

// Frames batched into one sendmsg; reads drained per readable fd before
// yielding to the next ready fd (fairness under level-triggered epoll).
constexpr int kMaxIov = 64;
constexpr int kMaxReadsPerEvent = 16;

int make_nonblocking_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

bool resolve_ipv4(const std::string& host, std::uint16_t port,
                  sockaddr_in& out) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    out.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    out.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

/// Shard-owned connection state. Touched only by its home shard thread
/// (the ConnShared block inside `shared` is the cross-thread part).
struct EpollReactor::Conn {
  enum class State : std::uint8_t { kConnecting, kUp, kClosed };

  struct Out {
    BufferPool::Buffer buf;
    std::size_t off = 0;  ///< consumed prefix (partial writev)
  };

  SharedRef shared;
  int fd = -1;
  State state = State::kConnecting;
  bool outbound = false;
  bool registered = false;      ///< fd present in the shard's epoll set
  bool flush_pending = false;   ///< queued for a post-mailbox flush
  std::uint32_t interest = 0;   ///< epoll mask currently registered
  std::string host;             ///< outbound only, for retries
  std::uint16_t port = 0;
  int attempts = 0;
  TimerWheel::TimerId connect_timer = TimerWheel::kInvalidTimer;
  std::deque<Out> outq;
  double last_activity = 0.0;
};

/// One reactor thread: its epoll set, eventfd wakeup, command mailbox,
/// timer wheel, and the connections pinned to it.
struct EpollReactor::Shard {
  explicit Shard(double tick_seconds) : wheel{tick_seconds} {}

  std::uint32_t index = 0;
  int epfd = -1;
  int wake_fd = -1;
  int listen_fd = -1;  ///< shard 0 only
  TimerWheel wheel;    ///< shard-local: connect timeouts/retries, idle reap
  std::thread thread;

  std::mutex mu;
  std::vector<Command> mailbox;  ///< guarded by mu
  bool signaled = false;         ///< guarded by mu: eventfd write pending

  std::unordered_map<NodeId, std::unique_ptr<Conn>> conns;
  std::vector<NodeId> dead;  ///< closed this round, erased at loop bottom
  std::atomic<std::size_t> nconns{0};
};

EpollReactor::EpollReactor() : EpollReactor(Options{}) {}

EpollReactor::EpollReactor(Options opts)
    : opts_{opts},
      wheel_{opts.tick_seconds},
      epoch_{std::chrono::steady_clock::now()},
      pool_{BufferPool::Options{
          /*max_buffers=*/opts.pool_max_buffers > 0 ? opts.pool_max_buffers
                                                    : 4096,
          /*default_capacity=*/opts.read_chunk_bytes,
          /*max_retained_capacity=*/
          std::max<std::size_t>(1U << 20U, opts.read_chunk_bytes)}} {
  ICOLLECT_EXPECTS(opts.read_chunk_bytes > 0);
  ICOLLECT_EXPECTS(opts.connect_timeout > 0.0);
  ICOLLECT_EXPECTS(opts.connect_retries >= 0);
  ICOLLECT_EXPECTS(opts.listen_backlog >= 0);
  ICOLLECT_EXPECTS(opts.so_sndbuf >= 0);

  std::size_t n = opts.reactor_shards;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::clamp<std::size_t>(hw == 0 ? 2 : hw, 1, 8);
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(opts_.tick_seconds);
    shard->index = static_cast<std::uint32_t>(i);
    shard->epfd = ::epoll_create1(0);
    if (shard->epfd < 0) {
      throw std::runtime_error("epoll: epoll_create1 failed");
    }
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (shard->wake_fd < 0) {
      ::close(shard->epfd);
      throw std::runtime_error("epoll: eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(shard->epfd, EPOLL_CTL_ADD, shard->wake_fd, &ev) < 0) {
      ::close(shard->wake_fd);
      ::close(shard->epfd);
      throw std::runtime_error("epoll: epoll_ctl(wake) failed");
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread{[this, s = shard.get()] { shard_main(*s); }};
  }
}

EpollReactor::~EpollReactor() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  for (auto& shard : shards_) {
    ssize_t rc;
    do {
      rc = ::write(shard->wake_fd, &one, sizeof one);
    } while (rc < 0 && errno == EINTR);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

double EpollReactor::now() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(dt).count();
}

std::uint16_t EpollReactor::listen(const std::string& host,
                                   std::uint16_t port) {
  ICOLLECT_EXPECTS(!listening_);
  sockaddr_in addr{};
  if (!resolve_ipv4(host, port, addr)) {
    throw std::runtime_error("epoll: cannot resolve listen host " + host);
  }
  const int fd = make_nonblocking_socket();
  if (fd < 0) throw std::runtime_error("epoll: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string{"epoll: bind failed: "} +
                             std::strerror(err));
  }
  const int backlog =
      opts_.listen_backlog > 0 ? opts_.listen_backlog : SOMAXCONN;
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string{"epoll: listen failed: "} +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw std::runtime_error("epoll: getsockname failed");
  }
  listening_ = true;
  Command cmd;
  cmd.kind = Command::Kind::kListen;
  cmd.fd = fd;
  enqueue_command(0, std::move(cmd));
  return ntohs(bound.sin_port);
}

NodeId EpollReactor::connect(const std::string& host, std::uint16_t port) {
  const NodeId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto shared = std::make_shared<ConnShared>();
  shared->id = id;
  shared->shard = static_cast<std::uint32_t>(id % shards_.size());
  const std::uint32_t shard = shared->shard;
  peers_.emplace(id, shared);
  Command cmd;
  cmd.kind = Command::Kind::kConnect;
  cmd.shared = std::move(shared);
  cmd.host = host;
  cmd.port = port;
  enqueue_command(shard, std::move(cmd));
  return id;
}

bool EpollReactor::send(NodeId peer, std::span<const std::uint8_t> bytes) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  const SharedRef& shared = it->second;
  if (shared->closed_by_user.load(std::memory_order_relaxed)) return false;
  const std::size_t n = bytes.size();
  if (shared->queued.load(std::memory_order_relaxed) + n >
      opts_.send_queue_cap_bytes) {
    refusals_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  BufferPool::Buffer buf = pool_.acquire(n);
  buf.assign(bytes.begin(), bytes.end());
  shared->queued.fetch_add(n, std::memory_order_relaxed);
  const std::size_t total =
      outq_bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > outq_hwm_.load(std::memory_order_relaxed)) {
    outq_hwm_.store(total, std::memory_order_relaxed);
  }
  sends_.fetch_add(1, std::memory_order_relaxed);
  Command cmd;
  cmd.kind = Command::Kind::kSend;
  cmd.shared = shared;
  cmd.buf = std::move(buf);
  enqueue_command(shared->shard, std::move(cmd));
  return true;
}

void EpollReactor::close_peer(NodeId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  SharedRef shared = it->second;
  peers_.erase(it);
  if (shared->closed_by_user.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  Command cmd;
  cmd.kind = Command::Kind::kClose;
  cmd.shared = shared;
  enqueue_command(shared->shard, std::move(cmd));
  // Same synchronous semantics as TcpTransport::close_peer: the handler
  // sees the down before this call returns; the shard's own Down event
  // is swallowed by the closed_by_user flag.
  if (handler_ != nullptr) handler_->on_peer_down(peer);
}

std::size_t EpollReactor::open_connections() const { return peers_.size(); }

std::size_t EpollReactor::shard_connections(std::size_t shard) const {
  ICOLLECT_EXPECTS(shard < shards_.size());
  return shards_[shard]->nconns.load(std::memory_order_relaxed);
}

void EpollReactor::poll_once(double max_wait) {
  ev_local_.clear();
  {
    std::unique_lock<std::mutex> lock{ev_mu_};
    if (ev_queue_.empty()) {
      // Never oversleep the node-level wheel: its timers (gossip, pulls,
      // TTL) must keep firing even with no network events arriving.
      double wait = max_wait;
      if (wheel_.pending() > 0) wait = std::min(wait, opts_.tick_seconds);
      if (wait > 0.0) {
        ev_cv_.wait_for(lock, std::chrono::duration<double>(wait),
                        [this] { return !ev_queue_.empty(); });
      }
    }
    ev_local_.swap(ev_queue_);
  }
  for (Event& ev : ev_local_) {
    SharedRef& shared = ev.shared;
    const bool closed =
        shared->closed_by_user.load(std::memory_order_relaxed);
    switch (ev.kind) {
      case Event::Kind::kUp:
        if (closed) break;
        peers_.emplace(shared->id, shared);  // no-op for outbound conns
        if (handler_ != nullptr) handler_->on_peer_up(shared->id);
        break;
      case Event::Kind::kDown:
        if (closed) break;  // user already saw the down in close_peer
        peers_.erase(shared->id);
        if (handler_ != nullptr) handler_->on_peer_down(shared->id);
        break;
      case Event::Kind::kBytes:
        if (!closed && handler_ != nullptr) {
          handler_->on_bytes(shared->id, {ev.buf.data(), ev.len});
        }
        pool_.release(std::move(ev.buf));
        break;
    }
  }
  ev_local_.clear();  // drop ConnShared refs promptly
  wheel_.advance_to(now());
}

void EpollReactor::attach_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) {
  // Same zero-hot-path-cost scheme as TcpTransport: counters are always
  // maintained (relaxed atomic adds); the registry reads them only at
  // snapshot time through pull gauges.
  const auto count = [&](const char* name,
                         const std::atomic<std::uint64_t>* v) {
    registry.gauge(prefix + name, [v] {
      return static_cast<double>(v->load(std::memory_order_relaxed));
    });
  };
  count("bytes_out", &bytes_sent_);
  count("bytes_in", &bytes_received_);
  count("sends", &sends_);
  count("accepts", &accepts_);
  count("connects_ok", &connects_ok_);
  count("connects_failed", &connects_failed_);
  count("connect_retries", &connect_retries_);
  count("queue_drops", &refusals_);
  count("closes", &closes_);
  count("reaps", &reaps_);
  count("partial_drains", &partial_drains_);
  count("wakeups", &wakeups_);
  count("events", &events_);
  count("writev_calls", &writev_calls_);
  count("batched_bytes", &batched_bytes_);
  registry.gauge(prefix + "events_per_wakeup", [this] {
    const auto w = wakeups_.load(std::memory_order_relaxed);
    const auto e = events_.load(std::memory_order_relaxed);
    return w == 0 ? 0.0
                  : static_cast<double>(e) / static_cast<double>(w);
  });
  registry.gauge(prefix + "conns", [this] {
    return static_cast<double>(open_connections());
  });
  registry.gauge(prefix + "outq_bytes", [this] {
    return static_cast<double>(outq_bytes_.load(std::memory_order_relaxed));
  });
  registry.gauge(prefix + "outq_hwm", [this] {
    return static_cast<double>(outq_hwm_.load(std::memory_order_relaxed));
  });
  registry.gauge(prefix + "pool_hits", [this] {
    return static_cast<double>(pool_.stats().hits);
  });
  registry.gauge(prefix + "pool_misses", [this] {
    return static_cast<double>(pool_.stats().misses);
  });
  registry.gauge(prefix + "pool_hit_rate", [this] { return pool_.hit_rate(); });
  registry.gauge(prefix + "pool_idle", [this] {
    return static_cast<double>(pool_.stats().idle);
  });
  registry.gauge(prefix + "pool_outstanding_hwm", [this] {
    return static_cast<double>(pool_.stats().outstanding_hwm);
  });
  registry.gauge(prefix + "shards", [this] {
    return static_cast<double>(shards_.size());
  });
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    registry.gauge(prefix + "shard" + std::to_string(i) + ".conns",
                   [this, i] {
                     return static_cast<double>(shard_connections(i));
                   });
  }
}

// ----------------------------------------------------------------------
// Cross-thread plumbing
// ----------------------------------------------------------------------

void EpollReactor::enqueue_command(std::uint32_t shard, Command&& cmd) {
  Shard& s = *shards_[shard];
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock{s.mu};
    s.mailbox.push_back(std::move(cmd));
    if (!s.signaled) {
      s.signaled = true;
      need_wake = true;
    }
  }
  if (need_wake) {
    const std::uint64_t one = 1;
    ssize_t rc;
    do {
      rc = ::write(s.wake_fd, &one, sizeof one);
    } while (rc < 0 && errno == EINTR);
  }
}

void EpollReactor::push_event(Event&& ev) {
  std::lock_guard<std::mutex> lock{ev_mu_};
  const bool was_empty = ev_queue_.empty();
  ev_queue_.push_back(std::move(ev));
  if (was_empty) ev_cv_.notify_one();
}

// ----------------------------------------------------------------------
// Shard threads
// ----------------------------------------------------------------------

void EpollReactor::shard_main(Shard& shard) {
  if (opts_.idle_timeout > 0.0) {
    // Periodic reaper; reschedules itself inside shard_reap_idle.
    shard.wheel.schedule_after(opts_.idle_timeout / 2.0,
                               [this, &shard] { shard_reap_idle(shard); });
  }
  std::array<epoll_event, 256> evs{};
  std::vector<Command> cmds;
  while (!stop_.load(std::memory_order_acquire)) {
    const int timeout_ms = shard.wheel.pending() > 0 ? 10 : 200;
    int n = ::epoll_wait(shard.epfd, evs.data(),
                         static_cast<int>(evs.size()), timeout_ms);
    if (n < 0) {
      if (errno != EINTR) break;  // EBADF etc.: shutting down
      n = 0;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      events_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = evs[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kWakeTag) {
        std::uint64_t drained = 0;
        ssize_t rc;
        do {
          rc = ::read(shard.wake_fd, &drained, sizeof drained);
        } while (rc < 0 && errno == EINTR);
        continue;
      }
      if (ev.data.u64 == kListenTag) {
        shard_accept(shard);
        continue;
      }
      auto* conn = static_cast<Conn*>(ev.data.ptr);
      if (conn->state == Conn::State::kClosed) continue;
      if ((ev.events & EPOLLOUT) != 0U) shard_writable(shard, *conn);
      if (conn->state != Conn::State::kClosed &&
          (ev.events & EPOLLIN) != 0U) {
        shard_readable(shard, *conn);
      }
      if (conn->state != Conn::State::kClosed &&
          (ev.events & (EPOLLERR | EPOLLHUP)) != 0U &&
          (ev.events & (EPOLLIN | EPOLLOUT)) == 0U) {
        // Pure error event (not delivered alongside IO we just handled).
        shard_close(shard, *conn);
      }
    }
    cmds.clear();
    {
      std::lock_guard<std::mutex> lock{shard.mu};
      cmds.swap(shard.mailbox);
      shard.signaled = false;
    }
    if (!cmds.empty()) shard_run_commands(shard, cmds);
    shard.wheel.advance_to(now());
    if (!shard.dead.empty()) {
      for (const NodeId id : shard.dead) shard.conns.erase(id);
      shard.dead.clear();
    }
  }
  for (auto& [id, conn] : shard.conns) {
    if (conn->fd >= 0) ::close(conn->fd);
    for (auto& out : conn->outq) pool_.release(std::move(out.buf));
  }
  shard.conns.clear();
  // Commands still in the mailbox may carry live fds (kListen/kAdopt
  // enqueued right before shutdown); close them or the sockets — and a
  // listening port — outlive the reactor.
  cmds.clear();
  {
    std::lock_guard<std::mutex> lock{shard.mu};
    cmds.swap(shard.mailbox);
  }
  for (Command& cmd : cmds) {
    if (cmd.fd >= 0) ::close(cmd.fd);
  }
  if (shard.listen_fd >= 0) ::close(shard.listen_fd);
  ::close(shard.wake_fd);
  ::close(shard.epfd);
}

void EpollReactor::shard_run_commands(Shard& shard,
                                      std::vector<Command>& cmds) {
  // Sends are appended first and flushed once per connection after the
  // whole mailbox is applied, so a burst of frames to one peer leaves
  // through a single writev instead of one syscall each.
  std::vector<Conn*> touched;
  for (Command& cmd : cmds) {
    switch (cmd.kind) {
      case Command::Kind::kListen: {
        shard.listen_fd = cmd.fd;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kListenTag;
        ::epoll_ctl(shard.epfd, EPOLL_CTL_ADD, shard.listen_fd, &ev);
        break;
      }
      case Command::Kind::kConnect: {
        auto conn = std::make_unique<Conn>();
        conn->shared = std::move(cmd.shared);
        conn->outbound = true;
        conn->host = std::move(cmd.host);
        conn->port = cmd.port;
        conn->last_activity = now();
        Conn& ref = *conn;
        shard.conns.emplace(ref.shared->id, std::move(conn));
        shard.nconns.fetch_add(1, std::memory_order_relaxed);
        shard_connect_attempt(shard, ref);
        break;
      }
      case Command::Kind::kAdopt: {
        auto conn = std::make_unique<Conn>();
        conn->shared = std::move(cmd.shared);
        conn->fd = cmd.fd;
        conn->state = Conn::State::kUp;
        conn->last_activity = now();
        Conn& ref = *conn;
        shard.conns.emplace(ref.shared->id, std::move(conn));
        shard.nconns.fetch_add(1, std::memory_order_relaxed);
        shard_update_interest(shard, ref);
        Event up;
        up.kind = Event::Kind::kUp;
        up.shared = ref.shared;
        push_event(std::move(up));
        break;
      }
      case Command::Kind::kSend: {
        const auto it = shard.conns.find(cmd.shared->id);
        if (it == shard.conns.end() ||
            it->second->state == Conn::State::kClosed) {
          // Raced with a close: unwind the accounting done in send().
          const std::size_t n = cmd.buf.size();
          cmd.shared->queued.fetch_sub(n, std::memory_order_relaxed);
          outq_bytes_.fetch_sub(n, std::memory_order_relaxed);
          pool_.release(std::move(cmd.buf));
          break;
        }
        Conn& conn = *it->second;
        conn.outq.push_back(Conn::Out{std::move(cmd.buf), 0});
        if (conn.state == Conn::State::kUp && !conn.flush_pending) {
          conn.flush_pending = true;
          touched.push_back(&conn);
        }
        break;
      }
      case Command::Kind::kClose: {
        const auto it = shard.conns.find(cmd.shared->id);
        if (it == shard.conns.end()) break;
        Conn& conn = *it->second;
        if (conn.state == Conn::State::kUp) shard_flush(shard, conn);
        shard_close(shard, conn);
        break;
      }
    }
  }
  for (Conn* conn : touched) {
    conn->flush_pending = false;
    if (conn->state == Conn::State::kUp) shard_flush(shard, *conn);
  }
}

void EpollReactor::shard_accept(Shard& shard) {
  for (;;) {
    const int cfd = ::accept(shard.listen_fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or transient accept failure (EMFILE...)
    }
    if (!make_nonblocking(cfd)) {
      ::close(cfd);
      continue;
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (opts_.so_sndbuf > 0) {
      ::setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                   sizeof opts_.so_sndbuf);
    }
    accepts_.fetch_add(1, std::memory_order_relaxed);
    const NodeId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    auto shared = std::make_shared<ConnShared>();
    shared->id = id;
    shared->shard = static_cast<std::uint32_t>(id % shards_.size());
    Command cmd;
    cmd.kind = Command::Kind::kAdopt;
    cmd.shared = std::move(shared);
    cmd.fd = cfd;
    if (cmd.shared->shard == shard.index) {
      // Home shard is this one: adopt inline, skip the mailbox hop.
      std::vector<Command> inline_cmds;
      inline_cmds.push_back(std::move(cmd));
      shard_run_commands(shard, inline_cmds);
    } else {
      enqueue_command(cmd.shared->shard, std::move(cmd));
    }
  }
}

void EpollReactor::shard_connect_attempt(Shard& shard, Conn& conn) {
  ++conn.attempts;
  if (conn.attempts > 1) connect_retries_.fetch_add(1, std::memory_order_relaxed);
  sockaddr_in addr{};
  if (!resolve_ipv4(conn.host.empty() ? "localhost" : conn.host, conn.port,
                    addr)) {
    shard_fail_connect(shard, conn);
    return;
  }
  conn.fd = make_nonblocking_socket();
  if (conn.fd < 0) {
    shard_fail_connect(shard, conn);
    return;
  }
  if (opts_.so_sndbuf > 0) {
    ::setsockopt(conn.fd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                 sizeof opts_.so_sndbuf);
  }
  const int rc = ::connect(
      conn.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    shard_finish_connect(shard, conn);
    return;
  }
  // EINTR: the connect proceeds asynchronously, exactly like EINPROGRESS.
  if (errno != EINPROGRESS && errno != EINTR) {
    ::close(conn.fd);
    conn.fd = -1;
    shard_fail_connect(shard, conn);
    return;
  }
  shard_update_interest(shard, conn);  // kConnecting => EPOLLOUT
  const NodeId id = conn.shared->id;
  conn.connect_timer = shard.wheel.schedule_after(
      opts_.connect_timeout, [this, &shard, id] {
        const auto it = shard.conns.find(id);
        if (it == shard.conns.end()) return;
        Conn& c = *it->second;
        c.connect_timer = TimerWheel::kInvalidTimer;
        if (c.state != Conn::State::kConnecting) return;
        if (c.fd >= 0) {
          ::close(c.fd);  // also drops it from the epoll set
          c.fd = -1;
          c.registered = false;
          c.interest = 0;
        }
        shard_fail_connect(shard, c);
      });
}

void EpollReactor::shard_fail_connect(Shard& shard, Conn& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
    conn.registered = false;
    conn.interest = 0;
  }
  if (conn.connect_timer != TimerWheel::kInvalidTimer) {
    shard.wheel.cancel(conn.connect_timer);
    conn.connect_timer = TimerWheel::kInvalidTimer;
  }
  if (conn.attempts <= opts_.connect_retries) {
    const double delay = std::max(opts_.retry_backoff * conn.attempts,
                                  opts_.tick_seconds);
    const NodeId id = conn.shared->id;
    conn.connect_timer =
        shard.wheel.schedule_after(delay, [this, &shard, id] {
          const auto it = shard.conns.find(id);
          if (it == shard.conns.end()) return;
          Conn& c = *it->second;
          c.connect_timer = TimerWheel::kInvalidTimer;
          if (c.state != Conn::State::kConnecting) return;
          shard_connect_attempt(shard, c);
        });
    return;
  }
  connects_failed_.fetch_add(1, std::memory_order_relaxed);
  shard_close(shard, conn);
}

void EpollReactor::shard_finish_connect(Shard& shard, Conn& conn) {
  if (conn.connect_timer != TimerWheel::kInvalidTimer) {
    shard.wheel.cancel(conn.connect_timer);
    conn.connect_timer = TimerWheel::kInvalidTimer;
  }
  conn.state = Conn::State::kUp;
  conn.last_activity = now();
  connects_ok_.fetch_add(1, std::memory_order_relaxed);
  shard_update_interest(shard, conn);
  Event up;
  up.kind = Event::Kind::kUp;
  up.shared = conn.shared;
  push_event(std::move(up));
  if (!conn.outq.empty()) shard_flush(shard, conn);
}

void EpollReactor::shard_writable(Shard& shard, Conn& conn) {
  if (conn.state == Conn::State::kConnecting) {
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      ::close(conn.fd);
      conn.fd = -1;
      conn.registered = false;
      conn.interest = 0;
      shard_fail_connect(shard, conn);
      return;
    }
    shard_finish_connect(shard, conn);
    return;
  }
  shard_flush(shard, conn);
}

void EpollReactor::shard_flush(Shard& shard, Conn& conn) {
  while (!conn.outq.empty()) {
    std::array<iovec, kMaxIov> iov;
    int cnt = 0;
    for (const Conn::Out& out : conn.outq) {
      if (cnt == kMaxIov) break;
      iov[static_cast<std::size_t>(cnt)] = {
          const_cast<std::uint8_t*>(out.buf.data()) + out.off,
          out.buf.size() - out.off};
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    ssize_t sent;
    do {
      // sendmsg == writev + MSG_NOSIGNAL (no process-wide SIGPIPE fiddling)
      sent = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    if (sent > 0) {
      writev_calls_.fetch_add(1, std::memory_order_relaxed);
      batched_bytes_.fetch_add(static_cast<std::uint64_t>(sent),
                               std::memory_order_relaxed);
      bytes_sent_.fetch_add(static_cast<std::uint64_t>(sent),
                            std::memory_order_relaxed);
      outq_bytes_.fetch_sub(static_cast<std::size_t>(sent),
                            std::memory_order_relaxed);
      conn.shared->queued.fetch_sub(static_cast<std::size_t>(sent),
                                    std::memory_order_relaxed);
      conn.last_activity = now();
      std::size_t rem = static_cast<std::size_t>(sent);
      while (rem > 0) {
        Conn::Out& front = conn.outq.front();
        const std::size_t avail = front.buf.size() - front.off;
        if (rem >= avail) {
          rem -= avail;
          pool_.release(std::move(front.buf));
          conn.outq.pop_front();
        } else {
          front.off += rem;
          rem = 0;
        }
      }
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      partial_drains_.fetch_add(1, std::memory_order_relaxed);
      shard_update_interest(shard, conn);  // subscribe EPOLLOUT
      return;
    }
    shard_close(shard, conn);
    return;
  }
  shard_update_interest(shard, conn);  // outq empty: drop EPOLLOUT
}

void EpollReactor::shard_readable(Shard& shard, Conn& conn) {
  for (int round = 0; round < kMaxReadsPerEvent; ++round) {
    BufferPool::Buffer buf = pool_.acquire(opts_.read_chunk_bytes);
    buf.resize(opts_.read_chunk_bytes);  // no-op for a recycled read buffer
    ssize_t got;
    do {
      got = ::recv(conn.fd, buf.data(), buf.size(), 0);
    } while (got < 0 && errno == EINTR);
    if (got > 0) {
      conn.last_activity = now();
      bytes_received_.fetch_add(static_cast<std::uint64_t>(got),
                                std::memory_order_relaxed);
      Event ev;
      ev.kind = Event::Kind::kBytes;
      ev.shared = conn.shared;
      ev.len = static_cast<std::size_t>(got);
      ev.buf = std::move(buf);
      push_event(std::move(ev));
      if (static_cast<std::size_t>(got) < opts_.read_chunk_bytes) return;
      continue;  // chunk-full read: likely more buffered, drain on
    }
    pool_.release(std::move(buf));
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    shard_close(shard, conn);  // orderly EOF (0) or hard error
    return;
  }
  // Read cap hit: level-triggered epoll re-reports the fd next wakeup,
  // so the remaining bytes are picked up after other fds get a turn.
}

void EpollReactor::shard_close(Shard& shard, Conn& conn) {
  if (conn.state == Conn::State::kClosed) return;
  if (conn.connect_timer != TimerWheel::kInvalidTimer) {
    shard.wheel.cancel(conn.connect_timer);
    conn.connect_timer = TimerWheel::kInvalidTimer;
  }
  std::size_t abandoned = 0;
  for (auto& out : conn.outq) {
    abandoned += out.buf.size() - out.off;
    pool_.release(std::move(out.buf));
  }
  conn.outq.clear();
  if (abandoned > 0) {
    outq_bytes_.fetch_sub(abandoned, std::memory_order_relaxed);
    conn.shared->queued.fetch_sub(abandoned, std::memory_order_relaxed);
  }
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  conn.state = Conn::State::kClosed;
  conn.registered = false;
  conn.interest = 0;
  closes_.fetch_add(1, std::memory_order_relaxed);
  shard.nconns.fetch_sub(1, std::memory_order_relaxed);
  shard.dead.push_back(conn.shared->id);
  Event down;
  down.kind = Event::Kind::kDown;
  down.shared = conn.shared;
  push_event(std::move(down));
}

void EpollReactor::shard_update_interest(Shard& shard, Conn& conn) {
  if (conn.fd < 0) return;
  std::uint32_t want = 0;
  if (conn.state == Conn::State::kConnecting) {
    want = EPOLLOUT;
  } else if (conn.state == Conn::State::kUp) {
    want = EPOLLIN;
    if (!conn.outq.empty()) want |= EPOLLOUT;
  } else {
    return;
  }
  if (conn.registered && want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = &conn;
  const int op = conn.registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(shard.epfd, op, conn.fd, &ev) == 0) {
    conn.registered = true;
    conn.interest = want;
  }
}

void EpollReactor::shard_reap_idle(Shard& shard) {
  const double deadline = now() - opts_.idle_timeout;
  for (auto& [id, conn] : shard.conns) {
    if (conn->state != Conn::State::kUp) continue;
    if (conn->last_activity < deadline) {
      reaps_.fetch_add(1, std::memory_order_relaxed);
      shard_close(shard, *conn);  // erase deferred to the loop bottom
    }
  }
  shard.wheel.schedule_after(opts_.idle_timeout / 2.0,
                             [this, &shard] { shard_reap_idle(shard); });
}

}  // namespace icollect::net

#endif  // ICOLLECT_HAVE_EPOLL
