#pragma once

/// \file stream_transport.h
/// The socket-transport seam one level above Transport: everything a
/// live tool needs to stand up a real node — listen, dial, a timer
/// wheel, an event-loop pump, and metrics export — without naming a
/// concrete backend.
///
/// Two backends implement it:
///   - TcpTransport (net/tcp.h): single-threaded poll(2) loop. O(n) per
///     wakeup, portable to any POSIX system; the fallback.
///   - EpollReactor (net/epoll_reactor.h): level-triggered epoll sharded
///     across reactor threads with pooled buffers and vectored IO; the
///     scalable Linux path (see docs/PERFORMANCE.md).
///
/// Backend availability is a *configure-time* fact (ICOLLECT_HAVE_EPOLL
/// is defined when <sys/epoll.h> exists); which backend a process uses
/// is a runtime choice through make_stream_transport(), so one binary
/// can A/B them (`icollect_node --backend poll|epoll`,
/// `scripts/run_bench.py --node` does exactly that).
///
/// Whatever the backend's internal threading, the TransportHandler
/// contract is unchanged: every handler callback fires on the thread
/// driving poll_once()/run_until(), and timers() is only touched from
/// that thread.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/timer_wheel.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

namespace icollect::net {

/// Knobs shared by every stream backend. Fields a backend has no use
/// for are ignored (TcpTransport has no shards and no buffer pool).
struct StreamOptions {
  double tick_seconds = 0.001;  ///< TimerWheel granularity
  std::size_t send_queue_cap_bytes = 4U << 20U;
  std::size_t read_chunk_bytes = 64U * 1024U;
  double connect_timeout = 5.0;  ///< per attempt, seconds
  int connect_retries = 3;       ///< attempts after the first
  double retry_backoff = 0.5;    ///< seconds, grows linearly
  double idle_timeout = 0.0;     ///< close silent conns; 0 = off
  int listen_backlog = 0;        ///< listen(2) backlog; 0 = SOMAXCONN
  int so_sndbuf = 0;             ///< SO_SNDBUF per conn; 0 = kernel default
  std::size_t reactor_shards = 0;  ///< epoll reactor threads; 0 = auto
  std::size_t pool_max_buffers = 4096;  ///< idle buffers the pool retains
};

class StreamTransport : public Transport {
 public:
  /// Bind + listen. Pass port 0 for an ephemeral port; the bound port
  /// is returned either way. Throws std::runtime_error on failure.
  virtual std::uint16_t listen(const std::string& host,
                               std::uint16_t port) = 0;

  /// Begin an asynchronous connect; returns the connection handle
  /// immediately. Outcome arrives as on_peer_up / on_peer_down.
  virtual NodeId connect(const std::string& host, std::uint16_t port) = 0;

  /// Node-level timers (gossip, TTL, pulls). Advanced off the wall
  /// clock by poll_once(); use only from the driving thread.
  [[nodiscard]] virtual TimerWheel& timers() noexcept = 0;

  /// Wall-clock seconds since construction (the wheel's time base).
  [[nodiscard]] virtual double now() const = 0;

  /// One event-loop round: wait for IO for up to `max_wait` seconds,
  /// dispatch handler callbacks, then advance the timer wheel.
  virtual void poll_once(double max_wait = 0.05) = 0;

  /// Drive poll_once until `done()` returns true or `timeout_seconds`
  /// elapses (<= 0 waits forever). Returns done()'s final value.
  virtual bool run_until(const std::function<bool()>& done,
                         double timeout_seconds) {
    const double deadline =
        timeout_seconds > 0.0 ? now() + timeout_seconds : -1.0;
    while (!done()) {
      if (deadline > 0.0 && now() >= deadline) return false;
      poll_once();
    }
    return true;
  }

  /// Connections not yet closed (established + still connecting).
  [[nodiscard]] virtual std::size_t open_connections() const = 0;

  /// Export the backend's counters into `registry` as pull-based gauges
  /// under `prefix`. The registry must outlive the transport's use.
  virtual void attach_metrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) = 0;

  /// "poll" or "epoll" — stamped into bench output and summaries.
  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;
};

/// True when this build carries the epoll backend.
[[nodiscard]] bool epoll_backend_available() noexcept;

/// Construct a backend by name: "poll", "epoll", or "auto" (epoll when
/// available, else poll). Throws std::invalid_argument for an unknown
/// name or for "epoll" on a build without it.
[[nodiscard]] std::unique_ptr<StreamTransport> make_stream_transport(
    std::string_view backend, const StreamOptions& opts = {});

}  // namespace icollect::net
