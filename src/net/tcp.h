#pragma once

/// \file tcp.h
/// Real-socket transport: nonblocking TCP with a poll(2)-based
/// single-threaded event loop. Same Transport interface the loopback
/// provides, so node state machines move between the deterministic
/// in-process world and the OS network without a line of change.
///
///  - Outbound connects are asynchronous with a connect timeout and a
///    bounded retry budget (linear backoff); the handler sees
///    on_peer_up on success or on_peer_down once the budget is spent.
///  - Every connection has a bounded send queue; send() refuses (and
///    counts) once `send_queue_cap_bytes` are already queued —
///    backpressure surfaces to the caller instead of ballooning memory.
///  - An optional idle read timeout reaps connections that have gone
///    silent.
///  - The shared TimerWheel is advanced off the wall clock by the poll
///    loop, so node-level timers (gossip, TTL, pulls) fire with tick
///    granularity while the loop sleeps in poll().
///  - The transport always maintains its traffic counters (plain integer
///    adds); attach_metrics() exports them as pull-based gauges, so
///    enabling telemetry adds zero cost to the IO hot path.
///  - Interrupted syscalls (EINTR — e.g. the SIGUSR1 stats dump) are
///    retried, never surfaced as transport errors.
///
/// This is the portable fallback behind the StreamTransport seam; on
/// Linux the sharded EpollReactor (net/epoll_reactor.h) replaces it for
/// anything beyond a few thousand connections.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stream_transport.h"
#include "net/timer_wheel.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

namespace icollect::net {

class TcpTransport final : public StreamTransport {
 public:
  using Options = StreamOptions;

  TcpTransport();
  explicit TcpTransport(Options opts);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void set_handler(TransportHandler* handler) override { handler_ = handler; }

  /// Bind + listen. Pass port 0 for an ephemeral port; the bound port
  /// is returned either way. Throws std::runtime_error on failure.
  std::uint16_t listen(const std::string& host, std::uint16_t port) override;

  /// Begin an asynchronous connect; returns the connection handle
  /// immediately. Outcome arrives as on_peer_up / on_peer_down.
  NodeId connect(const std::string& host, std::uint16_t port) override;

  bool send(NodeId peer, std::span<const std::uint8_t> bytes) override;
  void close_peer(NodeId peer) override;

  [[nodiscard]] TimerWheel& timers() noexcept override { return wheel_; }
  /// Wall-clock seconds since construction (the wheel's time base).
  [[nodiscard]] double now() const override;

  /// One event-loop round: poll sockets for up to `max_wait` seconds,
  /// dispatch IO, then advance the timer wheel to the wall clock.
  void poll_once(double max_wait = 0.05) override;

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "poll";
  }

  [[nodiscard]] std::size_t open_connections() const override;
  [[nodiscard]] std::uint64_t backpressure_refusals() const noexcept {
    return refusals_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t connects_failed() const noexcept {
    return connects_failed_;
  }
  [[nodiscard]] std::uint64_t sends() const noexcept { return sends_; }
  [[nodiscard]] std::uint64_t accepts() const noexcept { return accepts_; }
  [[nodiscard]] std::uint64_t connects_ok() const noexcept {
    return connects_ok_;
  }
  [[nodiscard]] std::uint64_t connect_retries() const noexcept {
    return connect_retries_;
  }
  [[nodiscard]] std::uint64_t closes() const noexcept { return closes_; }
  [[nodiscard]] std::uint64_t idle_reaps() const noexcept { return reaps_; }
  [[nodiscard]] std::uint64_t partial_drains() const noexcept {
    return partial_drains_;
  }
  /// Unsent bytes currently queued across all connections / the largest
  /// such total ever observed.
  [[nodiscard]] std::size_t send_queue_bytes() const noexcept {
    return outq_bytes_;
  }
  [[nodiscard]] std::size_t send_queue_high_watermark() const noexcept {
    return outq_hwm_;
  }

  /// Export the transport's counters and queue gauges into `registry`
  /// as pull-based gauges under `prefix` (see docs/OBSERVABILITY.md for
  /// the inventory). The registry must outlive the transport's use.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "tcp.") override;

 private:
  enum class ConnState { kConnecting, kUp, kClosed };

  struct Conn {
    NodeId id = kInvalidNodeId;
    int fd = -1;
    ConnState state = ConnState::kConnecting;
    std::string host;           ///< for retries (outbound only)
    std::uint16_t port = 0;
    int attempts = 0;
    bool outbound = false;
    TimerWheel::TimerId connect_timer = TimerWheel::kInvalidTimer;
    std::vector<std::uint8_t> outq;
    std::size_t out_head = 0;
    double last_activity = 0.0;
  };

  NodeId register_conn(std::unique_ptr<Conn> conn);
  void start_connect_attempt(Conn& conn);
  void fail_connect_attempt(Conn& conn, const char* why);
  void finish_connect(Conn& conn);
  void close_conn(Conn& conn, bool notify);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void flush_outq(Conn& conn);
  void reap_idle();
  void reap_closed();

  Options opts_;
  TimerWheel wheel_;
  TransportHandler* handler_ = nullptr;
  int listen_fd_ = -1;
  NodeId next_id_ = 1;
  std::unordered_map<NodeId, std::unique_ptr<Conn>> conns_;
  std::vector<NodeId> dead_;  ///< closed this round, erased after dispatch
  std::vector<std::uint8_t> read_buf_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t refusals_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t connects_failed_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t accepts_ = 0;
  std::uint64_t connects_ok_ = 0;
  std::uint64_t connect_retries_ = 0;
  std::uint64_t closes_ = 0;
  std::uint64_t reaps_ = 0;
  std::uint64_t partial_drains_ = 0;
  std::size_t outq_bytes_ = 0;  ///< unsent bytes across all conns
  std::size_t outq_hwm_ = 0;
};

}  // namespace icollect::net
