#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/assert.h"

namespace icollect::net {

namespace {

// Consumed send-queue prefix beyond which flush_outq compacts instead
// of waiting for a full drain (same rule as wire::FrameDecoder::feed).
constexpr std::size_t kOutqCompactBytes = 4096;

int make_nonblocking_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool resolve_ipv4(const std::string& host, std::uint16_t port,
                  sockaddr_in& out) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    out.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    out.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport() : TcpTransport(Options{}) {}

TcpTransport::TcpTransport(Options opts)
    : opts_{opts},
      wheel_{opts.tick_seconds},
      epoch_{std::chrono::steady_clock::now()} {
  ICOLLECT_EXPECTS(opts.read_chunk_bytes > 0);
  ICOLLECT_EXPECTS(opts.connect_timeout > 0.0);
  ICOLLECT_EXPECTS(opts.connect_retries >= 0);
  ICOLLECT_EXPECTS(opts.listen_backlog >= 0);
  ICOLLECT_EXPECTS(opts.so_sndbuf >= 0);
  read_buf_.resize(opts_.read_chunk_bytes);
  if (opts_.idle_timeout > 0.0) {
    // Periodic reaper; reschedules itself for the transport's lifetime.
    const double period = opts_.idle_timeout / 2.0;
    struct Rearm {
      TcpTransport* self;
      double period;
      void operator()() const {
        self->reap_idle();
        self->wheel_.schedule_after(period, Rearm{self, period});
      }
    };
    wheel_.schedule_after(period, Rearm{this, period});
  }
}

TcpTransport::~TcpTransport() {
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

double TcpTransport::now() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(dt).count();
}

std::uint16_t TcpTransport::listen(const std::string& host,
                                   std::uint16_t port) {
  ICOLLECT_EXPECTS(listen_fd_ < 0);
  sockaddr_in addr{};
  if (!resolve_ipv4(host, port, addr)) {
    throw std::runtime_error("tcp: cannot resolve listen host " + host);
  }
  const int fd = make_nonblocking_socket();
  if (fd < 0) throw std::runtime_error("tcp: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string{"tcp: bind failed: "} +
                             std::strerror(err));
  }
  const int backlog =
      opts_.listen_backlog > 0 ? opts_.listen_backlog : SOMAXCONN;
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string{"tcp: listen failed: "} +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw std::runtime_error("tcp: getsockname failed");
  }
  listen_fd_ = fd;
  return ntohs(bound.sin_port);
}

NodeId TcpTransport::register_conn(std::unique_ptr<Conn> conn) {
  const NodeId id = next_id_++;
  conn->id = id;
  conns_.emplace(id, std::move(conn));
  return id;
}

NodeId TcpTransport::connect(const std::string& host, std::uint16_t port) {
  auto conn = std::make_unique<Conn>();
  conn->host = host;
  conn->port = port;
  conn->outbound = true;
  conn->last_activity = now();
  Conn& ref = *conn;
  const NodeId id = register_conn(std::move(conn));
  start_connect_attempt(ref);
  return id;
}

void TcpTransport::start_connect_attempt(Conn& conn) {
  ++conn.attempts;
  if (conn.attempts > 1) ++connect_retries_;
  sockaddr_in addr{};
  if (!resolve_ipv4(conn.host.empty() ? "localhost" : conn.host, conn.port,
                    addr)) {
    fail_connect_attempt(conn, "resolve");
    return;
  }
  conn.fd = make_nonblocking_socket();
  if (conn.fd < 0) {
    fail_connect_attempt(conn, "socket");
    return;
  }
  if (opts_.so_sndbuf > 0) {
    ::setsockopt(conn.fd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                 sizeof opts_.so_sndbuf);
  }
  const int rc =
      ::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    finish_connect(conn);
    return;
  }
  // EINTR: the nonblocking connect proceeds asynchronously regardless
  // (POSIX) — handle it exactly like EINPROGRESS.
  if (errno != EINPROGRESS && errno != EINTR) {
    ::close(conn.fd);
    conn.fd = -1;
    fail_connect_attempt(conn, "connect");
    return;
  }
  conn.state = ConnState::kConnecting;
  const NodeId id = conn.id;
  conn.connect_timer =
      wheel_.schedule_after(opts_.connect_timeout, [this, id] {
        const auto it = conns_.find(id);
        if (it == conns_.end()) return;
        Conn& c = *it->second;
        if (c.state != ConnState::kConnecting) return;
        c.connect_timer = TimerWheel::kInvalidTimer;
        if (c.fd >= 0) {
          ::close(c.fd);
          c.fd = -1;
        }
        fail_connect_attempt(c, "timeout");
      });
}

void TcpTransport::fail_connect_attempt(Conn& conn, const char* /*why*/) {
  if (conn.connect_timer != TimerWheel::kInvalidTimer) {
    wheel_.cancel(conn.connect_timer);
    conn.connect_timer = TimerWheel::kInvalidTimer;
  }
  if (conn.attempts <= opts_.connect_retries) {
    const NodeId id = conn.id;
    const double backoff = opts_.retry_backoff * conn.attempts;
    wheel_.schedule_after(std::max(backoff, opts_.tick_seconds), [this, id] {
      const auto it = conns_.find(id);
      if (it == conns_.end()) return;
      if (it->second->state == ConnState::kClosed) return;
      start_connect_attempt(*it->second);
    });
    return;
  }
  ++connects_failed_;
  close_conn(conn, /*notify=*/true);
}

void TcpTransport::finish_connect(Conn& conn) {
  if (conn.connect_timer != TimerWheel::kInvalidTimer) {
    wheel_.cancel(conn.connect_timer);
    conn.connect_timer = TimerWheel::kInvalidTimer;
  }
  conn.state = ConnState::kUp;
  conn.last_activity = now();
  ++connects_ok_;
  if (handler_ != nullptr) handler_->on_peer_up(conn.id);
}

bool TcpTransport::send(NodeId peer, std::span<const std::uint8_t> bytes) {
  const auto it = conns_.find(peer);
  if (it == conns_.end()) return false;
  Conn& conn = *it->second;
  if (conn.state == ConnState::kClosed) return false;
  const std::size_t queued = conn.outq.size() - conn.out_head;
  if (queued + bytes.size() > opts_.send_queue_cap_bytes) {
    ++refusals_;
    return false;
  }
  conn.outq.insert(conn.outq.end(), bytes.begin(), bytes.end());
  ++sends_;
  outq_bytes_ += bytes.size();
  if (outq_bytes_ > outq_hwm_) outq_hwm_ = outq_bytes_;
  if (conn.state == ConnState::kUp) flush_outq(conn);
  return true;
}

void TcpTransport::close_peer(NodeId peer) {
  const auto it = conns_.find(peer);
  if (it == conns_.end()) return;
  close_conn(*it->second, /*notify=*/true);
}

void TcpTransport::close_conn(Conn& conn, bool notify) {
  if (conn.state == ConnState::kClosed) return;
  ++closes_;
  outq_bytes_ -= conn.outq.size() - conn.out_head;  // abandoned unsent bytes
  if (conn.connect_timer != TimerWheel::kInvalidTimer) {
    wheel_.cancel(conn.connect_timer);
    conn.connect_timer = TimerWheel::kInvalidTimer;
  }
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  conn.state = ConnState::kClosed;
  dead_.push_back(conn.id);
  if (notify && handler_ != nullptr) handler_->on_peer_down(conn.id);
}

void TcpTransport::flush_outq(Conn& conn) {
  while (conn.out_head < conn.outq.size()) {
    const std::size_t n = conn.outq.size() - conn.out_head;
    ssize_t sent;
    do {
      sent = ::send(conn.fd, conn.outq.data() + conn.out_head, n,
                    MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    if (sent > 0) {
      conn.out_head += static_cast<std::size_t>(sent);
      bytes_sent_ += static_cast<std::uint64_t>(sent);
      outq_bytes_ -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++partial_drains_;
      // Partial drain: reclaim the consumed prefix once it is sizable,
      // otherwise repeated partial drains grow outq without bound
      // (send() caps only the *unsent* bytes).
      if (conn.out_head >= kOutqCompactBytes) {
        conn.outq.erase(conn.outq.begin(),
                        conn.outq.begin() +
                            static_cast<std::ptrdiff_t>(conn.out_head));
        conn.out_head = 0;
      }
      return;
    }
    close_conn(conn, /*notify=*/true);
    return;
  }
  conn.outq.clear();
  conn.out_head = 0;
}

void TcpTransport::handle_readable(Conn& conn) {
  for (;;) {
    ssize_t got;
    do {
      got = ::recv(conn.fd, read_buf_.data(), read_buf_.size(), 0);
    } while (got < 0 && errno == EINTR);
    if (got > 0) {
      conn.last_activity = now();
      bytes_received_ += static_cast<std::uint64_t>(got);
      if (handler_ != nullptr) {
        handler_->on_bytes(conn.id,
                           {read_buf_.data(), static_cast<std::size_t>(got)});
      }
      // The handler may have closed us in response to the bytes.
      if (conn.state != ConnState::kUp || conn.fd < 0) return;
      if (static_cast<std::size_t>(got) < read_buf_.size()) return;
      continue;
    }
    if (got == 0) {  // orderly shutdown by the peer
      close_conn(conn, /*notify=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(conn, /*notify=*/true);
    return;
  }
}

void TcpTransport::handle_writable(Conn& conn) {
  if (conn.state == ConnState::kConnecting) {
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      ::close(conn.fd);
      conn.fd = -1;
      fail_connect_attempt(conn, "so_error");
      return;
    }
    finish_connect(conn);
  }
  if (conn.state == ConnState::kUp) flush_outq(conn);
}

void TcpTransport::reap_idle() {
  if (opts_.idle_timeout <= 0.0) return;
  const double t = now();
  // Collect first: close_conn fires on_peer_down, and a handler that
  // reconnects from there would insert into conns_ mid-iteration.
  std::vector<NodeId> idle;
  for (const auto& [id, conn] : conns_) {
    if (conn->state == ConnState::kUp &&
        t - conn->last_activity > opts_.idle_timeout) {
      idle.push_back(id);
    }
  }
  for (const NodeId id : idle) {
    const auto it = conns_.find(id);
    if (it != conns_.end()) {
      ++reaps_;
      close_conn(*it->second, /*notify=*/true);
    }
  }
}

void TcpTransport::reap_closed() {
  for (const NodeId id : dead_) conns_.erase(id);
  dead_.clear();
}

std::size_t TcpTransport::open_connections() const {
  std::size_t n = 0;
  for (const auto& [id, conn] : conns_) {
    if (conn->state != ConnState::kClosed) ++n;
  }
  return n;
}

void TcpTransport::poll_once(double max_wait) {
  std::vector<pollfd> fds;
  std::vector<NodeId> fd_owner;
  if (listen_fd_ >= 0) {
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fd_owner.push_back(kInvalidNodeId);
  }
  for (const auto& [id, conn] : conns_) {
    if (conn->fd < 0 || conn->state == ConnState::kClosed) continue;
    short events = 0;
    if (conn->state == ConnState::kUp) events |= POLLIN;
    if (conn->state == ConnState::kConnecting ||
        conn->out_head < conn->outq.size()) {
      events |= POLLOUT;
    }
    fds.push_back(pollfd{conn->fd, events, 0});
    fd_owner.push_back(id);
  }

  // Never sleep past the next wheel tick so timers keep granularity.
  const int wait_ms = static_cast<int>(
      std::max(0.0, std::min(max_wait, opts_.tick_seconds)) * 1000.0);
  // EINTR (a signal such as the SIGUSR1 stats dump landed mid-wait) is
  // not an error: treat it as an empty wakeup so the caller's loop gets
  // to service the signal, then advance timers as usual.
  int ready =
      ::poll(fds.empty() ? nullptr : fds.data(),
             static_cast<nfds_t>(fds.size()), std::max(wait_ms, 1));
  if (ready < 0 && errno == EINTR) ready = 0;

  if (ready > 0) {
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (fd_owner[i] == kInvalidNodeId) {  // listener
        for (;;) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) {
            if (errno == EINTR) continue;
            break;
          }
          const int flags = ::fcntl(cfd, F_GETFL, 0);
          ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
          int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          if (opts_.so_sndbuf > 0) {
            ::setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                         sizeof opts_.so_sndbuf);
          }
          auto conn = std::make_unique<Conn>();
          conn->fd = cfd;
          conn->state = ConnState::kUp;
          conn->last_activity = now();
          Conn& ref = *conn;
          register_conn(std::move(conn));
          ++accepts_;
          if (handler_ != nullptr) handler_->on_peer_up(ref.id);
        }
        continue;
      }
      const auto it = conns_.find(fd_owner[i]);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if (conn.state == ConnState::kClosed || conn.fd != p.fd) continue;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          conn.state == ConnState::kConnecting) {
        ::close(conn.fd);
        conn.fd = -1;
        fail_connect_attempt(conn, "pollerr");
        continue;
      }
      if ((p.revents & POLLOUT) != 0) handle_writable(conn);
      if (conn.state == ConnState::kClosed || conn.fd < 0) continue;
      if ((p.revents & POLLIN) != 0) handle_readable(conn);
      if (conn.state == ConnState::kClosed || conn.fd < 0) continue;
      if ((p.revents & (POLLERR | POLLHUP)) != 0) {
        close_conn(conn, /*notify=*/true);
      }
    }
  }

  // Catch the wheel up to the wall clock (fires node timers).
  const auto target =
      static_cast<std::uint64_t>(now() / wheel_.tick_seconds());
  if (target > wheel_.now_tick()) {
    wheel_.advance(target - wheel_.now_tick());
  }
  reap_closed();
}

void TcpTransport::attach_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) {
  // Pull-based gauges over the always-maintained counters: the IO hot
  // path never sees the registry, and values are read only at snapshot
  // time. Counter-like values still export monotonically.
  const auto count = [&](const char* name, const std::uint64_t* v) {
    registry.gauge(prefix + name,
                   [v] { return static_cast<double>(*v); });
  };
  count("bytes_out", &bytes_sent_);
  count("bytes_in", &bytes_received_);
  count("sends", &sends_);
  count("accepts", &accepts_);
  count("connects_ok", &connects_ok_);
  count("connects_failed", &connects_failed_);
  count("connect_retries", &connect_retries_);
  count("queue_drops", &refusals_);
  count("closes", &closes_);
  count("reaps", &reaps_);
  count("partial_drains", &partial_drains_);
  registry.gauge(prefix + "conns", [this] {
    return static_cast<double>(open_connections());
  });
  registry.gauge(prefix + "outq_bytes", [this] {
    return static_cast<double>(outq_bytes_);
  });
  registry.gauge(prefix + "outq_hwm", [this] {
    return static_cast<double>(outq_hwm_);
  });
}

}  // namespace icollect::net
