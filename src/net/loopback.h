#pragma once

/// \file loopback.h
/// Deterministic in-process transport: N endpoints wired through one
/// hub, with a virtual clock, seeded delivery, and injectable link
/// faults. The simulator's ground-truth twin on the transport side —
/// a whole multi-node cluster (tools/icollect_cluster) runs in one
/// thread, instantly, and bit-reproducibly for a fixed seed.
///
/// Semantics:
///  - send() queues the bytes for delivery `latency (+ jitter)` of
///    virtual time later, via the shared TimerWheel — so delivery order
///    is a deterministic function of (send order, latency draws).
///  - drop_probability drops a send at the link (the bytes vanish;
///    the sender's counters record it) — gossip-loss fault injection.
///  - chunk_bytes > 0 splits each delivery into chunks of that size,
///    exercising the receivers' stream reassembly exactly like a TCP
///    read pattern would.
///  - Per-endpoint in-flight backpressure: when more than
///    `send_queue_cap_bytes` are queued from one endpoint, send()
///    refuses — mirroring the TCP transport's send-queue cap.
///
/// Fault injection (scenario pack):
///  - block_link(from, to) blackholes one *direction* of a link: the
///    sender's send() still succeeds (it cannot observe the fault, just
///    like a NAT-ed or firewalled path), nothing arrives, and neither
///    side sees on_peer_down. unblock_link() heals it.
///  - set_isolated(id) blackholes every path touching one endpoint —
///    the building block of network partitions; schedule_partition()
///    arms an isolate-then-heal window on the virtual clock.
///  - set_drain_rate(id, bytes_per_sec) turns an endpoint into a slow
///    reader: deliveries to it serialize through a token-bucket-style
///    drain, so a fast sender's in-flight bytes pile up against the
///    send-queue cap — the slowloris scenario.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/timer_wheel.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"
#include "sim/random.h"

namespace icollect::net {

class LoopbackNet {
 public:
  struct Options {
    double tick_seconds = 0.0005;   ///< virtual tick of the shared wheel
    double latency = 0.001;         ///< one-way delivery latency (seconds)
    double latency_jitter = 0.0;    ///< uniform extra in [0, jitter)
    double drop_probability = 0.0;  ///< per-send link loss
    std::size_t chunk_bytes = 0;    ///< 0 = deliver whole; else split
    std::size_t send_queue_cap_bytes = 4U << 20U;  ///< per-endpoint in-flight
    std::uint64_t seed = 1;         ///< drives drops and jitter only
  };

  explicit LoopbackNet(Options opts);

  LoopbackNet(const LoopbackNet&) = delete;
  LoopbackNet& operator=(const LoopbackNet&) = delete;

  /// One attached endpoint. NodeIds handed to handlers are the *remote*
  /// endpoint's index in this hub.
  class Endpoint final : public Transport {
   public:
    void set_handler(TransportHandler* handler) override {
      handler_ = handler;
    }
    bool send(NodeId peer, std::span<const std::uint8_t> bytes) override;
    void close_peer(NodeId peer) override;

    [[nodiscard]] NodeId id() const noexcept { return id_; }

   private:
    friend class LoopbackNet;
    Endpoint(LoopbackNet* hub, NodeId id) : hub_{hub}, id_{id} {}

    LoopbackNet* hub_;
    NodeId id_;
    TransportHandler* handler_ = nullptr;
    std::vector<std::uint8_t> links_;     ///< links_[peer] != 0 iff connected
    std::size_t in_flight_bytes_ = 0;
    bool isolated_ = false;               ///< partitioned away (blackhole)
    double drain_rate_ = 0.0;             ///< bytes/sec a slow reader absorbs
    double drain_next_free_ = 0.0;        ///< when its drain queue empties
  };

  /// Create a new endpoint; its NodeId is the creation index.
  Endpoint& create_endpoint();

  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] Endpoint& endpoint(NodeId id) {
    return *endpoints_.at(id);
  }

  /// Wire two endpoints (symmetric); fires on_peer_up on both handlers.
  void connect(NodeId a, NodeId b);

  /// Tear a link down (symmetric); fires on_peer_down on both sides.
  void disconnect(NodeId a, NodeId b);

  // --- fault injection ----------------------------------------------------
  /// Blackhole the `from`→`to` direction only: sends succeed from the
  /// sender's point of view, the bytes vanish (counted in
  /// fault_drops()), and no on_peer_down fires — a NAT-like one-way
  /// reachability failure. The reverse direction is unaffected.
  void block_link(NodeId from, NodeId to);
  void unblock_link(NodeId from, NodeId to);
  [[nodiscard]] bool link_blocked(NodeId from, NodeId to) const;

  /// Blackhole every path to and from `id` (both directions). Bytes
  /// already in flight toward an endpoint isolated before delivery are
  /// eaten too — partitions don't wait for the pipe to empty.
  void set_isolated(NodeId id, bool isolated);
  [[nodiscard]] bool is_isolated(NodeId id) const {
    return endpoints_.at(id)->isolated_;
  }

  /// Arm a partition window on the virtual clock: every id in `ids`
  /// becomes isolated at time `at` and heals at `heal_at`.
  /// Preconditions: now() <= at < heal_at.
  void schedule_partition(double at, double heal_at,
                          std::vector<NodeId> ids);

  /// Make `id` a slow reader absorbing at most `bytes_per_second`
  /// (0 restores unlimited drain). Deliveries to it serialize through
  /// the drain, holding each sender's in-flight bytes until absorbed —
  /// so a slow reader pushes fast senders into send-queue refusals.
  void set_drain_rate(NodeId id, double bytes_per_second);

  [[nodiscard]] TimerWheel& timers() noexcept { return wheel_; }
  [[nodiscard]] double now() const noexcept { return wheel_.now(); }

  /// Advance virtual time (delivering messages, firing node timers).
  void run_until(double t) { wheel_.advance_to(t); }
  void run_for(double dt) { wheel_.advance_to(wheel_.now() + dt); }

  // --- fault/traffic accounting -----------------------------------------
  [[nodiscard]] std::uint64_t sends() const noexcept { return sends_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  /// Sends eaten by injected faults (blocked links / isolation), as
  /// opposed to the random `drop_probability` losses in drops().
  [[nodiscard]] std::uint64_t fault_drops() const noexcept {
    return fault_drops_;
  }
  [[nodiscard]] std::uint64_t backpressure_refusals() const noexcept {
    return refusals_;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return bytes_delivered_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t deliveries() const noexcept {
    return deliveries_;
  }
  [[nodiscard]] std::uint64_t chunks() const noexcept { return chunks_; }
  /// Bytes currently in flight across all endpoints / the largest such
  /// total ever observed.
  [[nodiscard]] std::size_t in_flight_bytes() const noexcept {
    return in_flight_total_;
  }
  [[nodiscard]] std::size_t in_flight_high_watermark() const noexcept {
    return in_flight_hwm_;
  }

  /// Export the hub's counters and in-flight gauges into `registry` as
  /// pull-based gauges under `prefix`. Telemetry never touches the hub's
  /// RNG, so seeded runs stay bit-reproducible with metrics attached.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "loopback.");

 private:
  bool do_send(Endpoint& from, NodeId to,
               std::span<const std::uint8_t> bytes);
  void deliver(NodeId from, NodeId to, std::shared_ptr<std::vector<std::uint8_t>> data);
  void sever(NodeId a, NodeId b);

  Options opts_;
  TimerWheel wheel_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// One-way blocked directions, keyed (from << 32) | to.
  std::unordered_set<std::uint64_t> blocked_links_;
  std::uint64_t sends_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t refusals_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t chunks_ = 0;
  std::size_t in_flight_total_ = 0;  ///< across all endpoints
  std::size_t in_flight_hwm_ = 0;
};

}  // namespace icollect::net
