#include "net/buffer_pool.h"

#include <utility>

#include "common/assert.h"

namespace icollect::net {

BufferPool::BufferPool(Options opts) : opts_{opts} {
  ICOLLECT_EXPECTS(opts.max_buffers > 0);
  ICOLLECT_EXPECTS(opts.default_capacity > 0);
  ICOLLECT_EXPECTS(opts.max_retained_capacity >= opts.default_capacity);
  free_.reserve(opts.max_buffers);
}

BufferPool::Buffer BufferPool::acquire(std::size_t min_capacity) {
  const std::size_t want =
      min_capacity > opts_.default_capacity ? min_capacity
                                            : opts_.default_capacity;
  Buffer buf;
  {
    std::lock_guard<std::mutex> lock{mu_};
    ++outstanding_;
    if (outstanding_ > outstanding_hwm_) outstanding_hwm_ = outstanding_;
    if (!free_.empty()) {
      // Prefer the most recently released buffer (back of the freelist):
      // it is the one most likely still cache-warm.
      buf = std::move(free_.back());
      free_.pop_back();
      ++hits_;
    } else {
      ++misses_;
    }
  }
  if (buf.capacity() < want) buf.reserve(want);
  return buf;
}

void BufferPool::release(Buffer&& buf) {
  Buffer local = std::move(buf);  // destructor (if dropped) runs unlocked
  std::lock_guard<std::mutex> lock{mu_};
  if (outstanding_ > 0) --outstanding_;
  ++releases_;
  if (free_.size() >= opts_.max_buffers ||
      local.capacity() > opts_.max_retained_capacity) {
    ++dropped_;
    return;
  }
  free_.push_back(std::move(local));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock{mu_};
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.releases = releases_;
  s.dropped = dropped_;
  s.idle = free_.size();
  s.outstanding = outstanding_;
  s.outstanding_hwm = outstanding_hwm_;
  for (const auto& b : free_) s.idle_bytes += b.capacity();
  return s;
}

double BufferPool::hit_rate() const {
  std::lock_guard<std::mutex> lock{mu_};
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 1.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace icollect::net
