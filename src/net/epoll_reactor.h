#pragma once

/// \file epoll_reactor.h
/// Level-triggered epoll reactor sharded across threads — the Linux
/// transport that takes one live node from poll(2)'s few-thousand-peer
/// ceiling to tens of thousands of concurrent connections
/// (docs/PERFORMANCE.md, "Reactor architecture").
///
/// Why poll(2) caps out: every wakeup rebuilds an n-entry pollfd array
/// and makes the kernel re-scan all n fds, so cost per wakeup is O(n)
/// whether 1 or 1000 sockets are ready. epoll registers interest once
/// and each wakeup costs O(ready). On top of that this reactor adds the
/// three scalability ingredients the ROADMAP names (libtorrent's
/// session/peer-connection layering is the exemplar):
///
///  - **Sharding.** Connections are distributed over R reactor threads
///    by connection-id hash (round-robin in practice); each shard owns
///    its own epoll set, eventfd wakeup, TimerWheel (connect timeouts,
///    retries, idle reaping) and the fds pinned to it, so no fd is ever
///    touched by two threads.
///  - **Pooled buffers.** Every read lands in a BufferPool buffer that
///    is handed to the dispatch thread by move and recycled; every
///    send() copies its frame into a pooled buffer that rides the
///    connection's output queue. Steady state allocates nothing.
///  - **Batching.** Queued frames drain through writev (one syscall for
///    up to kMaxIov frames) and reads drain until EAGAIN, so a busy
///    wakeup moves many frames per syscall.
///
/// Threading contract: the public API (listen/connect/send/close_peer/
/// poll_once/timers) is driven by ONE thread — the same thread that
/// constructed the reactor ("the main thread"). Shard threads never run
/// handler code; they forward lifecycle and byte events through a
/// mutex-guarded handoff queue that poll_once() drains, so
/// TransportHandler callbacks (and therefore the whole NodeBase state
/// machine) stay single-threaded exactly as over TcpTransport or the
/// loopback. timers() is the node-level wheel and fires in poll_once.
///
/// Only compiled where <sys/epoll.h> exists (ICOLLECT_HAVE_EPOLL);
/// elsewhere make_stream_transport() falls back to the poll backend.

#include "net/stream_transport.h"

#if defined(ICOLLECT_HAVE_EPOLL)

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/buffer_pool.h"
#include "net/timer_wheel.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

namespace icollect::net {

class EpollReactor final : public StreamTransport {
 public:
  using Options = StreamOptions;

  EpollReactor();
  explicit EpollReactor(Options opts);
  ~EpollReactor() override;

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  void set_handler(TransportHandler* handler) override { handler_ = handler; }

  std::uint16_t listen(const std::string& host, std::uint16_t port) override;
  NodeId connect(const std::string& host, std::uint16_t port) override;
  bool send(NodeId peer, std::span<const std::uint8_t> bytes) override;
  void close_peer(NodeId peer) override;

  [[nodiscard]] TimerWheel& timers() noexcept override { return wheel_; }
  [[nodiscard]] double now() const override;
  void poll_once(double max_wait = 0.05) override;
  [[nodiscard]] std::size_t open_connections() const override;
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "epoll.") override;
  [[nodiscard]] const char* backend_name() const noexcept override {
    return "epoll";
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const BufferPool& pool() const noexcept { return pool_; }

  // --- counters (readable from the driving thread at any time) -----------
  [[nodiscard]] std::uint64_t backpressure_refusals() const noexcept {
    return refusals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sends() const noexcept {
    return sends_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t accepts() const noexcept {
    return accepts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connects_ok() const noexcept {
    return connects_ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connects_failed() const noexcept {
    return connects_failed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connect_retries() const noexcept {
    return connect_retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t closes() const noexcept {
    return closes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t idle_reaps() const noexcept {
    return reaps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t partial_drains() const noexcept {
    return partial_drains_.load(std::memory_order_relaxed);
  }
  /// epoll_wait returns across all shards / ready events they carried.
  [[nodiscard]] std::uint64_t wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }
  /// Bytes moved by vectored writes / the writev calls that moved them.
  [[nodiscard]] std::uint64_t batched_bytes() const noexcept {
    return batched_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t writev_calls() const noexcept {
    return writev_calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t send_queue_bytes() const noexcept {
    return outq_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t send_queue_high_watermark() const noexcept {
    return outq_hwm_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t shard_connections(std::size_t shard) const;

 private:
  /// State shared between the main thread and the owning shard for one
  /// connection. shared_ptr-held so neither side ever dereferences a
  /// freed entry whatever the teardown interleaving.
  struct ConnShared {
    NodeId id = kInvalidNodeId;
    std::uint32_t shard = 0;
    std::atomic<std::size_t> queued{0};  ///< unsent bytes (cap accounting)
    std::atomic<bool> closed_by_user{false};
  };
  using SharedRef = std::shared_ptr<ConnShared>;

  struct Command {
    enum class Kind : std::uint8_t {
      kConnect,
      kAdopt,   ///< accepted fd handed to its home shard
      kSend,
      kClose,   ///< user-initiated; flush best-effort, no Down notify
      kListen,  ///< register the (already bound) listen fd
    };
    Kind kind;
    SharedRef shared;
    BufferPool::Buffer buf;  ///< kSend: the frame bytes
    std::string host;        ///< kConnect
    std::uint16_t port = 0;  ///< kConnect
    int fd = -1;             ///< kAdopt / kListen
  };

  struct Event {
    enum class Kind : std::uint8_t { kUp, kDown, kBytes };
    Kind kind;
    SharedRef shared;
    BufferPool::Buffer buf;  ///< kBytes
    std::size_t len = 0;     ///< kBytes: valid prefix of buf
  };

  struct Conn;   ///< shard-owned; defined in the .cpp
  struct Shard;  ///< defined in the .cpp

  void enqueue_command(std::uint32_t shard, Command&& cmd);
  void push_event(Event&& ev);
  void shard_main(Shard& shard);

  // Shard-side helpers (run on shard threads).
  void shard_run_commands(Shard& shard, std::vector<Command>& cmds);
  void shard_accept(Shard& shard);
  void shard_connect_attempt(Shard& shard, Conn& conn);
  void shard_fail_connect(Shard& shard, Conn& conn);
  void shard_finish_connect(Shard& shard, Conn& conn);
  void shard_readable(Shard& shard, Conn& conn);
  void shard_writable(Shard& shard, Conn& conn);
  void shard_flush(Shard& shard, Conn& conn);
  void shard_close(Shard& shard, Conn& conn);
  void shard_update_interest(Shard& shard, Conn& conn);
  void shard_reap_idle(Shard& shard);

  Options opts_;
  TimerWheel wheel_;  ///< node-level timers; main thread only
  TransportHandler* handler_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  BufferPool pool_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  std::atomic<NodeId> next_id_{1};
  bool listening_ = false;

  // Main-thread view of live connections (send/close routing).
  std::unordered_map<NodeId, SharedRef> peers_;

  // Shard → main handoff queue.
  std::mutex ev_mu_;
  std::condition_variable ev_cv_;
  std::vector<Event> ev_queue_;
  std::vector<Event> ev_local_;  ///< main-thread swap target

  std::atomic<std::uint64_t> refusals_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> sends_{0};
  std::atomic<std::uint64_t> accepts_{0};
  std::atomic<std::uint64_t> connects_ok_{0};
  std::atomic<std::uint64_t> connects_failed_{0};
  std::atomic<std::uint64_t> connect_retries_{0};
  std::atomic<std::uint64_t> closes_{0};
  std::atomic<std::uint64_t> reaps_{0};
  std::atomic<std::uint64_t> partial_drains_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> batched_bytes_{0};
  std::atomic<std::uint64_t> writev_calls_{0};
  std::atomic<std::size_t> outq_bytes_{0};
  std::atomic<std::size_t> outq_hwm_{0};
};

}  // namespace icollect::net

#endif  // ICOLLECT_HAVE_EPOLL
