#pragma once

/// \file timer_wheel.h
/// Hashed timer wheel driving every time-based behavior of the live
/// nodes (gossip firing, per-block TTL expiry, pull cadence, retries).
///
/// Time is discrete: the wheel advances in fixed ticks of
/// `tick_seconds`, and a timer due on a tick runs when that tick is
/// advanced over. Who advances the wheel defines the clock —
/// LoopbackNet advances it on *virtual* time (making whole multi-node
/// clusters deterministic and instantaneous), TcpTransport advances it
/// off the wall clock. Within one tick, callbacks run in scheduling
/// order, so a fixed seed reproduces an identical execution.
///
/// Scheduling and cancellation are O(1); a tick costs O(entries hashed
/// to its slot). Callbacks may freely schedule and cancel timers.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/assert.h"

namespace icollect::net {

class TimerWheel {
 public:
  using Callback = std::function<void()>;
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  explicit TimerWheel(double tick_seconds, std::size_t slot_count = 512)
      : tick_{tick_seconds}, slots_{slot_count} {
    ICOLLECT_EXPECTS(tick_seconds > 0.0);
    ICOLLECT_EXPECTS(slot_count > 0);
  }

  [[nodiscard]] double tick_seconds() const noexcept { return tick_; }
  [[nodiscard]] std::uint64_t now_tick() const noexcept { return tick_now_; }
  [[nodiscard]] double now() const noexcept {
    return static_cast<double>(tick_now_) * tick_;
  }

  /// Schedule `cb` to run `delay_seconds` from now, rounded up to the
  /// next whole tick (minimum one tick — a timer never fires within the
  /// tick that scheduled it).
  TimerId schedule_after(double delay_seconds, Callback cb) {
    ICOLLECT_EXPECTS(delay_seconds >= 0.0);
    auto ticks = static_cast<std::uint64_t>(delay_seconds / tick_);
    if (static_cast<double>(ticks) * tick_ < delay_seconds) ++ticks;
    if (ticks == 0) ticks = 1;
    const std::uint64_t due = tick_now_ + ticks;
    const TimerId id = next_id_++;
    slots_[due % slots_.size()].push_back(
        Entry{id, due, std::move(cb)});
    live_.insert(id);
    return id;
  }

  /// Cancel a pending timer. Returns true if it was still pending.
  bool cancel(TimerId id) {
    const auto it = live_.find(id);
    if (it == live_.end()) return false;
    live_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

  /// Advance the wheel by `ticks`, running every due callback.
  void advance(std::uint64_t ticks) {
    for (std::uint64_t i = 0; i < ticks; ++i) step();
  }

  /// Advance until now() >= t_seconds (no-op if already there).
  void advance_to(double t_seconds) {
    while (now() < t_seconds) step();
  }

 private:
  struct Entry {
    TimerId id;
    std::uint64_t due;
    Callback cb;
  };

  void step() {
    ++tick_now_;
    auto& slot = slots_[tick_now_ % slots_.size()];
    if (slot.empty()) return;
    // Move the slot out: callbacks may schedule into this same slot
    // (future rounds) while we iterate.
    std::vector<Entry> entries;
    entries.swap(slot);
    for (auto& e : entries) {
      if (e.due != tick_now_) {
        // A future round; put it back.
        slots_[e.due % slots_.size()].push_back(std::move(e));
        continue;
      }
      const auto cit = cancelled_.find(e.id);
      if (cit != cancelled_.end()) {
        cancelled_.erase(cit);
        continue;
      }
      live_.erase(e.id);
      e.cb();
    }
  }

  double tick_;
  std::uint64_t tick_now_ = 0;
  TimerId next_id_ = 1;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_set<TimerId> live_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace icollect::net
