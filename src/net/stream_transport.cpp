#include "net/stream_transport.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "net/tcp.h"

#if defined(ICOLLECT_HAVE_EPOLL)
#include "net/epoll_reactor.h"
#endif

namespace icollect::net {

bool epoll_backend_available() noexcept {
#if defined(ICOLLECT_HAVE_EPOLL)
  return true;
#else
  return false;
#endif
}

std::unique_ptr<StreamTransport> make_stream_transport(
    std::string_view backend, const StreamOptions& opts) {
  if (backend == "poll") {
    return std::make_unique<TcpTransport>(opts);
  }
  if (backend == "epoll") {
#if defined(ICOLLECT_HAVE_EPOLL)
    return std::make_unique<EpollReactor>(opts);
#else
    throw std::invalid_argument(
        "stream transport: this build has no epoll backend "
        "(<sys/epoll.h> was not found at configure time)");
#endif
  }
  if (backend == "auto") {
#if defined(ICOLLECT_HAVE_EPOLL)
    return std::make_unique<EpollReactor>(opts);
#else
    return std::make_unique<TcpTransport>(opts);
#endif
  }
  throw std::invalid_argument("stream transport: unknown backend '" +
                              std::string{backend} +
                              "' (expected poll, epoll, or auto)");
}

}  // namespace icollect::net
