#include "proto/peer_buffer.h"

#include <utility>

namespace icollect::proto {

void PeerBuffer::insert(coding::BlockHandle handle,
                        coding::CodedBlock block) {
  ICOLLECT_EXPECTS(has_room(1));
  ICOLLECT_EXPECTS(!handle_index_.contains(handle));
  const coding::SegmentId id = block.segment;
  auto it = segments_.find(id);
  if (it == segments_.end()) {
    it = segments_
             .emplace(id, coding::SegmentBuffer{id,
                                                block.coefficients.size()})
             .first;
    segment_pos_[id] = segment_list_.size();
    segment_list_.push_back(id);
    arrival_seq_[id] = next_arrival_seq_++;
  }
  it->second.add(handle, std::move(block));
  handle_index_[handle] = id;
  ++total_blocks_;
}

std::optional<coding::SegmentId> PeerBuffer::erase(
    coding::BlockHandle handle) {
  const auto hit = handle_index_.find(handle);
  if (hit == handle_index_.end()) return std::nullopt;
  const coding::SegmentId id = hit->second;
  handle_index_.erase(hit);
  auto sit = segments_.find(id);
  ICOLLECT_ENSURES(sit != segments_.end());
  const bool removed = sit->second.remove(handle);
  ICOLLECT_ENSURES(removed);
  --total_blocks_;
  if (sit->second.empty()) {
    segments_.erase(sit);
    drop_segment_entry(id);
    arrival_seq_.erase(id);
  }
  return id;
}

const coding::SegmentId& PeerBuffer::newest_segment() const {
  ICOLLECT_EXPECTS(!segment_list_.empty());
  const coding::SegmentId* best = &segment_list_.front();
  std::uint64_t best_seq = 0;
  bool first = true;
  for (const auto& id : segment_list_) {
    const std::uint64_t seq = arrival_seq_.at(id);
    if (first || seq > best_seq) {
      best = &id;
      best_seq = seq;
      first = false;
    }
  }
  return *best;
}

const coding::SegmentId& PeerBuffer::rarest_segment() const {
  ICOLLECT_EXPECTS(!segment_list_.empty());
  const coding::SegmentId* best = nullptr;
  std::size_t best_count = 0;
  std::uint64_t best_seq = 0;
  for (const auto& id : segment_list_) {
    const std::size_t count = segments_.at(id).block_count();
    const std::uint64_t seq = arrival_seq_.at(id);
    if (best == nullptr || count < best_count ||
        (count == best_count && seq > best_seq)) {
      best = &id;
      best_count = count;
      best_seq = seq;
    }
  }
  return *best;
}

const coding::SegmentBuffer* PeerBuffer::find(
    const coding::SegmentId& id) const {
  const auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : &it->second;
}

coding::SegmentBuffer* PeerBuffer::find(const coding::SegmentId& id) {
  const auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : &it->second;
}

std::vector<coding::BlockHandle> PeerBuffer::all_handles() const {
  std::vector<coding::BlockHandle> out;
  out.reserve(handle_index_.size());
  for (const auto& [h, _] : handle_index_) out.push_back(h);
  return out;
}

std::size_t PeerBuffer::clear() {
  const std::size_t lost = total_blocks_;
  segments_.clear();
  handle_index_.clear();
  segment_list_.clear();
  segment_pos_.clear();
  arrival_seq_.clear();
  total_blocks_ = 0;
  return lost;
}

void PeerBuffer::drop_segment_entry(const coding::SegmentId& id) {
  const auto pit = segment_pos_.find(id);
  ICOLLECT_ENSURES(pit != segment_pos_.end());
  const std::size_t pos = pit->second;
  const std::size_t last = segment_list_.size() - 1;
  if (pos != last) {
    segment_list_[pos] = segment_list_[last];
    segment_pos_[segment_list_[pos]] = pos;
  }
  segment_list_.pop_back();
  segment_pos_.erase(pit);
}

}  // namespace icollect::proto
