#pragma once

/// \file peer_buffer.h
/// A peer's bounded buffer of coded blocks organized by segment — the
/// storage half of the protocol core, shared verbatim by the simulator
/// and the live runtime.
///
/// The buffer realizes the paper's storage rules (Sec. 2): capacity cap
/// of B blocks ("if a peer's buffer is full, it will not accept blocks
/// from its neighbors"), per-block TTL handled by the driver through
/// stable BlockHandles, and uniform random segment selection for both
/// gossip ("chooses a segment r u.a.r. from among all the segments of
/// which it has at least one (coded) block") and server pulls.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_buffer.h"
#include "coding/segment_id.h"
#include "common/assert.h"
#include "common/rng.h"

namespace icollect::proto {

class PeerBuffer {
 public:
  explicit PeerBuffer(std::size_t capacity) : cap_{capacity} {
    ICOLLECT_EXPECTS(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  /// Total blocks currently buffered (the peer's bipartite degree).
  [[nodiscard]] std::size_t size() const noexcept { return total_blocks_; }
  [[nodiscard]] bool empty() const noexcept { return total_blocks_ == 0; }
  [[nodiscard]] bool full() const noexcept { return total_blocks_ >= cap_; }
  [[nodiscard]] bool has_room(std::size_t n) const noexcept {
    return total_blocks_ + n <= cap_;
  }

  /// Number of distinct segments with at least one buffered block.
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segment_list_.size();
  }

  /// Insert a block under a caller-allocated stable handle.
  /// Precondition: has_room(1).
  void insert(coding::BlockHandle handle, coding::CodedBlock block);

  /// Remove the block with this handle (TTL expiry). Returns the id of
  /// the segment it belonged to, or nullopt if the handle is unknown.
  std::optional<coding::SegmentId> erase(coding::BlockHandle handle);

  /// The per-segment store, or nullptr if no block of that segment.
  [[nodiscard]] const coding::SegmentBuffer* find(
      const coding::SegmentId& id) const;
  [[nodiscard]] coding::SegmentBuffer* find(const coding::SegmentId& id);

  /// Uniformly random buffered segment. Precondition: !empty().
  [[nodiscard]] const coding::SegmentId& random_segment(
      common::Rng& rng) const {
    ICOLLECT_EXPECTS(!segment_list_.empty());
    return segment_list_[rng.uniform_index(segment_list_.size())];
  }

  /// The buffered segment this peer most recently saw for the first
  /// time (newest-first gossip). Precondition: !empty().
  [[nodiscard]] const coding::SegmentId& newest_segment() const;

  /// The buffered segment with the fewest local blocks, ties broken by
  /// recency (rarest-first gossip). Precondition: !empty().
  [[nodiscard]] const coding::SegmentId& rarest_segment() const;

  /// All buffered segment ids (unspecified order).
  [[nodiscard]] const std::vector<coding::SegmentId>& segments()
      const noexcept {
    return segment_list_;
  }

  /// Handles of every buffered block (for departure bookkeeping).
  [[nodiscard]] std::vector<coding::BlockHandle> all_handles() const;

  /// Drop everything (peer departure). Returns the number of blocks lost.
  std::size_t clear();

 private:
  void drop_segment_entry(const coding::SegmentId& id);

  std::size_t cap_;
  std::size_t total_blocks_ = 0;
  std::unordered_map<coding::SegmentId, coding::SegmentBuffer> segments_;
  std::unordered_map<coding::BlockHandle, coding::SegmentId> handle_index_;
  // Indexable list of buffered segment ids for O(1) uniform selection,
  // with positions tracked for O(1) removal (swap-pop).
  std::vector<coding::SegmentId> segment_list_;
  std::unordered_map<coding::SegmentId, std::size_t> segment_pos_;
  // First-arrival sequence number per buffered segment (monotonic per
  // buffer), for the newest-first / rarest-first gossip policies.
  std::unordered_map<coding::SegmentId, std::uint64_t> arrival_seq_;
  std::uint64_t next_arrival_seq_ = 0;
};

}  // namespace icollect::proto
