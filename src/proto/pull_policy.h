#pragma once

/// \file pull_policy.h
/// Strategy seam for the server-side pull scheduling decision.
///
/// The paper's rule (Sec. 2) is uniform over "all the peers with
/// non-null buffers"; UniformPullPolicy realizes it and is the default
/// in both drivers. Smarter policies (rarest-first by server-side rank
/// deficit, deficit-weighted sampling — see docs/PULL_POLICIES.md) live
/// in src/sched/ behind this seam and are written once for the
/// simulator and the live ServerNode alike.
///
/// A policy answers two questions per pull:
///  - *which segment* does the server want next? want_segment() consults
///    a DeficitView (the abstract face of sched::RankTracker); the
///    uniform policy wants nothing specific and lets the peer answer
///    from its own buffer.
///  - *which peer* gets the request? Two entry points, matching the two
///    ways a driver knows eligibility:
///     - pick(): the candidate set is already filtered (the simulator's
///       exact non-empty-slot list) — one uniform draw.
///     - pick_filtered(): eligibility is only testable per candidate
///       (the live server's occupancy heuristic) — probe-then-scan
///       selection via proto::uniform_over_eligible.
///
/// Determinism contract: every policy draws from the caller's Rng in a
/// documented, fixed order. UniformPullPolicy::pick draws exactly one
/// uniform_index(n); want_segment draws nothing when it returns nullopt.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "coding/segment_id.h"
#include "common/rng.h"
#include "proto/selection.h"

namespace icollect::proto {

/// Driver-facing names for the concrete policies. The enum lives in
/// proto (not sched) so node/ and p2p/ configs can name a policy
/// without depending on the scheduling subsystem.
enum class PullPolicyKind : std::uint8_t {
  kUniform = 0,
  kRarestFirst = 1,
  kDeficitWeighted = 2,
};

[[nodiscard]] constexpr const char* to_string(PullPolicyKind k) noexcept {
  switch (k) {
    case PullPolicyKind::kUniform: return "uniform";
    case PullPolicyKind::kRarestFirst: return "rarest";
    case PullPolicyKind::kDeficitWeighted: return "deficit";
  }
  return "?";
}

/// Parse a CLI policy name; nullopt on unknown names.
[[nodiscard]] inline std::optional<PullPolicyKind> parse_pull_policy_kind(
    std::string_view name) noexcept {
  if (name == "uniform") return PullPolicyKind::kUniform;
  if (name == "rarest" || name == "rarest-first") {
    return PullPolicyKind::kRarestFirst;
  }
  if (name == "deficit" || name == "deficit-weighted") {
    return PullPolicyKind::kDeficitWeighted;
  }
  return std::nullopt;
}

/// Read-only view of the server's per-segment rank deficit, exposed to
/// policies in a deterministic iteration order. Implemented by
/// sched::RankTracker; proto/ sees only this face (layering: proto
/// must not include sched).
class DeficitView {
 public:
  virtual ~DeficitView() = default;

  /// Segments known to the server and not yet decoded ("open").
  [[nodiscard]] virtual std::size_t open_count() const noexcept = 0;
  /// The i-th open segment (i < open_count()), stable between mutations.
  [[nodiscard]] virtual const coding::SegmentId& open_segment(
      std::size_t i) const = 0;
  /// Remaining rank deficit of the i-th open segment (>= 1).
  [[nodiscard]] virtual std::size_t open_deficit(std::size_t i) const = 0;
  /// Sum of open_deficit over all open segments.
  [[nodiscard]] virtual std::size_t total_deficit() const noexcept = 0;
};

class PullPolicy {
 public:
  virtual ~PullPolicy() = default;

  /// Pick among n candidates all known to be eligible. Precondition:
  /// n > 0.
  [[nodiscard]] virtual std::size_t pick(common::Rng& rng,
                                         std::size_t n) const = 0;

  /// Pick among n candidates when eligibility must be tested per index:
  /// `probes` rejection samples, then one exhaustive scan. Returns
  /// kNoSelection when no candidate is eligible.
  [[nodiscard]] virtual std::size_t pick_filtered(
      common::Rng& rng, std::size_t n, int probes,
      EligibleRef eligible) const = 0;

  /// The segment this policy wants pulled next, given the server's
  /// current deficit view — or nullopt to let the answering peer choose
  /// uniformly from its own buffer (the paper's rule, and every
  /// policy's behavior when the view has no open segments). Must not
  /// touch the Rng when returning nullopt.
  [[nodiscard]] virtual std::optional<coding::SegmentId> want_segment(
      common::Rng& rng, const DeficitView& view) const {
    (void)rng;
    (void)view;
    return std::nullopt;
  }

  /// Whether the driver should maintain a RankTracker and request
  /// BUFFER_SUMMARY feedback for this policy. False for uniform — the
  /// default wire traffic and RNG draw sequence stay byte-identical.
  [[nodiscard]] virtual bool wants_feedback() const noexcept { return false; }
};

/// The paper's rule: uniform at random over eligible peers, no segment
/// preference. pick() draws exactly one uniform_index(n).
class UniformPullPolicy final : public PullPolicy {
 public:
  [[nodiscard]] std::size_t pick(common::Rng& rng,
                                 std::size_t n) const override {
    return rng.uniform_index(n);
  }

  [[nodiscard]] std::size_t pick_filtered(common::Rng& rng, std::size_t n,
                                          int probes,
                                          EligibleRef eligible) const override {
    return uniform_over_eligible(rng, n, probes, eligible);
  }
};

}  // namespace icollect::proto
