#pragma once

/// \file pull_policy.h
/// Strategy seam for the server-side pull-target choice.
///
/// The paper's rule (Sec. 2) is uniform over "all the peers with
/// non-null buffers"; UniformPullPolicy realizes it and is the default
/// in both drivers. The seam exists so smarter policies (rarest-first
/// by server-side rank deficit, deficit-weighted sampling — see
/// ROADMAP.md) can be written once and dropped into the simulator and
/// the live ServerNode alike.
///
/// Two entry points, matching the two ways a driver knows eligibility:
///  - pick(): the candidate set is already filtered (the simulator's
///    exact non-empty-slot list) — one uniform draw.
///  - pick_filtered(): eligibility is only testable per candidate (the
///    live server's occupancy heuristic) — probe-then-scan selection
///    via proto::uniform_over_eligible.

#include <cstddef>

#include "common/rng.h"
#include "proto/selection.h"

namespace icollect::proto {

class PullPolicy {
 public:
  virtual ~PullPolicy() = default;

  /// Pick among n candidates all known to be eligible. Precondition:
  /// n > 0. Draws exactly once for the uniform default.
  [[nodiscard]] virtual std::size_t pick(common::Rng& rng,
                                         std::size_t n) const {
    return rng.uniform_index(n);
  }

  /// Pick among n candidates when eligibility must be tested per index:
  /// `probes` rejection samples, then one exhaustive scan. Returns
  /// kNoSelection when no candidate is eligible.
  [[nodiscard]] virtual std::size_t pick_filtered(
      common::Rng& rng, std::size_t n, int probes,
      EligibleRef eligible) const {
    return uniform_over_eligible(rng, n, probes, eligible);
  }
};

/// The paper's rule: uniform at random over eligible peers.
class UniformPullPolicy final : public PullPolicy {};

}  // namespace icollect::proto
