#pragma once

/// \file peer_core.h
/// The peer half of the Sec. 2 protocol as a pure, driver-agnostic state
/// machine. One implementation serves both drivers: the discrete-event
/// simulator (p2p::Network) feeds it from the event queue, the live
/// runtime (node::PeerNode) from wire frames — the core never touches a
/// transport, a timer wheel, or a clock.
///
/// Inputs are typed method calls (inject fired, gossip fired, block
/// arrived, pull asked, timer expired, ACK seen); outputs are return
/// values plus two injected sinks: `arm_ttl` (schedule this block's
/// Exp(γ) expiry — the only timing the core ever requests, expressed as
/// a delay so it is clock-agnostic) and an optional `stored` hook for
/// per-block driver bookkeeping (the simulator's registry degree,
/// occupancy lists and time-weighted metrics).
///
/// Determinism contract: all randomness flows through the injected
/// common::Rng in a fixed draw order — segment choice, coding
/// coefficients, payload bytes, TTL lifetimes. The simulator shares one
/// stream across every core; the live runtime gives each node its own.
/// Seeded outputs of both drivers are byte-identical to the
/// pre-extraction implementations (tests/golden/, proto-differential).

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coding/coded_block.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "coding/segment_id.h"
#include "common/assert.h"
#include "common/rng.h"
#include "proto/integrity.h"
#include "proto/peer_buffer.h"
#include "proto/policy.h"

namespace icollect::proto {

class PeerCore {
 public:
  struct Params {
    std::size_t segment_size = 4;   ///< s blocks per segment
    std::size_t buffer_cap = 32;    ///< B, max blocks buffered
    double gamma = 1.0;             ///< per-block TTL expiry rate γ
    std::size_t payload_bytes = 0;  ///< real payload per block (0 = none)
    GossipPolicy gossip_policy = GossipPolicy::kUniformSegment;
    /// Drop/refuse blocks of segments a server already ACKed decoded
    /// (live-runtime option; the simulator has no peer-visible ACKs).
    bool drop_on_ack = false;
    /// Keep source-side encoders for own segments until first ACK so
    /// TTL-thinned segments can be re-seeded (live-runtime option).
    bool retain_own_until_acked = false;
    /// Record per-block CRC-32s of own injected payloads for end-to-end
    /// verification (live tests); the simulator keeps them in its
    /// registry instead and leaves this off.
    bool record_own_crcs = false;
  };

  /// Required sink: schedule the Exp(γ) expiry of a stored block after
  /// `delay` seconds; the driver must call on_ttl_expired(handle) then.
  using ArmTtlFn = std::function<void(coding::BlockHandle, double delay)>;
  /// Optional sink: a block of `segment` entered the buffer, which held
  /// `blocks_before` blocks. Fires after insertion, before the TTL draw.
  using StoredFn =
      std::function<void(const coding::SegmentId&, std::size_t blocks_before)>;
  /// Optional override for the s original payload blocks of a new
  /// segment (workload generators). Default: deterministic
  /// pseudo-random bytes from the core's RNG stream.
  using PayloadSourceFn =
      std::function<std::vector<std::vector<std::uint8_t>>(
          const coding::SegmentId& id, std::size_t segment_size,
          std::size_t payload_bytes)>;

  /// The core draws from — but does not own — `rng`, so a driver can
  /// share one stream across many cores (simulator) or dedicate one per
  /// node (live runtime). Both must outlive the core.
  PeerCore(const Params& params, coding::OriginId origin, common::Rng& rng);

  void set_arm_ttl(ArmTtlFn fn) { arm_ttl_ = std::move(fn); }
  void set_stored_hook(StoredFn fn) { stored_ = std::move(fn); }
  void set_payload_source(PayloadSourceFn fn) {
    payload_source_ = std::move(fn);
  }
  /// Attach the run's shared tag oracle (proto/integrity.h). The core
  /// then registers every segment it injects and quarantines received
  /// blocks that fail verification. nullptr (the default) disables both,
  /// preserving pre-integrity behavior bit for bit. Requires
  /// payload_bytes > 0 — checks over empty payloads are vacuous. The
  /// authority must outlive the core.
  void set_integrity(IntegrityAuthority* authority) {
    ICOLLECT_EXPECTS(authority == nullptr || params_.payload_bytes > 0);
    integrity_ = authority;
  }

  // --- injection ----------------------------------------------------------
  /// Room for a whole segment ("degree no more than B − s", Sec. 2)?
  [[nodiscard]] bool can_inject() const {
    return buffer_.has_room(params_.segment_size);
  }
  /// The id inject() will assign next (for drivers that must register
  /// the segment before the per-block stored hooks fire).
  [[nodiscard]] coding::SegmentId next_segment_id() const {
    return coding::SegmentId{origin_, next_seq_};
  }

  struct Injected {
    coding::SegmentId id;
    /// CRC-32 per original block; empty when payload_bytes == 0.
    std::vector<std::uint32_t> crcs;
  };
  /// Inject one fresh segment: draw payloads, seed the buffer with its s
  /// systematic blocks (arming one TTL each). Precondition: can_inject().
  Injected inject();

  // --- gossip -------------------------------------------------------------
  [[nodiscard]] bool has_blocks() const { return !buffer_.empty(); }
  /// The segment this gossip firing re-codes, per the configured policy
  /// (uniform draws once; newest/rarest draw nothing).
  /// Precondition: has_blocks().
  [[nodiscard]] const coding::SegmentId& choose_gossip_segment();
  /// Fresh random GF(2^8) recombination of the buffered blocks of `seg`.
  /// Precondition: the segment is buffered and non-empty.
  [[nodiscard]] coding::CodedBlock recode(const coding::SegmentId& seg);
  /// recode() into a caller-owned block (allocation-free steady state).
  void recode_into(const coding::SegmentId& seg, coding::CodedBlock& out);

  // --- receiving ----------------------------------------------------------
  enum class AcceptResult : std::uint8_t {
    kStored,           ///< accepted and buffered (TTL armed)
    kShapeMismatch,    ///< wrong segment size / degenerate block — junk
    kPolluted,         ///< failed the integrity check — quarantined
    kAckedSegment,     ///< drop_on_ack and the segment is already ACKed
    kBufferFull,       ///< "if a peer's buffer is full, it will not accept"
    kSegmentFullRank,  ///< peer already holds s independent blocks
  };
  /// Receiver-side acceptance rule (live runtime: the sender picks
  /// blindly and the receiver filters).
  AcceptResult accept(coding::CodedBlock&& block);
  /// Sender-side eligibility rule (simulator: the global view filters
  /// receivers before sending) — the storage-related half of accept().
  [[nodiscard]] bool can_accept(const coding::SegmentId& seg) const {
    if (buffer_.full()) return false;
    const coding::SegmentBuffer* sb = buffer_.find(seg);
    return sb == nullptr || !sb->full_rank();
  }
  /// Store a block unconditionally (simulator delivery after sender-side
  /// filtering). Precondition: the buffer has room.
  coding::BlockHandle store(coding::CodedBlock block);

  // --- server pulls -------------------------------------------------------
  /// The segment a pull is answered from: uniform over buffered
  /// segments ("a (re-coded) block of a random segment", Sec. 2).
  /// Precondition: has_blocks().
  [[nodiscard]] const coding::SegmentId& choose_pull_segment() {
    ICOLLECT_EXPECTS(!buffer_.empty());
    return buffer_.random_segment(rng_);
  }
  /// Answer a pull request: false (and `out` untouched) when the buffer
  /// is empty, else a re-coded block of a random buffered segment.
  bool answer_pull(coding::CodedBlock& out);
  /// Answer a pull that wants a *specific* segment (scheduling
  /// policies): false (and `out` untouched, no RNG draw) when the
  /// segment is not buffered or empty, else a re-code of it.
  bool answer_pull_for(const coding::SegmentId& seg, coding::CodedBlock& out);

  // --- TTL ----------------------------------------------------------------
  /// The armed expiry for `handle` fired. Returns the segment the block
  /// belonged to, or nullopt if it was already gone (drop_on_ack,
  /// reseed eviction). Callers needing re-seeding invoke reseed_own()
  /// afterwards (kept separate so drivers can trace in between).
  std::optional<coding::SegmentId> on_ttl_expired(coding::BlockHandle handle);
  /// Source-side retention: top an own un-ACKed segment's local rank
  /// back up to s with fresh coded blocks, evicting relayed blocks if
  /// needed. No-op unless retain_own_until_acked.
  void reseed_own(const coding::SegmentId& id);

  // --- ACKs ---------------------------------------------------------------
  enum class AckResult : std::uint8_t {
    kDuplicate,     ///< already ACKed (multi-server)
    kOwnSegment,    ///< first ACK of a segment this peer injected
    kOtherSegment,  ///< first ACK of a relayed segment
  };
  /// A server announced the segment decoded: release retained encoders
  /// and (under drop_on_ack) evict its buffered blocks.
  AckResult on_ack(const coding::SegmentId& id);

  // --- churn (simulator's replacement model) ------------------------------
  /// The occupant departs: drop every buffered block. Returns the number
  /// of blocks lost. Armed TTLs for them become stale no-ops.
  std::size_t clear_all() { return buffer_.clear(); }
  /// A fresh peer takes the slot under a new origin id.
  void rebirth(coding::OriginId new_origin);

  // --- observers ----------------------------------------------------------
  [[nodiscard]] const PeerBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] PeerBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] coding::OriginId origin() const noexcept { return origin_; }
  [[nodiscard]] bool is_acked(const coding::SegmentId& id) const {
    return acked_.contains(id);
  }
  [[nodiscard]] bool is_own(const coding::SegmentId& id) const {
    return own_segments_.contains(id);
  }
  /// CRC-32 of each original block of an own injected segment (only
  /// when record_own_crcs and payload_bytes > 0).
  [[nodiscard]] const std::vector<std::uint32_t>* original_crcs(
      const coding::SegmentId& id) const;
  [[nodiscard]] std::uint64_t reseeds() const noexcept { return reseeds_; }
  [[nodiscard]] std::uint64_t reseed_evictions() const noexcept {
    return reseed_evictions_;
  }

 private:
  Params params_;
  coding::OriginId origin_;
  common::Rng& rng_;
  PeerBuffer buffer_;
  std::uint32_t next_seq_ = 0;
  coding::BlockHandle next_handle_ = 1;

  ArmTtlFn arm_ttl_;
  StoredFn stored_;
  PayloadSourceFn payload_source_;
  IntegrityAuthority* integrity_ = nullptr;

  std::unordered_set<coding::SegmentId> own_segments_;
  std::unordered_set<coding::SegmentId> acked_;
  std::unordered_map<coding::SegmentId, std::vector<std::uint32_t>>
      own_crcs_;
  /// Source-side encoders for own unACKed segments (only populated when
  /// retain_own_until_acked; released on ACK).
  std::unordered_map<coding::SegmentId, coding::SegmentEncoder>
      own_encoders_;

  std::uint64_t reseeds_ = 0;
  std::uint64_t reseed_evictions_ = 0;
};

}  // namespace icollect::proto
