#pragma once

/// \file server_core.h
/// The server half of the Sec. 2 protocol as a driver-agnostic state
/// machine: a ServerBank plus the decisions around it — how an incoming
/// block is accounted (demanded pull vs. sibling forward) and whether a
/// pulled block is worth forwarding to the other servers.
///
/// Time is injected as an obs::ClockSource so decode events carry the
/// driver's time base without the core knowing whether "now" is the
/// simulator's virtual clock, a loopback hub, or the wall clock. The
/// *choice* of which peer to pull from stays with the driver (it owns
/// the candidate set — exact non-empty slots in the simulator, an
/// occupancy heuristic over the live roster) but flows through the
/// shared proto::PullPolicy seam.
///
/// When an IntegrityAuthority is attached, every incoming block is
/// verified BEFORE it reaches the bank's Gaussian elimination: a
/// polluted block is quarantined (PullResult::kPolluted) and leaves the
/// decoders untouched, so pollution can never poison a decoded segment.

#include <cstddef>
#include <cstdint>
#include <utility>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "common/assert.h"
#include "obs/clock.h"
#include "proto/integrity.h"
#include "proto/server_bank.h"

namespace icollect::proto {

class ServerCore {
 public:
  /// `clock` must outlive the core; `keep_payloads` as in ServerBank.
  ServerCore(bool keep_payloads, const obs::ClockSource& clock)
      : bank_{keep_payloads}, clock_{&clock} {}

  /// Fired when a segment's collection completes; the event is stamped
  /// with the injected clock's now().
  void set_decode_callback(ServerBank::DecodeCallback cb) {
    bank_.set_decode_callback(std::move(cb));
  }

  /// Attach the shared tag oracle (nullptr disables verification — the
  /// default, preserving pre-integrity behavior bit for bit). The
  /// authority must outlive the core.
  void set_integrity(const IntegrityAuthority* authority) {
    integrity_ = authority;
  }

  /// A demanded pull returned this block (real-coding fidelity).
  ServerBank::PullResult on_pull_block(const coding::CodedBlock& block) {
    if (!verified(block)) return ServerBank::PullResult::kPolluted;
    return bank_.offer(block, clock_->now());
  }

  /// A demanded pull of `id` under the paper's idealized collection-
  /// state process (state-counter fidelity).
  ServerBank::PullResult on_pull_counted(const coding::SegmentId& id,
                                         std::size_t segment_size) {
    return bank_.offer_counted(id, segment_size, clock_->now());
  }

  /// A sibling server forwarded a block it pulled (pooled-state rule):
  /// absorb it into the bank without pull accounting at this layer.
  /// Verified anyway — forwarding servers may themselves be compromised.
  ServerBank::PullResult on_forwarded_block(const coding::CodedBlock& block) {
    if (!verified(block)) return ServerBank::PullResult::kPolluted;
    return bank_.offer(block, clock_->now());
  }

  /// Pooled-state forwarding rule: a pulled block is re-sent to the
  /// other servers exactly when it was innovative for this bank.
  [[nodiscard]] static bool should_forward(
      ServerBank::PullResult result) noexcept {
    return result == ServerBank::PullResult::kInnovative;
  }

  /// Blocks quarantined by the integrity check (never offered to the
  /// bank, so they appear in no pull/redundancy counter).
  [[nodiscard]] std::uint64_t polluted_blocks() const noexcept {
    return polluted_;
  }

  [[nodiscard]] const ServerBank& bank() const noexcept { return bank_; }
  [[nodiscard]] ServerBank& bank() noexcept { return bank_; }
  [[nodiscard]] const obs::ClockSource& clock() const noexcept {
    return *clock_;
  }

 private:
  [[nodiscard]] bool verified(const coding::CodedBlock& block) {
    if (integrity_ == nullptr) return true;
    if (integrity_->verify(block) == VerifyResult::kOk) return true;
    ++polluted_;
    return false;
  }

  ServerBank bank_;
  const obs::ClockSource* clock_;
  const IntegrityAuthority* integrity_ = nullptr;
  std::uint64_t polluted_ = 0;
};

}  // namespace icollect::proto
