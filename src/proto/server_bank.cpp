#include "proto/server_bank.h"

namespace icollect::proto {

ServerBank::PullResult ServerBank::offer(const coding::CodedBlock& block,
                                         double now) {
  ++pulls_;
  const coding::SegmentId id = block.segment;
  if (decoded_.contains(id)) {
    ++redundant_;
    return PullResult::kAlreadyDecoded;
  }
  auto it = decoders_.find(id);
  if (it == decoders_.end()) {
    it = decoders_
             .emplace(id, coding::Decoder{id, block.segment_size(),
                                          block.payload.size()})
             .first;
  }
  const bool innovative = it->second.add(block);
  if (!innovative) {
    ++redundant_;
    return PullResult::kRedundant;
  }
  ++innovative_;
  if (it->second.complete()) {
    original_blocks_ += it->second.segment_size();
    if (on_decode_) {
      on_decode_(DecodeEvent{id, it->second.segment_size(), now,
                             &it->second});
    }
    if (keep_payloads_ && it->second.payload_size() > 0) {
      payloads_.emplace(id, it->second.originals());
    }
    decoded_.emplace(id, it->second.segment_size());
    decoders_.erase(it);
  }
  return PullResult::kInnovative;
}

ServerBank::PullResult ServerBank::offer_counted(
    const coding::SegmentId& id, std::size_t segment_size, double now) {
  ICOLLECT_EXPECTS(segment_size > 0);
  ++pulls_;
  if (decoded_.contains(id)) {
    ++redundant_;
    return PullResult::kAlreadyDecoded;
  }
  std::size_t& state = counters_[id];
  ++state;
  ++innovative_;
  if (state >= segment_size) {
    original_blocks_ += segment_size;
    if (on_decode_) {
      on_decode_(DecodeEvent{id, segment_size, now, nullptr});
    }
    decoded_.emplace(id, segment_size);
    counters_.erase(id);
  }
  return PullResult::kInnovative;
}

std::size_t ServerBank::state(const coding::SegmentId& id) const {
  const auto dit = decoded_.find(id);
  if (dit != decoded_.end()) return dit->second;  // final state: s
  const auto cit = counters_.find(id);
  if (cit != counters_.end()) return cit->second;
  const auto it = decoders_.find(id);
  return it == decoders_.end() ? 0 : it->second.rank();
}

const std::vector<std::vector<std::uint8_t>>* ServerBank::originals(
    const coding::SegmentId& id) const {
  const auto it = payloads_.find(id);
  return it == payloads_.end() ? nullptr : &it->second;
}

}  // namespace icollect::proto
