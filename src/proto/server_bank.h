#pragma once

/// \file server_bank.h
/// The collaborating logging servers' collection state.
///
/// The paper's N_s servers share the goal of reconstructing every
/// segment; "no buffer comparison is made between a server and peers or
/// among the servers" (Sec. 2), so pulls can be redundant. We model the
/// servers' pooled storage as one decoder bank: each segment has a
/// progressive decoder whose rank is the segment's collection state
/// j ∈ {0..s} of Sec. 3; a pull that does not raise any rank is counted
/// as redundant. Decoded segments release their decoder and keep a
/// lightweight completion record.
///
/// Times are plain doubles in the driver's time base (virtual seconds in
/// the simulator, wheel seconds in the live runtime) — the bank never
/// reads a clock itself.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "coding/coded_block.h"
#include "coding/decoder.h"
#include "coding/segment_id.h"
#include "common/assert.h"

namespace icollect::proto {

class ServerBank {
 public:
  enum class PullResult {
    kInnovative,     ///< raised the segment's collection state
    kRedundant,      ///< linearly dependent on already-collected blocks
    kAlreadyDecoded, ///< segment was already in state s (pure waste)
    /// Failed the per-block integrity check and was quarantined before
    /// touching any decoder. The bank itself never returns this — it is
    /// ServerCore's verdict (proto/integrity.h), sharing the enum so
    /// every driver switches over one result type.
    kPolluted,
  };

  /// `keep_payloads` false discards recovered payloads after invoking the
  /// completion callback (memory control in long sweeps).
  explicit ServerBank(bool keep_payloads = true)
      : keep_payloads_{keep_payloads} {}

  /// Fired when a segment's collection completes (state/rank reaches s).
  /// `decoder` points at the complete decoder in real-coding mode and is
  /// nullptr in state-counter mode.
  struct DecodeEvent {
    coding::SegmentId id;
    std::size_t segment_size = 0;
    double when = 0.0;
    const coding::Decoder* decoder = nullptr;
  };
  using DecodeCallback = std::function<void(const DecodeEvent&)>;
  void set_decode_callback(DecodeCallback cb) { on_decode_ = std::move(cb); }

  /// Offer one pulled coded block at time `now` (real-coding fidelity:
  /// true Gaussian elimination decides innovation).
  PullResult offer(const coding::CodedBlock& block, double now);

  /// Register one pull of `id` at time `now` under the paper's idealized
  /// collection-state process (state-counter fidelity): the state
  /// advances on every pull until it reaches `segment_size`.
  PullResult offer_counted(const coding::SegmentId& id,
                           std::size_t segment_size, double now);

  /// Collection state j of a segment (0 if never seen; s once decoded).
  [[nodiscard]] std::size_t state(const coding::SegmentId& id) const;

  [[nodiscard]] bool is_decoded(const coding::SegmentId& id) const {
    return decoded_.contains(id);
  }

  /// Recovered originals of a decoded segment (only if keep_payloads).
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>* originals(
      const coding::SegmentId& id) const;

  // --- aggregate counters -------------------------------------------------
  [[nodiscard]] std::uint64_t pulls() const noexcept { return pulls_; }
  [[nodiscard]] std::uint64_t innovative_pulls() const noexcept {
    return innovative_;
  }
  [[nodiscard]] std::uint64_t redundant_pulls() const noexcept {
    return redundant_;
  }
  [[nodiscard]] std::uint64_t segments_decoded() const noexcept {
    return decoded_.size();
  }
  [[nodiscard]] std::uint64_t original_blocks_recovered() const noexcept {
    return original_blocks_;
  }
  /// Segments currently in partial states 0 < j < s.
  [[nodiscard]] std::size_t segments_in_progress() const noexcept {
    return decoders_.size() + counters_.size();
  }

 private:
  bool keep_payloads_;
  DecodeCallback on_decode_;
  // State-counter fidelity: pulls registered per not-yet-complete segment.
  std::unordered_map<coding::SegmentId, std::size_t> counters_;
  std::unordered_map<coding::SegmentId, coding::Decoder> decoders_;
  // Decoded segments: id -> segment size (the final collection state s).
  std::unordered_map<coding::SegmentId, std::size_t> decoded_;
  std::unordered_map<coding::SegmentId,
                     std::vector<std::vector<std::uint8_t>>>
      payloads_;
  std::uint64_t pulls_ = 0;
  std::uint64_t innovative_ = 0;
  std::uint64_t redundant_ = 0;
  std::uint64_t original_blocks_ = 0;
};

}  // namespace icollect::proto
