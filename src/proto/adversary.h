#pragma once

/// \file adversary.h
/// The byzantine-peer adversary vocabulary shared by every driver.
///
/// A dishonest peer runs the Sec. 2 protocol faithfully except on the
/// egress path: blocks it gossips (and blocks it serves to pulling
/// servers) are corrupted according to one of the strategies below. The
/// strategies are chosen to span the detection spectrum of the
/// homomorphic integrity check (proto/integrity.h):
///
///  - kRandomPayload keeps the coding vector honest and scrambles the
///    payload — the classic pollution attack; caught by any payload
///    check.
///  - kGarbageCoefficients keeps the payload honest and scrambles the
///    coding vector — the frame looks perfectly well-formed and a
///    transport CRC is satisfied, but the (coefficients, payload)
///    relation is broken; only a coefficient-aware check catches it.
///  - kReplay resends a previously sent, perfectly valid block —
///    undetectable by any per-block integrity check by construction;
///    its damage (buffer occupancy, redundant pulls) is measured, not
///    filtered.
///
/// Lives in proto/ (pure layer) so the simulator config, the live
/// NodeConfig and the scenario parser all name the same enum.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace icollect::proto {

enum class CorruptionStrategy : std::uint8_t {
  kRandomPayload,        ///< honest coefficients, scrambled payload
  kGarbageCoefficients,  ///< honest payload, scrambled coefficients
  kReplay,               ///< resend a previously sent valid block
};

[[nodiscard]] constexpr const char* to_string(CorruptionStrategy s) noexcept {
  switch (s) {
    case CorruptionStrategy::kRandomPayload: return "random-payload";
    case CorruptionStrategy::kGarbageCoefficients:
      return "garbage-coefficients";
    case CorruptionStrategy::kReplay: return "replay";
  }
  return "?";
}

[[nodiscard]] inline CorruptionStrategy parse_corruption_strategy(
    std::string_view name) {
  if (name == "random-payload") return CorruptionStrategy::kRandomPayload;
  if (name == "garbage-coefficients") {
    return CorruptionStrategy::kGarbageCoefficients;
  }
  if (name == "replay") return CorruptionStrategy::kReplay;
  throw std::invalid_argument(
      "unknown corruption strategy '" + std::string{name} +
      "' (choices: random-payload|garbage-coefficients|replay)");
}

}  // namespace icollect::proto
