#pragma once

/// \file integrity.h
/// Coefficient-aware pollution detection for coded blocks.
///
/// The wire CRC only covers transport corruption: a byzantine peer can
/// emit a perfectly framed block whose payload is garbage, and Gaussian
/// elimination will happily absorb it — one polluted block poisons every
/// re-coded descendant and, eventually, the decoded segment. Per-block
/// verification therefore has to be *homomorphic*: valid under every
/// GF(2^8) linear recombination honest relays apply, invalid for
/// anything else.
///
/// Scheme (a seeded linear MAC, the classic homomorphic-hash shape):
/// for a segment with originals b_1..b_s of payload length L, a trusted
/// authority holding secret key K derives `checks` pseudo-random check
/// vectors r_1..r_k in GF(2^8)^L (PRF-expanded from (K, segment id, j),
/// never transmitted) and publishes per-segment tags
///
///     T[j][k] = <r_j, b_k>           (a checks x s matrix of bytes).
///
/// A coded block (c, p) with p = sum_k c_k * b_k then satisfies, by
/// linearity of the inner product,
///
///     <r_j, p> == sum_k c_k * T[j][k] == <c, T[j]>   for every j,
///
/// and the identity survives arbitrary re-coding: any linear
/// combination of valid blocks is again valid. A forged block that is
/// NOT in the span of the originals passes all k checks with
/// probability 256^-k (each check is a uniformly random linear
/// functional of the forgery's error vector). Because the relation
/// couples c and p, it catches garbage-*coefficient* attacks (honest
/// payload, scrambled c) just as well as payload pollution. Replayed
/// valid blocks pass by construction — replay is measured as
/// redundancy, not filtered here.
///
/// Trust model: the authority is an in-process oracle shared by every
/// honest node of a run (the simulator's Network owns one; the loopback
/// cluster hands one pointer to all nodes). This models out-of-band tag
/// distribution signed by the collecting servers; distributing tags
/// in-band is future work. Tags are registered synchronously at
/// injection time, so an unknown segment at verify time means the block
/// was forged from whole cloth — it is quarantined, not given the
/// benefit of the doubt.
///
/// Determinism: the PRF is a splitmix64 counter chain, deliberately
/// independent of common::Rng so enabling verification adds zero draws
/// to any seeded RNG stream (the golden-run byte-identity contract).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "common/assert.h"
#include "gf/gf256.h"

namespace icollect::proto {

struct IntegrityParams {
  std::uint64_t key = 0;     ///< secret PRF key (per run)
  std::size_t checks = 0;    ///< k independent checks; escape prob 256^-k
};

/// Typed verdict of a per-block check, from most to least trusted.
enum class VerifyResult : std::uint8_t {
  kOk,              ///< all checks hold: block is in the originals' span
  kUnknownSegment,  ///< no tags registered — forged segment id
  kShapeMismatch,   ///< coefficient/payload lengths disagree with the tags
  kCheckFailed,     ///< <r_j, p> != <c, T[j]> for some j: polluted
};

[[nodiscard]] constexpr const char* to_string(VerifyResult r) noexcept {
  switch (r) {
    case VerifyResult::kOk: return "ok";
    case VerifyResult::kUnknownSegment: return "unknown-segment";
    case VerifyResult::kShapeMismatch: return "shape-mismatch";
    case VerifyResult::kCheckFailed: return "check-failed";
  }
  return "?";
}

/// The shared tag oracle. Not thread-safe: both drivers that use it are
/// single-threaded event loops (virtual-time simulator, loopback hub).
class IntegrityAuthority {
 public:
  explicit IntegrityAuthority(IntegrityParams params) : params_{params} {
    ICOLLECT_EXPECTS(params.checks > 0);
  }

  /// Compute and store the tag matrix for a freshly injected segment.
  /// Must be called before any coded block of the segment circulates;
  /// re-registration of a live id is a contract error. Every original
  /// must be non-empty and equal-length (checks over empty payloads
  /// would be vacuous).
  void register_segment(const coding::SegmentId& id,
                        std::span<const std::vector<std::uint8_t>> originals);

  /// Check one block against the registered tags.
  [[nodiscard]] VerifyResult verify(const coding::CodedBlock& block) const;

  [[nodiscard]] bool known(const coding::SegmentId& id) const {
    return tags_.contains(id);
  }
  /// Drop a segment's tags. Never called automatically — blocks of
  /// already-decoded segments keep circulating and must keep verifying.
  void forget(const coding::SegmentId& id) { tags_.erase(id); }

  [[nodiscard]] std::size_t checks() const noexcept { return params_.checks; }
  [[nodiscard]] std::size_t segments() const noexcept { return tags_.size(); }

 private:
  struct SegmentTags {
    std::size_t segment_size = 0;
    std::size_t payload_len = 0;
    /// Row-major checks x segment_size matrix; row j is T[j].
    std::vector<gf::Element> rows;
  };

  /// <r_j, v> where r_j is the (never-materialized) check vector for
  /// (key, id, j), expanded lazily 8 bytes per splitmix64 call.
  [[nodiscard]] gf::Element check_dot(
      const coding::SegmentId& id, std::size_t j,
      std::span<const std::uint8_t> v) const;

  IntegrityParams params_;
  std::unordered_map<coding::SegmentId, SegmentTags> tags_;
};

}  // namespace icollect::proto
