#pragma once

/// \file selection.h
/// Uniform selection over an eligibility-filtered candidate set — the
/// one sampling idiom both drivers share for "pick a random X that can
/// still take this block".
///
/// Rejection sampling first: probe uniform indices and reject ineligible
/// ones. Conditioning a uniform draw on eligibility IS the uniform
/// distribution over eligible candidates, so the statistics are
/// identical to building the candidate list up front — at O(1) expected
/// cost when most candidates are eligible. Only when every probe rejects
/// (mostly-ineligible population) do we pay for one exhaustive scan,
/// which also guarantees an eligible candidate is found whenever one
/// exists.
///
/// The simulator's gossip-target choice (12 probes over neighbors) and
/// the live server's pull-target choice (16 probes over the roster) are
/// both instances; keeping the algorithm here keeps their RNG draw
/// sequences — and therefore every seeded golden output — defined in
/// exactly one place.

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace icollect::proto {

/// Returned when no candidate is eligible.
inline constexpr std::size_t kNoSelection = static_cast<std::size_t>(-1);

/// Non-owning reference to an eligibility predicate over candidate
/// indices. Avoids the per-call allocation a std::function could incur
/// on the pull hot path; the callee must not outlive the callable.
class EligibleRef {
 public:
  template <typename F>
  EligibleRef(const F& fn)  // NOLINT(google-explicit-constructor)
      : obj_{&fn}, call_{[](const void* o, std::size_t i) {
          return (*static_cast<const F*>(o))(i);
        }} {}

  [[nodiscard]] bool operator()(std::size_t i) const {
    return call_(obj_, i);
  }

 private:
  const void* obj_;
  bool (*call_)(const void*, std::size_t);
};

/// Pick uniformly at random among the eligible members of [0, n), using
/// `probes` rejection samples before the exhaustive-scan fallback.
/// `index(i)` maps a sampled position to the candidate handed to
/// `eligible` and returned (identity for flat arrays; a neighbor lookup
/// for adjacency lists). Returns kNoSelection when no candidate is
/// eligible. Draw sequence: one uniform_index(n) per probe, then — only
/// on fallback with a non-empty eligible set — one uniform_index over
/// that set.
template <typename IndexFn>
[[nodiscard]] std::size_t uniform_over_eligible(common::Rng& rng,
                                                std::size_t n, int probes,
                                                IndexFn&& index,
                                                EligibleRef eligible) {
  if (n == 0) return kNoSelection;
  for (int attempt = 0; attempt < probes; ++attempt) {
    const std::size_t cand = index(rng.uniform_index(n));
    if (eligible(cand)) return cand;
  }
  std::vector<std::size_t> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cand = index(i);
    if (eligible(cand)) pool.push_back(cand);
  }
  if (pool.empty()) return kNoSelection;
  return pool[rng.uniform_index(pool.size())];
}

/// Flat-array overload: candidates are the indices [0, n) themselves.
[[nodiscard]] inline std::size_t uniform_over_eligible(common::Rng& rng,
                                                       std::size_t n,
                                                       int probes,
                                                       EligibleRef eligible) {
  return uniform_over_eligible(
      rng, n, probes, [](std::size_t i) { return i; }, eligible);
}

}  // namespace icollect::proto
