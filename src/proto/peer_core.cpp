#include "proto/peer_core.h"

#include <utility>

#include "common/crc32.h"

namespace icollect::proto {

PeerCore::PeerCore(const Params& params, coding::OriginId origin,
                   common::Rng& rng)
    : params_{params}, origin_{origin}, rng_{rng},
      buffer_{params.buffer_cap} {
  ICOLLECT_EXPECTS(params.segment_size > 0);
  ICOLLECT_EXPECTS(params.buffer_cap >= params.segment_size);
  ICOLLECT_EXPECTS(params.gamma > 0.0);
}

PeerCore::Injected PeerCore::inject() {
  ICOLLECT_EXPECTS(can_inject());
  ICOLLECT_EXPECTS(arm_ttl_ != nullptr);
  const std::size_t s = params_.segment_size;
  const coding::SegmentId id{origin_, next_seq_++};
  own_segments_.insert(id);

  // Draw every original payload before any block is stored: both
  // drivers always produced payloads first, TTL draws second, so the
  // shared stream order is payloads, then s lifetimes.
  std::vector<std::vector<std::uint8_t>> originals;
  std::vector<std::uint32_t> crcs;
  if (params_.payload_bytes > 0) {
    if (payload_source_) {
      originals = payload_source_(id, s, params_.payload_bytes);
      ICOLLECT_ENSURES(originals.size() == s);
      for (const auto& b : originals) {
        ICOLLECT_ENSURES(b.size() == params_.payload_bytes);
      }
    } else {
      originals.resize(s);
      for (auto& b : originals) {
        b.resize(params_.payload_bytes);
        for (auto& byte : b) {
          byte = static_cast<std::uint8_t>(rng_.gf_element());
        }
      }
    }
    crcs.reserve(s);
    for (const auto& b : originals) crcs.push_back(common::crc32(b));
  } else {
    originals.assign(s, {});
  }
  if (params_.record_own_crcs && !crcs.empty()) own_crcs_.emplace(id, crcs);
  // Tags must exist before any block of the segment circulates — the
  // systematic self-stores below already fire driver hooks that may
  // gossip. (Registration requires payloads; set_integrity enforces it.)
  if (integrity_ != nullptr) integrity_->register_segment(id, originals);

  // The source seeds its own buffer with the s systematic blocks —
  // "s new edges are added to each peer ... together with a new segment
  // incident to these s edges" (Sec. 3).
  if (params_.retain_own_until_acked) {
    const auto [it, inserted] = own_encoders_.emplace(
        id, coding::SegmentEncoder{id, std::move(originals)});
    ICOLLECT_ENSURES(inserted);
    for (std::size_t k = 0; k < s; ++k) {
      store(it->second.systematic_block(k));
    }
  } else {
    for (std::size_t k = 0; k < s; ++k) {
      store(coding::CodedBlock::systematic(id, s, k,
                                           std::move(originals[k])));
    }
  }
  return Injected{id, std::move(crcs)};
}

const coding::SegmentId& PeerCore::choose_gossip_segment() {
  ICOLLECT_EXPECTS(!buffer_.empty());
  switch (params_.gossip_policy) {
    case GossipPolicy::kUniformSegment:
      return buffer_.random_segment(rng_);
    case GossipPolicy::kNewestFirst:
      return buffer_.newest_segment();
    case GossipPolicy::kRarestFirst:
      return buffer_.rarest_segment();
  }
  return buffer_.random_segment(rng_);  // unreachable
}

coding::CodedBlock PeerCore::recode(const coding::SegmentId& seg) {
  const coding::SegmentBuffer* sb = buffer_.find(seg);
  ICOLLECT_EXPECTS(sb != nullptr && !sb->empty());
  return sb->recode(rng_);
}

void PeerCore::recode_into(const coding::SegmentId& seg,
                           coding::CodedBlock& out) {
  const coding::SegmentBuffer* sb = buffer_.find(seg);
  ICOLLECT_EXPECTS(sb != nullptr && !sb->empty());
  sb->recode_into(out, rng_);
}

PeerCore::AcceptResult PeerCore::accept(coding::CodedBlock&& block) {
  if (block.segment_size() != params_.segment_size ||
      block.is_degenerate()) {
    // Shape mismatch slipped past the handshake, or a degenerate block
    // an honest encoder never emits — junk either way.
    return AcceptResult::kShapeMismatch;
  }
  if (integrity_ != nullptr &&
      integrity_->verify(block) != VerifyResult::kOk) {
    // Quarantine BEFORE any storage decision: a polluted block must
    // never enter the buffer where re-coding would spread it.
    return AcceptResult::kPolluted;
  }
  if (params_.drop_on_ack && acked_.contains(block.segment)) {
    return AcceptResult::kAckedSegment;
  }
  if (buffer_.full()) return AcceptResult::kBufferFull;
  if (const coding::SegmentBuffer* sb = buffer_.find(block.segment);
      sb != nullptr && sb->full_rank()) {
    return AcceptResult::kSegmentFullRank;
  }
  store(std::move(block));
  return AcceptResult::kStored;
}

coding::BlockHandle PeerCore::store(coding::CodedBlock block) {
  ICOLLECT_EXPECTS(arm_ttl_ != nullptr);
  const coding::BlockHandle handle = next_handle_++;
  const std::size_t before = buffer_.size();
  const coding::SegmentId seg = block.segment;
  buffer_.insert(handle, std::move(block));
  if (stored_) stored_(seg, before);
  arm_ttl_(handle, rng_.exponential(params_.gamma));
  return handle;
}

bool PeerCore::answer_pull(coding::CodedBlock& out) {
  if (buffer_.empty()) return false;
  recode_into(choose_pull_segment(), out);
  return true;
}

bool PeerCore::answer_pull_for(const coding::SegmentId& seg,
                               coding::CodedBlock& out) {
  const coding::SegmentBuffer* sb = buffer_.find(seg);
  if (sb == nullptr || sb->empty()) return false;
  sb->recode_into(out, rng_);
  return true;
}

std::optional<coding::SegmentId> PeerCore::on_ttl_expired(
    coding::BlockHandle handle) {
  return buffer_.erase(handle);
}

void PeerCore::reseed_own(const coding::SegmentId& id) {
  if (!params_.retain_own_until_acked) return;
  const auto it = own_encoders_.find(id);
  if (it == own_encoders_.end()) return;  // not ours, or already ACKed
  const std::size_t s = params_.segment_size;
  // Top the segment's local rank back up to s with fresh coded blocks,
  // evicting relayed (other-segment) blocks if the buffer is full. The
  // loop is bounded: a fresh coded block fails to raise rank only on a
  // 256^-rank coefficient collision, so 4·s attempts is ample.
  for (std::size_t attempts = 0; attempts < 4 * s; ++attempts) {
    const coding::SegmentBuffer* sb = buffer_.find(id);
    if (sb != nullptr && sb->rank() >= s) return;
    if (!buffer_.has_room(1)) {
      bool evicted = false;
      for (const coding::SegmentId& other : buffer_.segments()) {
        if (other == id) continue;
        coding::SegmentBuffer* osb = buffer_.find(other);
        if (osb == nullptr || osb->empty()) continue;
        buffer_.erase(osb->handles().front());
        ++reseed_evictions_;
        evicted = true;
        break;
      }
      if (!evicted) return;  // buffer full of this segment alone
    }
    store(it->second.encode(rng_));
    ++reseeds_;
  }
}

PeerCore::AckResult PeerCore::on_ack(const coding::SegmentId& id) {
  if (!acked_.insert(id).second) return AckResult::kDuplicate;
  const bool own = own_segments_.contains(id);
  own_encoders_.erase(id);  // delivery guaranteed; release the originals
  if (params_.drop_on_ack) {
    if (coding::SegmentBuffer* sb = buffer_.find(id); sb != nullptr) {
      for (const coding::BlockHandle h : sb->handles()) buffer_.erase(h);
    }
  }
  return own ? AckResult::kOwnSegment : AckResult::kOtherSegment;
}

void PeerCore::rebirth(coding::OriginId new_origin) {
  origin_ = new_origin;
  next_seq_ = 0;
  // The fresh occupant shares nothing with its predecessor.
  own_segments_.clear();
  acked_.clear();
  own_crcs_.clear();
  own_encoders_.clear();
}

const std::vector<std::uint32_t>* PeerCore::original_crcs(
    const coding::SegmentId& id) const {
  const auto it = own_crcs_.find(id);
  return it == own_crcs_.end() ? nullptr : &it->second;
}

}  // namespace icollect::proto
