#pragma once

/// \file policy.h
/// Protocol-level policy knobs shared by both drivers.
///
/// These used to live in p2p/config.h; they moved here with the protocol
/// core so a policy is defined — and implemented — exactly once for the
/// simulator and the live runtime. p2p/config.h re-exports the names for
/// its existing call sites.

namespace icollect::proto {

/// How a gossiping peer picks which buffered segment to re-code and send.
///
/// The paper's rule is uniform over the segments it holds (Sec. 2) —
/// the assumption behind the degree-proportional growth term of system
/// (8). The alternatives are scheduling extensions this library adds:
/// newest-first pushes a peer's most recent data out fastest (which is
/// exactly what improves "last words" survival under churn), and
/// rarest-first mimics BitTorrent-style availability balancing using
/// the peer's local view.
enum class GossipPolicy {
  kUniformSegment,  ///< the paper's rule; matches the ODE analysis
  kNewestFirst,     ///< most recently first-seen segment
  kRarestFirst,     ///< fewest locally-held blocks (ties: newest)
};

[[nodiscard]] constexpr const char* to_string(GossipPolicy p) noexcept {
  switch (p) {
    case GossipPolicy::kUniformSegment: return "uniform";
    case GossipPolicy::kNewestFirst: return "newest-first";
    case GossipPolicy::kRarestFirst: return "rarest-first";
  }
  return "?";
}

}  // namespace icollect::proto
