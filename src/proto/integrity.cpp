#include "proto/integrity.h"

#include "common/rng.h"

namespace icollect::proto {

namespace {

/// Domain-separation constant for the check-vector PRF (distinct from
/// every seed-derivation constant elsewhere in the tree).
constexpr std::uint64_t kCheckDomain = 0xC0EFF1C1E47A65ULL;

/// Counter-mode PRF state for the check vector of (key, id, j).
[[nodiscard]] std::uint64_t check_state(std::uint64_t key,
                                        const coding::SegmentId& id,
                                        std::size_t j) noexcept {
  const std::uint64_t seg =
      (static_cast<std::uint64_t>(id.origin) << 32U) | id.seq;
  std::uint64_t x = common::splitmix64(key ^ kCheckDomain);
  x = common::splitmix64(x ^ seg);
  return common::splitmix64(x ^ (static_cast<std::uint64_t>(j) + 1));
}

}  // namespace

gf::Element IntegrityAuthority::check_dot(
    const coding::SegmentId& id, std::size_t j,
    std::span<const std::uint8_t> v) const {
  const std::uint64_t state = check_state(params_.key, id, j);
  gf::Element acc = 0;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i % 8 == 0) word = common::splitmix64(state + i / 8);
    const auto r = static_cast<gf::Element>(word & 0xFFU);
    word >>= 8U;
    acc = gf::GF256::add(acc, gf::GF256::mul(r, v[i]));
  }
  return acc;
}

void IntegrityAuthority::register_segment(
    const coding::SegmentId& id,
    std::span<const std::vector<std::uint8_t>> originals) {
  ICOLLECT_EXPECTS(!originals.empty());
  const std::size_t len = originals.front().size();
  ICOLLECT_EXPECTS(len > 0);
  for (const auto& b : originals) ICOLLECT_EXPECTS(b.size() == len);

  SegmentTags t;
  t.segment_size = originals.size();
  t.payload_len = len;
  t.rows.resize(params_.checks * t.segment_size);
  for (std::size_t j = 0; j < params_.checks; ++j) {
    for (std::size_t k = 0; k < t.segment_size; ++k) {
      t.rows[j * t.segment_size + k] = check_dot(id, j, originals[k]);
    }
  }
  const auto [it, inserted] = tags_.insert_or_assign(id, std::move(t));
  (void)it;
  // Churn re-uses peer slots under fresh origin ids, so a live id never
  // repeats; seeing one again means the caller re-injected a segment
  // without forgetting it first.
  ICOLLECT_ENSURES(inserted);
}

VerifyResult IntegrityAuthority::verify(
    const coding::CodedBlock& block) const {
  const auto it = tags_.find(block.segment);
  if (it == tags_.end()) return VerifyResult::kUnknownSegment;
  const SegmentTags& t = it->second;
  if (block.segment_size() != t.segment_size ||
      block.payload.size() != t.payload_len) {
    return VerifyResult::kShapeMismatch;
  }
  for (std::size_t j = 0; j < params_.checks; ++j) {
    const gf::Element lhs = check_dot(block.segment, j, block.payload);
    const std::span<const gf::Element> row{
        t.rows.data() + j * t.segment_size, t.segment_size};
    const gf::Element rhs =
        gf::dot(std::span<const gf::Element>{block.coefficients}, row);
    if (lhs != rhs) return VerifyResult::kCheckFailed;
  }
  return VerifyResult::kOk;
}

}  // namespace icollect::proto
