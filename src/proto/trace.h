#pragma once

/// \file trace.h
/// Protocol event tracing: an optional observer stream of everything the
/// protocol does, for debugging, visualization, and post-hoc analysis
/// (e.g. reconstructing a segment's full lifecycle). Zero cost when no
/// sink is installed.
///
/// Lives in proto/ because both drivers — the discrete-event simulator
/// and the live node runtime — emit the same event stream; one
/// obs::TraceBuffer / analysis script serves both worlds. `at` is in the
/// driver's time base (virtual seconds in the simulator and the loopback
/// cluster, wall seconds over TCP).

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "coding/segment_id.h"

namespace icollect::proto {

enum class TraceEventKind : std::uint8_t {
  kSegmentInjected,  ///< slot = origin peer; aux = segment size
  kGossipSent,       ///< slot = sender;      aux = receiver slot
  kTtlExpired,       ///< slot = holder;      aux unused
  kServerPull,       ///< slot = pulled peer; aux = 1 if innovative
  kSegmentDecoded,   ///< slot unused;        aux = segment size
  kSegmentLost,      ///< slot unused;        aux = collected so far
  kPeerDeparted,     ///< slot = departing;   aux = blocks lost
  kGossipLost,       ///< slot = sender;      aux = intended receiver slot
  kBlockQuarantined, ///< slot = detector;    aux = offending sender slot
};

/// Number of TraceEventKind enumerators (for per-kind tables/bitmasks).
inline constexpr std::size_t kTraceEventKindCount = 9;

[[nodiscard]] constexpr const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kSegmentInjected: return "inject";
    case TraceEventKind::kGossipSent: return "gossip";
    case TraceEventKind::kTtlExpired: return "ttl";
    case TraceEventKind::kServerPull: return "pull";
    case TraceEventKind::kSegmentDecoded: return "decode";
    case TraceEventKind::kSegmentLost: return "lost";
    case TraceEventKind::kPeerDeparted: return "depart";
    case TraceEventKind::kGossipLost: return "gossip-lost";
    case TraceEventKind::kBlockQuarantined: return "quarantine";
  }
  return "?";
}

struct TraceEvent {
  TraceEventKind kind{};
  double at = 0.0;
  std::size_t slot = 0;
  coding::SegmentId segment{};
  std::uint64_t aux = 0;

  /// Single-allocation rendering (this sits on the hot path whenever a
  /// text sink is installed).
  [[nodiscard]] std::string to_string() const {
    char buf[160];
    const int n = std::snprintf(
        buf, sizeof(buf), "%s t=%f slot=%zu seg=%u:%u aux=%llu",
        proto::to_string(kind), at, slot,
        static_cast<unsigned>(segment.origin),
        static_cast<unsigned>(segment.seq),
        static_cast<unsigned long long>(aux));
    if (n <= 0) return {};
    const auto len = static_cast<std::size_t>(n) < sizeof(buf) - 1
                         ? static_cast<std::size_t>(n)
                         : sizeof(buf) - 1;
    return std::string(buf, len);
  }
};

/// Receives every protocol event in time order.
using TraceSink = std::function<void(const TraceEvent&)>;

}  // namespace icollect::proto
