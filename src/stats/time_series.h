#pragma once

/// \file time_series.h
/// Piecewise-constant time series with time-weighted averaging, plus a
/// windowed rate estimator.
///
/// TimeWeighted tracks quantities that hold a value *over an interval*
/// (e.g. "blocks buffered at this peer"), where the correct mean weights
/// each value by how long it was held — the empirical analogue of the
/// steady-state expectations ρ and ẽ(t) in Theorems 1-4.

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "sim/event_queue.h"

namespace icollect::stats {

/// Time-weighted running average of a piecewise-constant signal.
class TimeWeighted {
 public:
  explicit TimeWeighted(sim::Time start = 0.0, double initial = 0.0)
      : value_{initial}, last_change_{start}, window_start_{start} {}

  /// Record that the signal changed to `value` at time `now` (now must be
  /// non-decreasing across calls).
  void update(sim::Time now, double value) {
    ICOLLECT_EXPECTS(now >= last_change_);
    weighted_sum_ += value_ * (now - last_change_);
    value_ = value;
    last_change_ = now;
  }

  /// Add `delta` to the current value at time `now`.
  void add(sim::Time now, double delta) { update(now, value_ + delta); }

  /// Current instantaneous value.
  [[nodiscard]] double value() const noexcept { return value_; }

  /// Time-weighted mean over [window_start, now].
  [[nodiscard]] double mean(sim::Time now) const {
    ICOLLECT_EXPECTS(now >= last_change_);
    const double span = now - window_start_;
    if (span <= 0.0) return value_;
    const double total = weighted_sum_ + value_ * (now - last_change_);
    return total / span;
  }

  /// Restart averaging from `now` (instantaneous value is kept). Used to
  /// discard the warm-up transient before measuring steady state.
  void reset_window(sim::Time now) {
    ICOLLECT_EXPECTS(now >= last_change_);
    weighted_sum_ = 0.0;
    last_change_ = now;
    window_start_ = now;
  }

 private:
  double value_;
  double weighted_sum_ = 0.0;
  sim::Time last_change_;
  sim::Time window_start_;
};

/// Counts events and reports a rate over the window since the last reset.
class RateEstimator {
 public:
  explicit RateEstimator(sim::Time start = 0.0) : window_start_{start} {}

  void record(std::uint64_t n = 1) noexcept { count_ += n; }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Events per unit time over [window_start, now].
  [[nodiscard]] double rate(sim::Time now) const {
    const double span = now - window_start_;
    if (span <= 0.0) return 0.0;
    return static_cast<double>(count_) / span;
  }

  void reset_window(sim::Time now) {
    count_ = 0;
    window_start_ = now;
  }

  [[nodiscard]] sim::Time window_start() const noexcept {
    return window_start_;
  }

 private:
  std::uint64_t count_ = 0;
  sim::Time window_start_;
};

/// A sampled trajectory: (time, value) pairs, e.g. for printing the
/// time-evolution plots behind the figures.
class Trajectory {
 public:
  void sample(sim::Time t, double v) { points_.emplace_back(t, v); }
  [[nodiscard]] const std::vector<std::pair<sim::Time, double>>& points()
      const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  void clear() noexcept { points_.clear(); }

 private:
  std::vector<std::pair<sim::Time, double>> points_;
};

}  // namespace icollect::stats
