#pragma once

/// \file histogram.h
/// Fixed-bin histogram over a closed range, with overflow/underflow bins.
/// Used for block-delay distributions and peer-degree distributions
/// (the empirical counterparts of the paper's z_i and w_i sequences).

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace icollect::stats {

class Histogram {
 public:
  /// `bins` equal-width bins covering [lo, hi); samples outside go to the
  /// dedicated underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t bins)
      : lo_{lo}, hi_{hi}, counts_(bins, 0) {
    ICOLLECT_EXPECTS(hi > lo);
    ICOLLECT_EXPECTS(bins > 0);
  }

  void add(double x, std::uint64_t weight = 1) {
    total_ += weight;
    if (x < lo_) {
      underflow_ += weight;
      return;
    }
    if (x >= hi_) {
      overflow_ += weight;
      return;
    }
    const auto idx = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    counts_[idx < counts_.size() ? idx : counts_.size() - 1] += weight;
  }

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const {
    ICOLLECT_EXPECTS(i < counts_.size());
    return counts_[i];
  }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    ICOLLECT_EXPECTS(i < counts_.size());
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Fraction of samples in bin i (0 if no samples).
  [[nodiscard]] double fraction(std::size_t i) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(bin(i)) / static_cast<double>(total_);
  }

  /// Approximate quantile (linear within the located bin).
  [[nodiscard]] double quantile(double q) const {
    ICOLLECT_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double next = cum + static_cast<double>(counts_[i]);
      if (next >= target && counts_[i] > 0) {
        const double within = (target - cum) / static_cast<double>(counts_[i]);
        return bin_lo(i) + within * bin_width();
      }
      cum = next;
    }
    return hi_;
  }

  void reset() noexcept {
    for (auto& c : counts_) c = 0;
    underflow_ = overflow_ = total_ = 0;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace icollect::stats
