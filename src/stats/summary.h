#pragma once

/// \file summary.h
/// Streaming scalar summaries: count / mean / variance / min / max via
/// Welford's online algorithm. Used for delay samples, per-peer buffer
/// occupancy snapshots, and anywhere a running aggregate is reported.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace icollect::stats {

class Summary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() noexcept { *this = Summary{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? mean_ : 0.0;
  }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  [[nodiscard]] double min() const noexcept {
    return count_ > 0 ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ > 0 ? max_ : 0.0;
  }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace icollect::stats
