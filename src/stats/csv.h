#pragma once

/// \file csv.h
/// Minimal RFC-4180-style CSV writing, for exporting benchmark series
/// and simulation traces to plotting tools. Fields containing commas,
/// quotes or newlines are quoted and escaped; numeric convenience
/// overloads format with enough digits to round-trip.

#include <concepts>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.h"

namespace icollect::stats {

class CsvWriter {
 public:
  /// Open (truncate) `path` for writing. Throws std::runtime_error when
  /// the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Write one row of raw string fields (quoted/escaped as needed).
  void write_row(const std::vector<std::string>& fields);

  /// Row builder for mixed string/number rows.
  class Row {
   public:
    explicit Row(CsvWriter& owner) : owner_{&owner} {}
    Row& add(std::string_view v) {
      fields_.emplace_back(v);
      return *this;
    }
    Row& add(double v);
    /// Any integer type (size_t, uint64_t, int, ...).
    template <typename Int>
      requires std::integral<Int>
    Row& add(Int v) {
      fields_.push_back(std::to_string(v));
      return *this;
    }
    /// Emit the accumulated fields as one row.
    void end();

   private:
    CsvWriter* owner_;
    std::vector<std::string> fields_;
  };
  [[nodiscard]] Row row() { return Row{*this}; }

  /// Number of rows written so far (including the header, if any).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escape one field per RFC 4180 (exposed for tests).
  [[nodiscard]] static std::string escape(std::string_view field);

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace icollect::stats
