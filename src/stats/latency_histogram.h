#pragma once

/// \file latency_histogram.h
/// Exponential-bucket latency histogram (HDR-histogram style): buckets
/// grow by powers of two, each octave split into 2^kSubBits linear
/// sub-buckets, so the relative quantile error is bounded by
/// 2^-(kSubBits+1) (~0.8% at kSubBits=6) across the full uint64 range —
/// the right shape for latencies, whose interesting values span six
/// orders of magnitude (a loopback pull RTT is microseconds of virtual
/// time; a WAN pull is tens of milliseconds).
///
/// Contrast with stats::Histogram (fixed-width bins over a closed
/// range): that one needs the range known up front and wastes bins on
/// empty regions; this one needs no configuration and never saturates.
/// record() is branch-light integer math — one bit-scan, one add —
/// cheap enough to sit on a live node's pull path unconditionally.
///
/// Values are dimensionless uint64 ticks; the seconds-based helpers
/// store nanoseconds, so virtual-time and wall-clock latencies share
/// one representation (a virtual RTT of 0.002s records as 2'000'000).

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace icollect::stats {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear sub-buckets per octave.
  static constexpr unsigned kSubBits = 6;

  LatencyHistogram() = default;

  void record(std::uint64_t v) noexcept {
    const std::size_t idx = bucket_index(v);
    if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
    ++counts_[idx];
    ++total_;
    if (v > max_) max_ = v;
  }

  /// Record a latency in seconds (stored as whole nanoseconds; negative
  /// values clamp to zero).
  void record_seconds(double s) noexcept {
    record(s > 0.0 ? static_cast<std::uint64_t>(s * 1e9) : 0);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double max_seconds() const noexcept {
    return static_cast<double>(max_) * 1e-9;
  }

  /// Quantile in recorded units: the midpoint of the bucket holding the
  /// q-th sample (exact for values < 2^kSubBits, ≤~0.8% relative error
  /// above), clamped to the observed max. q=1 returns the exact max.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    ICOLLECT_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_) + 0.5);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      if (counts_[i] > 0 && cum >= target) {
        const std::uint64_t rep = bucket_floor(i) + bucket_width(i) / 2;
        return rep < max_ ? rep : max_;
      }
    }
    return max_;
  }

  [[nodiscard]] double quantile_seconds(double q) const noexcept {
    return static_cast<double>(quantile(q)) * 1e-9;
  }

  /// Fold another histogram's samples into this one.
  void merge(const LatencyHistogram& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() noexcept {
    for (auto& c : counts_) c = 0;
    total_ = 0;
    max_ = 0;
  }

  // --- bucket geometry (exposed for tests) --------------------------------
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    constexpr std::uint64_t kSub = 1ULL << kSubBits;
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(msb - kSubBits + 1) << kSubBits) + sub);
  }

  /// Smallest value mapping to bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t idx) noexcept {
    constexpr std::size_t kSub = 1ULL << kSubBits;
    if (idx < kSub) return idx;
    const auto block = static_cast<unsigned>(idx >> kSubBits);
    const std::uint64_t sub = idx & (kSub - 1);
    const unsigned msb = block + kSubBits - 1;
    return (1ULL << msb) + (sub << (msb - kSubBits));
  }

  /// Number of distinct values mapping to bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_width(std::size_t idx) noexcept {
    constexpr std::size_t kSub = 1ULL << kSubBits;
    if (idx < kSub) return 1;
    const auto block = static_cast<unsigned>(idx >> kSubBits);
    return 1ULL << (block + kSubBits - 1 - kSubBits);
  }

 private:
  std::vector<std::uint64_t> counts_;  ///< grows lazily to the max index
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace icollect::stats
