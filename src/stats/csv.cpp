#include "stats/csv.h"

#include <cstdio>
#include <stdexcept>

namespace icollect::stats {

CsvWriter::CsvWriter(const std::string& path) : out_{path, std::ios::trunc} {
  if (!out_.is_open()) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "'");
  }
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

CsvWriter::Row& CsvWriter::Row::add(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  fields_.emplace_back(buf);
  return *this;
}

void CsvWriter::Row::end() {
  owner_->write_row(fields_);
  fields_.clear();
}

}  // namespace icollect::stats
