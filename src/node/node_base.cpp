#include "node/node_base.h"

#include <algorithm>
#include <utility>

namespace icollect::node {

NodeBase::NodeBase(const NodeConfig& cfg, net::Transport& transport,
                   net::TimerWheel& wheel, obs::MetricsRegistry* metrics,
                   std::string metric_prefix)
    : transport_{transport},
      wheel_{wheel},
      metrics_{metrics},
      metric_prefix_{std::move(metric_prefix)},
      cfg_{cfg} {
  cfg_.validate();
  transport_.set_handler(this);
  if (metrics_ != nullptr) {
    auto gauge = [this](const char* name, const std::uint64_t* v) {
      metrics_->gauge(metric_prefix_ + name,
                      [v] { return static_cast<double>(*v); });
    };
    gauge("frames_sent", &frames_sent_);
    gauge("frames_received", &frames_received_);
    gauge("wire_decode_errors", &decode_errors_);
    gauge("version_rejects", &version_rejects_);
    gauge("send_refusals", &send_refusals_);
    gauge("handshakes_ok", &handshakes_ok_);
    gauge("segment_rejects", &segment_rejects_);
    // One column per framing-error kind ("wire_err.bad-crc", ...), so a
    // run's snapshots show *why* sessions died, not only that they did.
    for (std::uint8_t s = 2; s < 8; ++s) {
      const auto status = static_cast<wire::DecodeStatus>(s);
      gauge((std::string{"wire_err."} + wire::to_string(status)).c_str(),
            &decode_errors_by_[s]);
    }
    metrics_->gauge(metric_prefix_ + "peer_sessions", [this] {
      return static_cast<double>(peer_conns_.size());
    });
    metrics_->gauge(metric_prefix_ + "server_sessions", [this] {
      return static_cast<double>(server_conns_.size());
    });
  }
}

void NodeBase::on_peer_up(net::NodeId conn) {
  auto session = std::make_unique<Session>();
  session->conn = conn;
  Session& ref = *session;
  sessions_[conn] = std::move(session);
  // Both sides open with HELLO; the session is usable once the remote's
  // HELLO arrives and negotiation succeeds.
  wire::Hello hello;
  hello.role = role();
  hello.version_min = wire::kProtocolVersion;
  hello.version_max = wire::kProtocolVersion;
  hello.node_id = cfg_.node_id;
  hello.segment_size = static_cast<std::uint16_t>(cfg_.segment_size);
  hello.buffer_cap = role() == wire::NodeRole::kPeer
                         ? static_cast<std::uint32_t>(cfg_.buffer_cap)
                         : 0U;
  send_message(ref.conn, wire::Message{hello});
}

void NodeBase::drop_from_roster(net::NodeId conn, wire::NodeRole remote_role) {
  auto& roster = remote_role == wire::NodeRole::kPeer ? peer_conns_
                                                      : server_conns_;
  const auto it = std::find(roster.begin(), roster.end(), conn);
  if (it != roster.end()) roster.erase(it);
}

void NodeBase::on_peer_down(net::NodeId conn) {
  const auto it = sessions_.find(conn);
  if (it == sessions_.end()) return;
  Session& session = *it->second;
  if (session.established) {
    drop_from_roster(conn, session.remote.role);
    on_session_closed(session);
  }
  sessions_.erase(it);
}

void NodeBase::on_bytes(net::NodeId conn,
                        std::span<const std::uint8_t> bytes) {
  Session* session = find_session(conn);
  if (session == nullptr) return;
  session->decoder.feed(bytes);
  for (;;) {
    auto result = session->decoder.next();
    if (result.status == wire::DecodeStatus::kNeedMore) return;
    if (wire::is_error(result.status)) {
      ++decode_errors_;
      ++decode_errors_by_[static_cast<std::size_t>(result.status)];
      end_session(conn, wire::ByeReason::kProtocolError);
      return;
    }
    ++frames_received_;
    if (!session->established) {
      if (const auto* hello = std::get_if<wire::Hello>(&result.message)) {
        handle_hello(*session, *hello);
      } else {
        // Anything before HELLO is a protocol violation.
        end_session(conn, wire::ByeReason::kProtocolError);
        return;
      }
    } else if (std::holds_alternative<wire::Bye>(result.message)) {
      transport_.close_peer(conn);
      on_peer_down(conn);
      return;
    } else {
      handle_message(*session, std::move(result.message));
    }
    // The handler may have torn the session down.
    session = find_session(conn);
    if (session == nullptr) return;
  }
}

void NodeBase::handle_hello(Session& session, const wire::Hello& hello) {
  const std::uint8_t lo = std::max<std::uint8_t>(hello.version_min,
                                                 wire::kProtocolVersion);
  const std::uint8_t hi = std::min<std::uint8_t>(hello.version_max,
                                                 wire::kProtocolVersion);
  if (lo > hi) {
    ++version_rejects_;
    end_session(session.conn, wire::ByeReason::kVersionMismatch);
    return;
  }
  if (hello.segment_size != cfg_.segment_size) {
    // Mixed-s populations cannot exchange coded blocks; refuse early.
    ++segment_rejects_;
    end_session(session.conn, wire::ByeReason::kProtocolError);
    return;
  }
  ++handshakes_ok_;
  session.remote = hello;
  session.version = hi;
  session.established = true;
  auto& roster = hello.role == wire::NodeRole::kPeer ? peer_conns_
                                                     : server_conns_;
  roster.push_back(session.conn);
  on_session_established(session);
}

bool NodeBase::send_message(net::NodeId conn, const wire::Message& message) {
  frame_scratch_.clear();
  wire::encode_frame(message, frame_scratch_);
  if (!transport_.send(conn, frame_scratch_)) {
    ++send_refusals_;
    return false;
  }
  ++frames_sent_;
  return true;
}

void NodeBase::end_session(net::NodeId conn, wire::ByeReason reason) {
  send_message(conn, wire::Message{wire::Bye{reason}});
  transport_.close_peer(conn);
  on_peer_down(conn);
}

NodeBase::Session* NodeBase::find_session(net::NodeId conn) {
  const auto it = sessions_.find(conn);
  return it == sessions_.end() ? nullptr : it->second.get();
}

}  // namespace icollect::node
