#include "node/cluster.h"

#include <string>

#include "common/assert.h"
#include "sim/random.h"

namespace icollect::node {

namespace {

/// Node identities: peers are 1..N, servers live in a disjoint range so
/// a SegmentId origin always names its injecting peer unambiguously.
constexpr std::uint32_t kServerIdBase = 0x80000000U;

}  // namespace

LoopbackCluster::LoopbackCluster(const ClusterConfig& cfg,
                                 obs::MetricsRegistry* metrics)
    : cfg_{cfg}, net_{cfg.net} {
  ICOLLECT_EXPECTS(cfg.num_peers >= 2);
  ICOLLECT_EXPECTS(cfg.num_servers >= 1);
  ICOLLECT_EXPECTS(cfg.dishonest_fraction >= 0.0 &&
                   cfg.dishonest_fraction <= 1.0);
  // Integrity checks are over payload bytes; with none they are vacuous.
  ICOLLECT_EXPECTS(cfg.integrity_checks == 0 || cfg.payload_bytes > 0);

  dishonest_count_ = static_cast<std::size_t>(
      static_cast<double>(cfg.num_peers) * cfg.dishonest_fraction);
  if (cfg.integrity_checks > 0) {
    // One shared authority per run — the trusted in-process analogue of
    // a verification key distributed out of band. The key derivation
    // matches p2p::Network's so a sim run and a cluster run at the same
    // seed agree on the check vectors.
    integrity_ =
        std::make_unique<proto::IntegrityAuthority>(proto::IntegrityParams{
            sim::splitmix64(cfg.seed ^ 0x1A76E9D2B4C05A31ULL),
            cfg.integrity_checks});
  }

  // Endpoints first (ids 0..N-1 peers, N..N+M-1 servers), then nodes
  // (each registers itself as its endpoint's handler), then wiring —
  // so every HELLO finds a listening handler.
  for (std::size_t i = 0; i < cfg.num_peers + cfg.num_servers; ++i) {
    net_.create_endpoint();
  }

  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    NodeConfig nc;
    nc.node_id = static_cast<std::uint32_t>(i + 1);
    nc.segment_size = cfg.segment_size;
    nc.payload_bytes = cfg.payload_bytes;
    nc.buffer_cap = cfg.buffer_cap;
    nc.lambda = cfg.lambda;
    nc.mu = cfg.mu;
    nc.gamma = cfg.gamma;
    nc.max_segments = cfg.segments_per_peer;
    nc.drop_on_ack = cfg.drop_on_ack;
    nc.retain_own_until_acked = cfg.retain_own_until_acked;
    nc.byzantine = i < dishonest_count_;
    nc.corruption = cfg.corruption;
    nc.seed = sim::splitmix64(cfg.seed + 0x1000 + i);
    peers_.push_back(std::make_unique<PeerNode>(
        nc, net_.endpoint(static_cast<net::NodeId>(i)), net_.timers(),
        metrics, "peer" + std::to_string(i + 1) + "."));
    if (integrity_ != nullptr) peers_.back()->set_integrity(integrity_.get());
    if (cfg.arrival != nullptr) {
      peers_.back()->set_arrival_profile(cfg.arrival);
    }
  }
  for (std::size_t i = 0; i < cfg.num_servers; ++i) {
    NodeConfig nc;
    nc.node_id = kServerIdBase + static_cast<std::uint32_t>(i);
    nc.segment_size = cfg.segment_size;
    nc.payload_bytes = cfg.payload_bytes;
    nc.buffer_cap = cfg.segment_size;  // unused by servers; keep valid
    nc.gamma = cfg.gamma;
    nc.pull_rate = cfg.server_rate;
    nc.pull_policy = cfg.pull_policy;
    nc.seed = sim::splitmix64(cfg.seed + 0x2000 + i);
    servers_.push_back(std::make_unique<ServerNode>(
        nc,
        net_.endpoint(static_cast<net::NodeId>(cfg.num_peers + i)),
        net_.timers(), metrics, "server" + std::to_string(i) + "."));
    if (integrity_ != nullptr) {
      servers_.back()->set_integrity(integrity_.get());
    }
    servers_.back()->set_decode_hook(
        [this](const coding::SegmentId& id, double) { on_decode(id); });
  }

  // Complete topology, matching the simulator's default: peer↔peer for
  // gossip, server↔peer for pulls, server↔server for forwarding.
  const auto id = [](std::size_t i) { return static_cast<net::NodeId>(i); };
  for (std::size_t a = 0; a < cfg.num_peers; ++a) {
    for (std::size_t b = a + 1; b < cfg.num_peers; ++b) {
      net_.connect(id(a), id(b));
    }
  }
  for (std::size_t s = 0; s < cfg.num_servers; ++s) {
    for (std::size_t p = 0; p < cfg.num_peers; ++p) {
      net_.connect(id(cfg.num_peers + s), id(p));
    }
    for (std::size_t t = s + 1; t < cfg.num_servers; ++t) {
      net_.connect(id(cfg.num_peers + s), id(cfg.num_peers + t));
    }
  }

  // Let the HELLO exchange complete (one link latency each way) before
  // the stochastic processes start, so early gossip has targets.
  net_.run_for(2.0 * (cfg.net.latency + cfg.net.latency_jitter) +
               4.0 * cfg.net.tick_seconds);
  for (auto& p : peers_) p->start();
  for (auto& s : servers_) s->start();
  schedule_sampler();
  begin_measurement();

  if (metrics != nullptr) {
    metrics->gauge("cluster.segments_injected", [this] {
      return static_cast<double>(segments_injected());
    });
    metrics->gauge("cluster.segments_decoded", [this] {
      return static_cast<double>(segments_decoded());
    });
    metrics->gauge("cluster.innovative_pulls", [this] {
      return static_cast<double>(innovative_pulls());
    });
    metrics->gauge("cluster.pulls_sent", [this] {
      return static_cast<double>(pulls_sent());
    });
    metrics->gauge("cluster.gossip_sent", [this] {
      return static_cast<double>(gossip_sent());
    });
    metrics->gauge("cluster.buffered_blocks", [this] {
      return static_cast<double>(total_buffered_blocks());
    });
    metrics->gauge("cluster.normalized_throughput",
                   [this] { return normalized_throughput(); });
    metrics->gauge("cluster.mean_blocks_per_peer",
                   [this] { return mean_blocks_per_peer(); });
    net_.attach_metrics(*metrics, "loopback.");
  }
}

void LoopbackCluster::set_trace_sink(proto::TraceSink sink) {
  for (auto& p : peers_) p->set_trace_sink(sink);
  for (auto& s : servers_) s->set_trace_sink(sink);
}

void LoopbackCluster::schedule_sampler() {
  net_.timers().schedule_after(cfg_.sample_interval, [this] {
    blocks_time_sum_ += static_cast<double>(total_buffered_blocks());
    ++samples_;
    schedule_sampler();
  });
}

void LoopbackCluster::on_decode(const coding::SegmentId& id) {
  decoded_union_.insert(id);
}

bool LoopbackCluster::complete() const {
  if (cfg_.segments_per_peer == 0) return false;
  for (const auto& p : peers_) {
    if (!p->injection_done()) return false;
  }
  const std::uint64_t injected = segments_injected();
  if (injected == 0 || decoded_union_.size() != injected) return false;
  // Every server (not just the union) must have finished — the pooled
  // forwarding guarantees they all converge.
  for (const auto& s : servers_) {
    if (s->bank().segments_decoded() != injected) return false;
  }
  return true;
}

bool LoopbackCluster::honest_complete() const {
  if (cfg_.segments_per_peer == 0) return false;
  bool any = false;
  for (std::size_t i = dishonest_count_; i < peers_.size(); ++i) {
    if (!peers_[i]->injection_done()) return false;
    if (!peers_[i]->all_injected_acked()) return false;
    any = true;
  }
  return any;
}

bool LoopbackCluster::run_to_completion(double max_virtual_time) {
  ICOLLECT_EXPECTS(cfg_.segments_per_peer > 0);
  // Byzantine peers corrupt all their egress, so their own segments can
  // never decode: the finish line for adversarial runs is the honest
  // population's.
  const bool adversarial = dishonest_count_ > 0;
  const auto done = [&] {
    return adversarial ? honest_complete() : complete();
  };
  const double step = 0.25;
  while (!done() && now() < max_virtual_time) {
    net_.run_for(step);
  }
  return done();
}

std::uint64_t LoopbackCluster::segments_injected() const {
  std::uint64_t n = 0;
  for (const auto& p : peers_) n += p->segments_injected();
  return n;
}

std::uint64_t LoopbackCluster::innovative_pulls() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s->innovative_pulls();
  return n;
}

std::uint64_t LoopbackCluster::pulls_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s->pulls_sent();
  return n;
}

std::uint64_t LoopbackCluster::gossip_sent() const {
  std::uint64_t n = 0;
  for (const auto& p : peers_) n += p->gossip_sent();
  return n;
}

std::uint64_t LoopbackCluster::total_buffered_blocks() const {
  std::uint64_t n = 0;
  for (const auto& p : peers_) n += p->buffer().size();
  return n;
}

std::uint64_t LoopbackCluster::honest_segments_injected() const {
  std::uint64_t n = 0;
  for (std::size_t i = dishonest_count_; i < peers_.size(); ++i) {
    n += peers_[i]->segments_injected();
  }
  return n;
}

std::uint64_t LoopbackCluster::blocks_corrupted() const {
  std::uint64_t n = 0;
  for (const auto& p : peers_) n += p->blocks_corrupted();
  return n;
}

std::uint64_t LoopbackCluster::blocks_quarantined() const {
  std::uint64_t n = 0;
  for (const auto& p : peers_) n += p->blocks_quarantined();
  return n;
}

std::uint64_t LoopbackCluster::polluted_pulls() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s->polluted_pulls();
  return n;
}

void LoopbackCluster::begin_measurement() {
  measure_start_ = now();
  base_innovative_ = innovative_pulls();
  blocks_time_sum_ = 0.0;
  samples_ = 0;
}

double LoopbackCluster::normalized_throughput() const {
  const double elapsed = now() - measure_start_;
  const double demand =
      static_cast<double>(cfg_.num_peers) * cfg_.lambda;
  if (elapsed <= 0.0 || demand <= 0.0) return 0.0;
  return static_cast<double>(innovative_pulls() - base_innovative_) /
         elapsed / demand;
}

double LoopbackCluster::mean_blocks_per_peer() const {
  if (samples_ == 0) return 0.0;
  return blocks_time_sum_ / static_cast<double>(samples_) /
         static_cast<double>(cfg_.num_peers);
}

}  // namespace icollect::node
