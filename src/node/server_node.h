#pragma once

/// \file server_node.h
/// A live collaborating logging server: pulls re-coded blocks from
/// random non-empty peers at rate c_s, feeds them to a progressive
/// GF(2^8) decoder bank, and announces completed segments with
/// SEGMENT_DECODED_ACK.
///
/// The paper pools all N_s servers into one collection state; separate
/// live processes realize that pooling by *forwarding*: every block a
/// server pulls that is innovative for its own bank is re-sent as a
/// GOSSIP_BLOCK to the other servers, whose banks absorb it without
/// counting a pull. In steady state every bank therefore tracks the
/// pooled rank (modulo forwarding latency), each segment decodes at
/// every server, and summed per-server innovative-pull counts remain
/// comparable to the simulator's pooled ServerBank
/// (tests/node_vs_sim_test.cpp holds them to its confidence interval).
///
/// Peer selection mirrors the simulator's uniform-non-empty rule using
/// the occupancy each PULL_BLOCK piggybacks: peers whose last reported
/// occupancy is zero are skipped (they re-enter the candidate set
/// optimistically after occupancy_refresh seconds, since a live server
/// cannot observe refills remotely). The selection itself flows through
/// the shared proto::PullPolicy seam (uniform rejection sampling over
/// eligible roster indices; see proto/selection.h).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include <memory>

#include "coding/segment_id.h"
#include "common/rng.h"
#include "node/node_base.h"
#include "obs/clock.h"
#include "proto/pull_policy.h"
#include "proto/server_core.h"
#include "sched/rank_tracker.h"
#include "stats/latency_histogram.h"

namespace icollect::node {

class ServerNode final : public NodeBase {
 public:
  ServerNode(const NodeConfig& cfg, net::Transport& transport,
             net::TimerWheel& wheel, obs::MetricsRegistry* metrics = nullptr,
             const std::string& metric_prefix = "server.");

  /// Arm the pull process. Call once, after wiring.
  void start();

  /// Attach the shared per-run integrity authority (scenario pack).
  /// Call before start(): every pulled or forwarded block is verified
  /// and polluted ones are quarantined before Gaussian elimination.
  /// nullptr (the default) disables verification entirely.
  void set_integrity(const proto::IntegrityAuthority* authority) {
    core_.set_integrity(authority);
  }

  /// Invoked when this server's bank completes a segment.
  using DecodeHook =
      std::function<void(const coding::SegmentId&, double when)>;
  void set_decode_hook(DecodeHook hook) { decode_hook_ = std::move(hook); }

  /// Replace the pull-scheduling strategy (call before start()). The
  /// default follows NodeConfig::pull_policy; uniform reproduces the
  /// paper's pull over (believed-)non-empty peers. A policy that wants
  /// deficit feedback gets a RankTracker stood up for it.
  void set_pull_policy(std::unique_ptr<proto::PullPolicy> policy) {
    ICOLLECT_EXPECTS(policy != nullptr);
    pull_policy_ = std::move(policy);
    if (pull_policy_->wants_feedback() && tracker_ == nullptr) {
      tracker_ = std::make_unique<sched::RankTracker>();
    }
  }

  /// The scheduling state backing rarest/deficit policies; nullptr
  /// under the default uniform policy.
  [[nodiscard]] const sched::RankTracker* tracker() const noexcept {
    return tracker_.get();
  }

  [[nodiscard]] const proto::ServerBank& bank() const noexcept {
    return core_.bank();
  }
  [[nodiscard]] proto::ServerBank& bank() noexcept { return core_.bank(); }

  // --- counters -----------------------------------------------------------
  [[nodiscard]] std::uint64_t pulls_sent() const noexcept {
    return pulls_sent_;
  }
  [[nodiscard]] std::uint64_t pull_replies() const noexcept {
    return pull_replies_;
  }
  [[nodiscard]] std::uint64_t pull_empty_replies() const noexcept {
    return pull_empty_replies_;
  }
  [[nodiscard]] std::uint64_t pulls_starved() const noexcept {
    return pulls_starved_;
  }
  [[nodiscard]] std::uint64_t innovative_pulls() const noexcept {
    return innovative_pulls_;
  }
  [[nodiscard]] std::uint64_t redundant_pulls() const noexcept {
    return redundant_pulls_;
  }
  [[nodiscard]] std::uint64_t stale_pulls() const noexcept {
    return stale_pulls_;
  }
  [[nodiscard]] std::uint64_t forwarded_out() const noexcept {
    return forwarded_out_;
  }
  [[nodiscard]] std::uint64_t forwarded_in() const noexcept {
    return forwarded_in_;
  }
  [[nodiscard]] std::uint64_t acks_sent() const noexcept {
    return acks_sent_;
  }
  /// Pulled blocks rejected by integrity verification (quarantined
  /// before they could reach the decoder bank).
  [[nodiscard]] std::uint64_t polluted_pulls() const noexcept {
    return polluted_pulls_;
  }
  /// All blocks (pulled + forwarded) the core quarantined.
  [[nodiscard]] std::uint64_t polluted_blocks() const noexcept {
    return core_.polluted_blocks();
  }
  [[nodiscard]] std::uint64_t segments_decoded() const noexcept {
    return core_.bank().segments_decoded();
  }
  /// BUFFER_SUMMARY frames merged into the tracker (0 under uniform).
  [[nodiscard]] std::uint64_t summaries_received() const noexcept {
    return summaries_received_;
  }
  /// Pulls that requested a specific segment (want-biased pulls).
  [[nodiscard]] std::uint64_t targeted_pulls() const noexcept {
    return targeted_pulls_;
  }

  // --- latency ------------------------------------------------------------
  /// PULL_REQUEST→PULL_BLOCK round trips, in the wheel's time base
  /// (virtual seconds over loopback, wall seconds over TCP). Always
  /// recorded; lives in the registry (as "<prefix>pull_rtt") when
  /// metrics are attached so snapshots export its quantiles.
  [[nodiscard]] const stats::LatencyHistogram& pull_rtt() const noexcept {
    return *pull_rtt_;
  }
  /// First block of a segment offered to the bank → segment decoded.
  [[nodiscard]] const stats::LatencyHistogram& decode_latency()
      const noexcept {
    return *decode_latency_;
  }

 protected:
  [[nodiscard]] wire::NodeRole role() const noexcept override {
    return wire::NodeRole::kServer;
  }
  void handle_message(Session& session, wire::Message&& message) override;
  void on_session_closed(Session& session) override;

 private:
  void schedule_pull();
  void do_pull();
  void handle_pull_block(Session& session, wire::PullBlock&& reply);
  void offer_to_bank(const coding::CodedBlock& block, bool from_pull,
                     net::NodeId from_conn);
  void on_bank_decode(const proto::ServerBank::DecodeEvent& event);

  /// Seconds after which a zero-occupancy report expires and the peer
  /// is probed again.
  static constexpr double kOccupancyRefresh = 1.0;

  /// Rejection-sampling probes per pull before falling back to a full
  /// roster scan. With fraction p of peers eligible, the fallback runs
  /// with probability (1-p)^16 — at 10k peers the scan would dominate
  /// every pull, so keeping selection O(1)-expected is what lets pull
  /// rate scale with the epoll reactor (docs/PERFORMANCE.md).
  static constexpr int kPullProbes = 16;

  /// Ceiling on pulls fired from one timer callback. schedule_pull
  /// batches Poisson arrivals that fall inside one wheel tick; the cap
  /// bounds the draw loop (and the callback) at absurd pull rates.
  static constexpr std::uint32_t kMaxPullBurst = 4096;

  /// In-flight pull budget: tokens whose replies never arrive (dead
  /// peer, dropped frame) are forgotten wholesale past this many.
  static constexpr std::size_t kMaxPendingPulls = 65536;

  common::Rng rng_;
  /// The wheel is the server's one clock; the core stamps bank events
  /// through it (virtual seconds over loopback, wall seconds over TCP).
  obs::CallbackClock wheel_clock_;
  proto::ServerCore core_;
  std::unique_ptr<proto::PullPolicy> pull_policy_;
  /// Deficit + availability state for feedback policies; nullptr under
  /// uniform so the default hot path carries zero scheduling overhead.
  std::unique_ptr<sched::RankTracker> tracker_;
  DecodeHook decode_hook_;
  std::uint32_t next_token_ = 1;

  struct OccupancyInfo {
    std::uint32_t blocks = 0;
    double reported_at = 0.0;
  };
  std::unordered_map<net::NodeId, OccupancyInfo> occupancy_;

  /// PULL_REQUEST send times by token, awaiting their PULL_BLOCK.
  std::unordered_map<std::uint32_t, double> pending_pulls_;
  /// When the bank first saw each still-undecoded segment.
  std::unordered_map<coding::SegmentId, double> first_seen_;
  /// Point at registry-owned histograms when metrics are attached, else
  /// at the own_* members — the hot path is identical either way.
  stats::LatencyHistogram* pull_rtt_ = nullptr;
  stats::LatencyHistogram* decode_latency_ = nullptr;
  stats::LatencyHistogram own_pull_rtt_;
  stats::LatencyHistogram own_decode_latency_;

  std::uint64_t pulls_sent_ = 0;
  std::uint64_t pull_replies_ = 0;
  std::uint64_t pull_empty_replies_ = 0;
  std::uint64_t pulls_starved_ = 0;
  std::uint64_t innovative_pulls_ = 0;
  std::uint64_t redundant_pulls_ = 0;
  std::uint64_t stale_pulls_ = 0;
  std::uint64_t forwarded_out_ = 0;
  std::uint64_t forwarded_in_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t polluted_pulls_ = 0;
  std::uint64_t segments_decoded_metric_ = 0;
  std::uint64_t summaries_received_ = 0;
  std::uint64_t targeted_pulls_ = 0;
};

}  // namespace icollect::node
