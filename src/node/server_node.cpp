#include "node/server_node.h"

#include <memory>
#include <optional>
#include <utility>

#include "proto/selection.h"
#include "sched/pull_policies.h"

namespace icollect::node {

ServerNode::ServerNode(const NodeConfig& cfg, net::Transport& transport,
                       net::TimerWheel& wheel, obs::MetricsRegistry* metrics,
                       const std::string& metric_prefix)
    : NodeBase{cfg, transport, wheel, metrics, metric_prefix},
      rng_{cfg.seed},
      wheel_clock_{[this] { return wheel_.now(); }},
      core_{/*keep_payloads=*/cfg.payload_bytes > 0, wheel_clock_},
      pull_policy_{sched::make_pull_policy(cfg.pull_policy)} {
  if (pull_policy_->wants_feedback()) {
    tracker_ = std::make_unique<sched::RankTracker>();
  }
  core_.set_decode_callback(
      [this](const proto::ServerBank::DecodeEvent& ev) {
        on_bank_decode(ev);
      });
  if (metrics_ != nullptr) {
    auto gauge = [this](const char* name, const std::uint64_t* v) {
      metrics_->gauge(metric_prefix_ + name,
                      [v] { return static_cast<double>(*v); });
    };
    gauge("pulls_sent", &pulls_sent_);
    gauge("pull_replies", &pull_replies_);
    gauge("pull_empty_replies", &pull_empty_replies_);
    gauge("pulls_starved", &pulls_starved_);
    gauge("innovative_pulls", &innovative_pulls_);
    gauge("redundant_pulls", &redundant_pulls_);
    gauge("stale_pulls", &stale_pulls_);
    gauge("forwarded_out", &forwarded_out_);
    gauge("forwarded_in", &forwarded_in_);
    gauge("acks_sent", &acks_sent_);
    gauge("polluted_pulls", &polluted_pulls_);
    gauge("segments_decoded", &segments_decoded_metric_);
    metrics_->gauge(metric_prefix_ + "polluted_blocks", [this] {
      return static_cast<double>(core_.polluted_blocks());
    });
    metrics_->gauge(metric_prefix_ + "bank_in_progress", [this] {
      return static_cast<double>(core_.bank().segments_in_progress());
    });
    metrics_->gauge(metric_prefix_ + "pending_pulls", [this] {
      return static_cast<double>(pending_pulls_.size());
    });
  }
  // Latency histograms are always recorded; with metrics attached they
  // live in the registry so snapshots export their quantiles.
  pull_rtt_ = metrics_ != nullptr
                  ? &metrics_->latency(metric_prefix_ + "pull_rtt")
                  : &own_pull_rtt_;
  decode_latency_ =
      metrics_ != nullptr
          ? &metrics_->latency(metric_prefix_ + "decode_latency")
          : &own_decode_latency_;
}

void ServerNode::start() {
  if (config().pull_rate > 0.0) schedule_pull();
}

void ServerNode::schedule_pull() {
  // Exponential inter-arrival times make demanded pulls a Poisson
  // process, but the wheel rounds every delay up to a whole tick — one
  // arrival per callback would cap the server at 1/tick pulls per
  // second (~1k/s at the default 1 ms tick) no matter what pull_rate
  // asks for. Arrivals whose gaps land inside one tick are therefore
  // batched: keep drawing until the cumulative delay crosses a tick
  // boundary, then fire the whole batch on that tick. The per-tick
  // pull count stays Poisson(pull_rate * tick).
  double delay = rng_.exponential(config().pull_rate);
  std::uint32_t burst = 1;
  const double tick = wheel_.tick_seconds();
  while (delay < tick && burst < kMaxPullBurst) {
    delay += rng_.exponential(config().pull_rate);
    ++burst;
  }
  wheel_.schedule_after(delay, [this, burst] {
    for (std::uint32_t i = 0; i < burst; ++i) do_pull();
    schedule_pull();
  });
}

void ServerNode::do_pull() {
  // The paper's rule: uniform over peers with non-null buffers. A live
  // server only knows occupancy as of each peer's last PULL_BLOCK, so
  // zero reports age out after kOccupancyRefresh and unknown peers are
  // treated as non-empty (optimistic).
  const double t = wheel_.now();
  const std::vector<net::NodeId>& conns = peer_conns();
  if (conns.empty()) {
    ++pulls_starved_;
    return;
  }
  const auto eligible = [&](net::NodeId conn) {
    const auto it = occupancy_.find(conn);
    return it == occupancy_.end() || it->second.blocks != 0 ||
           t - it->second.reported_at >= kOccupancyRefresh;
  };
  // Uniform-over-eligible selection through the shared policy seam:
  // rejection sampling over roster indices, with the exhaustive-scan
  // fallback when every probe rejects (proto/selection.h). Conditioning
  // a uniform draw on eligibility IS the uniform distribution over
  // eligible peers, at O(1) expected cost instead of O(n) per pull.
  const auto eligible_index = [&](std::size_t i) { return eligible(conns[i]); };
  // Scheduling policies first ask for a wanted segment, then bias peer
  // selection toward eligible peers whose last BUFFER_SUMMARY (within
  // the tracker's staleness bound) advertises it. When no advertiser is
  // known the pull falls back to the uniform rule with the want
  // cleared — the answering peer chooses from its own buffer, which
  // doubles as discovery of segments the tracker has not seen yet.
  std::optional<coding::SegmentId> want;
  std::size_t pick = proto::kNoSelection;
  if (tracker_ != nullptr) {
    if (tracker_->open_count() == 0 && tracker_->suspended_count() > 0) {
      tracker_->reactivate_all();
    }
    want = pull_policy_->want_segment(rng_, *tracker_);
    if (want) {
      const auto advertises = [&](std::size_t i) {
        return eligible(conns[i]) && tracker_->peer_has(conns[i], *want, t) &&
               !tracker_->is_exhausted(conns[i], *want);
      };
      pick = pull_policy_->pick_filtered(rng_, conns.size(), kPullProbes,
                                         proto::EligibleRef{advertises});
      if (pick == proto::kNoSelection) want.reset();
    }
  }
  if (pick == proto::kNoSelection) {
    pick = pull_policy_->pick_filtered(
        rng_, conns.size(), kPullProbes, proto::EligibleRef{eligible_index});
  }
  if (pick == proto::kNoSelection) {
    ++pulls_starved_;
    return;
  }
  const net::NodeId target = conns[pick];
  const std::uint32_t token = next_token_++;
  wire::PullRequest request;
  request.token = token;
  if (tracker_ != nullptr) {
    request.want = want;
    // Bounded-staleness feedback: ask for a summary only when the
    // target's last one has aged out — one summary per peer per
    // staleness window, not per pull.
    request.want_summary = !tracker_->peer_fresh(target, t);
    if (want) ++targeted_pulls_;
  }
  if (send_message(target, wire::Message{request})) {
    ++pulls_sent_;
    if (pending_pulls_.size() >= kMaxPendingPulls) pending_pulls_.clear();
    pending_pulls_.emplace(token, t);
  }
}

void ServerNode::handle_pull_block(Session& session,
                                   wire::PullBlock&& reply) {
  occupancy_[session.conn] =
      OccupancyInfo{reply.occupancy, wheel_.now()};
  if (const auto it = pending_pulls_.find(reply.token);
      it != pending_pulls_.end()) {
    pull_rtt_->record_seconds(wheel_.now() - it->second);
    pending_pulls_.erase(it);
  }
  if (!reply.has_block) {
    ++pull_empty_replies_;
    return;
  }
  ++pull_replies_;
  if (reply.block.segment_size() != config().segment_size ||
      reply.block.is_degenerate()) {
    return;  // junk a conforming peer never sends
  }
  offer_to_bank(reply.block, /*from_pull=*/true, session.conn);
}

void ServerNode::offer_to_bank(const coding::CodedBlock& block,
                               bool from_pull, net::NodeId from_conn) {
  // Stamp the segment's first sighting before the offer: if this very
  // block completes the decode, on_bank_decode fires inside offer() and
  // consumes the stamp.
  if (!core_.bank().is_decoded(block.segment)) {
    first_seen_.emplace(block.segment, wheel_.now());
  }
  const auto result =
      from_pull ? core_.on_pull_block(block) : core_.on_forwarded_block(block);
  if (result == proto::ServerBank::PullResult::kPolluted) {
    // Quarantined before Gaussian elimination; the pull is spent. The
    // core counts forwarded pollution too (polluted_blocks()).
    if (from_pull) {
      ++polluted_pulls_;
      trace(proto::TraceEventKind::kBlockQuarantined, config().node_id,
            block.segment, from_conn);
    }
    return;
  }
  if (tracker_ != nullptr) {
    // Deficit feed: innovative advances (pulled or forwarded) update
    // the open set; redundant pulls build the suspension streak that
    // keeps rarest-first off segments whose holders are exhausted.
    if (result == proto::ServerBank::PullResult::kInnovative) {
      tracker_->on_state(block.segment, core_.bank().state(block.segment),
                         config().segment_size);
    } else if (from_pull &&
               result == proto::ServerBank::PullResult::kRedundant) {
      // A redundant recode means the answering peer's whole span for
      // this segment is already known — stop targeting it for this
      // segment until the suspension cycle resets the evidence.
      tracker_->mark_exhausted(from_conn, block.segment);
      tracker_->on_redundant(block.segment);
    }
  }
  if (!from_pull) return;  // forwarded blocks don't count as pulls
  trace(proto::TraceEventKind::kServerPull, from_conn, block.segment,
        result == proto::ServerBank::PullResult::kInnovative ? 1 : 0);
  switch (result) {
    case proto::ServerBank::PullResult::kInnovative:
      ++innovative_pulls_;
      break;
    case proto::ServerBank::PullResult::kRedundant:
      ++redundant_pulls_;
      break;
    case proto::ServerBank::PullResult::kAlreadyDecoded:
      ++stale_pulls_;
      break;
    case proto::ServerBank::PullResult::kPolluted:
      break;  // handled above
  }
  if (proto::ServerCore::should_forward(result)) {
    // Pooled-state forwarding: let the other servers' banks absorb
    // what this pull contributed. Iterate a copy: a hard send failure
    // can tear down the session and mutate the roster mid-loop.
    const std::vector<net::NodeId> servers = server_conns();
    for (const net::NodeId conn : servers) {
      if (send_message(conn, wire::Message{wire::GossipBlock{block}})) {
        ++forwarded_out_;
      }
    }
  }
}

void ServerNode::on_bank_decode(const proto::ServerBank::DecodeEvent& event) {
  // The bank fires this callback before recording the segment as
  // decoded, so count the event rather than reading bank state.
  ++segments_decoded_metric_;
  ++acks_sent_;
  if (tracker_ != nullptr) tracker_->on_decoded(event.id);
  if (const auto it = first_seen_.find(event.id); it != first_seen_.end()) {
    decode_latency_->record_seconds(event.when - it->second);
    first_seen_.erase(it);
  }
  trace(proto::TraceEventKind::kSegmentDecoded, 0, event.id,
        config().segment_size);
  const wire::Message ack{wire::SegmentDecodedAck{event.id}};
  // Iterate copies: send_message can tear down a session (transport
  // send failure -> on_peer_down -> drop_from_roster) mid-loop.
  const std::vector<net::NodeId> peers = peer_conns();
  const std::vector<net::NodeId> servers = server_conns();
  for (const net::NodeId conn : peers) send_message(conn, ack);
  for (const net::NodeId conn : servers) send_message(conn, ack);
  if (decode_hook_) decode_hook_(event.id, event.when);
}

void ServerNode::handle_message(Session& session, wire::Message&& message) {
  if (auto* reply = std::get_if<wire::PullBlock>(&message)) {
    handle_pull_block(session, std::move(*reply));
  } else if (const auto* gossip = std::get_if<wire::GossipBlock>(&message)) {
    // Server→server forwarding of an innovative pulled block; peers
    // never gossip at servers, but tolerating it costs nothing.
    ++forwarded_in_;
    if (gossip->block.segment_size() == config().segment_size &&
        !gossip->block.is_degenerate()) {
      offer_to_bank(gossip->block, /*from_pull=*/false, session.conn);
    }
  } else if (std::holds_alternative<wire::SegmentDecodedAck>(message)) {
    // Another server finished a segment we are still collecting; our
    // own bank converges via forwarding, so this is informational.
  } else if (const auto* summary =
                 std::get_if<wire::BufferSummary>(&message)) {
    // Availability feedback a peer piggybacked on a pull reply. A
    // server that never asked (uniform policy, tracker-less) tolerates
    // strays rather than tearing the session down.
    if (tracker_ != nullptr) {
      ++summaries_received_;
      tracker_->merge_summary(session.conn, summary->segments, wheel_.now());
    }
  } else {
    end_session(session.conn, wire::ByeReason::kProtocolError);
  }
}

void ServerNode::on_session_closed(Session& session) {
  occupancy_.erase(session.conn);
  if (tracker_ != nullptr) tracker_->forget_peer(session.conn);
}

}  // namespace icollect::node
