#pragma once

/// \file peer_node.h
/// The live realization of a protocol peer (Sec. 2): a proto::PeerCore
/// driven by wire frames and the shared TimerWheel. The core owns every
/// protocol decision — injection payloads and systematic seeding, gossip
/// segment choice, the receiver-side acceptance rule, Exp(γ) TTLs, pull
/// answers, ACK handling, source-side retention/re-seeding; this class
/// owns what only a live node has — sessions, frames, timers, metrics.
///
/// All timing flows through the shared TimerWheel and all randomness
/// through one seeded common::Rng, so a peer behaves identically — and
/// deterministically — over the loopback transport and over TCP.
///
/// One deliberate divergence from the simulator: the simulator filters
/// gossip *receivers* at the sender (proto::PeerCore::can_accept), which
/// needs global state a live node cannot have. Here the sender picks
/// blindly and the receiver drops ineligible blocks via
/// proto::PeerCore::accept, counting them. At simulator-comparable
/// operating points (buffers not saturated) the two policies measurably
/// agree — node_vs_sim_test pins that equivalence inside the simulator's
/// confidence interval.

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "common/rng.h"
#include "node/node_base.h"
#include "proto/integrity.h"
#include "proto/peer_core.h"
#include "workload/generators.h"

namespace icollect::node {

class PeerNode final : public NodeBase {
 public:
  PeerNode(const NodeConfig& cfg, net::Transport& transport,
           net::TimerWheel& wheel, obs::MetricsRegistry* metrics = nullptr,
           const std::string& metric_prefix = "peer.");

  /// Arm the injection and gossip processes. Call once, after wiring.
  void start();

  /// Stop injecting new segments (gossip and TTL keep running).
  void stop_injection();

  /// Attach the shared per-run integrity authority (scenario pack).
  /// Call before start(): own injected segments register their tags
  /// with it and incoming gossip is verified against it, quarantining
  /// polluted blocks before they reach the buffer. Pass nullptr (the
  /// default) and the peer behaves exactly as before — no extra RNG
  /// draws, bit-identical runs.
  void set_integrity(proto::IntegrityAuthority* authority) {
    core_.set_integrity(authority);
    integrity_ = authority;
  }

  /// Shape injection by a time-varying block rate λ(t) instead of the
  /// constant `lambda` (scenario pack: trace replay). Segments then
  /// arrive as a nonhomogeneous Poisson process at rate λ(t)/s, sampled
  /// by Lewis-Shedler thinning against the profile's max_rate(). Call
  /// before start(); the profile is not owned and must outlive the
  /// node. nullptr (the default) keeps the constant-rate process — and
  /// its exact RNG draw sequence, so existing seeded runs are
  /// bit-identical.
  void set_arrival_profile(const workload::ArrivalProfile* profile) {
    arrival_ = profile;
  }

  [[nodiscard]] const proto::PeerBuffer& buffer() const noexcept {
    return core_.buffer();
  }

  // --- progress -----------------------------------------------------------
  [[nodiscard]] std::uint64_t segments_injected() const noexcept {
    return segments_injected_;
  }
  /// Of this node's own injected segments, how many have been ACKed
  /// decoded by a server.
  [[nodiscard]] std::uint64_t own_segments_acked() const noexcept {
    return own_acked_;
  }
  /// True when every segment this peer ever injected has been ACKed
  /// (and at least one was injected).
  [[nodiscard]] bool all_injected_acked() const noexcept {
    return segments_injected_ > 0 && own_acked_ == segments_injected_;
  }
  /// True once the finite injection budget (max_segments) is spent.
  [[nodiscard]] bool injection_done() const noexcept;

  /// CRC-32 of each original block of an own injected segment (only
  /// recorded when payload_bytes > 0) — lets tests verify byte-exact
  /// end-to-end recovery against the server's decoded originals.
  [[nodiscard]] const std::vector<std::uint32_t>* original_crcs(
      const coding::SegmentId& id) const {
    return core_.original_crcs(id);
  }

  // --- counters -----------------------------------------------------------
  [[nodiscard]] std::uint64_t gossip_sent() const noexcept {
    return gossip_sent_;
  }
  [[nodiscard]] std::uint64_t gossip_idle() const noexcept {
    return gossip_idle_;
  }
  [[nodiscard]] std::uint64_t gossip_no_target() const noexcept {
    return gossip_no_target_;
  }
  [[nodiscard]] std::uint64_t blocks_received() const noexcept {
    return blocks_received_;
  }
  [[nodiscard]] std::uint64_t blocks_dropped_full() const noexcept {
    return blocks_dropped_full_;
  }
  [[nodiscard]] std::uint64_t blocks_dropped_rank() const noexcept {
    return blocks_dropped_rank_;
  }
  [[nodiscard]] std::uint64_t blocks_dropped_acked() const noexcept {
    return blocks_dropped_acked_;
  }
  [[nodiscard]] std::uint64_t ttl_expirations() const noexcept {
    return ttl_expirations_;
  }
  [[nodiscard]] std::uint64_t injection_blocked() const noexcept {
    return injection_blocked_;
  }
  [[nodiscard]] std::uint64_t pull_replies() const noexcept {
    return pull_replies_;
  }
  [[nodiscard]] std::uint64_t pull_empty_replies() const noexcept {
    return pull_empty_replies_;
  }
  [[nodiscard]] std::uint64_t acks_received() const noexcept {
    return acks_received_;
  }
  /// Incoming gossip rejected by integrity verification.
  [[nodiscard]] std::uint64_t blocks_quarantined() const noexcept {
    return blocks_quarantined_;
  }
  /// Outgoing blocks this (byzantine) peer corrupted before sending.
  [[nodiscard]] std::uint64_t blocks_corrupted() const noexcept {
    return blocks_corrupted_;
  }
  [[nodiscard]] std::uint64_t reseeds() const noexcept {
    return core_.reseeds();
  }
  [[nodiscard]] std::uint64_t reseed_evictions() const noexcept {
    return core_.reseed_evictions();
  }

 protected:
  [[nodiscard]] wire::NodeRole role() const noexcept override {
    return wire::NodeRole::kPeer;
  }
  void handle_message(Session& session, wire::Message&& message) override;

 private:
  [[nodiscard]] static proto::PeerCore::Params core_params(
      const NodeConfig& cfg);

  void schedule_inject();
  void schedule_gossip();
  void do_inject();
  void do_gossip();
  void accept_block(coding::CodedBlock&& block, net::NodeId from);
  void corrupt_outgoing(coding::CodedBlock& block);
  void on_ttl_expire(coding::BlockHandle handle);
  void handle_pull_request(Session& session, const wire::PullRequest& req);
  void handle_ack(const coding::SegmentId& id);

  common::Rng rng_;
  proto::PeerCore core_;
  proto::IntegrityAuthority* integrity_ = nullptr;
  const workload::ArrivalProfile* arrival_ = nullptr;
  /// kReplay corruption: the first genuine block this peer would have
  /// sent, replayed verbatim forever after.
  std::optional<coding::CodedBlock> replay_cache_;
  bool injection_stopped_ = false;

  std::uint64_t segments_injected_ = 0;
  std::uint64_t own_acked_ = 0;
  std::uint64_t injection_blocked_ = 0;
  std::uint64_t gossip_sent_ = 0;
  std::uint64_t gossip_idle_ = 0;
  std::uint64_t gossip_no_target_ = 0;
  std::uint64_t blocks_received_ = 0;
  std::uint64_t blocks_dropped_full_ = 0;
  std::uint64_t blocks_dropped_rank_ = 0;
  std::uint64_t blocks_dropped_acked_ = 0;
  std::uint64_t ttl_expirations_ = 0;
  std::uint64_t pull_replies_ = 0;
  std::uint64_t pull_empty_replies_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t blocks_quarantined_ = 0;
  std::uint64_t blocks_corrupted_ = 0;
};

}  // namespace icollect::node
