#include "node/peer_node.h"

#include <utility>

namespace icollect::node {

proto::PeerCore::Params PeerNode::core_params(const NodeConfig& cfg) {
  proto::PeerCore::Params params;
  params.segment_size = cfg.segment_size;
  params.buffer_cap = cfg.buffer_cap;
  params.gamma = cfg.gamma;
  params.payload_bytes = cfg.payload_bytes;
  params.drop_on_ack = cfg.drop_on_ack;
  params.retain_own_until_acked = cfg.retain_own_until_acked;
  // The simulator keeps CRCs in its global registry; a live node records
  // them in the core so tests can verify byte-exact recovery end-to-end.
  params.record_own_crcs = true;
  return params;
}

PeerNode::PeerNode(const NodeConfig& cfg, net::Transport& transport,
                   net::TimerWheel& wheel, obs::MetricsRegistry* metrics,
                   const std::string& metric_prefix)
    : NodeBase{cfg, transport, wheel, metrics, metric_prefix},
      rng_{cfg.seed},
      core_{core_params(cfg), cfg.node_id, rng_} {
  // The core draws each block's Exp(γ) lifetime; expiry runs on the
  // shared wheel (virtual ticks over loopback, wall ticks over TCP).
  core_.set_arm_ttl([this](coding::BlockHandle handle, double delay) {
    wheel_.schedule_after(delay, [this, handle] { on_ttl_expire(handle); });
  });
  if (metrics_ != nullptr) {
    auto gauge = [this](const char* name, const std::uint64_t* v) {
      metrics_->gauge(metric_prefix_ + name,
                      [v] { return static_cast<double>(*v); });
    };
    gauge("segments_injected", &segments_injected_);
    gauge("injection_blocked", &injection_blocked_);
    gauge("gossip_sent", &gossip_sent_);
    gauge("gossip_idle", &gossip_idle_);
    gauge("gossip_no_target", &gossip_no_target_);
    gauge("blocks_received", &blocks_received_);
    gauge("blocks_dropped_full", &blocks_dropped_full_);
    gauge("blocks_dropped_rank", &blocks_dropped_rank_);
    gauge("blocks_dropped_acked", &blocks_dropped_acked_);
    gauge("ttl_expirations", &ttl_expirations_);
    gauge("pull_replies", &pull_replies_);
    gauge("pull_empty_replies", &pull_empty_replies_);
    gauge("acks_received", &acks_received_);
    gauge("own_segments_acked", &own_acked_);
    gauge("blocks_quarantined", &blocks_quarantined_);
    gauge("blocks_corrupted", &blocks_corrupted_);
    metrics_->gauge(metric_prefix_ + "reseeds", [this] {
      return static_cast<double>(core_.reseeds());
    });
    metrics_->gauge(metric_prefix_ + "reseed_evictions", [this] {
      return static_cast<double>(core_.reseed_evictions());
    });
    metrics_->gauge(metric_prefix_ + "buffer_blocks", [this] {
      return static_cast<double>(core_.buffer().size());
    });
    metrics_->gauge(metric_prefix_ + "buffer_segments", [this] {
      return static_cast<double>(core_.buffer().segment_count());
    });
  }
}

void PeerNode::start() {
  if (config().lambda > 0.0 || arrival_ != nullptr) schedule_inject();
  if (config().mu > 0.0) schedule_gossip();
}

void PeerNode::stop_injection() { injection_stopped_ = true; }

bool PeerNode::injection_done() const noexcept {
  return injection_stopped_ ||
         (config().max_segments > 0 &&
          segments_injected_ >= config().max_segments);
}

void PeerNode::schedule_inject() {
  // Segment arrivals at rate λ/s — the paper's block process thinned to
  // whole segments, matching p2p::Network's injector exactly. With an
  // arrival profile attached (trace replay) the process is
  // nonhomogeneous instead: the next event comes from Lewis-Shedler
  // thinning at λ(t)/s.
  double delay;
  if (arrival_ != nullptr) {
    const workload::ScaledProfile segments{
        *arrival_, 1.0 / static_cast<double>(config().segment_size)};
    if (segments.max_rate() <= 0.0) return;  // flat-zero profile
    const double now = wheel_.now();
    delay = workload::next_arrival(segments, now, rng_) - now;
  } else {
    const double rate =
        config().lambda / static_cast<double>(config().segment_size);
    delay = rng_.exponential(rate);
  }
  wheel_.schedule_after(delay, [this] {
    if (!injection_done()) {
      do_inject();
      schedule_inject();
    }
  });
}

void PeerNode::do_inject() {
  if (!core_.can_inject()) {
    ++injection_blocked_;
    return;
  }
  const coding::SegmentId id = core_.next_segment_id();
  ++segments_injected_;
  trace(proto::TraceEventKind::kSegmentInjected, config().node_id, id,
        config().segment_size);
  core_.inject();
}

void PeerNode::on_ttl_expire(coding::BlockHandle handle) {
  const auto seg = core_.on_ttl_expired(handle);
  if (!seg) return;  // already evicted / dropped on ack
  ++ttl_expirations_;
  trace(proto::TraceEventKind::kTtlExpired, config().node_id, *seg, 0);
  core_.reseed_own(*seg);
}

void PeerNode::schedule_gossip() {
  wheel_.schedule_after(rng_.exponential(config().mu), [this] {
    do_gossip();
    schedule_gossip();
  });
}

void PeerNode::do_gossip() {
  if (!core_.has_blocks()) {
    ++gossip_idle_;
    return;
  }
  if (peer_conns().empty()) {
    ++gossip_no_target_;
    return;
  }
  const coding::SegmentId seg = core_.choose_gossip_segment();
  const net::NodeId target =
      peer_conns()[rng_.uniform_index(peer_conns().size())];
  coding::CodedBlock block = core_.recode(seg);
  if (config().byzantine) corrupt_outgoing(block);
  // Trace the segment actually on the wire: a replaying adversary may
  // substitute a cached block of a different segment.
  const coding::SegmentId sent = block.segment;
  if (send_message(target, wire::Message{wire::GossipBlock{std::move(block)}})) {
    ++gossip_sent_;
    trace(proto::TraceEventKind::kGossipSent, config().node_id, sent, target);
  }
}

void PeerNode::corrupt_outgoing(coding::CodedBlock& block) {
  ++blocks_corrupted_;
  switch (config().corruption) {
    case proto::CorruptionStrategy::kRandomPayload:
      // Honest coding vector, scrambled data — caught by payload-aware
      // verification w.p. 1 - 256^-checks.
      for (auto& byte : block.payload) {
        byte = static_cast<std::uint8_t>(rng_.gf_element());
      }
      break;
    case proto::CorruptionStrategy::kGarbageCoefficients:
      // Honest payload, scrambled header: wire CRCs all pass; only the
      // coupled (c, p) relation exposes it. Kept non-degenerate so the
      // junk filter honest receivers already run cannot catch it.
      rng_.fill_gf(block.coefficients);
      if (block.is_degenerate()) {
        block.coefficients.front() = rng_.gf_nonzero();
      }
      break;
    case proto::CorruptionStrategy::kReplay:
      // Resend the first genuine block this peer produced: valid by
      // construction, so it passes every per-block check and is
      // measured as redundancy instead.
      if (replay_cache_.has_value()) {
        block = *replay_cache_;
      } else {
        replay_cache_ = block;
      }
      break;
  }
}

void PeerNode::accept_block(coding::CodedBlock&& block, net::NodeId from) {
  ++blocks_received_;
  // Copy the id before the move: the quarantine trace needs it.
  const coding::SegmentId seg = block.segment;
  switch (core_.accept(std::move(block))) {
    case proto::PeerCore::AcceptResult::kStored:
      break;
    case proto::PeerCore::AcceptResult::kShapeMismatch:
      break;  // junk a conforming peer never sends; dropped silently
    case proto::PeerCore::AcceptResult::kPolluted:
      ++blocks_quarantined_;
      trace(proto::TraceEventKind::kBlockQuarantined, config().node_id, seg,
            from);
      break;
    case proto::PeerCore::AcceptResult::kAckedSegment:
      ++blocks_dropped_acked_;
      break;
    case proto::PeerCore::AcceptResult::kBufferFull:
      ++blocks_dropped_full_;
      break;
    case proto::PeerCore::AcceptResult::kSegmentFullRank:
      ++blocks_dropped_rank_;
      break;
  }
}

void PeerNode::handle_pull_request(Session& session,
                                   const wire::PullRequest& req) {
  wire::PullBlock reply;
  reply.token = req.token;
  reply.occupancy = static_cast<std::uint32_t>(core_.buffer().size());
  // A scheduling server names the segment it wants; answer with a
  // re-code of it when buffered, falling back to the paper's uniform
  // rule when availability knowledge was stale.
  reply.has_block =
      (req.want && core_.answer_pull_for(*req.want, reply.block)) ||
      core_.answer_pull(reply.block);
  if (reply.has_block && config().byzantine) corrupt_outgoing(reply.block);
  if (reply.has_block) {
    ++pull_replies_;
  } else {
    ++pull_empty_replies_;
  }
  send_message(session.conn, wire::Message{std::move(reply)});
  if (req.want_summary) {
    // Piggyback the availability report the server asked for (bounded
    // by its staleness window, so this is per-window, not per-pull).
    wire::BufferSummary summary;
    summary.segments = core_.buffer().segments();
    if (summary.segments.size() > wire::kMaxSummarySegments) {
      summary.segments.resize(wire::kMaxSummarySegments);
    }
    send_message(session.conn, wire::Message{std::move(summary)});
  }
}

void PeerNode::handle_ack(const coding::SegmentId& id) {
  ++acks_received_;
  switch (core_.on_ack(id)) {
    case proto::PeerCore::AckResult::kDuplicate:  // multi-server
      break;
    case proto::PeerCore::AckResult::kOwnSegment:
      ++own_acked_;
      break;
    case proto::PeerCore::AckResult::kOtherSegment:
      break;
  }
}

void PeerNode::handle_message(Session& session, wire::Message&& message) {
  if (auto* gossip = std::get_if<wire::GossipBlock>(&message)) {
    accept_block(std::move(gossip->block), session.conn);
  } else if (const auto* req = std::get_if<wire::PullRequest>(&message)) {
    handle_pull_request(session, *req);
  } else if (const auto* ack =
                 std::get_if<wire::SegmentDecodedAck>(&message)) {
    handle_ack(ack->segment);
  } else {
    // HELLO twice, or a PULL_BLOCK sent to a peer: protocol violation.
    end_session(session.conn, wire::ByeReason::kProtocolError);
  }
}

}  // namespace icollect::node
