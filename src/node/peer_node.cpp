#include "node/peer_node.h"

#include <utility>

#include "common/crc32.h"

namespace icollect::node {

PeerNode::PeerNode(const NodeConfig& cfg, net::Transport& transport,
                   net::TimerWheel& wheel, obs::MetricsRegistry* metrics,
                   const std::string& metric_prefix)
    : NodeBase{cfg, transport, wheel, metrics, metric_prefix},
      rng_{cfg.seed},
      buffer_{cfg.buffer_cap} {
  if (metrics_ != nullptr) {
    auto gauge = [this](const char* name, const std::uint64_t* v) {
      metrics_->gauge(metric_prefix_ + name,
                      [v] { return static_cast<double>(*v); });
    };
    gauge("segments_injected", &segments_injected_);
    gauge("injection_blocked", &injection_blocked_);
    gauge("gossip_sent", &gossip_sent_);
    gauge("gossip_idle", &gossip_idle_);
    gauge("gossip_no_target", &gossip_no_target_);
    gauge("blocks_received", &blocks_received_);
    gauge("blocks_dropped_full", &blocks_dropped_full_);
    gauge("blocks_dropped_rank", &blocks_dropped_rank_);
    gauge("blocks_dropped_acked", &blocks_dropped_acked_);
    gauge("ttl_expirations", &ttl_expirations_);
    gauge("pull_replies", &pull_replies_);
    gauge("pull_empty_replies", &pull_empty_replies_);
    gauge("acks_received", &acks_received_);
    gauge("own_segments_acked", &own_acked_);
    gauge("reseeds", &reseeds_);
    gauge("reseed_evictions", &reseed_evictions_);
    metrics_->gauge(metric_prefix_ + "buffer_blocks", [this] {
      return static_cast<double>(buffer_.size());
    });
    metrics_->gauge(metric_prefix_ + "buffer_segments", [this] {
      return static_cast<double>(buffer_.segment_count());
    });
  }
}

void PeerNode::start() {
  if (config().lambda > 0.0) schedule_inject();
  if (config().mu > 0.0) schedule_gossip();
}

void PeerNode::stop_injection() { injection_stopped_ = true; }

bool PeerNode::injection_done() const noexcept {
  return injection_stopped_ ||
         (config().max_segments > 0 &&
          segments_injected_ >= config().max_segments);
}

const std::vector<std::uint32_t>* PeerNode::original_crcs(
    const coding::SegmentId& id) const {
  const auto it = own_crcs_.find(id);
  return it == own_crcs_.end() ? nullptr : &it->second;
}

void PeerNode::schedule_inject() {
  // Segment arrivals at rate λ/s — the paper's block process thinned to
  // whole segments, matching p2p::Network's injector exactly.
  const double rate =
      config().lambda / static_cast<double>(config().segment_size);
  wheel_.schedule_after(rng_.exponential(rate), [this] {
    if (!injection_done()) {
      do_inject();
      schedule_inject();
    }
  });
}

void PeerNode::do_inject() {
  const std::size_t s = config().segment_size;
  if (!buffer_.has_room(s)) {
    ++injection_blocked_;
    return;
  }
  const coding::SegmentId id{config().node_id, next_seq_++};
  own_segments_.insert(id);
  ++segments_injected_;
  trace(p2p::TraceEventKind::kSegmentInjected, config().node_id, id, s);

  std::vector<std::vector<std::uint8_t>> originals;
  std::vector<std::uint32_t> crcs;
  originals.reserve(s);
  for (std::size_t k = 0; k < s; ++k) {
    std::vector<std::uint8_t> payload(config().payload_bytes);
    for (auto& byte : payload) {
      byte = static_cast<std::uint8_t>(rng_.gf_element());
    }
    if (!payload.empty()) crcs.push_back(common::crc32(payload));
    originals.push_back(std::move(payload));
  }
  if (!crcs.empty()) own_crcs_.emplace(id, std::move(crcs));

  if (config().retain_own_until_acked) {
    // Source-side retention: keep the encoder so the segment can be
    // re-seeded if TTL expiry kills its local rank before a server ACK.
    const auto [it, inserted] = own_encoders_.emplace(
        id, coding::SegmentEncoder{id, std::move(originals)});
    for (std::size_t k = 0; k < s; ++k) {
      store_block(it->second.systematic_block(k));
    }
  } else {
    for (std::size_t k = 0; k < s; ++k) {
      store_block(
          coding::CodedBlock::systematic(id, s, k, std::move(originals[k])));
    }
  }
}

void PeerNode::store_block(coding::CodedBlock block) {
  const coding::BlockHandle handle = next_handle_++;
  buffer_.insert(handle, std::move(block));
  wheel_.schedule_after(rng_.exponential(config().gamma),
                        [this, handle] { on_ttl_expire(handle); });
}

void PeerNode::on_ttl_expire(coding::BlockHandle handle) {
  const auto seg = buffer_.erase(handle);
  if (!seg) return;  // already evicted / dropped on ack
  ++ttl_expirations_;
  trace(p2p::TraceEventKind::kTtlExpired, config().node_id, *seg, 0);
  reseed_own(*seg);
}

void PeerNode::reseed_own(const coding::SegmentId& id) {
  if (!config().retain_own_until_acked) return;
  const auto it = own_encoders_.find(id);
  if (it == own_encoders_.end()) return;  // not ours, or already ACKed
  const std::size_t s = config().segment_size;
  // Top the segment's local rank back up to s with fresh coded blocks,
  // evicting relayed (other-segment) blocks if the buffer is full. The
  // loop is bounded: a fresh coded block fails to raise rank only on a
  // 256^-rank coefficient collision, so 4·s attempts is ample.
  for (std::size_t attempts = 0; attempts < 4 * s; ++attempts) {
    const coding::SegmentBuffer* sb = buffer_.find(id);
    if (sb != nullptr && sb->rank() >= s) return;
    if (!buffer_.has_room(1)) {
      bool evicted = false;
      for (const coding::SegmentId& other : buffer_.segments()) {
        if (other == id) continue;
        coding::SegmentBuffer* osb = buffer_.find(other);
        if (osb == nullptr || osb->empty()) continue;
        buffer_.erase(osb->handles().front());
        ++reseed_evictions_;
        evicted = true;
        break;
      }
      if (!evicted) return;  // buffer full of this segment alone
    }
    store_block(it->second.encode(rng_));
    ++reseeds_;
  }
}

void PeerNode::schedule_gossip() {
  wheel_.schedule_after(rng_.exponential(config().mu), [this] {
    do_gossip();
    schedule_gossip();
  });
}

void PeerNode::do_gossip() {
  if (buffer_.empty()) {
    ++gossip_idle_;
    return;
  }
  if (peer_conns().empty()) {
    ++gossip_no_target_;
    return;
  }
  const coding::SegmentId seg = buffer_.random_segment(rng_);
  const coding::SegmentBuffer* sb = buffer_.find(seg);
  const net::NodeId target =
      peer_conns()[rng_.uniform_index(peer_conns().size())];
  if (send_message(target, wire::Message{wire::GossipBlock{
                               sb->recode(rng_)}})) {
    ++gossip_sent_;
    trace(p2p::TraceEventKind::kGossipSent, config().node_id, seg, target);
  }
}

void PeerNode::accept_block(coding::CodedBlock&& block) {
  ++blocks_received_;
  if (block.segment_size() != config().segment_size ||
      block.is_degenerate()) {
    // Shape mismatch slipped past the handshake, or a degenerate block
    // an honest encoder never emits — junk either way.
    return;
  }
  if (config().drop_on_ack && acked_.contains(block.segment)) {
    ++blocks_dropped_acked_;
    return;
  }
  if (buffer_.full()) {
    ++blocks_dropped_full_;
    return;
  }
  if (const coding::SegmentBuffer* sb = buffer_.find(block.segment);
      sb != nullptr && sb->full_rank()) {
    ++blocks_dropped_rank_;
    return;
  }
  store_block(std::move(block));
}

void PeerNode::handle_pull_request(Session& session,
                                   const wire::PullRequest& req) {
  wire::PullBlock reply;
  reply.token = req.token;
  reply.occupancy = static_cast<std::uint32_t>(buffer_.size());
  if (buffer_.empty()) {
    ++pull_empty_replies_;
    reply.has_block = false;
  } else {
    const coding::SegmentId seg = buffer_.random_segment(rng_);
    const coding::SegmentBuffer* sb = buffer_.find(seg);
    reply.has_block = true;
    reply.block = sb->recode(rng_);
    ++pull_replies_;
  }
  send_message(session.conn, wire::Message{std::move(reply)});
}

void PeerNode::handle_ack(const coding::SegmentId& id) {
  ++acks_received_;
  if (!acked_.insert(id).second) return;  // duplicate (multi-server)
  if (own_segments_.contains(id)) ++own_acked_;
  own_encoders_.erase(id);  // delivery guaranteed; release the originals
  if (config().drop_on_ack) {
    if (coding::SegmentBuffer* sb = buffer_.find(id); sb != nullptr) {
      for (const coding::BlockHandle h : sb->handles()) buffer_.erase(h);
    }
  }
}

void PeerNode::handle_message(Session& session, wire::Message&& message) {
  if (auto* gossip = std::get_if<wire::GossipBlock>(&message)) {
    accept_block(std::move(gossip->block));
  } else if (const auto* req = std::get_if<wire::PullRequest>(&message)) {
    handle_pull_request(session, *req);
  } else if (const auto* ack =
                 std::get_if<wire::SegmentDecodedAck>(&message)) {
    handle_ack(ack->segment);
  } else {
    // HELLO twice, or a PULL_BLOCK sent to a peer: protocol violation.
    end_session(session.conn, wire::ByeReason::kProtocolError);
  }
}

}  // namespace icollect::node
