#pragma once

/// \file cluster.h
/// N live peers + M live servers wired over the deterministic loopback
/// transport, all in one process and one thread: the multi-node
/// collection harness behind tools/icollect_cluster and the
/// node-vs-simulator validation.
///
/// Each node gets an independent splitmix64-derived RNG stream and all
/// timing goes through the loopback's virtual TimerWheel, so a fixed
/// seed reproduces an entire cluster run bit-for-bit — the same
/// determinism contract the replica engine gives the simulator.
///
/// Measurement mirrors p2p::Network: normalized throughput is the rate
/// of innovative server pulls over N·λ, and mean blocks per peer is a
/// virtual-time average of total buffered blocks, both since
/// begin_measurement() (so a warm-up window can be excluded).

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "coding/segment_id.h"
#include "net/loopback.h"
#include "node/node_config.h"
#include "node/peer_node.h"
#include "node/server_node.h"
#include "obs/metrics_registry.h"
#include "proto/adversary.h"
#include "proto/integrity.h"
#include "workload/generators.h"

namespace icollect::node {

struct ClusterConfig {
  std::size_t num_peers = 16;
  std::size_t num_servers = 2;
  std::size_t segment_size = 4;   ///< s
  std::size_t buffer_cap = 32;    ///< B
  std::size_t payload_bytes = 0;
  double lambda = 8.0;            ///< per-peer block rate λ
  double mu = 4.0;                ///< per-peer gossip rate μ
  double gamma = 1.0;             ///< per-block TTL rate γ
  double server_rate = 16.0;      ///< c_s per server
  /// Injection budget per peer (0 = unbounded; required for
  /// run_to_completion, which needs a finite finish line).
  std::size_t segments_per_peer = 0;
  bool drop_on_ack = false;
  /// Peers keep their own segments' originals until ACKed and re-seed
  /// them after TTL losses (see NodeConfig::retain_own_until_acked).
  /// Leave off for simulator-fidelity runs (node_vs_sim_test); turn on
  /// for finite collections that must reach 100% recovery.
  bool retain_own_until_acked = false;

  // --- adversary (scenario pack) ------------------------------------------
  /// Fraction of peers that are byzantine (the first ⌊N·fraction⌋ by
  /// slot — deterministic under a fixed seed). They corrupt every block
  /// they emit per `corruption`.
  double dishonest_fraction = 0.0;
  proto::CorruptionStrategy corruption =
      proto::CorruptionStrategy::kRandomPayload;
  /// Homomorphic integrity checks per block (0 = verification off;
  /// requires payload_bytes > 0 when enabled). The cluster owns one
  /// shared authority — the trusted in-process analogue of a key
  /// distributed out of band.
  std::size_t integrity_checks = 0;

  /// Optional time-varying injection shape (block rate λ(t), replacing
  /// the constant `lambda`). Not owned; must outlive the cluster.
  const workload::ArrivalProfile* arrival = nullptr;

  /// Server pull scheduling, copied into every server's NodeConfig
  /// (docs/PULL_POLICIES.md). Uniform is the paper's rule and the
  /// byte-identical default.
  proto::PullPolicyKind pull_policy = proto::PullPolicyKind::kUniform;

  std::uint64_t seed = 1;
  net::LoopbackNet::Options net{};
  /// Virtual-time interval of the occupancy sampler feeding
  /// mean_blocks_per_peer().
  double sample_interval = 0.05;

  /// Normalized server capacity c = c_s · N_s / N (the paper's knob).
  [[nodiscard]] double normalized_capacity() const noexcept {
    return server_rate * static_cast<double>(num_servers) /
           static_cast<double>(num_peers);
  }
};

class LoopbackCluster {
 public:
  /// `metrics`, when given, receives cluster-level aggregate gauges
  /// (cluster.*), per-node gauges (peer<i>.* / server<i>.*, 1-based
  /// peer numbering matching their NodeConfig ids), per-server latency
  /// histograms, and the loopback hub's counters (loopback.*) — all
  /// pull-based, so attaching metrics never perturbs the seeded RNG
  /// streams and runs stay bit-reproducible.
  explicit LoopbackCluster(const ClusterConfig& cfg,
                           obs::MetricsRegistry* metrics = nullptr);

  /// Fan one trace sink out to every node (each gets a copy).
  void set_trace_sink(proto::TraceSink sink);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] net::LoopbackNet& net() noexcept { return net_; }
  [[nodiscard]] double now() const noexcept { return net_.now(); }

  [[nodiscard]] PeerNode& peer(std::size_t i) { return *peers_.at(i); }
  [[nodiscard]] ServerNode& server(std::size_t i) { return *servers_.at(i); }

  void run_until(double t) { net_.run_until(t); }
  void run_for(double dt) { net_.run_for(dt); }

  /// Advance virtual time until every injected segment has been decoded
  /// by every server (or `max_virtual_time` passes). Requires a finite
  /// segments_per_peer. Returns whether the collection completed.
  bool run_to_completion(double max_virtual_time);

  /// True when all peers have spent their injection budget and every
  /// injected segment is decoded at every server.
  [[nodiscard]] bool complete() const;

  /// The byzantine-run finish line: every *honest* peer has spent its
  /// budget and had every injected segment ACKed decoded. Byzantine
  /// peers corrupt all their egress, so their own segments can never
  /// complete — complete() is unreachable at dishonest_fraction > 0.
  [[nodiscard]] bool honest_complete() const;

  /// True for the first ⌊N·dishonest_fraction⌋ slots.
  [[nodiscard]] bool is_byzantine(std::size_t i) const noexcept {
    return i < dishonest_count_;
  }
  [[nodiscard]] std::size_t dishonest_count() const noexcept {
    return dishonest_count_;
  }
  /// The shared per-run authority (nullptr when integrity_checks == 0).
  [[nodiscard]] const proto::IntegrityAuthority* integrity() const noexcept {
    return integrity_.get();
  }

  // --- cluster-wide aggregates --------------------------------------------
  [[nodiscard]] std::uint64_t segments_injected() const;
  /// Segments decoded by at least one server (the union view).
  [[nodiscard]] std::size_t segments_decoded() const {
    return decoded_union_.size();
  }
  /// Innovative pulls summed over servers (pooled-throughput analogue).
  [[nodiscard]] std::uint64_t innovative_pulls() const;
  [[nodiscard]] std::uint64_t pulls_sent() const;
  [[nodiscard]] std::uint64_t gossip_sent() const;
  [[nodiscard]] std::uint64_t total_buffered_blocks() const;
  /// Segments injected by honest peers only.
  [[nodiscard]] std::uint64_t honest_segments_injected() const;
  /// Blocks corrupted by byzantine peers, summed.
  [[nodiscard]] std::uint64_t blocks_corrupted() const;
  /// Polluted gossip quarantined at peers, summed.
  [[nodiscard]] std::uint64_t blocks_quarantined() const;
  /// Polluted pulls quarantined at servers, summed.
  [[nodiscard]] std::uint64_t polluted_pulls() const;

  // --- measurement window -------------------------------------------------
  /// Re-anchor measurement at the current virtual time (post-warm-up).
  void begin_measurement();

  /// Innovative pulls per unit time / (N·λ) since begin_measurement().
  [[nodiscard]] double normalized_throughput() const;

  /// Virtual-time mean of buffered blocks per peer since
  /// begin_measurement().
  [[nodiscard]] double mean_blocks_per_peer() const;

 private:
  void schedule_sampler();
  void on_decode(const coding::SegmentId& id);

  ClusterConfig cfg_;
  net::LoopbackNet net_;
  std::unique_ptr<proto::IntegrityAuthority> integrity_;
  std::size_t dishonest_count_ = 0;
  std::vector<std::unique_ptr<PeerNode>> peers_;
  std::vector<std::unique_ptr<ServerNode>> servers_;
  std::unordered_set<coding::SegmentId> decoded_union_;

  double measure_start_ = 0.0;
  std::uint64_t base_innovative_ = 0;
  double blocks_time_sum_ = 0.0;  ///< sum of per-sample total blocks
  std::uint64_t samples_ = 0;
};

}  // namespace icollect::node
