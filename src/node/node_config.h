#pragma once

/// \file node_config.h
/// Configuration of one live node (peer or server). The symbols are the
/// paper's (Sec. 2), identical to p2p::ProtocolConfig where they
/// overlap, so a live node and a simulated peer can be parameterized
/// from the same operating point and compared head-to-head
/// (tests/node_vs_sim_test.cpp).

#include <cstdint>
#include <stdexcept>
#include <string>

#include "proto/adversary.h"
#include "proto/pull_policy.h"

namespace icollect::node {

struct NodeConfig {
  std::uint32_t node_id = 1;      ///< stable identity sent in HELLO
  std::size_t segment_size = 4;   ///< s blocks per segment
  std::size_t payload_bytes = 0;  ///< 0 = coefficients-only blocks
  std::size_t buffer_cap = 32;    ///< B, max buffered blocks (peers)

  double lambda = 0.0;     ///< per-peer original-block rate λ (segments at λ/s)
  double mu = 0.0;         ///< per-peer gossip rate μ
  double gamma = 1.0;      ///< per-block TTL expiry rate γ
  double pull_rate = 0.0;  ///< c_s, pulls per second (servers)

  /// Stop injecting after this many segments (0 = unbounded). The
  /// collection harness uses a finite budget so "all injected segments
  /// recovered" is a well-defined finish line.
  std::size_t max_segments = 0;

  /// listen(2) backlog for live nodes that accept connections (servers
  /// under a connect storm — e.g. the 10k-peer load generator ramping
  /// up). 0 = SOMAXCONN; the kernel clamps larger values to
  /// net.core.somaxconn anyway.
  int listen_backlog = 0;

  /// When true, a peer drops its buffered blocks of a segment once a
  /// SEGMENT_DECODED_ACK for it arrives. Off by default: the paper's
  /// model has no ack channel, and keeping it off preserves
  /// simulator-comparable storage dynamics.
  bool drop_on_ack = false;

  /// When true, a peer guarantees delivery of its *own* segments: it
  /// keeps the originals until ACKed, and whenever TTL expiry lowers an
  /// own unACKed segment's local rank below s it re-seeds fresh coded
  /// blocks (evicting relayed blocks if the buffer is full). The
  /// paper's model has no such retention — every block decays at γ and
  /// a segment whose rank dies before collection is lost — so this is
  /// off by default and node_vs_sim_test keeps it off; the collection
  /// harness turns it on to make "all injected segments recovered" a
  /// guarantee rather than a race against γ.
  bool retain_own_until_acked = false;

  /// Byzantine adversary (scenario pack): when true this peer corrupts
  /// every block it emits — gossip and pull replies alike — per
  /// `corruption`. Receivers with an attached proto::IntegrityAuthority
  /// quarantine what verification catches.
  bool byzantine = false;
  proto::CorruptionStrategy corruption =
      proto::CorruptionStrategy::kRandomPayload;

  /// Server pull scheduling (docs/PULL_POLICIES.md). kUniform is the
  /// paper's rule and keeps the wire traffic and RNG draw sequence
  /// byte-identical to pre-scheduling builds; rarest/deficit stand up a
  /// sched::RankTracker and the BUFFER_SUMMARY feedback loop. Ignored
  /// by peers.
  proto::PullPolicyKind pull_policy = proto::PullPolicyKind::kUniform;

  std::uint64_t seed = 1;

  void validate() const {
    auto fail = [](const std::string& what) {
      throw std::invalid_argument("NodeConfig: " + what);
    };
    if (node_id == 0) fail("node id must be nonzero");
    if (segment_size == 0) fail("segment size must be >= 1");
    if (segment_size > 0xFFFF) fail("segment size must fit in 16 bits");
    if (buffer_cap < segment_size) {
      fail("buffer cap must hold at least one segment (B >= s)");
    }
    if (lambda < 0.0) fail("lambda must be >= 0");
    if (mu < 0.0) fail("mu must be >= 0");
    if (gamma <= 0.0) fail("gamma must be > 0");
    if (pull_rate < 0.0) fail("pull rate must be >= 0");
    if (listen_backlog < 0) fail("listen backlog must be >= 0");
    if (byzantine && payload_bytes == 0 &&
        corruption == proto::CorruptionStrategy::kRandomPayload) {
      fail(
          "random-payload corruption needs payload_bytes > 0 (there is "
          "no payload to corrupt)");
    }
  }
};

}  // namespace icollect::node
