#pragma once

/// \file node_base.h
/// Session plumbing shared by PeerNode and ServerNode: per-connection
/// frame reassembly, the HELLO handshake with version negotiation, and
/// role-sorted rosters of established sessions.
///
/// A node never trusts the transport for identity or message framing —
/// each connection gets its own wire::FrameDecoder, and a session only
/// becomes *established* (eligible for gossip/pulls) after a HELLO
/// whose version range intersects ours and whose segment size matches.
/// Any framing error or protocol violation ends the session with a BYE
/// and a counter, never an exception: malformed bytes from one peer
/// must not take the node down.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/timer_wheel.h"
#include "net/transport.h"
#include "node/node_config.h"
#include "obs/metrics_registry.h"
#include "proto/trace.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace icollect::node {

class NodeBase : public net::TransportHandler {
 public:
  NodeBase(const NodeConfig& cfg, net::Transport& transport,
           net::TimerWheel& wheel, obs::MetricsRegistry* metrics,
           std::string metric_prefix);
  ~NodeBase() override = default;

  NodeBase(const NodeBase&) = delete;
  NodeBase& operator=(const NodeBase&) = delete;

  // --- net::TransportHandler ---------------------------------------------
  void on_peer_up(net::NodeId conn) final;
  void on_peer_down(net::NodeId conn) final;
  void on_bytes(net::NodeId conn, std::span<const std::uint8_t> bytes) final;

  [[nodiscard]] const NodeConfig& config() const noexcept { return cfg_; }

  /// Established sessions whose remote is a peer / a server.
  [[nodiscard]] std::size_t peer_session_count() const noexcept {
    return peer_conns_.size();
  }
  [[nodiscard]] std::size_t server_session_count() const noexcept {
    return server_conns_.size();
  }

  // --- wire accounting ----------------------------------------------------
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_received_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept {
    return decode_errors_;
  }
  /// Session-ending decode errors of one specific kind.
  [[nodiscard]] std::uint64_t decode_errors_by(
      wire::DecodeStatus s) const noexcept {
    return decode_errors_by_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t version_rejects() const noexcept {
    return version_rejects_;
  }
  [[nodiscard]] std::uint64_t send_refusals() const noexcept {
    return send_refusals_;
  }

  // --- handshake outcomes -------------------------------------------------
  [[nodiscard]] std::uint64_t handshakes_ok() const noexcept {
    return handshakes_ok_;
  }
  [[nodiscard]] std::uint64_t segment_rejects() const noexcept {
    return segment_rejects_;
  }

  /// Observe protocol-level events (inject/gossip/ttl/pull/decode) as
  /// proto::TraceEvents stamped with the wheel's time — the same stream
  /// the simulator's engine emits, so one TraceBuffer / analysis script
  /// serves both worlds. Pass nullptr-equivalent (default-constructed)
  /// to detach.
  void set_trace_sink(proto::TraceSink sink) { trace_sink_ = std::move(sink); }

 protected:
  struct Session {
    net::NodeId conn = net::kInvalidNodeId;
    wire::FrameDecoder decoder;
    bool established = false;
    wire::Hello remote;          ///< meaningful once established
    std::uint8_t version = 0;    ///< negotiated protocol version
  };

  /// The role this node advertises in its HELLO.
  [[nodiscard]] virtual wire::NodeRole role() const noexcept = 0;

  /// A non-HELLO message arrived on an established session.
  virtual void handle_message(Session& session, wire::Message&& message) = 0;

  /// Hooks around the session lifecycle (rosters already updated).
  virtual void on_session_established(Session& session) { (void)session; }
  virtual void on_session_closed(Session& session) { (void)session; }

  /// Frame and send one message. Returns false when the transport
  /// refused (backpressure / dead connection); the message is dropped
  /// and counted.
  bool send_message(net::NodeId conn, const wire::Message& message);

  /// Send BYE (best-effort) and close the connection.
  void end_session(net::NodeId conn, wire::ByeReason reason);

  [[nodiscard]] Session* find_session(net::NodeId conn);

  /// Established connections by remote role, in establishment order —
  /// indexable for deterministic uniform random selection.
  [[nodiscard]] const std::vector<net::NodeId>& peer_conns() const noexcept {
    return peer_conns_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& server_conns()
      const noexcept {
    return server_conns_;
  }

  /// Emit one trace event stamped with the wheel's current time; a
  /// single branch when no sink is installed.
  void trace(proto::TraceEventKind kind, std::size_t slot,
             coding::SegmentId segment, std::uint64_t aux) {
    if (!trace_sink_) return;
    trace_sink_(proto::TraceEvent{kind, wheel_.now(), slot, segment, aux});
  }

  net::Transport& transport_;
  net::TimerWheel& wheel_;
  obs::MetricsRegistry* metrics_;
  const std::string metric_prefix_;

 private:
  void handle_hello(Session& session, const wire::Hello& hello);
  void drop_from_roster(net::NodeId conn, wire::NodeRole remote_role);

  NodeConfig cfg_;
  std::unordered_map<net::NodeId, std::unique_ptr<Session>> sessions_;
  std::vector<net::NodeId> peer_conns_;
  std::vector<net::NodeId> server_conns_;
  std::vector<std::uint8_t> frame_scratch_;
  proto::TraceSink trace_sink_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::array<std::uint64_t, 8> decode_errors_by_{};  ///< by DecodeStatus
  std::uint64_t version_rejects_ = 0;
  std::uint64_t send_refusals_ = 0;
  std::uint64_t handshakes_ok_ = 0;
  std::uint64_t segment_rejects_ = 0;
};

}  // namespace icollect::node
