#include "runner/replica_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/config_args.h"
#include "obs/json.h"
#include "obs/telemetry.h"

namespace icollect::runner {

namespace {

/// One parsed snapshot row: flat {"key":number|null,...} as emitted by
/// obs::Snapshotter. Keys are column names in registration order.
struct SnapshotRow {
  std::vector<std::string> keys;
  std::vector<double> values;  // NaN encodes null
};

[[nodiscard]] std::vector<SnapshotRow> read_snapshot_rows(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("replica telemetry missing: " + path);
  }
  std::vector<SnapshotRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SnapshotRow row;
    std::size_t i = 0;
    while (true) {
      const std::size_t kq = line.find('"', i);
      if (kq == std::string::npos) break;
      const std::size_t kend = line.find('"', kq + 1);
      if (kend == std::string::npos || line[kend + 1] != ':') break;
      row.keys.emplace_back(line, kq + 1, kend - kq - 1);
      const std::size_t vstart = kend + 2;
      std::size_t vend = vstart;
      while (vend < line.size() && line[vend] != ',' && line[vend] != '}') {
        ++vend;
      }
      const std::string value = line.substr(vstart, vend - vstart);
      row.values.push_back(value == "null"
                               ? std::numeric_limits<double>::quiet_NaN()
                               : std::strtod(value.c_str(), nullptr));
      i = vend + 1;
    }
    if (!row.keys.empty()) rows.push_back(std::move(row));
  }
  return rows;
}

/// Average the per-replica snapshot series column-wise at each sample
/// index and write the merged snapshots.jsonl / snapshots.csv. All
/// replicas share the virtual-time cadence, so sample index k lands at
/// the same t in every replica; t itself averages to itself.
void merge_replica_snapshots(const std::string& dir, std::size_t replicas) {
  std::vector<std::vector<SnapshotRow>> series;
  series.reserve(replicas);
  std::size_t row_count = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < replicas; ++r) {
    series.push_back(read_snapshot_rows(dir + "/replica-" + std::to_string(r) +
                                        "/snapshots.jsonl"));
    row_count = std::min(row_count, series.back().size());
  }
  if (series.empty() || row_count == 0 ||
      row_count == std::numeric_limits<std::size_t>::max()) {
    return;
  }
  const auto& columns = series.front().front().keys;

  std::ofstream jsonl{dir + "/snapshots.jsonl"};
  std::ofstream csv{dir + "/snapshots.csv"};
  if (!jsonl || !csv) {
    throw std::runtime_error("cannot open merged snapshot files under " + dir);
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    csv << (c == 0 ? "" : ",") << columns[c];
  }
  csv << '\n';

  for (std::size_t k = 0; k < row_count; ++k) {
    std::string line{"{"};
    std::string csv_line;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      double sum = 0.0;
      std::size_t n = 0;
      for (const auto& rep : series) {
        const auto& row = rep[k];
        if (c < row.values.size() && std::isfinite(row.values[c])) {
          sum += row.values[c];
          ++n;
        }
      }
      const double mean =
          n > 0 ? sum / static_cast<double>(n)
                : std::numeric_limits<double>::quiet_NaN();
      if (c > 0) {
        line += ',';
        csv_line += ',';
      }
      line += '"';
      line += obs::json_escape(columns[c]);
      line += "\":";
      obs::append_json_number(line, mean);
      if (std::isfinite(mean)) {
        std::string num;
        obs::append_json_number(num, mean);
        csv_line += num;
      }
    }
    line += '}';
    jsonl << line << '\n';
    csv << csv_line << '\n';
  }
}

}  // namespace

CollectionReport run_one_replica(const ReplicaPlan& plan, std::uint64_t seed,
                                 std::size_t replica) {
  p2p::ProtocolConfig cfg = plan.config;
  cfg.seed = seed;
  CollectionSystem system{cfg};
  std::unique_ptr<obs::Telemetry> tel;
  if (!plan.metrics_dir.empty()) {
    obs::TelemetryOptions topts;
    topts.metrics_dir =
        plan.metrics_dir + "/replica-" + std::to_string(replica);
    topts.metrics_interval = plan.metrics_interval;
    tel = std::make_unique<obs::Telemetry>(topts);
    system.attach_telemetry(*tel);
  }
  system.warm_up(plan.warm);
  system.run(plan.measure);
  CollectionReport report = system.report();
  if (tel) tel->write_summary(to_json(report));
  return report;
}

void finalize_cell_telemetry(const ReplicaPlan& plan,
                             const AggregateReport& aggregate,
                             std::size_t replicas) {
  if (plan.metrics_dir.empty()) return;
  merge_replica_snapshots(plan.metrics_dir, replicas);
  std::ofstream config{plan.metrics_dir + "/config.json"};
  config << config_json(plan.config) << '\n';
  std::ofstream summary{plan.metrics_dir + "/summary.json"};
  summary << aggregate.to_json() << '\n';
}

std::vector<CollectionReport> run_replica_reports(const ReplicaPlan& plan,
                                                  const SeedSequence& seeds,
                                                  ThreadPool& pool) {
  const std::size_t R = plan.replicas == 0 ? 1 : plan.replicas;
  std::vector<CollectionReport> reports(R);
  const SeedSequence cell_seeds = seeds.child(plan.cell);
  pool.parallel_for(R, [&](std::size_t r) {
    reports[r] = run_one_replica(plan, cell_seeds.stream(r), r);
  });
  return reports;
}

AggregateReport ReplicaRunner::run(const ReplicaPlan& plan,
                                   ThreadPool& pool) const {
  const auto reports = run_replica_reports(plan, seeds_, pool);
  AggregateReport agg;
  for (const auto& report : reports) agg.add(report);
  finalize_cell_telemetry(plan, agg, reports.size());
  return agg;
}

}  // namespace icollect::runner
