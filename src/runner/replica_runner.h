#pragma once

/// \file replica_runner.h
/// Monte-Carlo execution of one experiment cell: R independent
/// CollectionSystem simulations, fanned over a ThreadPool, reduced into
/// an AggregateReport.
///
/// Seeding: replica r of cell c runs with
/// `seeds.replica_seed(c, r)` — strictly derived, never shared, so the
/// set of simulated trajectories is a pure function of (root seed, cell,
/// replicas) and completely independent of the worker count. Reduction
/// happens in replica-index order after the fan-out completes, making
/// the aggregate byte-stable for any --jobs value.
///
/// Telemetry under parallel execution: when `metrics_dir` is set, each
/// replica writes a full bundle into `<dir>/replica-<r>/`; after the
/// fan-out the runner merges the per-replica `snapshots.jsonl` series
/// (columns averaged across replicas at each sample index — the cadence
/// is virtual-time-driven and identical for all replicas) into
/// `<dir>/snapshots.jsonl` + `<dir>/snapshots.csv`, and writes the cell
/// `config.json` and aggregate `summary.json` alongside.

#include <string>
#include <vector>

#include "core/collection_system.h"
#include "runner/aggregate.h"
#include "runner/seed_sequence.h"
#include "runner/thread_pool.h"

namespace icollect::runner {

/// One experiment cell: a configuration plus its run shape.
struct ReplicaPlan {
  p2p::ProtocolConfig config;
  double warm = 10.0;
  double measure = 30.0;
  std::size_t replicas = 8;
  std::uint64_t cell = 0;  ///< grid-cell index for seed derivation

  /// Optional merged-telemetry bundle directory ("" = no telemetry).
  std::string metrics_dir;
  double metrics_interval = 0.5;
};

/// Run one replica to completion (the per-task body of the fan-out).
/// `plan.config.seed` is overridden with `seed`. When the plan has a
/// `metrics_dir`, the replica writes its own telemetry bundle into
/// `<metrics_dir>/replica-<replica>/`.
[[nodiscard]] CollectionReport run_one_replica(const ReplicaPlan& plan,
                                               std::uint64_t seed,
                                               std::size_t replica = 0);

/// Merge the per-replica snapshot series of a completed cell into
/// `<metrics_dir>/snapshots.{jsonl,csv}` and write the cell-level
/// `config.json` / `summary.json`. No-op when the plan has no
/// metrics_dir.
void finalize_cell_telemetry(const ReplicaPlan& plan,
                             const AggregateReport& aggregate,
                             std::size_t replicas);

/// All R reports of a plan, indexed by replica (parallel fan-out,
/// deterministic content). This is the building block ReplicaRunner and
/// SweepRunner reduce over.
[[nodiscard]] std::vector<CollectionReport> run_replica_reports(
    const ReplicaPlan& plan, const SeedSequence& seeds, ThreadPool& pool);

class ReplicaRunner {
 public:
  explicit ReplicaRunner(SeedSequence seeds) : seeds_{seeds} {}

  /// Execute `plan.replicas` simulations on `pool` and aggregate.
  [[nodiscard]] AggregateReport run(const ReplicaPlan& plan,
                                    ThreadPool& pool) const;

 private:
  SeedSequence seeds_;
};

}  // namespace icollect::runner
