#pragma once

/// \file aggregate.h
/// Order-independent aggregation of Monte-Carlo replica outcomes.
///
/// An AggregateReport folds R CollectionReports (one per replica) into
/// per-metric {mean, stddev, 95% CI half-width, min, max} via Welford's
/// online algorithm (stats::Summary). The CI uses the two-sided Student-t
/// 0.975 quantile at R-1 degrees of freedom, so small replica counts get
/// honestly wide intervals instead of the optimistic normal z = 1.96.
///
/// Determinism contract: add() must be called in replica-index order
/// (0..R-1). The runners guarantee this by parking each replica's report
/// in a pre-assigned slot and reducing sequentially after the parallel
/// fan-out — which is why identical (seed, grid, replicas) produce
/// byte-identical to_json() output for any worker count.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/report.h"
#include "stats/summary.h"

namespace icollect::runner {

/// Two-sided Student-t critical value t_{0.975, df} (df >= 1). Exact
/// table through df = 30, the normal limit 1.96 beyond.
[[nodiscard]] double student_t975(std::uint64_t df);

/// Half-width of the 95% confidence interval on the mean of `s`
/// (0 when fewer than two samples).
[[nodiscard]] double ci95_half_width(const stats::Summary& s);

/// The scalar metrics extracted from each CollectionReport, in the fixed
/// order they aggregate and serialize in.
inline constexpr std::array<std::string_view, 22> kReportMetricNames{
    "throughput",
    "normalized_throughput",
    "goodput",
    "normalized_goodput",
    "mean_block_delay",
    "mean_segment_delay",
    "max_segment_delay",
    "mean_blocks_per_peer",
    "storage_overhead",
    "empty_peer_fraction",
    "redundancy_fraction",
    "segments_injected",
    "segments_decoded",
    "segments_lost",
    "blocks_injected",
    "original_blocks_recovered",
    "server_pulls",
    "redundant_pulls",
    "peers_departed",
    "blocks_lost_to_churn",
    "saved_original_blocks_degree",
    "saved_original_blocks_rank",
};

class AggregateReport {
 public:
  static constexpr std::size_t kMetricCount = kReportMetricNames.size();

  /// Fold one replica's report in. Call in replica-index order.
  void add(const CollectionReport& report);

  [[nodiscard]] std::uint64_t replicas() const noexcept {
    return metrics_[0].count();
  }

  /// Aggregate for one metric by index (see kReportMetricNames).
  [[nodiscard]] const stats::Summary& metric(std::size_t i) const {
    return metrics_.at(i);
  }

  /// Aggregate by name; throws std::out_of_range on unknown names.
  [[nodiscard]] const stats::Summary& metric(std::string_view name) const;

  [[nodiscard]] double mean(std::string_view name) const {
    return metric(name).mean();
  }
  [[nodiscard]] double ci95(std::string_view name) const {
    return ci95_half_width(metric(name));
  }

  /// {"replicas":R,"metrics":{"<name>":{"mean":..,"stddev":..,
  ///  "ci95":..,"min":..,"max":..},...}} — the byte-comparison surface
  /// of the determinism tests and the per-cell payload of sweep JSONL.
  [[nodiscard]] std::string to_json() const;

 private:
  std::array<stats::Summary, kMetricCount> metrics_{};
};

/// The metric vector of one report, in kReportMetricNames order.
[[nodiscard]] std::array<double, AggregateReport::kMetricCount>
report_metric_values(const CollectionReport& report);

}  // namespace icollect::runner
