#pragma once

/// \file sweep_runner.h
/// Parameter-grid fan-out: every (cell, replica) pair of a sweep becomes
/// one ThreadPool task, so a 30-cell x 8-replica grid exposes 240-way
/// parallelism instead of 8-way with a barrier per cell. Results land in
/// pre-assigned slots and each cell reduces in replica order, preserving
/// the byte-determinism contract of the replica engine.

#include <string>
#include <vector>

#include "runner/replica_runner.h"

namespace icollect::runner {

/// One cell of a sweep: a label for reporting plus its plan. The plan's
/// `cell` index is assigned by SweepRunner (position in the grid) so
/// seeds depend only on (root seed, grid position, replica).
struct SweepCell {
  std::string label;
  ReplicaPlan plan;
};

struct SweepResult {
  std::string label;
  AggregateReport aggregate;
};

class SweepRunner {
 public:
  explicit SweepRunner(SeedSequence seeds) : seeds_{seeds} {}

  /// Run every cell's replicas as one flat task set; results are indexed
  /// like `cells`.
  [[nodiscard]] std::vector<SweepResult> run(std::vector<SweepCell> cells,
                                             ThreadPool& pool) const;

 private:
  SeedSequence seeds_;
};

}  // namespace icollect::runner
