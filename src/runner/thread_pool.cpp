#include "runner/thread_pool.h"

#include <atomic>
#include <utility>

#include "common/assert.h"

namespace icollect::runner {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    const std::lock_guard lock{sleep_mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  ICOLLECT_EXPECTS(task != nullptr);
  std::size_t target;
  {
    const std::lock_guard lock{sleep_mutex_};
    ICOLLECT_EXPECTS(!stop_);
    target = next_++ % workers_.size();
    ++queued_;
    ++pending_;
  }
  {
    const std::lock_guard lock{workers_[target]->mutex};
    workers_[target]->queue.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{sleep_mutex_};
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  // Completion is tracked separately from pending_ so that concurrent
  // parallel_for calls (or stray submits) cannot release each other.
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, &done, i] {
      fn(i);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  // The calling thread lends a hand instead of blocking: on a 1-core
  // host (or when called from inside a worker) this keeps the pool from
  // deadlocking on itself and loses no parallelism.
  while (done.load(std::memory_order_acquire) < count) {
    bool ran = false;
    for (std::size_t w = 0; w < workers_.size() && !ran; ++w) {
      ran = try_run_one(w);
    }
    if (!ran) std::this_thread::yield();
  }
}

std::size_t ThreadPool::resolve_jobs(long requested) noexcept {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool ThreadPool::try_run_one(std::size_t self) {
  Task task;
  {
    // Own deque: newest first (cache-warm tail).
    auto& own = *workers_[self];
    const std::lock_guard lock{own.mutex};
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
    }
  }
  if (!task) {
    // Steal oldest-first from siblings, starting after `self` so the
    // pressure spreads instead of piling onto worker 0.
    const std::size_t n = workers_.size();
    for (std::size_t k = 1; k < n && !task; ++k) {
      auto& victim = *workers_[(self + k) % n];
      const std::lock_guard lock{victim.mutex};
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.front());
        victim.queue.pop_front();
      }
    }
  }
  if (!task) return false;

  {
    const std::lock_guard lock{sleep_mutex_};
    --queued_;
  }
  task();
  bool drained;
  {
    const std::lock_guard lock{sleep_mutex_};
    drained = --pending_ == 0;
  }
  if (drained) idle_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    if (try_run_one(self)) continue;
    std::unique_lock lock{sleep_mutex_};
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

}  // namespace icollect::runner
