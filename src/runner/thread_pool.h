#pragma once

/// \file thread_pool.h
/// Work-stealing thread pool for replica fan-out.
///
/// Shape: one bounded-LIFO deque per worker; submission round-robins
/// across the deques; an idle worker first drains its own deque from
/// the back (cache-warm), then steals from its siblings' fronts (oldest
/// first, minimizing contention with the victim). A shared
/// condition_variable parks workers when the whole pool is drained.
///
/// Determinism note: the pool makes **no ordering promises** — tasks
/// complete in whatever order the hardware schedules them. Callers that
/// need reproducible results (ReplicaRunner, SweepRunner) must write
/// into pre-assigned slots and reduce in index order afterwards; nothing
/// in this file may be the source of run-to-run variation.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace icollect::runner {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins every worker.
  ~ThreadPool();

  /// Enqueue one task. Thread-safe; may be called from worker threads.
  void submit(Task task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Submit `count` tasks `fn(0) .. fn(count-1)` and wait for all.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept {
    return workers_.size();
  }

  /// Job count for CLIs: `requested` if > 0, else hardware concurrency
  /// (at least 1).
  [[nodiscard]] static std::size_t resolve_jobs(long requested) noexcept;

 private:
  struct Worker {
    std::deque<Task> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool try_run_one(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;   // queued work may be available
  std::condition_variable idle_cv_;   // pending_ dropped to zero
  std::size_t queued_ = 0;            // tasks sitting in deques
  std::size_t pending_ = 0;           // queued + currently running
  std::size_t next_ = 0;              // round-robin submission cursor
  bool stop_ = false;
};

}  // namespace icollect::runner
