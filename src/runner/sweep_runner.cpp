#include "runner/sweep_runner.h"

#include <fstream>
#include <utility>

#include "core/config_args.h"

namespace icollect::runner {

std::vector<SweepResult> SweepRunner::run(std::vector<SweepCell> cells,
                                          ThreadPool& pool) const {
  // Flatten (cell, replica) into one task list with pre-assigned result
  // slots. Cell c's replicas draw from seeds_.child(c) regardless of
  // which worker executes them or in what order.
  struct Slot {
    std::size_t cell;
    std::size_t replica;
  };
  std::vector<Slot> slots;
  std::vector<std::vector<CollectionReport>> reports(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].plan.cell = c;
    const std::size_t R =
        cells[c].plan.replicas == 0 ? 1 : cells[c].plan.replicas;
    reports[c].resize(R);
    for (std::size_t r = 0; r < R; ++r) slots.push_back({c, r});
  }

  const SeedSequence seeds = seeds_;
  pool.parallel_for(slots.size(), [&](std::size_t i) {
    const auto [c, r] = slots[i];
    const ReplicaPlan& plan = cells[c].plan;
    reports[c][r] = run_one_replica(plan, seeds.child(plan.cell).stream(r), r);
  });

  std::vector<SweepResult> results;
  results.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    AggregateReport agg;
    for (const auto& report : reports[c]) agg.add(report);
    finalize_cell_telemetry(cells[c].plan, agg, reports[c].size());
    results.push_back({cells[c].label, std::move(agg)});
  }
  return results;
}

}  // namespace icollect::runner
