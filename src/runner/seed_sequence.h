#pragma once

/// \file seed_sequence.h
/// Hierarchical seed derivation for Monte-Carlo experiments.
///
/// Every stochastic experiment in the repo used to invent its own seed
/// arithmetic (`42 + s`, `seed * 1000003 + r`, ...), which correlates
/// replicas across sweep cells and reuses streams between curve
/// parameters. SeedSequence replaces all of that with one scheme:
///
///   root ──child(cell)──▶ cell sequence ──stream(replica)──▶ u64 seed
///
/// Each edge is a SplitMix64 avalanche over (state, index), so
///   * identical (root, path) always yields the identical seed — the
///     determinism contract of the replica engine, independent of how
///     many worker threads execute the replicas;
///   * distinct paths yield statistically independent seeds (the
///     finalizer is bijective; collisions across 10^4-scale stream
///     populations are birthday-bounded at ~5e-12).
///
/// The derivation is pure arithmetic: sequences are freely copyable and
/// never mutated by drawing, so there is no shared RNG state to race on.

#include <cstdint>

#include "sim/random.h"

namespace icollect::runner {

class SeedSequence {
 public:
  /// A sequence rooted at a user-chosen seed (CLI --seed, bench root).
  explicit constexpr SeedSequence(std::uint64_t root) noexcept
      : state_{sim::splitmix64(root)} {}

  /// Sub-sequence for a named domain (sweep cell, bench figure, ...).
  /// child(a).child(b) != child(b).child(a) by construction.
  [[nodiscard]] constexpr SeedSequence child(std::uint64_t index) const
      noexcept {
    return SeedSequence{Derived{}, mix(index, kChildLane)};
  }

  /// Concrete 64-bit stream seed: feed this to sim::Rng / mt19937_64.
  /// Derived in a different lane than child(), so a sequence's internal
  /// state never doubles as one of its emitted seeds.
  [[nodiscard]] constexpr std::uint64_t stream(std::uint64_t index) const
      noexcept {
    return mix(index, kStreamLane);
  }

  /// Shorthand for the canonical replica-engine layout:
  /// root -> cell -> replica.
  [[nodiscard]] constexpr std::uint64_t replica_seed(
      std::uint64_t cell, std::uint64_t replica) const noexcept {
    return child(cell).stream(replica);
  }

  /// The internal state (for diagnostics / tests only).
  [[nodiscard]] constexpr std::uint64_t state() const noexcept {
    return state_;
  }

 private:
  struct Derived {};

  // Distinct odd multipliers keep the child and stream derivations in
  // separate lanes (child(i).state() != stream(i)), and the +1 offset
  // keeps index 0 from passing state_ through the finalizer unperturbed.
  static constexpr std::uint64_t kChildLane = 0xD1B54A32D192ED03ULL;
  static constexpr std::uint64_t kStreamLane = 0x9E3779B97F4A7C15ULL;

  constexpr SeedSequence(Derived, std::uint64_t state) noexcept
      : state_{state} {}

  [[nodiscard]] constexpr std::uint64_t mix(std::uint64_t index,
                                            std::uint64_t lane) const
      noexcept {
    return sim::splitmix64(state_ ^ (index + 1) * lane);
  }

  std::uint64_t state_;
};

}  // namespace icollect::runner
