#include "runner/aggregate.h"

#include <cmath>
#include <stdexcept>

#include "obs/json.h"

namespace icollect::runner {

double student_t975(std::uint64_t df) {
  // Two-sided 95% critical values of Student's t distribution.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
      2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
      2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

double ci95_half_width(const stats::Summary& s) {
  if (s.count() < 2) return 0.0;
  const double n = static_cast<double>(s.count());
  return student_t975(s.count() - 1) * s.stddev() / std::sqrt(n);
}

std::array<double, AggregateReport::kMetricCount> report_metric_values(
    const CollectionReport& r) {
  return {
      r.throughput,
      r.normalized_throughput,
      r.goodput,
      r.normalized_goodput,
      r.mean_block_delay,
      r.mean_segment_delay,
      r.max_segment_delay,
      r.mean_blocks_per_peer,
      r.storage_overhead,
      r.empty_peer_fraction,
      r.redundancy_fraction(),
      static_cast<double>(r.segments_injected),
      static_cast<double>(r.segments_decoded),
      static_cast<double>(r.segments_lost),
      static_cast<double>(r.blocks_injected),
      static_cast<double>(r.original_blocks_recovered),
      static_cast<double>(r.server_pulls),
      static_cast<double>(r.redundant_pulls),
      static_cast<double>(r.peers_departed),
      static_cast<double>(r.blocks_lost_to_churn),
      r.saved.saved_original_blocks_degree,
      r.saved.saved_original_blocks_rank,
  };
}

void AggregateReport::add(const CollectionReport& report) {
  const auto values = report_metric_values(report);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    metrics_[i].add(values[i]);
  }
}

const stats::Summary& AggregateReport::metric(std::string_view name) const {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kReportMetricNames[i] == name) return metrics_[i];
  }
  throw std::out_of_range("AggregateReport: unknown metric '" +
                          std::string{name} + "'");
}

std::string AggregateReport::to_json() const {
  obs::JsonObject metrics;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const auto& s = metrics_[i];
    obs::JsonObject one;
    one.field("mean", s.mean())
        .field("stddev", s.stddev())
        .field("ci95", ci95_half_width(s))
        .field("min", s.min())
        .field("max", s.max());
    metrics.field_raw(kReportMetricNames[i], one.str());
  }
  obs::JsonObject out;
  out.field("replicas", replicas()).field_raw("metrics", metrics.str());
  return out.str();
}

}  // namespace icollect::runner
