#include "sched/rank_tracker.h"

#include <utility>

namespace icollect::sched {

RankTracker::Slot RankTracker::take_at(std::vector<Slot>& list, PosMap& pos,
                                       std::size_t i) {
  Slot out = std::move(list[i]);
  pos.erase(out.id);
  if (i + 1 != list.size()) {
    list[i] = std::move(list.back());
    pos[list[i].id] = i;
  }
  list.pop_back();
  return out;
}

void RankTracker::open_slot(Slot slot) {
  total_deficit_ += slot.deficit;
  open_pos_[slot.id] = open_.size();
  open_.push_back(std::move(slot));
}

void RankTracker::reactivate(const coding::SegmentId& id) {
  const auto it = susp_pos_.find(id);
  if (it == susp_pos_.end()) return;
  Slot slot = take_at(suspended_, susp_pos_, it->second);
  slot.streak = 0;
  // Spans drift while a segment sits suspended; give every holder a
  // fresh chance on reactivation.
  exhausted_.erase(id);
  open_slot(std::move(slot));
}

void RankTracker::on_state(const coding::SegmentId& id, std::size_t collected,
                           std::size_t segment_size) {
  if (decoded_.contains(id)) return;
  if (collected >= segment_size) {
    on_decoded(id);
    return;
  }
  const std::size_t new_deficit = segment_size - collected;
  if (const auto it = open_pos_.find(id); it != open_pos_.end()) {
    Slot& slot = open_[it->second];
    total_deficit_ -= slot.deficit;
    total_deficit_ += new_deficit;
    slot.deficit = new_deficit;
    slot.streak = 0;
    return;
  }
  if (const auto it = susp_pos_.find(id); it != susp_pos_.end()) {
    suspended_[it->second].deficit = new_deficit;
    reactivate(id);
    return;
  }
  open_slot(Slot{id, new_deficit, 0});
}

void RankTracker::on_decoded(const coding::SegmentId& id) {
  if (const auto it = open_pos_.find(id); it != open_pos_.end()) {
    total_deficit_ -= open_[it->second].deficit;
    take_at(open_, open_pos_, it->second);
  } else if (const auto sit = susp_pos_.find(id); sit != susp_pos_.end()) {
    take_at(suspended_, susp_pos_, sit->second);
  }
  exhausted_.erase(id);
  decoded_.insert(id);
}

void RankTracker::on_redundant(const coding::SegmentId& id) {
  const auto it = open_pos_.find(id);
  if (it == open_pos_.end()) return;
  Slot& slot = open_[it->second];
  if (++slot.streak >= opts_.redundant_suspend_streak) suspend(id);
}

void RankTracker::suspend(const coding::SegmentId& id) {
  const auto it = open_pos_.find(id);
  if (it == open_pos_.end()) return;
  Slot slot = take_at(open_, open_pos_, it->second);
  total_deficit_ -= slot.deficit;
  susp_pos_[slot.id] = suspended_.size();
  suspended_.push_back(std::move(slot));
}

void RankTracker::reactivate_all() {
  for (Slot& slot : suspended_) {
    slot.streak = 0;
    exhausted_.erase(slot.id);
    open_pos_[slot.id] = open_.size();
    total_deficit_ += slot.deficit;
    open_.push_back(std::move(slot));
  }
  suspended_.clear();
  susp_pos_.clear();
}

void RankTracker::mark_exhausted(std::uint64_t peer,
                                 const coding::SegmentId& id) {
  exhausted_[id].insert(peer);
}

bool RankTracker::is_exhausted(std::uint64_t peer,
                               const coding::SegmentId& id) const {
  const auto it = exhausted_.find(id);
  return it != exhausted_.end() && it->second.contains(peer);
}

std::size_t RankTracker::deficit(const coding::SegmentId& id) const {
  if (const auto it = open_pos_.find(id); it != open_pos_.end()) {
    return open_[it->second].deficit;
  }
  if (const auto it = susp_pos_.find(id); it != susp_pos_.end()) {
    return suspended_[it->second].deficit;
  }
  return 0;
}

void RankTracker::merge_summary(std::uint64_t peer,
                                std::span<const coding::SegmentId> segments,
                                double now) {
  PeerReport& report = peers_[peer];
  report.reported_at = now;
  report.segments.clear();
  for (const coding::SegmentId& id : segments) {
    report.segments.insert(id);
    reactivate(id);
  }
}

bool RankTracker::peer_has(std::uint64_t peer, const coding::SegmentId& id,
                           double now) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  if (now - it->second.reported_at > opts_.staleness_bound) return false;
  return it->second.segments.contains(id);
}

bool RankTracker::peer_fresh(std::uint64_t peer, double now) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() &&
         now - it->second.reported_at <= opts_.staleness_bound;
}

}  // namespace icollect::sched
