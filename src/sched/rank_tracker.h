#pragma once

/// \file rank_tracker.h
/// Server-side scheduling state: per-segment rank deficit plus per-peer
/// availability estimates, behind the proto::DeficitView face the pull
/// policies consume.
///
/// The tracker closes the feedback loop between what a server still
/// needs and what it pulls. It is fed from two sides:
///  - deficit side: every bank outcome the driver sees (innovative
///    advance, decode, redundant pull) lands here via on_state /
///    on_decoded / on_redundant. In the simulator the feed is exact
///    (straight from ServerBank results); the live ServerNode feeds the
///    same calls from its own bank.
///  - availability side: merge_summary() ingests a peer's BUFFER_SUMMARY
///    (the live wire message, or exact buffer contents in tests). Each
///    report replaces the peer's previous one wholesale and is trusted
///    only for `staleness_bound` seconds — after that peer_has() answers
///    false and the driver should request a refresh.
///
/// Suspension keeps rarest-first from wedging on a stuck segment: a
/// segment whose pulls go redundant `redundant_suspend_streak` times in
/// a row (its holders' spans are exhausted, or the segment is
/// effectively lost) is parked out of the open set. Fresh evidence — an
/// innovative advance, a summary advertising the segment, or an
/// explicit reactivate_all() once the open set drains — puts it back.
///
/// Determinism: open segments iterate in insertion order with swap-pop
/// removal — the same discipline as proto::PeerBuffer — so policy
/// tie-breaks are reproducible under a fixed seed.

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coding/segment_id.h"
#include "proto/pull_policy.h"

namespace icollect::sched {

struct RankTrackerOptions {
  /// Seconds a peer's BUFFER_SUMMARY stays trusted.
  double staleness_bound = 1.0;
  /// Consecutive redundant pulls of one segment before it is suspended.
  /// Low on purpose: under RLNC a redundant pull means the answering
  /// peer's whole span for the segment is already known, so even short
  /// streaks are strong evidence the reachable holders are exhausted —
  /// and rarest-first concentrates pulls, so every extra strike is a
  /// whole wasted pull.
  std::uint32_t redundant_suspend_streak = 2;
};

class RankTracker final : public proto::DeficitView {
 public:
  explicit RankTracker(RankTrackerOptions opts = {}) : opts_(opts) {}

  // --- deficit bookkeeping -----------------------------------------------
  /// The server's collection state for `id` advanced to `collected` of
  /// `segment_size` blocks. Opens the segment if unseen, reactivates it
  /// if suspended, and resets its redundancy streak. `collected >=
  /// segment_size` is treated as on_decoded().
  void on_state(const coding::SegmentId& id, std::size_t collected,
                std::size_t segment_size);

  /// The segment decoded: it leaves the tracker for good.
  void on_decoded(const coding::SegmentId& id);

  /// A pull of `id` came back redundant. Streaks of these suspend the
  /// segment (see file comment); any innovative advance resets the
  /// streak.
  void on_redundant(const coding::SegmentId& id);

  /// Park an open segment (e.g. no known holder). No-op if not open.
  void suspend(const coding::SegmentId& id);

  /// A pull of `id` answered by `peer` came back redundant — under RLNC
  /// that means the peer's entire span for the segment is already known
  /// to the server, so targeting it again for `id` is a guaranteed
  /// waste. The pair stays excluded until the segment cycles through a
  /// suspension (spans drift as gossip and TTL churn the buffers) or
  /// decodes.
  void mark_exhausted(std::uint64_t peer, const coding::SegmentId& id);

  /// Whether `peer`'s span for `id` is known-exhausted (see above).
  [[nodiscard]] bool is_exhausted(std::uint64_t peer,
                                  const coding::SegmentId& id) const;

  /// Return every suspended segment to the open set — the escape hatch
  /// drivers use when the open set drains while work remains.
  void reactivate_all();

  /// Remaining deficit of `id`; 0 when unknown or decoded.
  [[nodiscard]] std::size_t deficit(const coding::SegmentId& id) const;

  [[nodiscard]] bool is_suspended(const coding::SegmentId& id) const {
    return susp_pos_.contains(id);
  }
  [[nodiscard]] std::size_t suspended_count() const noexcept {
    return suspended_.size();
  }

  // --- proto::DeficitView ------------------------------------------------
  [[nodiscard]] std::size_t open_count() const noexcept override {
    return open_.size();
  }
  [[nodiscard]] const coding::SegmentId& open_segment(
      std::size_t i) const override {
    return open_[i].id;
  }
  [[nodiscard]] std::size_t open_deficit(std::size_t i) const override {
    return open_[i].deficit;
  }
  [[nodiscard]] std::size_t total_deficit() const noexcept override {
    return total_deficit_;
  }

  // --- per-peer availability ---------------------------------------------
  /// Ingest one BUFFER_SUMMARY from `peer` at time `now`, replacing any
  /// previous report wholesale. Suspended segments advertised in the
  /// summary reactivate (fresh evidence of a live holder).
  void merge_summary(std::uint64_t peer,
                     std::span<const coding::SegmentId> segments, double now);

  /// Whether `peer`'s last summary is within the staleness bound at
  /// `now` and advertises `id`. Unknown or stale peers answer false.
  [[nodiscard]] bool peer_has(std::uint64_t peer, const coding::SegmentId& id,
                              double now) const;

  /// Whether `peer` reported within the staleness bound — when false
  /// the driver should piggyback a summary request on its next pull.
  [[nodiscard]] bool peer_fresh(std::uint64_t peer, double now) const;

  void forget_peer(std::uint64_t peer) { peers_.erase(peer); }
  [[nodiscard]] std::size_t tracked_peers() const noexcept {
    return peers_.size();
  }

  [[nodiscard]] const RankTrackerOptions& options() const noexcept {
    return opts_;
  }

 private:
  struct Slot {
    coding::SegmentId id;
    std::size_t deficit = 0;
    std::uint32_t streak = 0;  ///< consecutive redundant pulls
  };
  struct PeerReport {
    double reported_at = 0.0;
    std::unordered_set<coding::SegmentId> segments;
  };
  using PosMap = std::unordered_map<coding::SegmentId, std::size_t>;

  /// Swap-pop `i` out of (list, pos), keeping the moved slot indexed.
  static Slot take_at(std::vector<Slot>& list, PosMap& pos, std::size_t i);

  void open_slot(Slot slot);
  void reactivate(const coding::SegmentId& id);

  RankTrackerOptions opts_;
  std::vector<Slot> open_;       ///< insertion order, swap-pop removal
  PosMap open_pos_;              ///< id -> index into open_
  std::vector<Slot> suspended_;  ///< same discipline as open_
  PosMap susp_pos_;
  std::unordered_set<coding::SegmentId> decoded_;
  std::unordered_map<std::uint64_t, PeerReport> peers_;
  /// Per-segment set of peers whose span went redundant for it; cleared
  /// when the segment reactivates from suspension or decodes.
  std::unordered_map<coding::SegmentId, std::unordered_set<std::uint64_t>>
      exhausted_;
  std::size_t total_deficit_ = 0;
};

}  // namespace icollect::sched
