#pragma once

/// \file pull_policies.h
/// The concrete scheduling policies behind proto::PullPolicy: rarest
/// first (lowest rank-deficit segment, random tie-break) and deficit
/// weighted (sample segments proportional to remaining deficit). Both
/// keep the uniform peer-selection primitives — the *bias toward peers
/// advertising the wanted segment* is the driver's job, because only
/// the driver knows how availability is testable (exact buffers in the
/// simulator, RankTracker summaries live); see docs/PULL_POLICIES.md.
///
/// Determinism (fixed seed => fixed schedule):
///  - RarestFirst: zero draws when one segment holds the minimum
///    deficit, exactly one uniform_index(ties) draw otherwise.
///  - DeficitWeighted: exactly one uniform_index(total_deficit) draw.
/// Both return nullopt (zero draws) on an empty deficit view.

#include <memory>
#include <optional>

#include "proto/pull_policy.h"

namespace icollect::sched {

/// Pull the segment closest to decoding: minimum remaining deficit,
/// uniform tie-break over the (deterministically ordered) minima.
class RarestFirstPullPolicy final : public proto::PullPolicy {
 public:
  [[nodiscard]] std::size_t pick(common::Rng& rng,
                                 std::size_t n) const override {
    return rng.uniform_index(n);
  }
  [[nodiscard]] std::size_t pick_filtered(
      common::Rng& rng, std::size_t n, int probes,
      proto::EligibleRef eligible) const override {
    return proto::uniform_over_eligible(rng, n, probes, eligible);
  }
  [[nodiscard]] std::optional<coding::SegmentId> want_segment(
      common::Rng& rng, const proto::DeficitView& view) const override;
  [[nodiscard]] bool wants_feedback() const noexcept override { return true; }
};

/// Sample the wanted segment with probability proportional to its
/// remaining deficit — spreads pulls across open segments instead of
/// serializing on one, while still starving decoded ones.
class DeficitWeightedPullPolicy final : public proto::PullPolicy {
 public:
  [[nodiscard]] std::size_t pick(common::Rng& rng,
                                 std::size_t n) const override {
    return rng.uniform_index(n);
  }
  [[nodiscard]] std::size_t pick_filtered(
      common::Rng& rng, std::size_t n, int probes,
      proto::EligibleRef eligible) const override {
    return proto::uniform_over_eligible(rng, n, probes, eligible);
  }
  [[nodiscard]] std::optional<coding::SegmentId> want_segment(
      common::Rng& rng, const proto::DeficitView& view) const override;
  [[nodiscard]] bool wants_feedback() const noexcept override { return true; }
};

/// Instantiate the policy for a CLI-selected kind.
[[nodiscard]] std::unique_ptr<proto::PullPolicy> make_pull_policy(
    proto::PullPolicyKind kind);

}  // namespace icollect::sched
