#include "sched/pull_policies.h"

#include <cstddef>
#include <limits>

namespace icollect::sched {

std::optional<coding::SegmentId> RarestFirstPullPolicy::want_segment(
    common::Rng& rng, const proto::DeficitView& view) const {
  const std::size_t n = view.open_count();
  if (n == 0) return std::nullopt;
  // Pass 1: minimum deficit and tie count over the deterministic order.
  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = view.open_deficit(i);
    if (d < best) {
      best = d;
      ties = 1;
    } else if (d == best) {
      ++ties;
    }
  }
  // Pass 2: the j-th minimum, j uniform (no draw on a unique minimum).
  std::size_t j = ties > 1 ? rng.uniform_index(ties) : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (view.open_deficit(i) == best && j-- == 0) return view.open_segment(i);
  }
  return std::nullopt;  // unreachable
}

std::optional<coding::SegmentId> DeficitWeightedPullPolicy::want_segment(
    common::Rng& rng, const proto::DeficitView& view) const {
  const std::size_t total = view.total_deficit();
  if (total == 0) return std::nullopt;
  std::size_t r = rng.uniform_index(total);
  const std::size_t n = view.open_count();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = view.open_deficit(i);
    if (r < d) return view.open_segment(i);
    r -= d;
  }
  return std::nullopt;  // unreachable: deficits sum to total
}

std::unique_ptr<proto::PullPolicy> make_pull_policy(
    proto::PullPolicyKind kind) {
  switch (kind) {
    case proto::PullPolicyKind::kRarestFirst:
      return std::make_unique<RarestFirstPullPolicy>();
    case proto::PullPolicyKind::kDeficitWeighted:
      return std::make_unique<DeficitWeightedPullPolicy>();
    case proto::PullPolicyKind::kUniform:
      break;
  }
  return std::make_unique<proto::UniformPullPolicy>();
}

}  // namespace icollect::sched
