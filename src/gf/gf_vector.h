#pragma once

/// \file gf_vector.h
/// Bulk vector operations over GF(2^8) on contiguous byte ranges.
///
/// These are the hot loops of random linear network coding: encoding a
/// block is `dst += c * src` repeated over the blocks being combined, and
/// Gaussian elimination in the decoder is built from the same primitives.
/// All functions operate on `std::span<Element>` so callers can pass
/// vectors, arrays or sub-ranges without copies (Core Guidelines I.13).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/assert.h"
#include "gf/gf256.h"

namespace icollect::gf {

/// dst[i] += src[i]  (XOR accumulate). Spans must have equal length.
/// Word-at-a-time on the bulk (memcpy keeps it strict-aliasing clean and
/// compiles to plain 64-bit loads/xors), byte tail at the end.
inline void add_assign(std::span<Element> dst,
                       std::span<const Element> src) {
  ICOLLECT_EXPECTS(dst.size() == src.size());
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst.data() + i, sizeof(a));
    std::memcpy(&b, src.data() + i, sizeof(b));
    a ^= b;
    std::memcpy(dst.data() + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// dst[i] *= c, in place.
inline void scale_assign(std::span<Element> dst, Element c) {
  if (c == 1) return;
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const Element* row = GF256::mul_row(c);
  for (auto& b : dst) b = row[b];
}

/// dst[i] += c * src[i] — the fused multiply-accumulate at the heart of
/// both encoding and decoding. Equal-length spans required.
inline void add_scaled(std::span<Element> dst, std::span<const Element> src,
                       Element c) {
  ICOLLECT_EXPECTS(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    add_assign(dst, src);
    return;
  }
  const Element* row = GF256::mul_row(c);
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

/// Inner product sum_i a[i] * b[i] over the field.
[[nodiscard]] inline Element dot(std::span<const Element> a,
                                 std::span<const Element> b) {
  ICOLLECT_EXPECTS(a.size() == b.size());
  Element acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc ^= GF256::mul(a[i], b[i]);
  }
  return acc;
}

/// True if every coefficient is zero.
[[nodiscard]] inline bool is_zero(std::span<const Element> v) noexcept {
  for (const Element b : v) {
    if (b != 0) return false;
  }
  return true;
}

/// Index of the first non-zero coefficient, or `v.size()` if all-zero.
[[nodiscard]] inline std::size_t leading_index(
    std::span<const Element> v) noexcept {
  std::size_t i = 0;
  while (i < v.size() && v[i] == 0) ++i;
  return i;
}

}  // namespace icollect::gf
