#pragma once

/// \file gf_vector.h
/// Bulk vector operations over GF(2^8) on contiguous byte ranges.
///
/// These are the hot loops of random linear network coding: encoding a
/// block is `dst += c * src` repeated over the blocks being combined, and
/// Gaussian elimination in the decoder is built from the same primitives.
/// All functions operate on `std::span<Element>` so callers can pass
/// vectors, arrays or sub-ranges without copies (Core Guidelines I.13).
///
/// The heavy lifting is delegated to the runtime-dispatched kernel set
/// (gf/kernels.h): scalar table walks by default, SSSE3/AVX2 PSHUFB
/// nibble-split kernels when the CPU supports them. These wrappers add
/// the span-level contracts and the c==0 / c==1 short-circuits, then
/// call through the active function-pointer table. Every kernel is
/// bit-identical; selection affects speed only.

#include <cstddef>
#include <span>

#include "common/assert.h"
#include "gf/gf256.h"
#include "gf/kernels.h"

namespace icollect::gf {

/// dst[i] += src[i]  (XOR accumulate). Spans must have equal length.
inline void add_assign(std::span<Element> dst,
                       std::span<const Element> src) {
  ICOLLECT_EXPECTS(dst.size() == src.size());
  Kernels::active().add_assign(dst.data(), src.data(), dst.size());
}

/// dst[i] *= c, in place.
inline void scale_assign(std::span<Element> dst, Element c) {
  if (c == 1) return;
  Kernels::active().scale_assign(dst.data(), c, dst.size());
}

/// dst[i] += c * src[i] — the fused multiply-accumulate at the heart of
/// both encoding and decoding. Equal-length spans required.
inline void add_scaled(std::span<Element> dst, std::span<const Element> src,
                       Element c) {
  ICOLLECT_EXPECTS(dst.size() == src.size());
  if (c == 0) return;
  Kernels::active().add_scaled(dst.data(), src.data(), c, dst.size());
}

/// Inner product sum_i a[i] * b[i] over the field.
[[nodiscard]] inline Element dot(std::span<const Element> a,
                                 std::span<const Element> b) {
  ICOLLECT_EXPECTS(a.size() == b.size());
  return Kernels::active().dot(a.data(), b.data(), a.size());
}

/// True if every coefficient is zero.
[[nodiscard]] inline bool is_zero(std::span<const Element> v) noexcept {
  for (const Element b : v) {
    if (b != 0) return false;
  }
  return true;
}

/// Index of the first non-zero coefficient, or `v.size()` if all-zero.
[[nodiscard]] inline std::size_t leading_index(
    std::span<const Element> v) noexcept {
  std::size_t i = 0;
  while (i < v.size() && v[i] == 0) ++i;
  return i;
}

}  // namespace icollect::gf
