#include "gf/kernels.h"

#include <cstdlib>
#include <cstring>

namespace icollect::gf {

namespace {

// ---- scalar kernels -------------------------------------------------------
// These are the reference implementations every SIMD kernel is tested
// against, and the only path on non-x86 targets. They also handle the
// sub-vector tails of the SIMD kernels (via the same table walks).

void scalar_add_assign(Element* dst, const Element* src, std::size_t n) {
  // Word-at-a-time XOR on the bulk (memcpy keeps it strict-aliasing
  // clean and compiles to plain 64-bit loads/xors), byte tail at the end.
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a ^= b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void scalar_scale_assign(Element* dst, Element c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  const Element* row = GF256::mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

void scalar_add_scaled(Element* dst, const Element* src, Element c,
                       std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    scalar_add_assign(dst, src, n);
    return;
  }
  const Element* row = GF256::mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

Element scalar_dot(const Element* a, const Element* b, std::size_t n) {
  // Branch-free: one full-table row lookup per byte. a[i] selects the
  // row, b[i] the column; row 0 is all zeros, so no zero tests needed.
  const auto& table = GF256::mul_table();
  Element acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc ^= table[a[i]][b[i]];
  return acc;
}

}  // namespace

namespace detail {

const KernelTable kScalarKernels{scalar_add_assign, scalar_scale_assign,
                                 scalar_add_scaled, scalar_dot, "scalar"};

const NibbleTables& nibble_tables() noexcept {
  // Built from the constexpr exp/log-backed GF256::mul (not the
  // dynamically-initialized full table), so a first call during another
  // TU's static initialization is still well-defined.
  static const NibbleTables tables = [] {
    NibbleTables t{};
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 16; ++x) {
        t.lo[c][x] = GF256::mul(static_cast<Element>(c),
                                static_cast<Element>(x));
        t.hi[c][x] = GF256::mul(static_cast<Element>(c),
                                static_cast<Element>(x << 4U));
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace detail

namespace {

bool cpu_has(Kernels::Kind kind) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (kind) {
    case Kernels::Kind::kSsse3:
      return __builtin_cpu_supports("ssse3") != 0;
    case Kernels::Kind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    default:
      return true;
  }
#else
  return kind == Kernels::Kind::kScalar || kind == Kernels::Kind::kAuto;
#endif
}

const KernelTable* table_for(Kernels::Kind kind) noexcept {
  switch (kind) {
    case Kernels::Kind::kSsse3:
      return detail::ssse3_kernels();
    case Kernels::Kind::kAvx2:
      return detail::avx2_kernels();
    default:
      return &detail::kScalarKernels;
  }
}

/// Resolve the startup selection: ICOLLECT_GF_KERNEL wins when set to a
/// valid, supported name; otherwise CPUID picks the best kernel. Runs at
/// static initialization of this TU; everything earlier sees the scalar
/// table (correct, just slower).
[[maybe_unused]] const bool kStartupDispatch = [] {
  const char* env = std::getenv("ICOLLECT_GF_KERNEL");
  if (env != nullptr && *env != '\0' && Kernels::select_by_name(env)) {
    return true;
  }
  return Kernels::select(Kernels::Kind::kAuto);
}();

}  // namespace

bool Kernels::supported(Kind kind) noexcept {
  return cpu_has(kind) && table_for(kind) != nullptr;
}

Kernels::Kind Kernels::best() noexcept {
  if (supported(Kind::kAvx2)) return Kind::kAvx2;
  if (supported(Kind::kSsse3)) return Kind::kSsse3;
  return Kind::kScalar;
}

bool Kernels::select(Kind kind) noexcept {
  if (kind == Kind::kAuto) kind = best();
  if (!supported(kind)) return false;
  detail::g_active_kernels = table_for(kind);
  return true;
}

bool Kernels::select_by_name(std::string_view kernel_name) noexcept {
  if (kernel_name == "scalar") return select(Kind::kScalar);
  if (kernel_name == "ssse3") return select(Kind::kSsse3);
  if (kernel_name == "avx2") return select(Kind::kAvx2);
  if (kernel_name == "auto") return select(Kind::kAuto);
  return false;
}

const char* Kernels::name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kScalar: return "scalar";
    case Kind::kSsse3: return "ssse3";
    case Kind::kAvx2: return "avx2";
    case Kind::kAuto: return "auto";
  }
  return "scalar";
}

}  // namespace icollect::gf
