#pragma once

/// \file gf_matrix.h
/// Dense matrices over GF(2^8) with Gaussian elimination.
///
/// The RLNC decoder in `src/coding/` keeps its own incremental echelon
/// form for speed; this class is the general-purpose counterpart used for
/// batch decoding, rank queries over peer buffers, invertibility checks
/// and as the reference implementation the incremental decoder is tested
/// against.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gf/gf256.h"

namespace icollect::gf {

/// A rows x cols matrix over GF(2^8), row-major storage.
class Matrix {
 public:
  /// Zero matrix of the given shape. Either dimension may be zero.
  Matrix(std::size_t rows, std::size_t cols);

  /// Build from row-major initializer data; `data.size()` must equal
  /// `rows * cols`.
  Matrix(std::size_t rows, std::size_t cols,
         std::span<const Element> data);

  /// Identity matrix of order n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] Element at(std::size_t r, std::size_t c) const {
    ICOLLECT_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, Element v) {
    ICOLLECT_EXPECTS(r < rows_ && c < cols_);
    data_[r * cols_ + c] = v;
  }

  /// Mutable / immutable view of one row.
  [[nodiscard]] std::span<Element> row(std::size_t r) {
    ICOLLECT_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const Element> row(std::size_t r) const {
    ICOLLECT_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Append a row (must match cols()).
  void append_row(std::span<const Element> r);

  /// Matrix product this * rhs. Requires cols() == rhs.rows().
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Matrix-vector product this * v. Requires v.size() == cols().
  [[nodiscard]] std::vector<Element> multiply(
      std::span<const Element> v) const;

  /// Rank via Gaussian elimination on a scratch copy (const).
  [[nodiscard]] std::size_t rank() const;

  /// Reduce *this* in place to reduced row-echelon form; returns the rank.
  /// If `pivot_cols` is given, pivots are chosen only among the first
  /// `pivot_cols` columns (used for augmented [A | B] elimination, where
  /// pivoting into B would mask singularity of A).
  std::size_t reduce_to_rref(std::size_t pivot_cols = SIZE_MAX);

  /// True iff the matrix is square and has full rank.
  [[nodiscard]] bool invertible() const;

  /// Inverse of a square, full-rank matrix (Gauss-Jordan with an
  /// augmented identity). Precondition: invertible().
  [[nodiscard]] Matrix inverse() const;

  /// Solve `this * x = b` for x where *this* is square and invertible.
  /// Precondition: b.size() == rows(). This is exactly the operation a
  /// logging server performs to decode a segment once it holds s linearly
  /// independent coded blocks.
  [[nodiscard]] std::vector<Element> solve(std::span<const Element> b) const;

  /// Solve the batched system `this * X = B` where each column of B (given
  /// as row-major `rows() x width`) is an independent right-hand side.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  [[nodiscard]] bool operator==(const Matrix& rhs) const noexcept = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Element> data_;
};

}  // namespace icollect::gf
