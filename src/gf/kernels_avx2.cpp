/// \file kernels_avx2.cpp
/// AVX2 GF(2^8) kernels: 32 bytes per step (64 with the 2x-unrolled main
/// loop) via VPSHUFB nibble-split half-table lookups, the same scheme as
/// the SSSE3 kernels with the 16-byte half-tables broadcast to both
/// lanes. Compiled with -mavx2 (this TU only); selected at runtime only
/// when CPUID reports AVX2.

#include "gf/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace icollect::gf {
namespace {

void avx2_add_assign(Element* dst, const Element* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Multiply 32 source bytes by c: lo[s & 0xF] ^ hi[s >> 4] per lane.
inline __m256i mul32(__m256i s, __m256i lo, __m256i hi, __m256i mask) {
  const __m256i lo_idx = _mm256_and_si256(s, mask);
  const __m256i hi_idx = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_idx),
                          _mm256_shuffle_epi8(hi, hi_idx));
}

void avx2_scale_assign(Element* dst, Element c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const auto& t = detail::nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul32(s, lo, hi, mask));
  }
  const Element* row = GF256::mul_row(c);
  for (; i < n; ++i) dst[i] = row[dst[i]];
}

void avx2_add_scaled(Element* dst, const Element* src, Element c,
                     std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    avx2_add_assign(dst, src, n);
    return;
  }
  const auto& t = detail::nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // 2x unroll: typical payloads (1 KiB) keep both pipes busy.
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, mul32(s0, lo, hi, mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, mul32(s1, lo, hi, mask)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul32(s, lo, hi, mask)));
  }
  const Element* row = GF256::mul_row(c);
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

const KernelTable kAvx2Kernels{
    avx2_add_assign, avx2_scale_assign, avx2_add_scaled,
    // See kernels_ssse3.cpp: dot is not nibble-split vectorizable.
    detail::kScalarKernels.dot, "avx2"};

}  // namespace

namespace detail {
const KernelTable* avx2_kernels() noexcept { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace icollect::gf

#else  // !__AVX2__

namespace icollect::gf::detail {
const KernelTable* avx2_kernels() noexcept { return nullptr; }
}  // namespace icollect::gf::detail

#endif
