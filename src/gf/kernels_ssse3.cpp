/// \file kernels_ssse3.cpp
/// SSSE3 GF(2^8) kernels: 16 bytes per step via PSHUFB nibble-split
/// half-table lookups. Compiled with -mssse3 (this TU only); selected at
/// runtime only when CPUID reports SSSE3, so the rest of the binary
/// carries no ISA requirement.

#include "gf/kernels.h"

#if defined(__SSSE3__)

#include <tmmintrin.h>

namespace icollect::gf {
namespace {

void ssse3_add_assign(Element* dst, const Element* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Multiply 16 source bytes by c: lo[s & 0xF] ^ hi[s >> 4].
inline __m128i mul16(__m128i s, __m128i lo, __m128i hi, __m128i mask) {
  const __m128i lo_idx = _mm_and_si128(s, mask);
  const __m128i hi_idx = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo, lo_idx),
                       _mm_shuffle_epi8(hi, hi_idx));
}

void ssse3_scale_assign(Element* dst, Element c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const auto& t = detail::nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul16(s, lo, hi, mask));
  }
  const Element* row = GF256::mul_row(c);
  for (; i < n; ++i) dst[i] = row[dst[i]];
}

void ssse3_add_scaled(Element* dst, const Element* src, Element c,
                      std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    ssse3_add_assign(dst, src, n);
    return;
  }
  const auto& t = detail::nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul16(s, lo, hi, mask)));
  }
  const Element* row = GF256::mul_row(c);
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

const KernelTable kSsse3Kernels{
    ssse3_add_assign, ssse3_scale_assign, ssse3_add_scaled,
    // dot has a data-dependent multiplier per byte, which the
    // nibble-split trick cannot vectorize; the branch-free scalar table
    // walk is the fastest known portable form.
    detail::kScalarKernels.dot, "ssse3"};

}  // namespace

namespace detail {
const KernelTable* ssse3_kernels() noexcept { return &kSsse3Kernels; }
}  // namespace detail

}  // namespace icollect::gf

#else  // !__SSSE3__

namespace icollect::gf::detail {
const KernelTable* ssse3_kernels() noexcept { return nullptr; }
}  // namespace icollect::gf::detail

#endif
