#pragma once

/// \file kernels.h
/// Vectorized GF(2^8) bulk-operation kernels with runtime dispatch.
///
/// Every coding operation in the system — encoding, recoding, and the
/// server-side Gaussian elimination — reduces to four bulk primitives
/// over contiguous byte ranges:
///
///   add_assign    dst ^= src                  (field addition)
///   scale_assign  dst  = c * dst              (scalar scaling)
///   add_scaled    dst ^= c * src              (fused multiply-accumulate)
///   dot           xor_i a[i] * b[i]           (inner product)
///
/// The scalar implementations walk the 64 KiB full multiplication table
/// one byte at a time. The SIMD implementations use the classic
/// nibble-split technique (as in Intel ISA-L / GF-Complete): write the
/// multiplier's table row as two 16-entry half-tables
///   lo[x] = c * x         for x in [0, 16)
///   hi[x] = c * (x << 4)  for x in [0, 16)
/// so that c * b == lo[b & 0xF] ^ hi[b >> 4], then evaluate 16 (SSSE3)
/// or 32 (AVX2) of those lookups per instruction with PSHUFB/VPSHUFB.
///
/// Dispatch model: a single function-pointer table (`KernelTable`)
/// selected once — at static initialization from CPUID (plus the
/// `ICOLLECT_GF_KERNEL` environment variable), or explicitly via
/// `Kernels::select()` / the `--gf-kernel` CLI flag. The active-table
/// pointer is constant-initialized to the scalar table, so code running
/// before the dispatcher's initializer (or on non-x86 builds) always
/// has a valid, bit-identical fallback. All kernels produce identical
/// results; selection changes speed, never output.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "gf/gf256.h"

namespace icollect::gf {

/// One complete set of bulk-operation implementations. All pointers are
/// always non-null; `name` is a static string ("scalar", "ssse3",
/// "avx2").
struct KernelTable {
  using AddAssignFn = void (*)(Element* dst, const Element* src,
                               std::size_t n);
  using ScaleAssignFn = void (*)(Element* dst, Element c, std::size_t n);
  using AddScaledFn = void (*)(Element* dst, const Element* src, Element c,
                               std::size_t n);
  using DotFn = Element (*)(const Element* a, const Element* b,
                            std::size_t n);

  AddAssignFn add_assign;
  ScaleAssignFn scale_assign;
  AddScaledFn add_scaled;
  DotFn dot;
  const char* name;
};

namespace detail {

/// The always-available scalar table (definition in kernels.cpp).
extern const KernelTable kScalarKernels;

/// Active table pointer. Constant-initialized (address constant), so no
/// static-initialization-order hazard: anything running before the
/// dispatcher gets the scalar kernels.
inline const KernelTable* g_active_kernels = &kScalarKernels;

/// Half-table pairs for the PSHUFB nibble-split kernels, one 32-byte
/// pair per multiplier c. Built lazily (Meyers singleton) from the
/// scalar multiplication table; ~8 KiB total.
struct NibbleTables {
  alignas(32) std::uint8_t lo[256][16];
  alignas(32) std::uint8_t hi[256][16];
};
[[nodiscard]] const NibbleTables& nibble_tables() noexcept;

/// SIMD tables, compiled in their own TUs with the matching ISA flags.
/// Return nullptr when the build target is not x86.
[[nodiscard]] const KernelTable* ssse3_kernels() noexcept;
[[nodiscard]] const KernelTable* avx2_kernels() noexcept;

}  // namespace detail

/// Runtime kernel selection facade.
class Kernels {
 public:
  enum class Kind { kScalar, kSsse3, kAvx2, kAuto };

  /// The currently active kernel set. Hot path: a single load.
  [[nodiscard]] static const KernelTable& active() noexcept {
    return *detail::g_active_kernels;
  }

  /// True if `kind` can run on this CPU (kScalar and kAuto always can).
  [[nodiscard]] static bool supported(Kind kind) noexcept;

  /// The best kernel this CPU supports.
  [[nodiscard]] static Kind best() noexcept;

  /// Switch the active kernel set. kAuto resolves to best(). Returns
  /// false (and leaves the selection unchanged) if the CPU lacks the
  /// requested ISA. Not thread-safe against concurrent bulk ops —
  /// intended for startup / benchmark harnesses.
  static bool select(Kind kind) noexcept;

  /// select() by name: "scalar", "ssse3", "avx2" or "auto". Returns
  /// false on unknown names or unsupported ISAs.
  static bool select_by_name(std::string_view name) noexcept;

  /// Display name for a kind ("auto" included).
  [[nodiscard]] static const char* name(Kind kind) noexcept;

  Kernels() = delete;  // purely static facade
};

}  // namespace icollect::gf
