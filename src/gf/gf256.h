#pragma once

/// \file gf256.h
/// Arithmetic over the Galois field GF(2^8), the field the paper's random
/// linear code operates in (Sec. 2: "a coded block ... is a linear
/// combination ... in the Galois field GF(2^8)").
///
/// Representation: field elements are bytes; addition is XOR; multiplication
/// is carry-less polynomial multiplication modulo the primitive polynomial
///   x^8 + x^4 + x^3 + x^2 + 1   (0x11D),
/// the conventional choice for Reed-Solomon / network-coding codes. The
/// element `2` (the polynomial x) is a generator of the multiplicative
/// group, which lets us implement multiplication and inversion with
/// exp/log tables computed at compile time.
///
/// All tables are `constexpr`, so there is no runtime initialization order
/// to worry about and the compiler can constant-fold field expressions.

#include <array>
#include <cstdint>

#include "common/assert.h"

namespace icollect::gf {

/// A field element of GF(2^8). Plain byte; all structure lives in GF256.
using Element = std::uint8_t;

namespace detail {

/// Multiply two elements the slow, table-free way (peasant multiplication).
/// Used only at compile time to build the tables and in tests as an oracle.
constexpr Element slow_mul(Element a, Element b) noexcept {
  unsigned acc = 0;
  unsigned aa = a;
  unsigned bb = b;
  for (int bit = 0; bit < 8; ++bit) {
    if ((bb & 1U) != 0) acc ^= aa;
    bb >>= 1U;
    aa <<= 1U;
    if ((aa & 0x100U) != 0) aa ^= 0x11DU;
  }
  return static_cast<Element>(acc & 0xFFU);
}

struct Tables {
  // exp_[i] = g^i for generator g = 2, period 255; doubled to 512 entries so
  // `exp_[log_[a] + log_[b]]` never needs an explicit modulo reduction.
  std::array<Element, 512> exp_{};
  std::array<Element, 256> log_{};
  // inv_[a] = a^{-1}; inv_[0] unused (inversion of zero is a contract error).
  std::array<Element, 256> inv_{};
};

constexpr Tables build_tables() noexcept {
  Tables t{};
  Element x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp_[static_cast<std::size_t>(i)] = x;
    t.exp_[static_cast<std::size_t>(i + 255)] = x;
    t.log_[x] = static_cast<Element>(i);
    x = slow_mul(x, 2);
  }
  t.exp_[510] = t.exp_[0];
  t.exp_[511] = t.exp_[1];
  t.log_[0] = 0;  // sentinel; callers must never look up log of zero
  for (unsigned a = 1; a < 256; ++a) {
    const Element e = static_cast<Element>(a);
    t.inv_[a] = t.exp_[static_cast<std::size_t>(255 - t.log_[e])];
  }
  return t;
}

inline constexpr Tables kTables = build_tables();

}  // namespace detail

/// Static interface to GF(2^8) scalar arithmetic.
class GF256 {
 public:
  /// The primitive (irreducible) polynomial, as an integer bit pattern.
  static constexpr unsigned kPolynomial = 0x11D;
  /// Multiplicative generator used by the exp/log tables.
  static constexpr Element kGenerator = 2;
  /// Order of the multiplicative group.
  static constexpr unsigned kGroupOrder = 255;

  /// Field addition: characteristic 2, so addition is XOR.
  [[nodiscard]] static constexpr Element add(Element a, Element b) noexcept {
    return a ^ b;
  }

  /// Field subtraction coincides with addition in characteristic 2.
  [[nodiscard]] static constexpr Element sub(Element a, Element b) noexcept {
    return a ^ b;
  }

  /// Field multiplication via exp/log tables.
  [[nodiscard]] static constexpr Element mul(Element a, Element b) noexcept {
    if (a == 0 || b == 0) return 0;
    const auto& t = detail::kTables;
    return t.exp_[static_cast<std::size_t>(t.log_[a]) + t.log_[b]];
  }

  /// Multiplicative inverse. Precondition: `a != 0`.
  [[nodiscard]] static Element inv(Element a) {
    ICOLLECT_EXPECTS(a != 0);
    return detail::kTables.inv_[a];
  }

  /// Field division `a / b`. Precondition: `b != 0`.
  [[nodiscard]] static Element div(Element a, Element b) {
    ICOLLECT_EXPECTS(b != 0);
    if (a == 0) return 0;
    const auto& t = detail::kTables;
    return t.exp_[static_cast<std::size_t>(t.log_[a]) + kGroupOrder -
                  t.log_[b]];
  }

  /// `a` raised to the (non-negative) integer power `n`.
  [[nodiscard]] static constexpr Element pow(Element a, unsigned n) noexcept {
    if (n == 0) return 1;
    if (a == 0) return 0;
    const auto& t = detail::kTables;
    // Reduce the exponent modulo the group order BEFORE multiplying:
    // log_[a] * n would overflow 32 bits for n > ~2^24 and silently
    // wrap to the wrong exponent.
    const unsigned e =
        (static_cast<unsigned>(t.log_[a]) * (n % kGroupOrder)) % kGroupOrder;
    return t.exp_[e];
  }

  /// g^i for the table generator g = 2 (i taken mod 255).
  [[nodiscard]] static constexpr Element exp(unsigned i) noexcept {
    return detail::kTables.exp_[i % kGroupOrder];
  }

  /// Discrete log base g = 2. Precondition: `a != 0`.
  [[nodiscard]] static Element log(Element a) {
    ICOLLECT_EXPECTS(a != 0);
    return detail::kTables.log_[a];
  }

  /// Slow reference multiplication — exposed for tests as an oracle.
  [[nodiscard]] static constexpr Element mul_reference(Element a,
                                                       Element b) noexcept {
    return detail::slow_mul(a, b);
  }

  /// Pointer to the 256-entry row `row[x] = c * x` of the full
  /// multiplication table. This is the workhorse of the bulk vector
  /// operations: one table row lookup per byte, no branches.
  [[nodiscard]] static const Element* mul_row(Element c) noexcept;

  /// The full 256x256 multiplication table (row c == mul_row(c)).
  /// Lets two-index consumers (e.g. the branch-free dot kernel) avoid a
  /// mul_row call per byte.
  [[nodiscard]] static const std::array<std::array<Element, 256>, 256>&
  mul_table() noexcept;

 private:
  GF256() = delete;  // purely static facade
};

}  // namespace icollect::gf
