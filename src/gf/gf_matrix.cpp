#include "gf/gf_matrix.h"

#include <utility>

#include "gf/gf_vector.h"

namespace icollect::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, Element{0}) {}

Matrix::Matrix(std::size_t rows, std::size_t cols,
               std::span<const Element> data)
    : rows_{rows}, cols_{cols}, data_(data.begin(), data.end()) {
  ICOLLECT_EXPECTS(data.size() == rows * cols);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

void Matrix::append_row(std::span<const Element> r) {
  ICOLLECT_EXPECTS(r.size() == cols_);
  data_.insert(data_.end(), r.begin(), r.end());
  ++rows_;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  ICOLLECT_EXPECTS(cols_ == rhs.rows_);
  Matrix out{rows_, rhs.cols_};
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Element a = at(i, k);
      if (a == 0) continue;
      add_scaled(out.row(i), rhs.row(k), a);
    }
  }
  return out;
}

std::vector<Element> Matrix::multiply(std::span<const Element> v) const {
  ICOLLECT_EXPECTS(v.size() == cols_);
  std::vector<Element> out(rows_, Element{0});
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), v);
  return out;
}

std::size_t Matrix::rank() const {
  Matrix scratch{*this};
  return scratch.reduce_to_rref();
}

std::size_t Matrix::reduce_to_rref(std::size_t pivot_cols) {
  const std::size_t limit = std::min(pivot_cols, cols_);
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < limit && pivot_row < rows_; ++col) {
    // Find a row at or below pivot_row with a non-zero entry in this column.
    std::size_t sel = pivot_row;
    while (sel < rows_ && at(sel, col) == 0) ++sel;
    if (sel == rows_) continue;
    if (sel != pivot_row) {
      for (std::size_t c = 0; c < cols_; ++c) {
        std::swap(data_[sel * cols_ + c], data_[pivot_row * cols_ + c]);
      }
    }
    // Normalize the pivot row so the pivot is 1.
    const Element p = at(pivot_row, col);
    if (p != 1) scale_assign(row(pivot_row), GF256::inv(p));
    // Eliminate the column from every other row (full reduction).
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const Element f = at(r, col);
      if (f != 0) add_scaled(row(r), row(pivot_row), f);
    }
    ++pivot_row;
  }
  return pivot_row;
}

bool Matrix::invertible() const {
  return rows_ == cols_ && rank() == rows_;
}

Matrix Matrix::inverse() const {
  ICOLLECT_EXPECTS(rows_ == cols_);
  // Gauss-Jordan on [A | I].
  Matrix aug{rows_, 2 * cols_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.set(r, c, at(r, c));
    aug.set(r, cols_ + r, 1);
  }
  const std::size_t rk = aug.reduce_to_rref(cols_);
  ICOLLECT_EXPECTS(rk == rows_);  // invertibility precondition
  Matrix inv{rows_, cols_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      inv.set(r, c, aug.at(r, cols_ + c));
    }
  }
  return inv;
}

std::vector<Element> Matrix::solve(std::span<const Element> b) const {
  ICOLLECT_EXPECTS(rows_ == cols_);
  ICOLLECT_EXPECTS(b.size() == rows_);
  Matrix rhs{rows_, 1};
  for (std::size_t i = 0; i < rows_; ++i) rhs.set(i, 0, b[i]);
  Matrix x = solve(rhs);
  std::vector<Element> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = x.at(i, 0);
  return out;
}

Matrix Matrix::solve(const Matrix& b) const {
  ICOLLECT_EXPECTS(rows_ == cols_);
  ICOLLECT_EXPECTS(b.rows() == rows_);
  // Gauss-Jordan on [A | B].
  Matrix aug{rows_, cols_ + b.cols()};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.set(r, c, at(r, c));
    for (std::size_t c = 0; c < b.cols(); ++c) {
      aug.set(r, cols_ + c, b.at(r, c));
    }
  }
  const std::size_t rk = aug.reduce_to_rref(cols_);
  ICOLLECT_EXPECTS(rk == rows_);  // system must be uniquely solvable
  Matrix x{rows_, b.cols()};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      x.set(r, c, aug.at(r, cols_ + c));
    }
  }
  return x;
}

}  // namespace icollect::gf
