#include "gf/gf256.h"

namespace icollect::gf {

namespace {

/// Full 256x256 multiplication table, 64 KiB. Built once at static
/// initialization from the constexpr exp/log tables; read-only afterwards.
/// Row-major: kMulTable[c][x] == c * x.
struct MulTable {
  std::array<std::array<Element, 256>, 256> rows{};
  MulTable() noexcept {
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 256; ++x) {
        rows[c][x] = GF256::mul(static_cast<Element>(c),
                                static_cast<Element>(x));
      }
    }
  }
};

const MulTable kMulTable{};

}  // namespace

const Element* GF256::mul_row(Element c) noexcept {
  return kMulTable.rows[c].data();
}

const std::array<std::array<Element, 256>, 256>& GF256::mul_table() noexcept {
  return kMulTable.rows;
}

}  // namespace icollect::gf
