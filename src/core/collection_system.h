#pragma once

/// \file collection_system.h
/// The library's front door: configure and run an indirect statistics
/// collection session (the paper's system), optionally with real
/// vital-statistics payloads, and obtain a CollectionReport.
///
/// Typical use (see examples/quickstart.cpp):
///
///   p2p::ProtocolConfig cfg;
///   cfg.num_peers = 200; cfg.lambda = 20; cfg.mu = 10; cfg.gamma = 1;
///   cfg.segment_size = 20;
///   cfg.set_normalized_capacity(5.0);
///   CollectionSystem system{cfg};
///   system.use_vital_statistics_payloads();
///   system.warm_up(10.0);
///   system.run(30.0);
///   CollectionReport r = system.report();
///
/// The companion analytical model (Sec. 3's ODEs) is available through
/// `analyze()`, which maps the same configuration onto ode::OdeParams.

#include <memory>
#include <vector>

#include "core/report.h"
#include "obs/telemetry.h"
#include "ode/indirect_ode.h"
#include "p2p/config.h"
#include "p2p/network.h"
#include "sim/random.h"
#include "workload/generators.h"
#include "workload/record_store.h"
#include "workload/stats_record.h"
#include "workload/streaming_session.h"

namespace icollect {

class CollectionSystem {
 public:
  explicit CollectionSystem(p2p::ProtocolConfig cfg);

  CollectionSystem(const CollectionSystem&) = delete;
  CollectionSystem& operator=(const CollectionSystem&) = delete;

  /// Generate real vital-statistics records as segment payloads (the
  /// per-peer measurement models of workload/generators.h). Requires
  /// payload_bytes > 0 and a segment large enough for at least one
  /// record; throws std::invalid_argument otherwise. Call before any
  /// run/warm_up.
  void use_vital_statistics_payloads();

  /// Like use_vital_statistics_payloads(), but the records are *measured
  /// from an actual P2P streaming session* (workload::StreamingSession)
  /// pre-run for `horizon` time with per-peer samples every `interval`:
  /// segment payloads then carry the session's real dynamics. The
  /// session's peer count must equal the protocol's. Same payload
  /// requirements as above; call before any run/warm_up.
  void use_streaming_session_payloads(workload::StreamingConfig session_cfg,
                                      double horizon, double interval);

  /// Attach a telemetry bundle to this run: registers pull gauges for
  /// every engine metric, installs the trace ring as the network's trace
  /// sink, attaches the profiler (when enabled), writes config.json, and
  /// makes run()/warm_up() chunk virtual time on the snapshot cadence so
  /// the Snapshotter samples on schedule. The Telemetry object must
  /// outlive this system; call before any run/warm_up, at most once.
  void attach_telemetry(obs::Telemetry& telemetry);

  /// Run the warm-up transient, then reset the measurement window.
  void warm_up(double duration);

  /// Advance the session by `duration` time units.
  void run(double duration);

  /// End the reporting streams (Theorem 4 regime): injection stops,
  /// buffered data keeps draining to the servers.
  void stop_injection();

  /// Snapshot of all metrics over the current measurement window.
  [[nodiscard]] CollectionReport report() const;

  /// Every vital-statistics record recovered by the servers so far
  /// (decoded, CRC-verified, unpacked). Only meaningful with
  /// use_vital_statistics_payloads().
  [[nodiscard]] std::vector<workload::StatsRecord> recovered_records() const;

  /// The recovered records loaded into an analyst-side RecordStore
  /// (per-peer time-ordered histories, health aggregation, postmortem
  /// queries).
  [[nodiscard]] workload::RecordStore recovered_record_store() const;

  /// Direct access to the underlying engine for advanced inspection.
  [[nodiscard]] p2p::Network& network() noexcept { return *net_; }
  [[nodiscard]] const p2p::Network& network() const noexcept { return *net_; }

  /// Map a protocol configuration onto the fluid model's parameters.
  [[nodiscard]] static ode::OdeParams ode_params(
      const p2p::ProtocolConfig& cfg);

  /// Solve the Sec. 3 ODEs for this configuration (static network
  /// assumptions: churn and sparse topologies are simulation-only).
  [[nodiscard]] static ode::OdeSolution analyze(
      const p2p::ProtocolConfig& cfg);

 private:
  /// Advance to absolute time `end`, pausing at every snapshot due-time
  /// when telemetry with an active sampling cadence is attached.
  void run_with_telemetry(double end);

  p2p::ProtocolConfig cfg_;
  std::unique_ptr<p2p::Network> net_;
  obs::Telemetry* telemetry_ = nullptr;
  // Vital-statistics payload machinery (active after
  // use_vital_statistics_payloads()).
  bool records_enabled_ = false;
  sim::Rng record_rng_;
  std::vector<workload::MeasurementModel> models_;  // one per peer slot
  std::unique_ptr<workload::SessionRecordFeed> session_feed_;
};

}  // namespace icollect
