#include "core/collection_system.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/config_args.h"
#include "p2p/network_telemetry.h"

namespace icollect {

CollectionSystem::CollectionSystem(p2p::ProtocolConfig cfg)
    : cfg_{cfg}, record_rng_{cfg.seed ^ 0x5EC09DBADC0FFEEULL} {
  cfg_.validate();
  net_ = std::make_unique<p2p::Network>(cfg_);
}

void CollectionSystem::use_vital_statistics_payloads() {
  if (cfg_.payload_bytes == 0) {
    throw std::invalid_argument(
        "use_vital_statistics_payloads: payload_bytes must be > 0");
  }
  // Validates that at least one record fits per segment.
  const workload::RecordPacker packer{cfg_.segment_size, cfg_.payload_bytes};
  records_enabled_ = true;
  models_.clear();
  models_.reserve(cfg_.num_peers);
  for (std::size_t slot = 0; slot < cfg_.num_peers; ++slot) {
    models_.emplace_back(static_cast<std::uint32_t>(slot));
  }
  net_->set_payload_source(
      [this, packer](const p2p::Peer& origin, coding::SegmentId /*id*/,
                     std::size_t /*segment_size*/,
                     std::size_t /*payload_bytes*/) {
        // Fill the segment with fresh measurements from this peer's model.
        auto& model = models_[origin.slot];
        std::vector<workload::StatsRecord> records;
        records.reserve(packer.capacity());
        for (std::size_t k = 0; k < packer.capacity(); ++k) {
          auto r = model.sample(net_->now(), record_rng_);
          r.peer = origin.origin();  // identity of the current occupant
          records.push_back(r);
        }
        return packer.pack(records);
      });
}

void CollectionSystem::use_streaming_session_payloads(
    workload::StreamingConfig session_cfg, double horizon, double interval) {
  if (cfg_.payload_bytes == 0) {
    throw std::invalid_argument(
        "use_streaming_session_payloads: payload_bytes must be > 0");
  }
  if (session_cfg.num_peers != cfg_.num_peers) {
    throw std::invalid_argument(
        "use_streaming_session_payloads: session peer count must match "
        "the protocol's");
  }
  const workload::RecordPacker packer{cfg_.segment_size, cfg_.payload_bytes};
  workload::StreamingSession session{session_cfg};
  session_feed_ = std::make_unique<workload::SessionRecordFeed>(
      session, horizon, interval);
  records_enabled_ = true;
  net_->set_payload_source(
      [this, packer](const p2p::Peer& origin, coding::SegmentId /*id*/,
                     std::size_t /*segment_size*/,
                     std::size_t /*payload_bytes*/) {
        // Ship the session's measured records for this slot, as many as
        // are due and fit; identity follows the current occupant.
        auto records = session_feed_->take(origin.slot, net_->now(),
                                           packer.capacity());
        for (auto& r : records) r.peer = origin.origin();
        return packer.pack(records);
      });
}

void CollectionSystem::attach_telemetry(obs::Telemetry& telemetry) {
  ICOLLECT_EXPECTS(telemetry_ == nullptr);
  telemetry_ = &telemetry;
  p2p::register_network_metrics(telemetry.registry(), *net_);
  net_->set_trace_sink(telemetry.trace().sink());
  if (telemetry.profiler() != nullptr) {
    net_->set_profiler(telemetry.profiler());
  }
  telemetry.snapshotter().start(net_->now());
  telemetry.write_config(config_json(cfg_));
}

void CollectionSystem::warm_up(double duration) {
  ICOLLECT_EXPECTS(duration >= 0.0);
  run_with_telemetry(net_->now() + duration);
  net_->warm_up(net_->now());
}

void CollectionSystem::run(double duration) {
  ICOLLECT_EXPECTS(duration >= 0.0);
  run_with_telemetry(net_->now() + duration);
}

void CollectionSystem::run_with_telemetry(double end) {
  if (telemetry_ == nullptr || !telemetry_->sampling_active()) {
    net_->run_until(end);
    return;
  }
  auto& snap = telemetry_->snapshotter();
  while (true) {
    net_->run_until(std::min(end, snap.next_due()));
    if (snap.sample_if_due(net_->now()) && telemetry_->options().progress) {
      const auto& m = net_->metrics();
      std::fprintf(
          stderr,
          "[t=%9.3f] injected=%llu decoded=%llu lost=%llu pulls=%llu "
          "blocks/peer=%.2f\n",
          net_->now(),
          static_cast<unsigned long long>(m.segments_injected),
          static_cast<unsigned long long>(net_->servers().segments_decoded()),
          static_cast<unsigned long long>(m.segments_lost),
          static_cast<unsigned long long>(net_->servers().pulls()),
          static_cast<double>(m.total_blocks.value()) /
              static_cast<double>(cfg_.num_peers));
    }
    if (net_->now() >= end) break;
  }
}

void CollectionSystem::stop_injection() { net_->stop_injection(); }

CollectionReport CollectionSystem::report() const {
  const auto& m = net_->metrics();
  const auto& srv = net_->servers();
  CollectionReport r;
  r.measured_time =
      net_->now() - m.decoded_original_blocks.window_start();
  r.normalized_capacity = cfg_.normalized_capacity();
  r.throughput = net_->throughput();
  r.normalized_throughput = net_->normalized_throughput();
  r.goodput = net_->goodput();
  r.normalized_goodput = net_->normalized_goodput();
  r.capacity_bound =
      cfg_.lambda > 0.0
          ? std::min(cfg_.normalized_capacity() / cfg_.lambda, 1.0)
          : 0.0;
  r.mean_block_delay = net_->mean_block_delay();
  r.mean_segment_delay = net_->mean_segment_delay();
  r.max_segment_delay = m.segment_delay.max();
  r.mean_blocks_per_peer = net_->mean_blocks_per_peer();
  r.storage_overhead = net_->storage_overhead();
  r.empty_peer_fraction = net_->empty_peer_fraction();
  r.overhead_bound = cfg_.mu / cfg_.gamma;
  r.segments_injected = m.segments_injected;
  r.segments_decoded = srv.segments_decoded();
  r.segments_lost = m.segments_lost;
  r.blocks_injected = m.blocks_injected;
  r.original_blocks_recovered = srv.original_blocks_recovered();
  r.server_pulls = srv.pulls();
  r.redundant_pulls = srv.redundant_pulls();
  r.payload_crc_failures = m.payload_crc_failures;
  r.peers_departed = m.peers_departed;
  r.blocks_lost_to_churn = m.blocks_lost_to_churn;
  r.saved = net_->saved_data_census();
  return r;
}

std::vector<workload::StatsRecord> CollectionSystem::recovered_records()
    const {
  std::vector<workload::StatsRecord> out;
  if (!records_enabled_) return out;
  const workload::RecordPacker packer{cfg_.segment_size, cfg_.payload_bytes};
  for (const auto& [id, info] : net_->segment_registry()) {
    if (!info.decoded) continue;
    const auto* blocks = net_->servers().originals(id);
    if (blocks == nullptr) continue;
    auto records = packer.unpack(*blocks);
    out.insert(out.end(), records.begin(), records.end());
  }
  return out;
}

workload::RecordStore CollectionSystem::recovered_record_store() const {
  workload::RecordStore store;
  const auto records = recovered_records();
  store.insert(std::span<const workload::StatsRecord>{records});
  return store;
}

ode::OdeParams CollectionSystem::ode_params(const p2p::ProtocolConfig& cfg) {
  ode::OdeParams p;
  p.lambda = cfg.lambda;
  p.mu = cfg.mu;
  p.gamma = cfg.gamma;
  p.c = cfg.normalized_capacity();
  p.s = cfg.segment_size;
  p.B = cfg.buffer_cap;
  p.Imax = 0;  // auto
  p.churn_rate =
      cfg.churn.enabled ? 1.0 / cfg.churn.mean_lifetime : 0.0;
  return p;
}

ode::OdeSolution CollectionSystem::analyze(const p2p::ProtocolConfig& cfg) {
  return ode::IndirectOde{ode_params(cfg)}.solve();
}

}  // namespace icollect
