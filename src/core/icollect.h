#pragma once

/// \file icollect.h
/// Umbrella header: the full public API of the indirect-collection
/// library. Downstream users include this one header.
///
/// Layering (each layer usable on its own):
///   gf/        GF(2^8) arithmetic, vectors, matrices
///   coding/    RLNC encoder / recoder / progressive decoder
///   sim/       discrete-event kernel (clock, events, RNG, processes)
///   stats/     summaries, histograms, time-weighted signals
///   workload/  vital-statistics records, packers, traffic profiles
///   p2p/       the protocol engine + the direct-collection baseline
///   ode/       the Sec. 3 fluid model and Theorem 1-4 closed forms
///   core/      CollectionSystem facade + CollectionReport

#include "coding/batch_decoder.h"
#include "coding/coded_block.h"
#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "coding/segment_id.h"
#include "core/collection_system.h"
#include "core/config_args.h"
#include "core/report.h"
#include "gf/gf256.h"
#include "gf/gf_matrix.h"
#include "gf/gf_vector.h"
#include "ode/closed_form.h"
#include "ode/indirect_ode.h"
#include "ode/rk4.h"
#include "proto/peer_buffer.h"
#include "proto/peer_core.h"
#include "proto/policy.h"
#include "proto/pull_policy.h"
#include "proto/selection.h"
#include "proto/server_bank.h"
#include "proto/server_core.h"
#include "proto/trace.h"
#include "p2p/churn.h"
#include "p2p/config.h"
#include "p2p/direct_collector.h"
#include "p2p/metrics.h"
#include "p2p/network.h"
#include "p2p/topology.h"
#include "sim/event_queue.h"
#include "sim/poisson_process.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/csv.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/time_series.h"
#include "workload/generators.h"
#include "workload/record_store.h"
#include "workload/stats_record.h"
