#pragma once

/// \file config_args.h
/// key=value command-line parsing into ProtocolConfig, shared by the CLI
/// driver (tools/icollect_sim) and any downstream embedding that wants
/// string-driven configuration.
///
/// Recognized keys (all optional; unknown keys throw):
///   peers=N            lambda=X      s=N          mu=X         gamma=X
///   buffer=N           servers=N     c=X (normalized capacity)
///   server_rate=X      payload=N     seed=N
///   topology=complete|erdos-renyi|random-regular   degree=N
///   churn=X            (mean lifetime; 0 disables)
///   lifetimes=exponential|pareto   pareto_shape=A (> 1)
///   fidelity=real-coding|state-counter
///   pull=non-empty|all|rarest|deficit (server pull scheduling; rarest
///        and deficit accept the -first/-weighted long forms too)
///
/// Values are validated by ProtocolConfig::validate() after parsing.

#include <span>
#include <string>
#include <string_view>

#include "p2p/config.h"

namespace icollect {

/// Parse `key=value` tokens into `cfg` (later tokens win). Throws
/// std::invalid_argument on malformed tokens, unknown keys, bad values,
/// or an inconsistent final configuration.
void apply_config_args(p2p::ProtocolConfig& cfg,
                       std::span<const std::string_view> args);

/// Convenience: parse argv[1..argc) over a default-constructed config.
[[nodiscard]] p2p::ProtocolConfig parse_config_args(int argc,
                                                    const char* const* argv);

/// One-line human-readable rendering of a configuration.
[[nodiscard]] std::string describe(const p2p::ProtocolConfig& cfg);

/// Complete JSON echo of a configuration (flat object, seed included) —
/// the config.json of a telemetry bundle, so every run is reproducible
/// from its artifacts alone.
[[nodiscard]] std::string config_json(const p2p::ProtocolConfig& cfg);

/// The help text for the recognized keys.
[[nodiscard]] const char* config_args_help() noexcept;

}  // namespace icollect
