#include "core/config_args.h"

#include <charconv>
#include <stdexcept>
#include <vector>

#include "gf/kernels.h"
#include "obs/json.h"

namespace icollect {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("config args: " + what);
}

double parse_double(std::string_view key, std::string_view value) {
  double out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad("bad numeric value for '" + std::string(key) + "': '" +
        std::string(value) + "'");
  }
  return out;
}

std::size_t parse_size(std::string_view key, std::string_view value) {
  std::size_t out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad("bad integer value for '" + std::string(key) + "': '" +
        std::string(value) + "'");
  }
  return out;
}

}  // namespace

void apply_config_args(p2p::ProtocolConfig& cfg,
                       std::span<const std::string_view> args) {
  for (const std::string_view arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad("expected key=value, got '" + std::string(arg) + "'");
    }
    const std::string_view key = arg.substr(0, eq);
    const std::string_view value = arg.substr(eq + 1);
    if (key == "peers") {
      cfg.num_peers = parse_size(key, value);
    } else if (key == "lambda") {
      cfg.lambda = parse_double(key, value);
    } else if (key == "s") {
      cfg.segment_size = parse_size(key, value);
    } else if (key == "mu") {
      cfg.mu = parse_double(key, value);
    } else if (key == "gamma") {
      cfg.gamma = parse_double(key, value);
    } else if (key == "buffer") {
      cfg.buffer_cap = parse_size(key, value);
    } else if (key == "servers") {
      cfg.num_servers = parse_size(key, value);
    } else if (key == "c") {
      cfg.set_normalized_capacity(parse_double(key, value));
    } else if (key == "server_rate") {
      cfg.server_rate = parse_double(key, value);
    } else if (key == "payload") {
      cfg.payload_bytes = parse_size(key, value);
    } else if (key == "seed") {
      cfg.seed = parse_size(key, value);
    } else if (key == "degree") {
      cfg.mean_degree = parse_size(key, value);
    } else if (key == "churn") {
      const double lifetime = parse_double(key, value);
      cfg.churn.enabled = lifetime > 0.0;
      cfg.churn.mean_lifetime = lifetime;
    } else if (key == "topology") {
      if (value == "complete") {
        cfg.topology = p2p::TopologyKind::kComplete;
      } else if (value == "erdos-renyi") {
        cfg.topology = p2p::TopologyKind::kErdosRenyi;
      } else if (value == "random-regular") {
        cfg.topology = p2p::TopologyKind::kRandomRegular;
      } else {
        bad("unknown topology '" + std::string(value) + "'");
      }
    } else if (key == "lifetimes") {
      if (value == "exponential") {
        cfg.churn.distribution = p2p::LifetimeDistribution::kExponential;
      } else if (value == "pareto") {
        cfg.churn.distribution = p2p::LifetimeDistribution::kPareto;
      } else {
        bad("unknown lifetime distribution '" + std::string(value) + "'");
      }
    } else if (key == "pareto_shape") {
      cfg.churn.pareto_shape = parse_double(key, value);
    } else if (key == "loss") {
      cfg.gossip_loss = parse_double(key, value);
    } else if (key == "gossip") {
      if (value == "uniform") {
        cfg.gossip_policy = p2p::GossipPolicy::kUniformSegment;
      } else if (value == "newest") {
        cfg.gossip_policy = p2p::GossipPolicy::kNewestFirst;
      } else if (value == "rarest") {
        cfg.gossip_policy = p2p::GossipPolicy::kRarestFirst;
      } else {
        bad("unknown gossip policy '" + std::string(value) + "'");
      }
    } else if (key == "pull") {
      if (value == "non-empty" || value == "uniform") {
        cfg.pull_policy = p2p::PullPolicy::kUniformNonEmpty;
      } else if (value == "all") {
        cfg.pull_policy = p2p::PullPolicy::kUniformAll;
      } else if (value == "rarest" || value == "rarest-first") {
        cfg.pull_policy = p2p::PullPolicy::kRarestFirst;
      } else if (value == "deficit" || value == "deficit-weighted") {
        cfg.pull_policy = p2p::PullPolicy::kDeficitWeighted;
      } else {
        bad("unknown pull policy '" + std::string(value) + "'");
      }
    } else if (key == "fidelity") {
      if (value == "real-coding") {
        cfg.fidelity = p2p::CollectionFidelity::kRealCoding;
      } else if (value == "state-counter") {
        cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
      } else {
        bad("unknown fidelity '" + std::string(value) + "'");
      }
    } else {
      bad("unknown key '" + std::string(key) + "'");
    }
  }
  cfg.validate();
}

p2p::ProtocolConfig parse_config_args(int argc, const char* const* argv) {
  p2p::ProtocolConfig cfg;
  std::vector<std::string_view> args;
  args.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  apply_config_args(cfg, args);
  return cfg;
}

std::string describe(const p2p::ProtocolConfig& cfg) {
  std::string out;
  out += "N=" + std::to_string(cfg.num_peers);
  out += " lambda=" + std::to_string(cfg.lambda);
  out += " s=" + std::to_string(cfg.segment_size);
  out += " mu=" + std::to_string(cfg.mu);
  out += " gamma=" + std::to_string(cfg.gamma);
  out += " B=" + std::to_string(cfg.buffer_cap);
  out += " c=" + std::to_string(cfg.normalized_capacity());
  out += " servers=" + std::to_string(cfg.num_servers);
  out += " topology=";
  out += to_string(cfg.topology);
  out += " fidelity=";
  out += to_string(cfg.fidelity);
  if (cfg.churn.enabled) {
    out += " churn(E[L]=" + std::to_string(cfg.churn.mean_lifetime) + "," +
           to_string(cfg.churn.distribution) + ")";
  }
  if (cfg.pull_policy != p2p::PullPolicy::kUniformNonEmpty) {
    out += " pull=";
    out += to_string(cfg.pull_policy);
  }
  if (cfg.gossip_policy != p2p::GossipPolicy::kUniformSegment) {
    out += " gossip=";
    out += to_string(cfg.gossip_policy);
  }
  out += " seed=" + std::to_string(cfg.seed);
  return out;
}

std::string config_json(const p2p::ProtocolConfig& cfg) {
  obs::JsonObject churn;
  churn.field("enabled", cfg.churn.enabled)
      .field("mean_lifetime", cfg.churn.mean_lifetime)
      .field_str("lifetimes", to_string(cfg.churn.distribution))
      .field("pareto_shape", cfg.churn.pareto_shape);
  obs::JsonObject o;
  o.field("peers", cfg.num_peers)
      .field("lambda", cfg.lambda)
      .field("s", cfg.segment_size)
      .field("mu", cfg.mu)
      .field("gamma", cfg.gamma)
      .field("buffer", cfg.buffer_cap)
      .field("servers", cfg.num_servers)
      .field("server_rate", cfg.server_rate)
      .field("c", cfg.normalized_capacity())
      .field("payload", cfg.payload_bytes)
      .field("seed", cfg.seed)
      .field_str("topology", to_string(cfg.topology))
      .field("degree", cfg.mean_degree)
      .field_str("fidelity", to_string(cfg.fidelity))
      .field_str("pull", to_string(cfg.pull_policy))
      .field_str("gossip", to_string(cfg.gossip_policy))
      .field("loss", cfg.gossip_loss)
      .field_str("gf_kernel", gf::Kernels::active().name)
      .field_raw("churn", churn.str());
  return o.str();
}

const char* config_args_help() noexcept {
  return "  peers=N lambda=X s=N mu=X gamma=X buffer=N servers=N c=X\n"
         "  server_rate=X payload=N seed=N degree=N churn=E[L] (0=off)\n"
         "  lifetimes=exponential|pareto pareto_shape=A (>1)\n"
         "  topology=complete|erdos-renyi|random-regular\n"
         "  fidelity=real-coding|state-counter\n"
         "  pull=non-empty|all|rarest|deficit (server pull scheduling)\n"
         "  gossip=uniform|newest|rarest loss=P (transit drop prob)\n";
}

}  // namespace icollect
