#pragma once

/// \file report.h
/// The aggregate outcome of a collection run, covering the four
/// evaluation axes of Sec. 4: storage overhead, session throughput,
/// delivery delay, and loss resilience.

#include <cstdint>

#include "p2p/network.h"

namespace icollect {

struct CollectionReport {
  // --- run shape ------------------------------------------------------------
  double measured_time = 0.0;  ///< length of the measurement window
  double normalized_capacity = 0.0;  ///< c = c_s·N_s/N

  // --- throughput (Theorem 2) ----------------------------------------------
  double throughput = 0.0;             ///< useful (innovative) pulls / time
  double normalized_throughput = 0.0;  ///< throughput / (N·λ)
  double capacity_bound = 0.0;  ///< min(c, λ)/λ, the dashed line of Fig. 3
  double goodput = 0.0;         ///< blocks of fully decoded segments / time
  double normalized_goodput = 0.0;

  // --- delay (Theorem 3) -----------------------------------------------------
  double mean_block_delay = 0.0;    ///< segment delay / s
  double mean_segment_delay = 0.0;
  double max_segment_delay = 0.0;

  // --- storage (Theorem 1) ---------------------------------------------------
  double mean_blocks_per_peer = 0.0;  ///< empirical ρ
  double storage_overhead = 0.0;      ///< ρ − λ/γ (gossip-held share)
  double empty_peer_fraction = 0.0;   ///< empirical z̃_0
  double overhead_bound = 0.0;        ///< μ/γ, Theorem 1's upper bound

  // --- accounting -------------------------------------------------------------
  std::uint64_t segments_injected = 0;
  std::uint64_t segments_decoded = 0;
  std::uint64_t segments_lost = 0;  ///< vanished from network undecoded
  std::uint64_t blocks_injected = 0;
  std::uint64_t original_blocks_recovered = 0;
  std::uint64_t server_pulls = 0;
  std::uint64_t redundant_pulls = 0;
  std::uint64_t payload_crc_failures = 0;

  // --- churn -------------------------------------------------------------------
  std::uint64_t peers_departed = 0;
  std::uint64_t blocks_lost_to_churn = 0;

  // --- buffered data (Theorem 4) -----------------------------------------------
  p2p::SavedDataCensus saved;

  /// Fraction of pulls that were redundant: 1 − η, the coupon-collector
  /// waste the coding is meant to reduce.
  [[nodiscard]] double redundancy_fraction() const noexcept {
    return server_pulls > 0 ? static_cast<double>(redundant_pulls) /
                                  static_cast<double>(server_pulls)
                            : 0.0;
  }
};

}  // namespace icollect
