#pragma once

/// \file report.h
/// The aggregate outcome of a collection run, covering the four
/// evaluation axes of Sec. 4: storage overhead, session throughput,
/// delivery delay, and loss resilience.

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "p2p/network.h"

namespace icollect {

struct CollectionReport {
  // --- run shape ------------------------------------------------------------
  double measured_time = 0.0;  ///< length of the measurement window
  double normalized_capacity = 0.0;  ///< c = c_s·N_s/N

  // --- throughput (Theorem 2) ----------------------------------------------
  double throughput = 0.0;             ///< useful (innovative) pulls / time
  double normalized_throughput = 0.0;  ///< throughput / (N·λ)
  double capacity_bound = 0.0;  ///< min(c, λ)/λ, the dashed line of Fig. 3
  double goodput = 0.0;         ///< blocks of fully decoded segments / time
  double normalized_goodput = 0.0;

  // --- delay (Theorem 3) -----------------------------------------------------
  double mean_block_delay = 0.0;    ///< segment delay / s
  double mean_segment_delay = 0.0;
  double max_segment_delay = 0.0;

  // --- storage (Theorem 1) ---------------------------------------------------
  double mean_blocks_per_peer = 0.0;  ///< empirical ρ
  double storage_overhead = 0.0;      ///< ρ − λ/γ (gossip-held share)
  double empty_peer_fraction = 0.0;   ///< empirical z̃_0
  double overhead_bound = 0.0;        ///< μ/γ, Theorem 1's upper bound

  // --- accounting -------------------------------------------------------------
  std::uint64_t segments_injected = 0;
  std::uint64_t segments_decoded = 0;
  std::uint64_t segments_lost = 0;  ///< vanished from network undecoded
  std::uint64_t blocks_injected = 0;
  std::uint64_t original_blocks_recovered = 0;
  std::uint64_t server_pulls = 0;
  std::uint64_t redundant_pulls = 0;
  std::uint64_t payload_crc_failures = 0;

  // --- churn -------------------------------------------------------------------
  std::uint64_t peers_departed = 0;
  std::uint64_t blocks_lost_to_churn = 0;

  // --- buffered data (Theorem 4) -----------------------------------------------
  p2p::SavedDataCensus saved;

  /// Fraction of pulls that were redundant: 1 − η, the coupon-collector
  /// waste the coding is meant to reduce.
  [[nodiscard]] double redundancy_fraction() const noexcept {
    return server_pulls > 0 ? static_cast<double>(redundant_pulls) /
                                  static_cast<double>(server_pulls)
                            : 0.0;
  }
};

/// The report as one flat-ish JSON object (saved-data census nested) —
/// the summary.json of a telemetry bundle.
[[nodiscard]] inline std::string to_json(const CollectionReport& r) {
  obs::JsonObject saved;
  saved.field("live_segments", r.saved.live_segments)
      .field("undecoded_live_segments", r.saved.undecoded_live_segments)
      .field("decodable_by_degree", r.saved.decodable_by_degree)
      .field("decodable_by_rank", r.saved.decodable_by_rank)
      .field("saved_original_blocks_degree",
             r.saved.saved_original_blocks_degree)
      .field("saved_original_blocks_rank", r.saved.saved_original_blocks_rank)
      .field("pending_innovative_blocks", r.saved.pending_innovative_blocks);
  obs::JsonObject o;
  o.field("measured_time", r.measured_time)
      .field("normalized_capacity", r.normalized_capacity)
      .field("throughput", r.throughput)
      .field("normalized_throughput", r.normalized_throughput)
      .field("capacity_bound", r.capacity_bound)
      .field("goodput", r.goodput)
      .field("normalized_goodput", r.normalized_goodput)
      .field("mean_block_delay", r.mean_block_delay)
      .field("mean_segment_delay", r.mean_segment_delay)
      .field("max_segment_delay", r.max_segment_delay)
      .field("mean_blocks_per_peer", r.mean_blocks_per_peer)
      .field("storage_overhead", r.storage_overhead)
      .field("empty_peer_fraction", r.empty_peer_fraction)
      .field("overhead_bound", r.overhead_bound)
      .field("segments_injected", r.segments_injected)
      .field("segments_decoded", r.segments_decoded)
      .field("segments_lost", r.segments_lost)
      .field("blocks_injected", r.blocks_injected)
      .field("original_blocks_recovered", r.original_blocks_recovered)
      .field("server_pulls", r.server_pulls)
      .field("redundant_pulls", r.redundant_pulls)
      .field("redundancy_fraction", r.redundancy_fraction())
      .field("payload_crc_failures", r.payload_crc_failures)
      .field("peers_departed", r.peers_departed)
      .field("blocks_lost_to_churn", r.blocks_lost_to_churn)
      .field_raw("saved", saved.str());
  return o.str();
}

}  // namespace icollect
