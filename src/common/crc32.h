#pragma once

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with a
/// compile-time table. Two subsystems depend on it: vital-statistics
/// records carry a CRC so that end-to-end tests can prove byte-exact
/// recovery through encode → gossip → recode → server decode, and the
/// wire protocol (src/wire/) stamps every frame body so transports can
/// reject corruption before a single message byte is interpreted.

#include <array>
#include <cstdint>
#include <span>

namespace icollect::common {

namespace detail {

constexpr std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrcTable = build_crc_table();

}  // namespace detail

/// CRC-32 of a byte range.
[[nodiscard]] inline std::uint32_t crc32(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) {
    c = detail::kCrcTable[(c ^ b) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace icollect::common
