#pragma once

/// \file assert.h
/// Contract-checking macros in the spirit of the C++ Core Guidelines
/// (I.6 "Prefer Expects() for expressing preconditions", I.8 Ensures()).
///
/// Violations throw `icollect::ContractViolation` (a `std::logic_error`)
/// rather than aborting, so unit tests can assert that contracts hold and
/// long-running simulations fail loudly with a diagnosable message.

#include <stdexcept>
#include <string>

namespace icollect {

/// Thrown when an ICOLLECT_EXPECTS / ICOLLECT_ENSURES condition is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  throw ContractViolation(std::string(kind) + " violated: (" + expr + ") at " +
                          file + ":" + std::to_string(line));
}

}  // namespace icollect

/// Precondition check. Always on: the cost is negligible next to the
/// simulation work, and silent contract violations are the expensive bug.
#define ICOLLECT_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                            \
          : ::icollect::contract_violation("precondition", #cond, __FILE__, \
                                           __LINE__))

/// Postcondition / invariant check.
#define ICOLLECT_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                             \
          : ::icollect::contract_violation("postcondition", #cond, __FILE__, \
                                           __LINE__))
