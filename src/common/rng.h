#pragma once

/// \file rng.h
/// Deterministic, seedable randomness shared by every layer.
///
/// Every stochastic ingredient of the paper's model flows through this
/// class: exponential inter-event times (Poisson injection at rate λ/s,
/// gossip at μ, TTL expiry at γ, server pulls at c_s, churn lifetimes),
/// uniform-at-random peer / segment / neighbor selection, and uniformly
/// random GF(2^8) coding coefficients. A single seed therefore reproduces
/// an entire simulation run — or a loopback cluster run — bit-for-bit.
///
/// Lives in common/ (not sim/) because the protocol core (src/proto/)
/// draws from the same stream type while staying independent of the
/// discrete-event kernel; sim/random.h re-exports these names for the
/// simulator-side call sites.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/assert.h"
#include "gf/gf256.h"

namespace icollect::common {

/// SplitMix64 finalizer (Steele/Lea/Flood; the mixer of
/// std::philox-free seeding folklore): a bijective avalanche on 64 bits.
/// This is the primitive every derived seed in the codebase flows
/// through — runner::SeedSequence builds its per-cell / per-replica
/// stream tree out of it, so two distinct derivation paths never yield
/// correlated mt19937_64 seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seedable random source. Thin, inlined wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    ICOLLECT_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n) {
    ICOLLECT_EXPECTS(n > 0);
    return std::uniform_int_distribution<std::size_t>{0, n - 1}(engine_);
  }

  /// Exponentially distributed waiting time with the given rate
  /// (mean 1/rate). Precondition: rate > 0.
  [[nodiscard]] double exponential(double rate) {
    ICOLLECT_EXPECTS(rate > 0.0);
    return std::exponential_distribution<double>{rate}(engine_);
  }

  /// Poisson-distributed count with the given mean.
  [[nodiscard]] int poisson(double mean) {
    ICOLLECT_EXPECTS(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<int>{mean}(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) {
    ICOLLECT_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Uniformly random GF(2^8) element (0 allowed).
  [[nodiscard]] gf::Element gf_element() {
    return static_cast<gf::Element>(engine_() & 0xFFU);
  }

  /// Uniformly random *non-zero* GF(2^8) element. Used for the leading
  /// coefficient of fresh coded blocks so a combination is never trivially
  /// the zero vector.
  [[nodiscard]] gf::Element gf_nonzero() {
    return static_cast<gf::Element>(1 + uniform_index(255));
  }

  /// Fill a span with uniformly random GF(2^8) elements.
  void fill_gf(std::span<gf::Element> out) {
    for (auto& e : out) e = gf_element();
  }

  /// Pick a uniformly random item from a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    ICOLLECT_EXPECTS(!items.empty());
    return items[uniform_index(items.size())];
  }

  /// Derive an independent child stream (for sub-components that should
  /// not perturb the parent's sequence when their draw counts change).
  [[nodiscard]] Rng fork() { return Rng{engine_() ^ 0x9E3779B97F4A7C15ULL}; }

  /// Access to the raw engine, for std distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace icollect::common
