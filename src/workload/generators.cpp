#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace icollect::workload {

namespace {

/// Clamped AR(1) step toward `target` with relaxation `alpha` and additive
/// noise of scale `noise`.
double ar1(double x, double target, double alpha, double noise, double lo,
           double hi, sim::Rng& rng) {
  const double eps = (rng.uniform() - 0.5) * 2.0 * noise;
  return std::clamp(x + alpha * (target - x) + eps, lo, hi);
}

}  // namespace

MeasurementModel::MeasurementModel(std::uint32_t peer, std::uint16_t channel,
                                   bool degrading)
    : peer_{peer}, channel_{channel}, degrading_{degrading} {}

StatsRecord MeasurementModel::sample(double now, sim::Rng& rng) {
  if (degrading_) {
    // Quality collapse: buffer drains, loss climbs, partners drop off.
    buffer_level_ = ar1(buffer_level_, 0.0, 0.25, 0.5, 0.0, 30.0, rng);
    download_kbps_ = ar1(download_kbps_, 120.0, 0.2, 20.0, 0.0, 1000.0, rng);
    continuity_ = ar1(continuity_, 0.55, 0.2, 0.02, 0.0, 1.0, rng);
    loss_ = ar1(loss_, 0.35, 0.2, 0.02, 0.0, 1.0, rng);
    rtt_ms_ = ar1(rtt_ms_, 400.0, 0.15, 25.0, 1.0, 2000.0, rng);
    partners_ = ar1(partners_, 2.0, 0.2, 0.8, 0.0, 64.0, rng);
  } else {
    buffer_level_ = ar1(buffer_level_, 12.0, 0.1, 0.8, 0.0, 30.0, rng);
    download_kbps_ = ar1(download_kbps_, 420.0, 0.1, 15.0, 0.0, 1000.0, rng);
    continuity_ = ar1(continuity_, 0.99, 0.1, 0.005, 0.0, 1.0, rng);
    loss_ = ar1(loss_, 0.01, 0.1, 0.005, 0.0, 1.0, rng);
    rtt_ms_ = ar1(rtt_ms_, 80.0, 0.1, 8.0, 1.0, 2000.0, rng);
    partners_ = ar1(partners_, 12.0, 0.1, 1.0, 0.0, 64.0, rng);
  }
  upload_kbps_ = ar1(upload_kbps_, download_kbps_ * 0.9, 0.2, 15.0, 0.0,
                     1000.0, rng);

  StatsRecord r;
  r.peer = peer_;
  r.timestamp = now;
  r.buffer_level = static_cast<float>(buffer_level_);
  r.download_rate_kbps = static_cast<float>(download_kbps_);
  r.upload_rate_kbps = static_cast<float>(upload_kbps_);
  r.playback_continuity = static_cast<float>(continuity_);
  r.loss_rate = static_cast<float>(loss_);
  r.rtt_ms = static_cast<float>(rtt_ms_);
  r.partner_count = static_cast<std::uint16_t>(std::lround(partners_));
  r.channel_id = channel_;
  return r;
}

DiurnalProfile::DiurnalProfile(double base, double amplitude, double period)
    : base_{base}, amplitude_{amplitude}, period_{period} {
  ICOLLECT_EXPECTS(base >= 0.0);
  ICOLLECT_EXPECTS(amplitude >= 0.0 && amplitude <= 1.0);
  ICOLLECT_EXPECTS(period > 0.0);
}

double DiurnalProfile::rate(double t) const {
  return base_ *
         (1.0 + amplitude_ *
                    std::sin(2.0 * std::numbers::pi * t / period_));
}

double next_arrival(const ArrivalProfile& profile, double now,
                    sim::Rng& rng) {
  const double cap = profile.max_rate();
  ICOLLECT_EXPECTS(cap > 0.0);
  double t = now;
  // Lewis-Shedler thinning: candidate events at the bounding rate are
  // accepted with probability rate(t)/cap.
  for (;;) {
    t += rng.exponential(cap);
    if (rng.uniform() * cap <= profile.rate(t)) return t;
  }
}

}  // namespace icollect::workload
