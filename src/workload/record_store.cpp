#include "workload/record_store.h"

#include <algorithm>

namespace icollect::workload {

void RecordStore::insert(const StatsRecord& record) {
  auto& history = by_peer_[record.peer];
  // Insert keeping per-peer time order; records usually arrive roughly
  // ordered, so search from the back.
  const auto pos = std::upper_bound(
      history.begin(), history.end(), record,
      [](const StatsRecord& a, const StatsRecord& b) {
        return a.timestamp < b.timestamp;
      });
  history.insert(pos, record);
  ++total_;
}

void RecordStore::insert(std::span<const StatsRecord> records) {
  for (const auto& r : records) insert(r);
}

std::span<const StatsRecord> RecordStore::peer_history(
    std::uint32_t peer) const {
  const auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return {};
  return {it->second.data(), it->second.size()};
}

std::optional<StatsRecord> RecordStore::latest(std::uint32_t peer) const {
  const auto it = by_peer_.find(peer);
  if (it == by_peer_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::vector<std::uint32_t> RecordStore::peers() const {
  std::vector<std::uint32_t> out;
  out.reserve(by_peer_.size());
  for (const auto& [peer, _] : by_peer_) out.push_back(peer);
  std::sort(out.begin(), out.end());
  return out;
}

RecordStore::HealthSummary RecordStore::health(double t_begin,
                                               double t_end) const {
  HealthSummary h;
  for (const auto& [peer, history] : by_peer_) {
    bool contributed = false;
    for (const auto& r : history) {
      if (r.timestamp < t_begin || r.timestamp > t_end) continue;
      h.continuity.add(r.playback_continuity);
      h.loss_rate.add(r.loss_rate);
      h.buffer_level.add(r.buffer_level);
      h.download_kbps.add(r.download_rate_kbps);
      ++h.records;
      contributed = true;
    }
    if (contributed) ++h.peers;
  }
  return h;
}

std::vector<std::uint32_t> RecordStore::unhealthy_peers(
    float min_continuity, float max_loss) const {
  std::vector<std::uint32_t> out;
  for (const auto& [peer, history] : by_peer_) {
    if (history.empty()) continue;
    const StatsRecord& last = history.back();
    if (last.playback_continuity < min_continuity ||
        last.loss_rate > max_loss) {
      out.push_back(peer);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace icollect::workload
