#pragma once

/// \file stats_record.h
/// The "vital statistics" the paper collects: per-peer measurements of a
/// live P2P streaming session (Sec. 1 cites the UUSee measurement studies
/// [14, 15]). Since the production traces are proprietary, we define a
/// realistic record schema covering the metrics those studies report —
/// playback buffer level, streaming rates, continuity, partner counts,
/// loss — and generate them synthetically (see generators.h). The
/// collection protocol treats record bytes as opaque payload, so the
/// substitution does not affect any evaluated behaviour.

#include <cstdint>
#include <span>
#include <vector>

namespace icollect::workload {

struct StatsRecord {
  std::uint32_t peer = 0;            ///< reporting peer (origin id)
  double timestamp = 0.0;            ///< measurement time (unit time)
  float buffer_level = 0.0F;         ///< playback buffer, seconds of media
  float download_rate_kbps = 0.0F;   ///< aggregate download rate
  float upload_rate_kbps = 0.0F;     ///< aggregate upload rate
  float playback_continuity = 0.0F;  ///< fraction of frames played on time
  float loss_rate = 0.0F;            ///< block loss fraction
  float rtt_ms = 0.0F;               ///< mean partner round-trip time
  std::uint16_t partner_count = 0;   ///< active data connections
  std::uint16_t channel_id = 0;      ///< streaming channel identifier

  friend bool operator==(const StatsRecord&, const StatsRecord&) = default;

  /// Serialized size in bytes (fixed layout, little-endian, CRC-trailed).
  static constexpr std::size_t kSerializedSize = 48;

  /// Serialize into exactly kSerializedSize bytes; the final 4 bytes are
  /// the CRC-32 of the preceding 44.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a serialized record. Throws std::invalid_argument if the input
  /// is not exactly kSerializedSize bytes or the CRC does not match.
  [[nodiscard]] static StatsRecord deserialize(
      std::span<const std::uint8_t> bytes);

  /// CRC-validate without fully parsing.
  [[nodiscard]] static bool crc_ok(std::span<const std::uint8_t> bytes);
};

/// Packs a batch of records into a segment's worth of original blocks and
/// back. A segment is `segment_size` blocks of `block_bytes` payload each;
/// the concatenated segment body is
///   u32 record_count | records... | zero padding.
class RecordPacker {
 public:
  /// `block_bytes * segment_size` must leave room for the count header and
  /// at least one record.
  RecordPacker(std::size_t segment_size, std::size_t block_bytes);

  [[nodiscard]] std::size_t segment_size() const noexcept { return s_; }
  [[nodiscard]] std::size_t block_bytes() const noexcept {
    return block_bytes_;
  }

  /// Maximum records that fit in one segment.
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Pack up to capacity() records into segment_size blocks of
  /// block_bytes each. Throws std::invalid_argument if records.size()
  /// exceeds capacity().
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> pack(
      std::span<const StatsRecord> records) const;

  /// Reassemble and parse the records from the recovered original blocks.
  /// Throws std::invalid_argument on malformed framing or CRC failure.
  [[nodiscard]] std::vector<StatsRecord> unpack(
      std::span<const std::vector<std::uint8_t>> blocks) const;

 private:
  std::size_t s_;
  std::size_t block_bytes_;
};

}  // namespace icollect::workload
