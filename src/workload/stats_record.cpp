#include "workload/stats_record.h"

#include <cstring>
#include <stdexcept>

#include "common/assert.h"
#include "common/crc32.h"

namespace icollect::workload {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.insert(out.end(), buf, buf + sizeof(T));
}

template <typename T>
[[nodiscard]] T get(std::span<const std::uint8_t> in, std::size_t& at) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::uint8_t> StatsRecord::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSerializedSize);
  put(out, peer);
  put(out, timestamp);
  put(out, buffer_level);
  put(out, download_rate_kbps);
  put(out, upload_rate_kbps);
  put(out, playback_continuity);
  put(out, loss_rate);
  put(out, rtt_ms);
  put(out, partner_count);
  put(out, channel_id);
  // Body so far: 4 + 8 + 6*4 + 2*2 = 40 bytes; pad to 44 before CRC.
  put(out, std::uint32_t{0});  // reserved padding
  const std::uint32_t crc = common::crc32({out.data(), out.size()});
  put(out, crc);
  ICOLLECT_ENSURES(out.size() == kSerializedSize);
  return out;
}

bool StatsRecord::crc_ok(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSerializedSize) return false;
  std::size_t at = kSerializedSize - 4;
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + at, 4);
  return stored == common::crc32(bytes.first(kSerializedSize - 4));
}

StatsRecord StatsRecord::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSerializedSize) {
    throw std::invalid_argument("stats record: wrong size");
  }
  if (!crc_ok(bytes)) {
    throw std::invalid_argument("stats record: CRC mismatch");
  }
  StatsRecord r;
  std::size_t at = 0;
  r.peer = get<std::uint32_t>(bytes, at);
  r.timestamp = get<double>(bytes, at);
  r.buffer_level = get<float>(bytes, at);
  r.download_rate_kbps = get<float>(bytes, at);
  r.upload_rate_kbps = get<float>(bytes, at);
  r.playback_continuity = get<float>(bytes, at);
  r.loss_rate = get<float>(bytes, at);
  r.rtt_ms = get<float>(bytes, at);
  r.partner_count = get<std::uint16_t>(bytes, at);
  r.channel_id = get<std::uint16_t>(bytes, at);
  return r;
}

RecordPacker::RecordPacker(std::size_t segment_size, std::size_t block_bytes)
    : s_{segment_size}, block_bytes_{block_bytes} {
  ICOLLECT_EXPECTS(segment_size > 0);
  ICOLLECT_EXPECTS(block_bytes > 0);
  if (capacity() == 0) {
    throw std::invalid_argument(
        "RecordPacker: segment too small for even one record");
  }
}

std::size_t RecordPacker::capacity() const noexcept {
  const std::size_t body = s_ * block_bytes_;
  if (body < 4 + StatsRecord::kSerializedSize) return 0;
  return (body - 4) / StatsRecord::kSerializedSize;
}

std::vector<std::vector<std::uint8_t>> RecordPacker::pack(
    std::span<const StatsRecord> records) const {
  if (records.size() > capacity()) {
    throw std::invalid_argument("RecordPacker::pack: too many records");
  }
  std::vector<std::uint8_t> body;
  body.reserve(s_ * block_bytes_);
  const auto count = static_cast<std::uint32_t>(records.size());
  put(body, count);
  for (const auto& r : records) {
    const auto bytes = r.serialize();
    body.insert(body.end(), bytes.begin(), bytes.end());
  }
  body.resize(s_ * block_bytes_, 0);  // zero padding
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(s_);
  for (std::size_t i = 0; i < s_; ++i) {
    blocks.emplace_back(body.begin() + static_cast<std::ptrdiff_t>(i * block_bytes_),
                        body.begin() + static_cast<std::ptrdiff_t>((i + 1) * block_bytes_));
  }
  return blocks;
}

std::vector<StatsRecord> RecordPacker::unpack(
    std::span<const std::vector<std::uint8_t>> blocks) const {
  if (blocks.size() != s_) {
    throw std::invalid_argument("RecordPacker::unpack: wrong block count");
  }
  std::vector<std::uint8_t> body;
  body.reserve(s_ * block_bytes_);
  for (const auto& b : blocks) {
    if (b.size() != block_bytes_) {
      throw std::invalid_argument("RecordPacker::unpack: wrong block size");
    }
    body.insert(body.end(), b.begin(), b.end());
  }
  std::size_t at = 0;
  const auto count = get<std::uint32_t>(body, at);
  if (count > capacity()) {
    throw std::invalid_argument("RecordPacker::unpack: bad record count");
  }
  std::vector<StatsRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    records.push_back(StatsRecord::deserialize(
        std::span<const std::uint8_t>{body}.subspan(
            at, StatsRecord::kSerializedSize)));
    at += StatsRecord::kSerializedSize;
  }
  return records;
}

}  // namespace icollect::workload
