#pragma once

/// \file generators.h
/// Synthetic workload generation: per-peer measurement evolution and
/// time-varying traffic profiles.
///
/// MeasurementModel produces plausible streaming vital statistics per
/// peer (AR(1)-style drift around healthy operating points, with an
/// optional "degrading" regime — the paper observes that "peers tend to
/// leave soon after the quality degrades", which is exactly why losing a
/// departing peer's last reports hurts diagnosis).
///
/// ArrivalProfile describes a time-varying block-generation rate λ(t);
/// FlashCrowdProfile reproduces the Sec. 1 motivation (a surge of peer
/// arrivals multiplying the reporting load for a bounded interval).

#include <memory>

#include "common/assert.h"
#include "sim/random.h"
#include "workload/stats_record.h"

namespace icollect::workload {

/// Evolving per-peer streaming measurements.
class MeasurementModel {
 public:
  /// `degrading` peers trend toward empty buffers and high loss.
  explicit MeasurementModel(std::uint32_t peer, std::uint16_t channel = 0,
                            bool degrading = false);

  /// Advance internal state to `now` and emit a record.
  [[nodiscard]] StatsRecord sample(double now, sim::Rng& rng);

  /// Switch the peer into the degrading regime (e.g. when its simulated
  /// lifetime is about to expire).
  void set_degrading(bool degrading) noexcept { degrading_ = degrading; }
  [[nodiscard]] bool degrading() const noexcept { return degrading_; }

 private:
  std::uint32_t peer_;
  std::uint16_t channel_;
  bool degrading_;
  // AR(1) state, initialized to healthy operating points.
  double buffer_level_ = 12.0;       // seconds of media
  double download_kbps_ = 420.0;     // ~ a 400 kbps stream + overhead
  double upload_kbps_ = 380.0;
  double continuity_ = 0.99;
  double loss_ = 0.01;
  double rtt_ms_ = 80.0;
  double partners_ = 12.0;
};

/// Time-varying block generation rate λ(t) per peer.
class ArrivalProfile {
 public:
  virtual ~ArrivalProfile() = default;
  /// Instantaneous per-peer rate at time t (blocks / unit time).
  [[nodiscard]] virtual double rate(double t) const = 0;
  /// An upper bound on rate(t) over all t, for thinning-based sampling.
  [[nodiscard]] virtual double max_rate() const = 0;
};

/// Constant rate λ — the paper's baseline assumption.
class ConstantProfile final : public ArrivalProfile {
 public:
  explicit ConstantProfile(double lambda) : lambda_{lambda} {
    ICOLLECT_EXPECTS(lambda >= 0.0);
  }
  [[nodiscard]] double rate(double) const override { return lambda_; }
  [[nodiscard]] double max_rate() const override { return lambda_; }

 private:
  double lambda_;
};

/// Baseline rate with a multiplicative burst on [burst_start, burst_end):
/// the flash-crowd scenario of Sec. 1.
class FlashCrowdProfile final : public ArrivalProfile {
 public:
  FlashCrowdProfile(double base, double burst_multiplier, double burst_start,
                    double burst_end)
      : base_{base},
        mult_{burst_multiplier},
        start_{burst_start},
        end_{burst_end} {
    ICOLLECT_EXPECTS(base >= 0.0);
    ICOLLECT_EXPECTS(burst_multiplier >= 1.0);
    ICOLLECT_EXPECTS(burst_end > burst_start);
  }
  [[nodiscard]] double rate(double t) const override {
    return (t >= start_ && t < end_) ? base_ * mult_ : base_;
  }
  [[nodiscard]] double max_rate() const override { return base_ * mult_; }
  [[nodiscard]] double burst_start() const noexcept { return start_; }
  [[nodiscard]] double burst_end() const noexcept { return end_; }

 private:
  double base_;
  double mult_;
  double start_;
  double end_;
};

/// Smooth sinusoidal load (diurnal pattern): λ(t) = base * (1 + a sin(ωt)).
class DiurnalProfile final : public ArrivalProfile {
 public:
  DiurnalProfile(double base, double amplitude, double period);
  [[nodiscard]] double rate(double t) const override;
  [[nodiscard]] double max_rate() const override {
    return base_ * (1.0 + amplitude_);
  }

 private:
  double base_;
  double amplitude_;
  double period_;
};

/// Multiply another profile's rate by a constant factor — e.g. 1/s to
/// turn a block-rate profile into the matching segment-rate process.
/// Holds a reference; the base profile must outlive the adapter.
class ScaledProfile final : public ArrivalProfile {
 public:
  ScaledProfile(const ArrivalProfile& base, double factor)
      : base_{base}, factor_{factor} {
    ICOLLECT_EXPECTS(factor >= 0.0);
  }
  [[nodiscard]] double rate(double t) const override {
    return factor_ * base_.rate(t);
  }
  [[nodiscard]] double max_rate() const override {
    return factor_ * base_.max_rate();
  }

 private:
  const ArrivalProfile& base_;
  double factor_;
};

/// Sample the next event time of a nonhomogeneous Poisson process with
/// rate profile `profile`, starting from `now`, by Lewis-Shedler thinning.
[[nodiscard]] double next_arrival(const ArrivalProfile& profile, double now,
                                  sim::Rng& rng);

}  // namespace icollect::workload
