#include "workload/streaming_session.h"

#include <algorithm>
#include <stdexcept>

namespace icollect::workload {

void StreamingConfig::validate() const {
  auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("StreamingConfig: ") + what);
  };
  if (num_peers < 2) fail("need at least 2 peers");
  if (chunk_rate <= 0.0) fail("chunk rate must be > 0");
  if (chunk_kbits <= 0.0) fail("chunk size must be > 0");
  if (partners == 0 || partners >= num_peers) {
    fail("partners must be in [1, num_peers)");
  }
  if (request_rate <= 0.0) fail("request rate must be > 0");
  if (upload_chunks < 0.0) fail("upload budget must be >= 0");
  if (source_upload_chunks <= 0.0) fail("source budget must be > 0");
  if (startup_delay < 0.0) fail("startup delay must be >= 0");
  if (window < 4) fail("window must hold at least 4 chunks");
}

StreamingSession::StreamingSession(StreamingConfig cfg)
    : cfg_{cfg}, rng_{cfg.seed ^ 0x57121AABBCCULL} {
  cfg_.validate();
  peers_.resize(cfg_.num_peers);
  // Random partner sets (directed pulls; sets need not be symmetric).
  for (std::size_t p = 0; p < cfg_.num_peers; ++p) {
    auto& st = peers_[p];
    while (st.partners.size() < cfg_.partners) {
      std::size_t q = rng_.uniform_index(cfg_.num_peers - 1);
      if (q >= p) ++q;
      if (std::find(st.partners.begin(), st.partners.end(), q) ==
          st.partners.end()) {
        st.partners.push_back(q);
      }
    }
  }
  // Source emission: one chunk every 1/chunk_rate, deterministically.
  sim_.schedule_after(1.0 / cfg_.chunk_rate, [this] { do_source_emit(); });
  // Per-peer request processes.
  for (std::size_t p = 0; p < cfg_.num_peers; ++p) {
    requesters_.push_back(std::make_unique<sim::PoissonProcess>(
        sim_, rng_, cfg_.request_rate, [this, p] { do_request(p); }));
    requesters_.back()->start();
    // Playback begins after the startup delay, then ticks at chunk rate.
    sim_.schedule_after(cfg_.startup_delay + 1.0 / cfg_.chunk_rate,
                        [this, p] { do_playback(p); });
  }
}

void StreamingSession::run_until(sim::Time t) { sim_.run_until(t); }

void StreamingSession::do_source_emit() {
  ++source_edge_;
  // Slide every peer's availability window with the source edge.
  for (auto& p : peers_) advance_window(p);
  sim_.schedule_after(1.0 / cfg_.chunk_rate, [this] { do_source_emit(); });
}

void StreamingSession::advance_window(PeerState& p) {
  // Window covers [max(0, edge - window), edge).
  const std::uint64_t lo =
      source_edge_ > cfg_.window ? source_edge_ - cfg_.window : 0;
  while (p.window_base + p.have.size() < source_edge_) p.have.push_back(false);
  while (p.window_base < lo && !p.have.empty()) {
    p.have.pop_front();
    ++p.window_base;
  }
}

bool StreamingSession::peer_has(const PeerState& p,
                                std::uint64_t chunk) const {
  if (chunk < p.window_base) return false;  // expired from the window
  const std::uint64_t idx = chunk - p.window_base;
  return idx < p.have.size() && p.have[idx];
}

void StreamingSession::peer_receive(PeerState& p, std::uint64_t chunk) {
  if (chunk < p.window_base) return;
  const std::uint64_t idx = chunk - p.window_base;
  if (idx >= p.have.size()) return;
  if (!p.have[idx]) {
    p.have[idx] = true;
    ++p.downloaded;
  }
}

bool StreamingSession::take_upload_token(PeerState& p, double budget) {
  const double cap = std::max(budget, 1.0);  // burst of ~1 chunk
  p.upload_tokens = std::min(
      cap, p.upload_tokens + budget * (sim_.now() - p.tokens_updated));
  p.tokens_updated = sim_.now();
  if (p.upload_tokens < 1.0) return false;
  p.upload_tokens -= 1.0;
  return true;
}

void StreamingSession::do_request(std::size_t peer) {
  PeerState& me = peers_[peer];
  if (source_edge_ == 0) return;
  advance_window(me);
  // Urgency-biased chunk choice: half the time the earliest missing chunk
  // at/after the playback pointer, otherwise a uniformly random missing
  // chunk in the window (diversity, so swarms don't all chase the edge).
  const std::uint64_t lo = std::max(me.window_base, me.play_next);
  std::vector<std::uint64_t> missing;
  for (std::uint64_t c = lo; c < source_edge_; ++c) {
    if (!peer_has(me, c)) missing.push_back(c);
  }
  if (missing.empty()) return;
  const std::uint64_t want =
      rng_.bernoulli(0.5) ? missing.front() : rng_.pick(missing);

  // Providers: partners that have it; the source only as an occasional
  // fallback (real clients do not hammer the source for every chunk
  // their partners have not propagated yet — they wait a beat).
  std::vector<std::size_t> providers;
  for (const std::size_t q : me.partners) {
    if (peer_has(peers_[q], want)) providers.push_back(q);
  }
  auto try_source = [&]() -> bool {
    const double budget = cfg_.source_upload_chunks;
    source_tokens_ = std::min(
        std::max(budget, 1.0),
        source_tokens_ + budget * (sim_.now() - source_tokens_updated_));
    source_tokens_updated_ = sim_.now();
    if (source_tokens_ < 1.0) return false;
    source_tokens_ -= 1.0;
    peer_receive(me, want);
    ++transfers_;
    return true;
  };
  if (providers.empty()) {
    // Nobody nearby has it yet: mostly just wait for propagation; one in
    // ten attempts escalates to the source. Neither outcome is a service
    // refusal unless the source is out of tokens.
    constexpr double kSourceFallbackProb = 0.1;
    if (!rng_.bernoulli(kSourceFallbackProb)) return;
    if (!try_source()) ++me.failed_requests;
    return;
  }
  PeerState& provider = peers_[rng_.pick(providers)];
  if (take_upload_token(provider,
                        cfg_.upload_chunks * provider.upload_factor)) {
    peer_receive(me, want);
    ++provider.uploaded;
    ++transfers_;
    return;
  }
  // The provider refused for lack of upload capacity — the loss signal
  // a streaming operator actually cares about. The source may still
  // rescue the chunk.
  if (!try_source()) ++me.failed_requests;
}

void StreamingSession::do_playback(std::size_t peer) {
  PeerState& me = peers_[peer];
  advance_window(me);
  // Only play chunks the source has already emitted.
  if (me.play_next < source_edge_) {
    me.playing = true;
    if (peer_has(me, me.play_next)) {
      ++me.played;
    } else {
      ++me.missed;
      ++playback_misses_;
    }
    ++me.play_next;
  }
  sim_.schedule_after(1.0 / cfg_.chunk_rate, [this, peer] {
    do_playback(peer);
  });
}

StatsRecord StreamingSession::measure(std::size_t peer) const {
  ICOLLECT_EXPECTS(peer < peers_.size());
  const PeerState& me = peers_[peer];
  StatsRecord r;
  r.peer = static_cast<std::uint32_t>(peer);
  r.timestamp = sim_.now();
  // Buffer level: contiguous run of chunks from the playback pointer,
  // in seconds of media.
  std::uint64_t run = 0;
  for (std::uint64_t c = std::max(me.window_base, me.play_next);
       c < source_edge_ && peer_has(me, c); ++c) {
    ++run;
  }
  r.buffer_level = static_cast<float>(static_cast<double>(run) /
                                      cfg_.chunk_rate);
  const double elapsed = std::max(sim_.now(), 1e-9);
  r.download_rate_kbps = static_cast<float>(
      static_cast<double>(me.downloaded) * cfg_.chunk_kbits / elapsed);
  r.upload_rate_kbps = static_cast<float>(
      static_cast<double>(me.uploaded) * cfg_.chunk_kbits / elapsed);
  const std::uint64_t attempts = me.played + me.missed;
  r.playback_continuity =
      attempts > 0 ? static_cast<float>(static_cast<double>(me.played) /
                                        static_cast<double>(attempts))
                   : 1.0F;
  const std::uint64_t tried = me.downloaded + me.failed_requests;
  r.loss_rate =
      tried > 0 ? static_cast<float>(static_cast<double>(me.failed_requests) /
                                     static_cast<double>(tried))
                : 0.0F;
  // RTT proxy: contention raises queueing; derived, not modeled.
  r.rtt_ms = static_cast<float>(50.0 + 400.0 * r.loss_rate);
  r.partner_count = static_cast<std::uint16_t>(me.partners.size());
  r.channel_id = 0;
  return r;
}

double StreamingSession::mean_continuity() const {
  stats::Summary s;
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    const auto& me = peers_[p];
    const std::uint64_t attempts = me.played + me.missed;
    if (attempts > 0) {
      s.add(static_cast<double>(me.played) /
            static_cast<double>(attempts));
    }
  }
  return s.empty() ? 1.0 : s.mean();
}

void StreamingSession::throttle_peer(std::size_t peer,
                                     double upload_factor) {
  ICOLLECT_EXPECTS(peer < peers_.size());
  ICOLLECT_EXPECTS(upload_factor >= 0.0);
  peers_[peer].upload_factor = upload_factor;
}

SessionRecordFeed::SessionRecordFeed(StreamingSession& session,
                                     double horizon, double interval) {
  ICOLLECT_EXPECTS(horizon > 0.0);
  ICOLLECT_EXPECTS(interval > 0.0);
  queues_.resize(session.config().num_peers);
  for (double t = interval; t <= horizon + 1e-9; t += interval) {
    session.run_until(t);
    for (std::size_t p = 0; p < queues_.size(); ++p) {
      queues_[p].push_back(session.measure(p));
    }
  }
}

std::vector<StatsRecord> SessionRecordFeed::take(std::size_t peer,
                                                 double now,
                                                 std::size_t count) {
  ICOLLECT_EXPECTS(peer < queues_.size());
  std::vector<StatsRecord> out;
  auto& q = queues_[peer];
  while (!q.empty() && out.size() < count && q.front().timestamp <= now) {
    out.push_back(q.front());
    q.pop_front();
  }
  return out;
}

std::size_t SessionRecordFeed::remaining(std::size_t peer) const {
  ICOLLECT_EXPECTS(peer < queues_.size());
  return queues_[peer].size();
}

}  // namespace icollect::workload
