#pragma once

/// \file record_store.h
/// Analyst-side storage and queries over recovered vital-statistics
/// records — the consumer end of the collection pipeline ("used by
/// network administrators and analysts to improve the protocol design or
/// to troubleshoot network outage", Sec. 1).
///
/// The store indexes records by reporting peer, keeps them time-ordered
/// per peer, and answers the postmortem questions the paper motivates:
/// which peers looked unhealthy, what did a given peer's trajectory look
/// like, what was the fleet-wide quality in a time window.

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "stats/summary.h"
#include "workload/stats_record.h"

namespace icollect::workload {

class RecordStore {
 public:
  /// Insert one record (records may arrive out of order; per-peer
  /// sequences are kept sorted by timestamp).
  void insert(const StatsRecord& record);

  /// Bulk insert.
  void insert(std::span<const StatsRecord> records);

  [[nodiscard]] std::size_t size() const noexcept { return total_; }
  [[nodiscard]] std::size_t peer_count() const noexcept {
    return by_peer_.size();
  }

  /// All records of one peer, time-ordered (empty if unknown).
  [[nodiscard]] std::span<const StatsRecord> peer_history(
      std::uint32_t peer) const;

  /// The most recent record of a peer, if any.
  [[nodiscard]] std::optional<StatsRecord> latest(std::uint32_t peer) const;

  /// Ids of all peers with at least one record.
  [[nodiscard]] std::vector<std::uint32_t> peers() const;

  /// Fleet-wide health aggregates over a closed time window.
  struct HealthSummary {
    stats::Summary continuity;
    stats::Summary loss_rate;
    stats::Summary buffer_level;
    stats::Summary download_kbps;
    std::size_t records = 0;
    std::size_t peers = 0;
  };
  [[nodiscard]] HealthSummary health(double t_begin, double t_end) const;

  /// Peers whose *latest* record shows degraded quality (continuity
  /// below `min_continuity` or loss above `max_loss`) — the "who was
  /// suffering when they left" postmortem query.
  [[nodiscard]] std::vector<std::uint32_t> unhealthy_peers(
      float min_continuity = 0.9F, float max_loss = 0.1F) const;

 private:
  std::unordered_map<std::uint32_t, std::vector<StatsRecord>> by_peer_;
  std::size_t total_ = 0;
};

}  // namespace icollect::workload
