#pragma once

/// \file trace_replay.h
/// Trace-driven hostile-workload generation (scenario pack).
///
/// TraceReplayProfile shapes the per-peer injection rate λ(t) after the
/// eDonkey measurement study the churn model already borrows from:
/// a diurnal sinusoid (day/night load swing) multiplied by flash-crowd
/// burst windows (Sec. 1's surge motivation) on top of a base rate.
/// Paired with log-normal session lengths (p2p::LifetimeDistribution::
/// kLogNormal — minute-scale mortality with a day-scale persistent
/// tail), the three knobs reproduce the study's qualitative shape
/// without shipping the raw trace.
///
/// ScenarioSpec is the shared `--scenario` vocabulary of icollect_sim
/// and icollect_cluster: one spec string — `class:key=value,...` with
/// classes byzantine | faults | trace — configures the same hostile
/// scenario in both harnesses, so every scenario class runs (and is
/// CTest-pinned) against the idealized engine and the live runtime
/// alike. Parsing is strict: unknown classes or keys throw rather than
/// silently running a different experiment than the one named.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "proto/adversary.h"
#include "workload/generators.h"

namespace icollect::workload {

/// A multiplicative load surge on [start, end).
struct BurstWindow {
  double start = 0.0;
  double end = 0.0;
  double multiplier = 1.0;
};

/// λ(t) = base · (1 + a·sin(2πt/period)) · Π over active bursts.
class TraceReplayProfile final : public ArrivalProfile {
 public:
  /// `amplitude` in [0, 1); `period` > 0; burst windows may overlap
  /// (multipliers compound, as overlapping real-world events would).
  TraceReplayProfile(double base, double amplitude, double period,
                     std::vector<BurstWindow> bursts);

  [[nodiscard]] double rate(double t) const override;
  [[nodiscard]] double max_rate() const override { return max_rate_; }

 private:
  double base_;
  double amplitude_;
  double period_;
  std::vector<BurstWindow> bursts_;
  double max_rate_;
};

/// One hostile scenario, parsed from `class:key=value,...`.
struct ScenarioSpec {
  enum class Kind : std::uint8_t {
    kByzantine,  ///< dishonest peers + integrity verification
    kFaults,     ///< partitions / one-way links / slow readers
    kTrace,      ///< trace-shaped load + heavy-tailed churn
  };

  Kind kind = Kind::kByzantine;

  // --- byzantine: fraction=, strategy=, checks= ---------------------------
  double dishonest_fraction = 0.25;
  proto::CorruptionStrategy strategy =
      proto::CorruptionStrategy::kRandomPayload;
  std::size_t integrity_checks = 2;

  // --- faults: fraction=, at=, heal=, drain= ------------------------------
  /// Fraction of peers isolated during the partition window.
  double partition_fraction = 0.25;
  double partition_at = 4.0;
  double heal_at = 8.0;
  /// When > 0, the first peer becomes a slow reader absorbing this many
  /// bytes/sec (cluster only; the simulator has no byte streams).
  double drain_bytes_per_sec = 0.0;

  // --- trace: amplitude=, period=, burst=, burst-at=, burst-len=,
  //            sigma=, lifetime= -----------------------------------------
  double diurnal_amplitude = 0.6;
  double diurnal_period = 40.0;
  double burst_multiplier = 4.0;
  double burst_at = 10.0;
  double burst_len = 5.0;
  /// Log-normal session-length spread (σ of the underlying normal).
  double lognormal_sigma = 1.5;
  /// Mean session length; 0 leaves churn off (simulator only — the
  /// loopback cluster has no churn engine).
  double mean_lifetime = 0.0;

  /// Parse "byzantine:fraction=0.25,strategy=replay,checks=2" and the
  /// like. Throws std::invalid_argument on unknown class, unknown key,
  /// malformed number, or out-of-range value.
  [[nodiscard]] static ScenarioSpec parse(std::string_view text);

  [[nodiscard]] const char* kind_name() const noexcept;

  /// One-line JSON of the effective parameters (only the active class's
  /// keys), for the tools' machine-readable scenario summaries.
  [[nodiscard]] std::string to_json() const;

  /// For kTrace: the arrival profile shaped by this spec around the
  /// operating point's base block rate λ.
  [[nodiscard]] std::unique_ptr<ArrivalProfile> make_arrival_profile(
      double base_lambda) const;
};

}  // namespace icollect::workload
