#pragma once

/// \file crc32.h
/// Forwarding header: the CRC-32 implementation moved to
/// common/crc32.h so the wire protocol can reuse it without pulling in
/// the workload layer. Existing includers keep working through this
/// alias.

#include "common/crc32.h"

namespace icollect::workload {

using common::crc32;

}  // namespace icollect::workload
