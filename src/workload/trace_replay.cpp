#include "workload/trace_replay.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/assert.h"

namespace icollect::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

TraceReplayProfile::TraceReplayProfile(double base, double amplitude,
                                       double period,
                                       std::vector<BurstWindow> bursts)
    : base_{base},
      amplitude_{amplitude},
      period_{period},
      bursts_{std::move(bursts)} {
  ICOLLECT_EXPECTS(base >= 0.0);
  ICOLLECT_EXPECTS(amplitude >= 0.0 && amplitude < 1.0);
  ICOLLECT_EXPECTS(period > 0.0);
  // Thinning bound: peak diurnal swing times every burst compounded.
  // Loose when bursts don't overlap, but a loose bound only costs extra
  // thinning rejections, never correctness.
  double burst_peak = 1.0;
  for (const BurstWindow& b : bursts_) {
    ICOLLECT_EXPECTS(b.end > b.start);
    ICOLLECT_EXPECTS(b.multiplier >= 1.0);
    burst_peak *= b.multiplier;
  }
  max_rate_ = base_ * (1.0 + amplitude_) * burst_peak;
}

double TraceReplayProfile::rate(double t) const {
  double r = base_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
  for (const BurstWindow& b : bursts_) {
    if (t >= b.start && t < b.end) r *= b.multiplier;
  }
  return r;
}

namespace {

double parse_double(std::string_view key, std::string_view value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(std::string{value}, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: bad number for '" +
                                std::string{key} + "': '" +
                                std::string{value} + "'");
  }
}

std::size_t parse_count(std::string_view key, std::string_view value) {
  const double v = parse_double(key, value);
  if (v < 0.0 || v != std::floor(v)) {
    throw std::invalid_argument("scenario: '" + std::string{key} +
                                "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

[[noreturn]] void unknown_key(const char* cls, std::string_view key) {
  throw std::invalid_argument("scenario: unknown key '" + std::string{key} +
                              "' for class '" + cls + "'");
}

}  // namespace

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view cls =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  if (cls == "byzantine") {
    spec.kind = Kind::kByzantine;
  } else if (cls == "faults") {
    spec.kind = Kind::kFaults;
  } else if (cls == "trace") {
    spec.kind = Kind::kTrace;
  } else {
    throw std::invalid_argument("scenario: unknown class '" +
                                std::string{cls} +
                                "' (choices: byzantine|faults|trace)");
  }

  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} :
                                        text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("scenario: expected key=value, got '" +
                                  std::string{pair} + "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    switch (spec.kind) {
      case Kind::kByzantine:
        if (key == "fraction") {
          spec.dishonest_fraction = parse_double(key, value);
        } else if (key == "strategy") {
          spec.strategy = proto::parse_corruption_strategy(value);
        } else if (key == "checks") {
          spec.integrity_checks = parse_count(key, value);
        } else {
          unknown_key("byzantine", key);
        }
        break;
      case Kind::kFaults:
        if (key == "fraction") {
          spec.partition_fraction = parse_double(key, value);
        } else if (key == "at") {
          spec.partition_at = parse_double(key, value);
        } else if (key == "heal") {
          spec.heal_at = parse_double(key, value);
        } else if (key == "drain") {
          spec.drain_bytes_per_sec = parse_double(key, value);
        } else {
          unknown_key("faults", key);
        }
        break;
      case Kind::kTrace:
        if (key == "amplitude") {
          spec.diurnal_amplitude = parse_double(key, value);
        } else if (key == "period") {
          spec.diurnal_period = parse_double(key, value);
        } else if (key == "burst") {
          spec.burst_multiplier = parse_double(key, value);
        } else if (key == "burst-at") {
          spec.burst_at = parse_double(key, value);
        } else if (key == "burst-len") {
          spec.burst_len = parse_double(key, value);
        } else if (key == "sigma") {
          spec.lognormal_sigma = parse_double(key, value);
        } else if (key == "lifetime") {
          spec.mean_lifetime = parse_double(key, value);
        } else {
          unknown_key("trace", key);
        }
        break;
    }
  }

  // Range checks after all keys land, so order never matters.
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("scenario: " + what);
  };
  switch (spec.kind) {
    case Kind::kByzantine:
      if (spec.dishonest_fraction < 0.0 || spec.dishonest_fraction > 1.0) {
        fail("fraction must be in [0, 1]");
      }
      break;
    case Kind::kFaults:
      if (spec.partition_fraction < 0.0 || spec.partition_fraction > 1.0) {
        fail("fraction must be in [0, 1]");
      }
      if (spec.partition_at < 0.0) fail("at must be >= 0");
      if (spec.heal_at <= spec.partition_at) fail("heal must be > at");
      if (spec.drain_bytes_per_sec < 0.0) fail("drain must be >= 0");
      break;
    case Kind::kTrace:
      if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0) {
        fail("amplitude must be in [0, 1)");
      }
      if (spec.diurnal_period <= 0.0) fail("period must be > 0");
      if (spec.burst_multiplier < 1.0) fail("burst must be >= 1");
      if (spec.burst_len <= 0.0) fail("burst-len must be > 0");
      if (spec.lognormal_sigma <= 0.0) fail("sigma must be > 0");
      if (spec.mean_lifetime < 0.0) fail("lifetime must be >= 0");
      break;
  }
  return spec;
}

const char* ScenarioSpec::kind_name() const noexcept {
  switch (kind) {
    case Kind::kByzantine: return "byzantine";
    case Kind::kFaults: return "faults";
    case Kind::kTrace: return "trace";
  }
  return "?";
}

std::string ScenarioSpec::to_json() const {
  char buf[512];
  switch (kind) {
    case Kind::kByzantine:
      std::snprintf(buf, sizeof(buf),
                    "{\"scenario\":\"byzantine\",\"fraction\":%g,"
                    "\"strategy\":\"%s\",\"checks\":%zu}",
                    dishonest_fraction, proto::to_string(strategy),
                    integrity_checks);
      break;
    case Kind::kFaults:
      std::snprintf(buf, sizeof(buf),
                    "{\"scenario\":\"faults\",\"fraction\":%g,\"at\":%g,"
                    "\"heal\":%g,\"drain\":%g}",
                    partition_fraction, partition_at, heal_at,
                    drain_bytes_per_sec);
      break;
    case Kind::kTrace:
      std::snprintf(buf, sizeof(buf),
                    "{\"scenario\":\"trace\",\"amplitude\":%g,"
                    "\"period\":%g,\"burst\":%g,\"burst_at\":%g,"
                    "\"burst_len\":%g,\"sigma\":%g,\"lifetime\":%g}",
                    diurnal_amplitude, diurnal_period, burst_multiplier,
                    burst_at, burst_len, lognormal_sigma, mean_lifetime);
      break;
  }
  return std::string{buf};
}

std::unique_ptr<ArrivalProfile> ScenarioSpec::make_arrival_profile(
    double base_lambda) const {
  ICOLLECT_EXPECTS(kind == Kind::kTrace);
  std::vector<BurstWindow> bursts;
  if (burst_multiplier > 1.0) {
    bursts.push_back(
        BurstWindow{burst_at, burst_at + burst_len, burst_multiplier});
  }
  return std::make_unique<TraceReplayProfile>(
      base_lambda, diurnal_amplitude, diurnal_period, std::move(bursts));
}

}  // namespace icollect::workload
