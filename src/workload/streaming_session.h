#pragma once

/// \file streaming_session.h
/// A compact P2P live-streaming session simulator — the *application*
/// whose vital statistics the collection protocol gathers (the paper's
/// context is UUSee-style commercial live streaming).
///
/// Model: a source emits media chunks at a constant rate. Peers maintain
/// a random partner set and, at their request rate, pull a missing chunk
/// (rarest-first within their exchange window) from a random partner
/// that has it and has upload tokens left this second. Playback starts
/// after a startup delay and advances at the chunk rate; a chunk missing
/// at its play time is a playback miss (continuity loss). Every peer can
/// emit a StatsRecord at any time — buffer level, rates, continuity,
/// loss, partner count — measured from the actual session dynamics
/// rather than a statistical model.
///
/// The simulator is deliberately small (single channel, static
/// membership, token-bucket uplinks) but every reported metric is
/// *measured*, making it the realistic record generator behind
/// CollectionSystem::use_streaming_session_payloads-style workflows
/// (see workload::SessionRecordFeed).

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "sim/poisson_process.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "workload/stats_record.h"

namespace icollect::workload {

struct StreamingConfig {
  std::size_t num_peers = 50;
  double chunk_rate = 10.0;     ///< chunks per unit time (media rate)
  double chunk_kbits = 40.0;    ///< size of one chunk, for kbps metrics
  std::size_t partners = 6;     ///< partner-set size per peer
  double request_rate = 30.0;   ///< chunk-pull attempts per peer per time
  double upload_chunks = 12.0;  ///< per-peer upload budget, chunks per time
  double source_upload_chunks = 40.0;  ///< source's serving budget
  double startup_delay = 2.0;   ///< playback lag behind the source edge
  std::size_t window = 60;      ///< exchange window, in chunks
  std::uint64_t seed = 1;

  void validate() const;
};

class StreamingSession {
 public:
  explicit StreamingSession(StreamingConfig cfg);

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Advance the session to absolute virtual time `t`.
  void run_until(sim::Time t);

  [[nodiscard]] sim::Time now() const noexcept { return sim_.now(); }
  [[nodiscard]] const StreamingConfig& config() const noexcept {
    return cfg_;
  }

  /// Measure peer `p`'s vital statistics right now (the record the
  /// collection protocol would package into a segment).
  [[nodiscard]] StatsRecord measure(std::size_t peer) const;

  /// Session-wide aggregates so far.
  [[nodiscard]] double mean_continuity() const;
  [[nodiscard]] std::uint64_t chunks_emitted() const noexcept {
    return source_edge_;
  }
  [[nodiscard]] std::uint64_t total_transfers() const noexcept {
    return transfers_;
  }
  [[nodiscard]] std::uint64_t total_misses() const noexcept {
    return playback_misses_;
  }

  /// Throttle one peer's uplink (e.g. to create the degrading peers a
  /// postmortem would look for). Factor 0 disables its uploads.
  void throttle_peer(std::size_t peer, double upload_factor);

 private:
  struct PeerState {
    // Chunk availability within the sliding window, indexed by chunk id.
    std::deque<bool> have;         // have[i] => chunk (window_base + i)
    std::uint64_t window_base = 0; // oldest chunk id tracked
    std::uint64_t play_next = 0;   // next chunk id to play
    bool playing = false;
    std::vector<std::size_t> partners;
    double upload_factor = 1.0;
    // token bucket for uploads (refilled continuously)
    double upload_tokens = 0.0;
    sim::Time tokens_updated = 0.0;
    // measured counters
    std::uint64_t played = 0;
    std::uint64_t missed = 0;
    std::uint64_t downloaded = 0;
    std::uint64_t uploaded = 0;
    std::uint64_t failed_requests = 0;
    // sliding-rate bookkeeping for kbps metrics
    std::uint64_t downloaded_at_mark = 0;
    std::uint64_t uploaded_at_mark = 0;
    sim::Time mark = 0.0;
  };

  void do_source_emit();
  void do_request(std::size_t peer);
  void do_playback(std::size_t peer);
  [[nodiscard]] bool peer_has(const PeerState& p, std::uint64_t chunk) const;
  void peer_receive(PeerState& p, std::uint64_t chunk);
  void advance_window(PeerState& p);
  [[nodiscard]] bool take_upload_token(PeerState& p, double budget);

  StreamingConfig cfg_;
  sim::Simulator sim_;
  sim::Rng rng_;
  std::vector<PeerState> peers_;
  std::vector<std::unique_ptr<sim::PoissonProcess>> requesters_;
  std::uint64_t source_edge_ = 0;  ///< chunks emitted so far
  // Source availability is implicit: the source has every emitted chunk.
  double source_tokens_ = 0.0;
  sim::Time source_tokens_updated_ = 0.0;
  std::uint64_t transfers_ = 0;
  std::uint64_t playback_misses_ = 0;
};

/// Bridges a pre-run streaming session to the collection protocol: feed
/// per-peer record streams in time order, so segment payloads carry the
/// session's real measurements.
class SessionRecordFeed {
 public:
  /// Sample each peer's record every `interval` over [0, horizon] from a
  /// freshly run session.
  SessionRecordFeed(StreamingSession& session, double horizon,
                    double interval);

  /// Next up-to-`count` records for `peer` with timestamp <= `now`
  /// (consumed in order; fewer are returned near the horizon).
  [[nodiscard]] std::vector<StatsRecord> take(std::size_t peer, double now,
                                              std::size_t count);

  [[nodiscard]] std::size_t remaining(std::size_t peer) const;

 private:
  std::vector<std::deque<StatsRecord>> queues_;
};

}  // namespace icollect::workload
