#pragma once

/// \file rk4.h
/// Classic fourth-order Runge-Kutta integration over flat state vectors,
/// plus a steady-state driver (integrate until the max-norm of the
/// derivative falls below a tolerance). The ODE systems (7), (8), (12)
/// are mildly stiff (per-degree rates grow like i·γ up to the truncation
/// index), so callers pick dt ≲ 1 / (max rate); the driver also halves dt
/// and retries if it detects divergence (NaN/Inf).

#include <cmath>
#include <functional>
#include <vector>

#include "common/assert.h"

namespace icollect::ode {

using State = std::vector<double>;

/// dy = f(y). The functor must not resize the output.
using Derivative = std::function<void(const State& y, State& dy)>;

/// One RK4 step in place. Scratch buffers are caller-provided so sweeps
/// don't reallocate; all must have y.size().
void rk4_step(const Derivative& f, State& y, double dt, State& k1, State& k2,
              State& k3, State& k4, State& tmp);

/// Convenience single-shot step (allocates scratch).
void rk4_step(const Derivative& f, State& y, double dt);

/// Max-norm of a vector.
[[nodiscard]] double max_norm(const State& v) noexcept;

/// True if any component is NaN or infinite.
[[nodiscard]] bool has_nonfinite(const State& v) noexcept;

struct SteadyStateResult {
  double time_reached = 0.0;   ///< virtual time integrated to
  double residual = 0.0;       ///< max-norm of dy at the final state
  bool converged = false;      ///< residual <= tol before t_max
  std::size_t steps = 0;       ///< RK4 steps taken
};

struct SteadyStateOptions {
  double dt = 1e-2;              ///< main step size
  double t_max = 400.0;          ///< give up after this much virtual time
  double tol = 1e-9;             ///< derivative max-norm target
  double check_interval = 0.5;   ///< how often to test the residual
  int max_halvings = 8;          ///< dt refinement attempts on divergence
  /// Optional start-up ramp for systems whose stiffness is concentrated
  /// in the initial transient: integrate with `dt_ramp` until
  /// `ramp_time`, then switch to `dt`. Disabled when dt_ramp <= 0.
  double dt_ramp = 0.0;
  double ramp_time = 0.0;
};

/// Integrate y' = f(y) from the given initial state until steady.
/// On divergence (non-finite state) the step is halved and integration
/// restarts from the initial state, up to max_halvings times.
SteadyStateResult integrate_to_steady_state(const Derivative& f, State& y,
                                            const SteadyStateOptions& opt);

}  // namespace icollect::ode
