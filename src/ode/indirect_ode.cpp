#include "ode/indirect_ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.h"
#include "ode/closed_form.h"

namespace icollect::ode {

namespace {
/// Below this, "1 − z_B" or "e" are treated as zero (no eligible
/// receivers / no blocks to copy) to avoid 0/0 at the empty start state.
constexpr double kDenomEps = 1e-12;
}  // namespace

void OdeParams::validate() const {
  if (lambda < 0.0) throw std::invalid_argument("OdeParams: lambda < 0");
  if (mu < 0.0) throw std::invalid_argument("OdeParams: mu < 0");
  if (gamma <= 0.0) throw std::invalid_argument("OdeParams: gamma <= 0");
  if (c < 0.0) throw std::invalid_argument("OdeParams: c < 0");
  if (s == 0) throw std::invalid_argument("OdeParams: s == 0");
  if (churn_rate < 0.0) {
    throw std::invalid_argument("OdeParams: churn_rate < 0");
  }
  if (B != 0 && B < s) throw std::invalid_argument("OdeParams: B < s");
  if (Imax != 0 && Imax < s) {
    throw std::invalid_argument("OdeParams: Imax < s");
  }
}

OdeParams OdeParams::resolved() const {
  validate();
  OdeParams r = *this;
  const double rho = closed_form::rho(lambda, mu, gamma_eff());
  if (r.B == 0) {
    const double guard = rho + 6.0 * std::sqrt(std::max(rho, 1.0)) +
                         static_cast<double>(s) + 5.0;
    r.B = static_cast<std::size_t>(std::ceil(guard));
  }
  if (r.Imax == 0) {
    // Segment degrees start at s and the stationary tail above s decays
    // geometrically with ratio ≈ μ(1−z0)/(e·γ) < 1 (copy rate over
    // deletion rate), so a guard band of 25 + ρ/2 above s keeps the
    // truncated mass far below solver tolerance (asserted via tail_w).
    const double guard = static_cast<double>(s) + 25.0 + 0.5 * rho;
    r.Imax = static_cast<std::size_t>(std::ceil(guard));
  }
  return r;
}

IndirectOde::IndirectOde(OdeParams params)
    : p_{params.resolved()},
      rho_hint_{closed_form::rho(p_.lambda, p_.mu, p_.gamma_eff())} {}

std::size_t IndirectOde::dimension() const noexcept {
  return (p_.B + 1) + p_.Imax + p_.Imax * (p_.s + 1);
}

std::size_t IndirectOde::z_index(std::size_t i) const {
  ICOLLECT_EXPECTS(i <= p_.B);
  return i;
}

std::size_t IndirectOde::w_index(std::size_t i) const {
  ICOLLECT_EXPECTS(i >= 1 && i <= p_.Imax);
  return (p_.B + 1) + (i - 1);
}

std::size_t IndirectOde::m_index(std::size_t i, std::size_t j) const {
  ICOLLECT_EXPECTS(i >= 1 && i <= p_.Imax);
  ICOLLECT_EXPECTS(j <= p_.s);
  return (p_.B + 1) + p_.Imax + (i - 1) * (p_.s + 1) + j;
}

State IndirectOde::initial_state() const {
  State y(dimension(), 0.0);
  y[z_index(0)] = 1.0;  // every peer starts with an empty buffer
  return y;
}

void IndirectOde::derivative(const State& y, State& dy) const {
  ICOLLECT_EXPECTS(y.size() == dimension());
  ICOLLECT_EXPECTS(dy.size() == dimension());
  std::fill(dy.begin(), dy.end(), 0.0);

  const std::size_t B = p_.B;
  const std::size_t I = p_.Imax;
  const std::size_t s = p_.s;
  const double lam_s = p_.lambda / static_cast<double>(s);

  // Positivity-preserving read: the state components are densities, so
  // negative values can only be discretization noise. Reading them as 0
  // saturates the marginally-unstable zero-mass tail modes (high-index
  // components whose per-degree rates are the stiffest) without
  // affecting the non-negative steady state.
  const auto v = [&y](std::size_t idx) { return std::max(y[idx], 0.0); };

  const double z0 = v(z_index(0));
  const double zB = v(z_index(B));
  // Aggregate per-peer edge-addition rate: only non-empty peers transmit.
  const double transfer = (1.0 - z0) * p_.mu;
  const double recv_denom = 1.0 - zB;

  // ---- z system: Eq. (7) --------------------------------------------------
  // Gossip (Eq. 1): a receiver of degree i−1 (< B) moves to degree i.
  if (transfer > 0.0 && recv_denom > kDenomEps) {
    const double k = transfer / recv_denom;
    for (std::size_t i = 0; i <= B; ++i) {
      const double in = i >= 1 ? v(z_index(i - 1)) : 0.0;
      const double out = i < B ? v(z_index(i)) : 0.0;
      dy[z_index(i)] += (in - out) * k;
    }
  }
  // TTL deletion (Eq. 3).
  for (std::size_t i = 0; i <= B; ++i) {
    double d = -static_cast<double>(i) * v(z_index(i));
    if (i < B) d += static_cast<double>(i + 1) * v(z_index(i + 1));
    dy[z_index(i)] += d * p_.gamma;
  }
  // Injection (Eq. 5), mass-conserving finite-B form: only peers with
  // degree ≤ B − s can accept a fresh segment of s blocks.
  if (p_.lambda > 0.0) {
    for (std::size_t d = 0; d + s <= B; ++d) {
      const double flow = v(z_index(d)) * lam_s;
      dy[z_index(d)] -= flow;
      dy[z_index(d + s)] += flow;
    }
  }
  // Churn extension (replacement model): a peer of any degree is swapped
  // for an empty one at rate 1/E[L] — a jump straight to degree 0.
  if (p_.churn_rate > 0.0) {
    for (std::size_t i = 1; i <= B; ++i) {
      const double flow = v(z_index(i)) * p_.churn_rate;
      dy[z_index(i)] -= flow;
      dy[z_index(0)] += flow;
    }
  }

  // ---- shared quantities for w / m ---------------------------------------
  double e = 0.0;
  for (std::size_t i = 1; i <= I; ++i) {
    e += static_cast<double>(i) * v(w_index(i));
  }
  // True-dynamics invariant: every non-empty peer holds at least one
  // block, so e ≥ 1 − z_0 at all times. The z and w subsystems are
  // integrated side by side and their discretization errors can briefly
  // violate this during the start-up transient, which would make the
  // per-block copy rate transfer/e arbitrarily stiff; flooring the
  // denominator restores the invariant without touching the steady state
  // (where e ≈ ρ ≫ 1 − z_0).
  const double e_eff = std::max(e, 1.0 - z0);
  // Cap the per-degree copy/pull coefficients at 4x their steady-state
  // values (steady copy_k = (1−z̃0)μ/ρ, pull_k = c/ρ). The caps only bind
  // during the start-up transient, where e(t) ≪ ρ makes the exact
  // coefficients arbitrarily stiff; steady-state solutions — the only
  // thing the solver reports — are unaffected, and w/m consistency is
  // preserved because both systems use the same coefficients.
  const double rho_bar = std::max(rho_hint_, 1e-6);
  const bool can_copy = transfer > 0.0 && e_eff > kDenomEps;
  const double copy_k =
      can_copy ? std::min(transfer / e_eff, 4.0 * p_.mu / rho_bar) : 0.0;
  const bool can_pull = p_.c > 0.0 && e_eff > kDenomEps;
  const double pull_k =
      can_pull ? std::min(p_.c / e_eff, 4.0 * p_.c / rho_bar) : 0.0;

  // ---- w system: Eq. (8) ---------------------------------------------------
  for (std::size_t i = 1; i <= I; ++i) {
    double d = 0.0;
    if (can_copy) {
      double g = 0.0;
      if (i >= 2) {
        g += static_cast<double>(i - 1) * v(w_index(i - 1));
      }
      if (i < I) {  // reflecting truncation boundary
        g -= static_cast<double>(i) * v(w_index(i));
      }
      d += g * copy_k;
    }
    {
      // Per-copy deletion: TTL plus (mean-field) churn loss.
      double t = -static_cast<double>(i) * v(w_index(i));
      if (i < I) t += static_cast<double>(i + 1) * v(w_index(i + 1));
      d += t * p_.gamma_eff();
    }
    if (i == s) d += lam_s;  // fresh segments arrive at degree s
    dy[w_index(i)] += d;
  }

  // ---- m system: Eq. (12) --------------------------------------------------
  for (std::size_t i = 1; i <= I; ++i) {
    const double di = static_cast<double>(i);
    for (std::size_t j = 0; j <= s; ++j) {
      double d = 0.0;
      if (can_copy) {
        double g = 0.0;
        if (i >= 2) g += (di - 1.0) * v(m_index(i - 1, j));
        if (i < I) g -= di * v(m_index(i, j));
        d += g * copy_k;
      }
      {
        double t = -di * v(m_index(i, j));
        if (i < I) t += (di + 1.0) * v(m_index(i + 1, j));
        d += t * p_.gamma_eff();
      }
      if (can_pull) {
        if (j == 0) {
          d -= pull_k * di * v(m_index(i, 0));
        } else if (j < s) {
          d += pull_k * di *
               (v(m_index(i, j - 1)) - v(m_index(i, j)));
        } else {  // j == s: absorbing collection state
          d += pull_k * di * v(m_index(i, s - 1));
        }
      }
      if (i == s && j == 0) d += lam_s;
      dy[m_index(i, j)] += d;
    }
  }
}

OdeSolution IndirectOde::solve(SteadyStateOptions opt) const {
  if (opt.dt <= 0.0) {
    // Stability-driven defaults. In steady state the stiffest
    // per-component rate is about max(Imax, B)·γ plus small gossip/pull
    // contributions (copy_k ≈ μ/ρ, pull_k ≈ c/ρ). During the start-up
    // transient, however, e(t) is small and the per-degree copy/pull
    // coefficients temporarily reach ≈ μ and ≈ c, so the transient is
    // integrated with a finer ramp step. RK4's real-axis stability
    // interval is ≈ 2.78/|λ|; we keep a 2/|λ| margin, with the
    // divergence-halving fallback covering anything unforeseen.
    const double imax = static_cast<double>(p_.Imax);
    const double zmax = static_cast<double>(std::max(p_.Imax, p_.B));
    const double cap_rate =
        imax * 4.0 * (p_.mu + p_.c) / std::max(rho_hint_, 1e-6);
    const double max_rate = zmax * p_.gamma_eff() + p_.mu + p_.c +
                            p_.lambda + p_.churn_rate + cap_rate;
    opt.dt = 2.0 / max_rate;
  }
  State y = initial_state();
  const auto conv = integrate_to_steady_state(
      [this](const State& yy, State& dyy) { derivative(yy, dyy); }, y, opt);

  OdeSolution sol;
  sol.params = p_;
  sol.convergence = conv;
  sol.z.resize(p_.B + 1);
  for (std::size_t i = 0; i <= p_.B; ++i) sol.z[i] = y[z_index(i)];
  sol.w.assign(p_.Imax + 1, 0.0);
  for (std::size_t i = 1; i <= p_.Imax; ++i) sol.w[i] = y[w_index(i)];
  sol.m.assign(p_.Imax + 1, std::vector<double>(p_.s + 1, 0.0));
  for (std::size_t i = 1; i <= p_.Imax; ++i) {
    for (std::size_t j = 0; j <= p_.s; ++j) {
      sol.m[i][j] = y[m_index(i, j)];
    }
  }
  sol.z0 = sol.z[0];
  sol.zB = sol.z[p_.B];
  sol.tail_w = sol.w[p_.Imax];
  sol.e = 0.0;
  for (std::size_t i = 1; i <= p_.Imax; ++i) {
    sol.e += static_cast<double>(i) * sol.w[i];
  }
  return sol;
}

std::vector<IndirectOde::TransientSample> IndirectOde::transient(
    double t_end, double sample_interval) const {
  ICOLLECT_EXPECTS(t_end > 0.0);
  ICOLLECT_EXPECTS(sample_interval > 0.0);
  // Use the same stability-driven default step as solve().
  SteadyStateOptions opt;
  const double imax = static_cast<double>(p_.Imax);
  const double zmax = static_cast<double>(std::max(p_.Imax, p_.B));
  const double cap_rate =
      imax * 4.0 * (p_.mu + p_.c) / std::max(rho_hint_, 1e-6);
  const double dt = 2.0 / (zmax * p_.gamma_eff() + p_.mu + p_.c +
                           p_.lambda + p_.churn_rate + cap_rate);

  State y = initial_state();
  State k1(y.size()), k2(y.size()), k3(y.size()), k4(y.size()),
      tmp(y.size());
  const auto deriv = [this](const State& yy, State& dyy) {
    derivative(yy, dyy);
  };

  std::vector<TransientSample> samples;
  const auto snapshot = [&](double t) {
    TransientSample s;
    s.t = t;
    s.z0 = y[z_index(0)];
    for (std::size_t i = 1; i <= p_.Imax; ++i) {
      const double wi = y[w_index(i)];
      s.e += static_cast<double>(i) * wi;
      s.segments += wi;
      s.decoded_alive += y[m_index(i, p_.s)];
    }
    samples.push_back(s);
  };

  double t = 0.0;
  double next_sample = 0.0;
  while (t < t_end) {
    if (t >= next_sample) {
      snapshot(t);
      next_sample += sample_interval;
    }
    rk4_step(deriv, y, dt, k1, k2, k3, k4, tmp);
    t += dt;
  }
  snapshot(t);
  return samples;
}

double OdeSolution::storage_overhead() const {
  return (1.0 - z0) * params.mu / params.gamma;
}

double OdeSolution::collection_efficiency() const {
  if (e <= 0.0) return 0.0;
  double collected = 0.0;
  for (std::size_t i = 1; i <= params.Imax; ++i) {
    collected += static_cast<double>(i) * m[i][params.s];
  }
  return std::clamp(1.0 - collected / e, 0.0, 1.0);
}

double OdeSolution::throughput_per_peer() const {
  return params.c * collection_efficiency();
}

double OdeSolution::normalized_throughput() const {
  return params.lambda > 0.0
             ? std::min(throughput_per_peer() / params.lambda, 1.0)
             : 0.0;
}

double OdeSolution::block_delay() const {
  const double sigma = normalized_throughput();
  if (sigma <= 0.0 || params.lambda <= 0.0) return 0.0;
  double sum_w = 0.0;
  double sum_ms = 0.0;
  for (std::size_t i = 1; i <= params.Imax; ++i) {
    sum_w += w[i];
    sum_ms += m[i][params.s];
  }
  return sum_w / params.lambda - sum_ms / (params.lambda * sigma);
}

double OdeSolution::saved_blocks_per_peer() const {
  double sum = 0.0;
  for (std::size_t i = params.s; i <= params.Imax; ++i) {
    sum += w[i] - m[i][params.s];
  }
  return static_cast<double>(params.s) * std::max(sum, 0.0);
}

double OdeSolution::m_w_consistency() const {
  double worst = 0.0;
  for (std::size_t i = 1; i <= params.Imax; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j <= params.s; ++j) row += m[i][j];
    worst = std::max(worst, std::abs(row - w[i]));
  }
  return worst;
}

}  // namespace icollect::ode
