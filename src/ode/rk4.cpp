#include "ode/rk4.h"

#include <algorithm>
#include <limits>

namespace icollect::ode {

void rk4_step(const Derivative& f, State& y, double dt, State& k1, State& k2,
              State& k3, State& k4, State& tmp) {
  const std::size_t n = y.size();
  ICOLLECT_EXPECTS(k1.size() == n && k2.size() == n && k3.size() == n &&
                   k4.size() == n && tmp.size() == n);
  f(y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f(tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f(tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f(tmp, k4);
  const double w = dt / 6.0;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += w * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

void rk4_step(const Derivative& f, State& y, double dt) {
  State k1(y.size()), k2(y.size()), k3(y.size()), k4(y.size()),
      tmp(y.size());
  rk4_step(f, y, dt, k1, k2, k3, k4, tmp);
}

double max_norm(const State& v) noexcept {
  double m = 0.0;
  for (const double x : v) m = std::max(m, std::abs(x));
  return m;
}

bool has_nonfinite(const State& v) noexcept {
  return std::any_of(v.begin(), v.end(),
                     [](double x) { return !std::isfinite(x); });
}

SteadyStateResult integrate_to_steady_state(const Derivative& f, State& y,
                                            const SteadyStateOptions& opt) {
  ICOLLECT_EXPECTS(opt.dt > 0.0 && opt.t_max > 0.0 && opt.tol > 0.0);
  const State y0 = y;
  double dt = opt.dt;
  SteadyStateResult result;

  for (int attempt = 0; attempt <= opt.max_halvings; ++attempt) {
    y = y0;
    State k1(y.size()), k2(y.size()), k3(y.size()), k4(y.size()),
        tmp(y.size()), dy(y.size());
    double t = 0.0;
    double next_check = opt.check_interval;
    bool diverged = false;
    std::size_t steps = 0;
    const double ramp_dt =
        opt.dt_ramp > 0.0 ? opt.dt_ramp * (dt / opt.dt) : 0.0;
    while (t < opt.t_max) {
      const double step_dt =
          (ramp_dt > 0.0 && t < opt.ramp_time) ? ramp_dt : dt;
      rk4_step(f, y, step_dt, k1, k2, k3, k4, tmp);
      t += step_dt;
      ++steps;
      if (has_nonfinite(y)) {
        diverged = true;
        break;
      }
      if (t >= next_check) {
        next_check += opt.check_interval;
        // Huge-but-finite states are divergence too (rescaled densities
        // are O(1) in every well-posed use of this driver).
        if (max_norm(y) > 1e9) {
          diverged = true;
          break;
        }
        f(y, dy);
        const double res = max_norm(dy);
        if (res <= opt.tol) {
          result.time_reached = t;
          result.residual = res;
          result.converged = true;
          result.steps = steps;
          return result;
        }
      }
    }
    if (!diverged) {
      State dy2(y.size());
      f(y, dy2);
      result.time_reached = t;
      result.residual = max_norm(dy2);
      result.converged = result.residual <= opt.tol;
      result.steps = steps;
      return result;
    }
    dt *= 0.5;  // divergence: refine and restart
  }
  // All refinement attempts diverged; report the (non-finite) failure.
  result.converged = false;
  result.residual = std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace icollect::ode
