#include "ode/closed_form.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.h"

namespace icollect::ode::closed_form {

double steady_z0(double lambda, double mu, double gamma) {
  ICOLLECT_EXPECTS(lambda >= 0.0 && mu >= 0.0 && gamma > 0.0);
  // g(z0) = exp(−((1−z0)μ + λ)/γ) is increasing in z0 with g(0) > 0 and
  // g(1) < 1 ⇒ unique fixed point in (0, 1); simple iteration converges
  // since |g'| = (μ/γ)·g < 1 near the fixed point for our regimes, but we
  // use bisection for unconditional robustness.
  auto g = [&](double z0) {
    return std::exp(-(((1.0 - z0) * mu) + lambda) / gamma);
  };
  double lo = 0.0;
  double hi = 1.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) > mid) {
      lo = mid;  // fixed point above mid
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double rho(double lambda, double mu, double gamma) {
  const double z0 = steady_z0(lambda, mu, gamma);
  return (1.0 - z0) * mu / gamma + lambda / gamma;
}

double storage_overhead(double lambda, double mu, double gamma) {
  const double z0 = steady_z0(lambda, mu, gamma);
  return (1.0 - z0) * mu / gamma;
}

std::vector<double> steady_peer_degrees(double lambda, double mu,
                                        double gamma, std::size_t B) {
  const double r = rho(lambda, mu, gamma);
  std::vector<double> z(B + 1, 0.0);
  // z_i ∝ ρ^i/i!, normalized over 0..B (truncated Poisson; for large B
  // this is the paper's z̃_0 e^{ρ} normalization).
  double term = 1.0;  // ρ^0/0!
  double norm = 0.0;
  for (std::size_t i = 0; i <= B; ++i) {
    z[i] = term;
    norm += term;
    term *= r / static_cast<double>(i + 1);
  }
  for (auto& v : z) v /= norm;
  return z;
}

double theta_plus(double lambda, double mu, double gamma, double c) {
  ICOLLECT_EXPECTS(gamma > 0.0 && c > 0.0);
  const double r = rho(lambda, mu, gamma);
  if (r <= 0.0) throw std::invalid_argument("theta_plus: rho <= 0");
  const double q = 1.0 - lambda / (r * gamma);
  const double a2 = -gamma;
  const double a1 = q * gamma + gamma + c / r;
  const double a0 = -q * gamma;
  const double disc = a1 * a1 - 4.0 * a2 * a0;
  ICOLLECT_EXPECTS(disc >= 0.0);
  const double sq = std::sqrt(disc);
  const double r1 = (-a1 + sq) / (2.0 * a2);
  const double r2 = (-a1 - sq) / (2.0 * a2);
  return std::max(r1, r2);
}

double throughput_noncoding_per_peer(double lambda, double mu, double gamma,
                                     double c) {
  const double th = theta_plus(lambda, mu, gamma, c);
  ICOLLECT_EXPECTS(th != 0.0);
  return lambda * (1.0 - 1.0 / th);
}

double normalized_throughput_noncoding(double lambda, double mu, double gamma,
                                       double c) {
  if (lambda <= 0.0) return 0.0;
  return std::clamp(
      throughput_noncoding_per_peer(lambda, mu, gamma, c) / lambda, 0.0, 1.0);
}

}  // namespace icollect::ode::closed_form
