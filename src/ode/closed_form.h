#pragma once

/// \file closed_form.h
/// Closed-form steady-state results of Theorems 1 and 2:
///   - Theorem 1: z̃_i = z̃_0 ρ^i / i! with z̃_0 = e^{-ρ} and
///     ρ = (1 − z̃_0)μ/γ + λ/γ (a one-dimensional fixed point);
///     storage overhead (1 − z̃_0)μ/γ < μ/γ.
///   - Theorem 2 (non-coding case s = 1): session throughput
///     N·λ·(1 − 1/θ₊), θ₊ the larger root of α₂x² + α₁x + α₀ = 0 with
///     α₀ = −qγ, α₁ = qγ + γ + c/ρ, α₂ = −γ, q = 1 − λ/(ργ).

#include <cstddef>
#include <vector>

namespace icollect::ode::closed_form {

/// Fixed point z̃_0 solving z0 = exp(−((1 − z0)·μ + λ)/γ).
[[nodiscard]] double steady_z0(double lambda, double mu, double gamma);

/// Theorem 1: steady mean blocks per peer ρ = (1 − z̃_0)μ/γ + λ/γ.
[[nodiscard]] double rho(double lambda, double mu, double gamma);

/// Theorem 1: storage overhead (1 − z̃_0)·μ/γ.
[[nodiscard]] double storage_overhead(double lambda, double mu, double gamma);

/// Theorem 1: the steady peer-degree law z̃_i = z̃_0 ρ^i / i!, i = 0..B.
[[nodiscard]] std::vector<double> steady_peer_degrees(double lambda,
                                                      double mu, double gamma,
                                                      std::size_t B);

/// Theorem 2 (s = 1): the larger root θ₊.
[[nodiscard]] double theta_plus(double lambda, double mu, double gamma,
                                double c);

/// Theorem 2 (s = 1): session throughput per peer, λ·(1 − 1/θ₊).
[[nodiscard]] double throughput_noncoding_per_peer(double lambda, double mu,
                                                   double gamma, double c);

/// Theorem 2 (s = 1): normalized session throughput (1 − 1/θ₊).
[[nodiscard]] double normalized_throughput_noncoding(double lambda, double mu,
                                                     double gamma, double c);

}  // namespace icollect::ode::closed_form
