#pragma once

/// \file indirect_ode.h
/// The paper's fluid model: ODE systems (7), (8) and (12) of Sec. 3,
/// describing the N → ∞ limit of the bipartite graph process.
///
/// State:
///   z_i, i = 0..B      — fraction of peers holding exactly i blocks
///   w_i, i = 1..Imax   — segments of degree i per peer
///   m_i^j, i = 1..Imax, j = 0..s — segments of degree i with j blocks
///                        already collected by the servers, per peer
///
/// Faithfulness notes (documented deviations, all vanishing as B, Imax
/// grow — the regime the paper derives the equations in):
///   * Injection in (5)/(7) is written for "B large enough"; we use the
///     mass-conserving finite-B form (peers with degree > B − s cannot
///     inject), which coincides with the paper's equations when z is
///     supported below B − s.
///   * w and m are truncated at Imax with a reflecting upper boundary;
///     Imax is auto-sized from ρ so the tail mass is negligible (the
///     solver records w_{Imax} so callers can verify).

#include <cstddef>
#include <vector>

#include "ode/rk4.h"

namespace icollect::ode {

struct OdeParams {
  double lambda = 20.0;  ///< per-peer block generation rate λ
  double mu = 10.0;      ///< per-peer gossip rate μ
  double gamma = 1.0;    ///< per-block deletion rate γ
  double c = 5.0;        ///< normalized server capacity c = c_s N_s / N
  std::size_t s = 10;    ///< segment size
  std::size_t B = 0;     ///< peer buffer cap; 0 = auto (≈ 3ρ + s)
  std::size_t Imax = 0;  ///< segment-degree truncation; 0 = auto

  /// Churn extension (not in the paper, whose ODEs cover the static
  /// network): rate 1/E[L] at which a peer is replaced. In the fluid
  /// limit a replacement is a jump of the peer's degree to 0 (exact for
  /// the z-system); for the segment-side w/m systems the per-copy death
  /// from churn is treated as an additional mean-field deletion rate
  /// (exact in expectation, ignores the within-peer loss correlation).
  double churn_rate = 0.0;

  /// Total per-block deletion rate seen by the segment side.
  [[nodiscard]] double gamma_eff() const noexcept {
    return gamma + churn_rate;
  }

  /// Mean blocks per peer predicted by Theorem 1 (used for auto-sizing).
  [[nodiscard]] double rho_upper_bound() const noexcept {
    return (mu + lambda) / gamma_eff();
  }

  /// Resolve auto-sized B / Imax into concrete values.
  [[nodiscard]] OdeParams resolved() const;

  void validate() const;
};

/// Steady-state solution of the coupled systems.
struct OdeSolution {
  OdeParams params;                    ///< resolved parameters
  std::vector<double> z;               ///< z[0..B]
  std::vector<double> w;               ///< w[0] unused; w[1..Imax]
  std::vector<std::vector<double>> m;  ///< m[i][j], i in 1..Imax, j in 0..s
  double e = 0.0;                      ///< Σ i·w_i (edges per peer)
  double z0 = 0.0;
  double zB = 0.0;
  double tail_w = 0.0;  ///< w at the truncation index (should be ≈ 0)
  SteadyStateResult convergence;

  // --- Theorem-level metrics ------------------------------------------------
  /// Theorem 1: average blocks in a peer's buffer, ρ.
  [[nodiscard]] double rho() const noexcept { return e; }
  /// Theorem 1: storage overhead (1 − z̃_0)·μ/γ.
  [[nodiscard]] double storage_overhead() const;
  /// Collection efficiency η = 1 − Σ i·m̃_i^s / ẽ.
  [[nodiscard]] double collection_efficiency() const;
  /// Theorem 2: per-peer session throughput c·η (original blocks/time).
  [[nodiscard]] double throughput_per_peer() const;
  /// Throughput normalized by the demand λ (Fig. 3 y-axis).
  [[nodiscard]] double normalized_throughput() const;
  /// Theorem 3: average block delivery delay T(s).
  [[nodiscard]] double block_delay() const;
  /// Theorem 4: original blocks saved per peer: s·Σ_{i≥s}(w̃_i − m̃_i^s).
  [[nodiscard]] double saved_blocks_per_peer() const;
  /// Σ_j m_i^j − w_i consistency residual (max over i); ≈ 0 if exact.
  [[nodiscard]] double m_w_consistency() const;
};

class IndirectOde {
 public:
  explicit IndirectOde(OdeParams params);

  [[nodiscard]] const OdeParams& params() const noexcept { return p_; }
  [[nodiscard]] std::size_t dimension() const noexcept;

  /// All-empty network: z_0 = 1, everything else 0.
  [[nodiscard]] State initial_state() const;

  /// Right-hand side of the coupled systems (7), (8), (12).
  void derivative(const State& y, State& dy) const;

  /// Integrate from the empty network to steady state and unpack.
  [[nodiscard]] OdeSolution solve(SteadyStateOptions opt = {}) const;

  /// One point of the transient trajectory (used to size warm-up
  /// windows and to visualize convergence).
  struct TransientSample {
    double t = 0.0;
    double e = 0.0;        ///< blocks per peer
    double z0 = 0.0;       ///< empty-peer fraction
    double segments = 0.0; ///< alive segments per peer, Σ w_i
    double decoded_alive = 0.0;  ///< Σ m_i^s (decoded segments still alive)
  };

  /// Integrate the transient from the empty network for `t_end` time,
  /// sampling every `sample_interval`. The first sample is at t=0.
  [[nodiscard]] std::vector<TransientSample> transient(
      double t_end, double sample_interval) const;

  // State vector layout helpers (public for white-box tests).
  [[nodiscard]] std::size_t z_index(std::size_t i) const;
  [[nodiscard]] std::size_t w_index(std::size_t i) const;
  [[nodiscard]] std::size_t m_index(std::size_t i, std::size_t j) const;

 private:
  OdeParams p_;      // resolved
  double rho_hint_;  // closed-form ρ, used to cap transient coefficients
};

}  // namespace icollect::ode
