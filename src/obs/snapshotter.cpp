#include "obs/snapshotter.h"

#include <cmath>
#include <stdexcept>

#include "common/assert.h"
#include "obs/json.h"

namespace icollect::obs {

namespace {

void open_or_throw(std::ofstream& out, const std::string& path) {
  out.open(path, std::ios::out | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Snapshotter: cannot open '" + path + "'");
  }
}

/// CSV needs no quoting here: metric names are identifiers and values
/// are numbers (non-finite → empty field).
void append_csv_value(std::string& row, double v) {
  if (std::isfinite(v)) append_json_number(row, v);
}

}  // namespace

Snapshotter::Snapshotter(const MetricsRegistry& registry, double interval)
    : registry_{&registry}, interval_{interval}, next_due_{interval} {
  ICOLLECT_EXPECTS(interval > 0.0);
}

Snapshotter::Snapshotter(const MetricsRegistry& registry, double interval,
                         const ClockSource* clock)
    : Snapshotter{registry, interval} {
  ICOLLECT_EXPECTS(clock != nullptr);
  clock_ = clock;
  next_due_ = clock->now() + interval;
}

double Snapshotter::read_now() const {
  ICOLLECT_EXPECTS(clock_ != nullptr);
  return clock_->now();
}

void Snapshotter::open_jsonl(const std::string& path) {
  open_or_throw(jsonl_, path);
}

void Snapshotter::open_csv(const std::string& path) {
  open_or_throw(csv_, path);
}

void Snapshotter::sample(double now) {
  if (columns_.empty()) {
    columns_ = registry_->sample_names();
    if (csv_.is_open()) {
      std::string header = "t";
      for (const std::string& c : columns_) {
        header += ',';
        header += c;
      }
      csv_ << header << '\n';
    }
  }
  std::string json = "{\"t\":";
  append_json_number(json, now);
  std::string csv_row;
  if (csv_.is_open()) append_json_number(csv_row, now);
  registry_->for_each_sample([&](std::string_view name, double value) {
    json += ",\"";
    json += json_escape(name);
    json += "\":";
    append_json_number(json, value);
    if (csv_.is_open()) {
      csv_row += ',';
      append_csv_value(csv_row, value);
    }
  });
  json += '}';
  if (jsonl_.is_open()) jsonl_ << json << '\n';
  if (csv_.is_open()) csv_ << csv_row << '\n';
  ++samples_;
}

bool Snapshotter::sample_if_due(double now) {
  if (now < next_due_) return false;
  sample(now);
  while (next_due_ <= now) next_due_ += interval_;
  return true;
}

void Snapshotter::flush() {
  if (jsonl_.is_open()) jsonl_.flush();
  if (csv_.is_open()) csv_.flush();
}

}  // namespace icollect::obs
