#pragma once

/// \file metrics_registry.h
/// Central registry of named metrics — counters, gauges, fixed-bucket
/// histograms, and exponential-bucket latency histograms — that the
/// Snapshotter samples into time series.
///
/// Design rules:
///  - Registration (cold path) hands back a stable reference; the hot
///    path then touches only that object — a Counter::inc() is a single
///    integer add, and instrumentation sites that may run without
///    telemetry hold a possibly-null pointer so the disabled cost is one
///    branch.
///  - Gauges can be *pull-based*: register a provider callback and the
///    value is computed only when a snapshot is taken, so instrumenting
///    an engine costs nothing per event (this is how p2p::Network's
///    NetworkMetrics are exported — see p2p/network_telemetry.h).
///  - Export order is registration order, so snapshot columns are stable
///    within a run.
///  - Re-registering a name with the *same* metric kind is find-or-create
///    (the original object is returned); re-registering it as a
///    *different* kind throws std::invalid_argument — two subsystems
///    silently sharing one column under different semantics is the bug
///    this catches (see tests/obs_metrics_registry_test.cpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/histogram.h"
#include "stats/latency_histogram.h"

namespace icollect::obs {

/// Monotonic event count. Hot-path handle: inc() is one add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value: either set push-style or computed on demand by a
/// provider callback (pull-style; zero hot-path cost).
class Gauge {
 public:
  using Provider = std::function<double()>;

  void set(double v) noexcept { value_ = v; }
  void set_provider(Provider p) { provider_ = std::move(p); }
  [[nodiscard]] double value() const {
    return provider_ ? provider_() : value_;
  }
  /// Zero the pushed value. A provider, if set, is kept — pull gauges
  /// read live state and have nothing to reset.
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
  Provider provider_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime. Throws std::invalid_argument if `name` is already
  /// registered as a different metric kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Convenience: register a pull-based gauge in one call.
  Gauge& gauge(std::string_view name, Gauge::Provider provider);
  /// Fixed-bucket histogram: `bins` equal-width buckets over [lo, hi).
  /// Find-or-create ignores (lo, hi, bins) when the name already exists.
  stats::Histogram& histogram(std::string_view name, double lo, double hi,
                              std::size_t bins);
  /// Exponential-bucket latency histogram (records seconds, exports
  /// <name>.count/.p50/.p90/.p99/.max in seconds).
  stats::LatencyHistogram& latency(std::string_view name);

  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const stats::LatencyHistogram* find_latency(
      std::string_view name) const;

  /// Visit every exported sample in registration order. Counters and
  /// gauges export one value under their own name; a histogram expands
  /// into <name>.count, <name>.p50, <name>.p90, <name>.p99; a latency
  /// histogram additionally exports <name>.max.
  void for_each_sample(
      const std::function<void(std::string_view name, double value)>& fn)
      const;

  /// The exported column names, in for_each_sample order.
  [[nodiscard]] std::vector<std::string> sample_names() const;

  /// Zero every metric's *values* for test isolation: counters to 0,
  /// histogram bins cleared, pushed gauge values to 0. Registrations,
  /// handed-out references, gauge providers, and export order all
  /// survive — only the accumulated samples are discarded.
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kLatency };
  struct Metric {
    std::string name;
    Kind kind{};
    // Exactly one is non-null; unique_ptr keeps addresses stable across
    // vector growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<stats::Histogram> hist;
    std::unique_ptr<stats::LatencyHistogram> latency;
  };

  [[nodiscard]] const Metric* find(std::string_view name) const;
  Metric& create(std::string_view name, Kind kind);

  std::vector<Metric> metrics_;  // registration order
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace icollect::obs
