#include "obs/telemetry.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "gf/kernels.h"

namespace icollect::obs {

Telemetry::Telemetry(TelemetryOptions opts)
    : opts_{std::move(opts)},
      snapshotter_{registry_, opts_.metrics_interval},
      trace_{opts_.trace_ring_capacity} {
  trace_.set_filter(parse_trace_filter(opts_.trace_filter));
  if (!opts_.metrics_dir.empty()) {
    std::filesystem::create_directories(opts_.metrics_dir);
    snapshotter_.open_jsonl(bundle_path("snapshots.jsonl"));
    snapshotter_.open_csv(bundle_path("snapshots.csv"));
  }
  if (!opts_.trace_path.empty()) {
    const auto parent =
        std::filesystem::path(opts_.trace_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    trace_.open_jsonl(opts_.trace_path);
  }
  if (opts_.profile) profiler_ = std::make_unique<Profiler>();
}

std::string Telemetry::bundle_path(std::string_view file) const {
  return (std::filesystem::path(opts_.metrics_dir) /
          (opts_.file_prefix + std::string(file)))
      .string();
}

void Telemetry::write_file(std::string_view name, std::string_view contents) {
  if (opts_.metrics_dir.empty()) return;
  const std::string path = bundle_path(name);
  std::ofstream out{path, std::ios::out | std::ios::trunc};
  if (!out) {
    throw std::runtime_error("Telemetry: cannot open '" + path + "'");
  }
  out << contents << '\n';
}

void Telemetry::write_config(std::string_view json_object) {
  write_file("config.json", json_object);
}

void Telemetry::write_summary(std::string_view json_object) {
  write_file("summary.json", json_object);
  if (profiler_ != nullptr) {
    // Stamp the active GF(2^8) kernel so profiles from different ISA
    // paths (scalar/ssse3/avx2) stay attributable after the fact.
    std::string profile = "{\"gf_kernel\":\"";
    profile += gf::Kernels::active().name;
    profile += "\",\"scopes\":";
    profile += profiler_->json();
    profile += "}";
    write_file("profile.json", profile);
  }
  flush();
}

void Telemetry::flush() {
  snapshotter_.flush();
  trace_.flush();
}

}  // namespace icollect::obs
