#include "obs/metrics_registry.h"

#include <stdexcept>

namespace icollect::obs {

namespace {
[[noreturn]] void kind_mismatch(std::string_view name) {
  throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                              "' already registered as a different kind");
}
}  // namespace

const MetricsRegistry::Metric* MetricsRegistry::find(
    std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

MetricsRegistry::Metric& MetricsRegistry::create(std::string_view name,
                                                 Kind kind) {
  index_.emplace(std::string(name), metrics_.size());
  Metric& m = metrics_.emplace_back();
  m.name = std::string(name);
  m.kind = kind;
  return m;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const Metric* m = find(name)) {
    if (m->kind != Kind::kCounter) kind_mismatch(name);
    return *m->counter;
  }
  Metric& m = create(name, Kind::kCounter);
  m.counter = std::make_unique<Counter>();
  return *m.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const Metric* m = find(name)) {
    if (m->kind != Kind::kGauge) kind_mismatch(name);
    return *m->gauge;
  }
  Metric& m = create(name, Kind::kGauge);
  m.gauge = std::make_unique<Gauge>();
  return *m.gauge;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              Gauge::Provider provider) {
  Gauge& g = gauge(name);
  g.set_provider(std::move(provider));
  return g;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                             double hi, std::size_t bins) {
  if (const Metric* m = find(name)) {
    if (m->kind != Kind::kHistogram) kind_mismatch(name);
    return *m->hist;
  }
  Metric& m = create(name, Kind::kHistogram);
  m.hist = std::make_unique<stats::Histogram>(lo, hi, bins);
  return *m.hist;
}

stats::LatencyHistogram& MetricsRegistry::latency(std::string_view name) {
  if (const Metric* m = find(name)) {
    if (m->kind != Kind::kLatency) kind_mismatch(name);
    return *m->latency;
  }
  Metric& m = create(name, Kind::kLatency);
  m.latency = std::make_unique<stats::LatencyHistogram>();
  return *m.latency;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const Metric* m = find(name);
  return m != nullptr && m->kind == Kind::kCounter ? m->counter.get()
                                                   : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const Metric* m = find(name);
  return m != nullptr && m->kind == Kind::kGauge ? m->gauge.get() : nullptr;
}

const stats::LatencyHistogram* MetricsRegistry::find_latency(
    std::string_view name) const {
  const Metric* m = find(name);
  return m != nullptr && m->kind == Kind::kLatency ? m->latency.get()
                                                   : nullptr;
}

void MetricsRegistry::for_each_sample(
    const std::function<void(std::string_view, double)>& fn) const {
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        fn(m.name, static_cast<double>(m.counter->value()));
        break;
      case Kind::kGauge:
        fn(m.name, m.gauge->value());
        break;
      case Kind::kHistogram: {
        const stats::Histogram& h = *m.hist;
        fn(m.name + ".count", static_cast<double>(h.total()));
        fn(m.name + ".p50", h.quantile(0.50));
        fn(m.name + ".p90", h.quantile(0.90));
        fn(m.name + ".p99", h.quantile(0.99));
        break;
      }
      case Kind::kLatency: {
        const stats::LatencyHistogram& h = *m.latency;
        fn(m.name + ".count", static_cast<double>(h.count()));
        fn(m.name + ".p50", h.quantile_seconds(0.50));
        fn(m.name + ".p90", h.quantile_seconds(0.90));
        fn(m.name + ".p99", h.quantile_seconds(0.99));
        fn(m.name + ".max", h.max_seconds());
        break;
      }
    }
  }
}

void MetricsRegistry::reset() {
  for (Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        m.counter->reset();
        break;
      case Kind::kGauge:
        m.gauge->reset();
        break;
      case Kind::kHistogram:
        m.hist->reset();
        break;
      case Kind::kLatency:
        m.latency->reset();
        break;
    }
  }
}

std::vector<std::string> MetricsRegistry::sample_names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for_each_sample(
      [&out](std::string_view name, double) { out.emplace_back(name); });
  return out;
}

}  // namespace icollect::obs
