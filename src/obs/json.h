#pragma once

/// \file json.h
/// Minimal JSON emission for the telemetry layer: string escaping,
/// round-trippable number formatting, and a flat-object builder. Output
/// only — the observability exporters write JSONL (one object per line);
/// nothing in the library parses JSON back.

#include <charconv>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>

namespace icollect::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[byte >> 4U];
          out += kHex[byte & 0xFU];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Append `v` in the shortest form that round-trips. Non-finite values
/// (not representable in JSON) are emitted as null.
inline void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) {
    out += "null";
    return;
  }
  out.append(buf, ptr);
}

/// Builder for one flat JSON object: {"k1":v1,"k2":"v2",...}.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, double v) {
    open(key);
    append_json_number(body_, v);
    return *this;
  }
  JsonObject& field(std::string_view key, std::integral auto v) {
    open(key);
    body_ += std::to_string(v);
    return *this;
  }
  JsonObject& field(std::string_view key, bool v) {
    open(key);
    body_ += v ? "true" : "false";
    return *this;
  }
  JsonObject& field_str(std::string_view key, std::string_view v) {
    open(key);
    body_ += '"';
    body_ += json_escape(v);
    body_ += '"';
    return *this;
  }
  /// Splice pre-rendered JSON (an object, array, or literal) as a value.
  JsonObject& field_raw(std::string_view key, std::string_view raw_json) {
    open(key);
    body_ += raw_json;
    return *this;
  }

  /// The completed object, braces included.
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  void open(std::string_view key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += json_escape(key);
    body_ += "\":";
  }
  std::string body_;
};

}  // namespace icollect::obs
