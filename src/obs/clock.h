#pragma once

/// \file clock.h
/// The clock seam of the telemetry layer. PR 1 built Snapshotter and
/// Profiler against the simulator's virtual time, threaded through every
/// call as an explicit `now` argument; the live runtime (src/net/,
/// src/node/) runs on the wall clock. A ClockSource abstracts "what time
/// is it" so the same sampler code serves both worlds:
///
///  - WallClock      steady_clock seconds since construction — the live
///                   tools' time base (matches TcpTransport::now()).
///  - ManualClock    a number the owner sets/advances — virtual time for
///                   tests and deterministic harnesses.
///  - CallbackClock  adapts any existing time base (a TimerWheel, a
///                   LoopbackNet hub) without coupling obs to net.
///
/// now() is seconds as a double (every engine here speaks seconds);
/// now_ns() exists for the Profiler, whose scopes need nanosecond
/// resolution — WallClock answers it from the raw steady_clock reading
/// so no precision is laundered through a double.

#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/assert.h"

namespace icollect::obs {

class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// Seconds since this clock's epoch.
  [[nodiscard]] virtual double now() const = 0;

  /// Nanoseconds since the epoch. The default derives it from now();
  /// high-resolution clocks should override.
  [[nodiscard]] virtual std::uint64_t now_ns() const {
    const double s = now();
    return s > 0.0 ? static_cast<std::uint64_t>(s * 1e9) : 0;
  }
};

/// Monotonic wall clock: steady_clock seconds since construction.
class WallClock final : public ClockSource {
 public:
  WallClock() : epoch_{std::chrono::steady_clock::now()} {}

  [[nodiscard]] double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Virtual time under the owner's control; never advances on its own.
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(double start = 0.0) : t_{start} {}

  void set(double t) noexcept {
    ICOLLECT_EXPECTS(t >= t_);
    t_ = t;
  }
  void advance(double dt) noexcept {
    ICOLLECT_EXPECTS(dt >= 0.0);
    t_ += dt;
  }

  [[nodiscard]] double now() const override { return t_; }

 private:
  double t_;
};

/// Adapts an existing time base (TimerWheel::now, TcpTransport::now,
/// LoopbackNet::now) into the obs layer without a dependency edge.
class CallbackClock final : public ClockSource {
 public:
  using NowFn = std::function<double()>;

  explicit CallbackClock(NowFn fn) : fn_{std::move(fn)} {
    ICOLLECT_EXPECTS(fn_ != nullptr);
  }

  [[nodiscard]] double now() const override { return fn_(); }

 private:
  NowFn fn_;
};

}  // namespace icollect::obs
