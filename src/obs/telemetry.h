#pragma once

/// \file telemetry.h
/// One-stop telemetry bundle for a run: a MetricsRegistry + Snapshotter
/// (periodic JSONL/CSV time series), a TraceBuffer (ring + filtered
/// JSONL trace), and an optional wall-clock Profiler, all writing under
/// a single output directory so every run emits a self-describing
/// artifact set:
///
///   <dir>/config.json      run configuration echo (incl. seed)
///   <dir>/snapshots.jsonl  periodic metric samples, one object per line
///   <dir>/snapshots.csv    the same series as CSV
///   <dir>/summary.json     end-of-run report
///   <dir>/profile.json     per-event-type wall-clock profile (--profile)
///   trace path             filtered protocol event trace JSONL
///
/// Attach to a run via core::CollectionSystem::attach_telemetry() or
/// wire the parts manually (p2p/network_telemetry.h has the bridges).

#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/snapshotter.h"
#include "obs/trace_pipeline.h"

namespace icollect::obs {

struct TelemetryOptions {
  /// Bundle directory (created if missing). Empty = no metrics files;
  /// the registry/snapshot cadence still runs for progress reporting.
  std::string metrics_dir;
  /// Virtual-time spacing of metric snapshots.
  double metrics_interval = 0.5;
  /// Trace JSONL path. Empty = no trace file (the ring still records).
  std::string trace_path;
  /// Comma-separated trace kind names ("" or "all" = everything).
  std::string trace_filter;
  /// Flight-recorder ring size (0 disables the ring).
  std::size_t trace_ring_capacity = 4096;
  /// Enable the wall-clock profiler.
  bool profile = false;
  /// Emit a progress line per snapshot (stderr).
  bool progress = false;
  /// Prepended to the fixed file names above — lets two runs (e.g. the
  /// indirect session and the direct baseline) share one bundle dir.
  std::string file_prefix;

  [[nodiscard]] bool any_enabled() const noexcept {
    return !metrics_dir.empty() || !trace_path.empty() || profile ||
           progress;
  }
};

class Telemetry {
 public:
  /// Creates the bundle directory and opens every configured sink.
  /// Throws std::runtime_error / std::invalid_argument on bad options.
  explicit Telemetry(TelemetryOptions opts);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] Snapshotter& snapshotter() noexcept { return snapshotter_; }
  [[nodiscard]] TraceBuffer& trace() noexcept { return trace_; }
  /// Null unless options().profile.
  [[nodiscard]] Profiler* profiler() noexcept { return profiler_.get(); }

  /// Metric snapshots are being written to disk.
  [[nodiscard]] bool snapshots_enabled() const noexcept {
    return !opts_.metrics_dir.empty();
  }
  /// The run loop should chunk virtual time on the snapshot cadence.
  [[nodiscard]] bool sampling_active() const noexcept {
    return snapshots_enabled() || opts_.progress;
  }

  /// Write <dir>/config.json (no-op without a bundle directory).
  /// `json_object` must be a complete JSON object.
  void write_config(std::string_view json_object);

  /// Write <dir>/summary.json and, when profiling, <dir>/profile.json;
  /// then flush every sink. Call once at end of run.
  void write_summary(std::string_view json_object);

  void flush();

 private:
  [[nodiscard]] std::string bundle_path(std::string_view file) const;
  void write_file(std::string_view name, std::string_view contents);

  TelemetryOptions opts_;
  MetricsRegistry registry_;
  Snapshotter snapshotter_;
  TraceBuffer trace_;
  std::unique_ptr<Profiler> profiler_;
};

}  // namespace icollect::obs
