#pragma once

/// \file snapshotter.h
/// Virtual-time sampler: on a configurable interval, reads every metric
/// registered in a MetricsRegistry and appends one row to a JSONL stream
/// and/or a CSV stream. Drives the time-series half of a telemetry
/// bundle (snapshots.jsonl / snapshots.csv).
///
/// The caller owns the cadence: the embedding run loop advances virtual
/// time in chunks bounded by next_due() and calls sample_if_due() after
/// each chunk, so samples land at exact virtual times regardless of the
/// event mix (see core::CollectionSystem::run).
///
/// JSONL row: {"t":12.5,"<name>":<value>,...} — flat, one object per
/// line, columns in metric registration order. CSV mirrors the same
/// columns with a header row. Non-finite values export as JSON null and
/// an empty CSV field.

#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace icollect::obs {

class Snapshotter {
 public:
  /// Samples `registry` (not owned; must outlive the snapshotter) every
  /// `interval` units of virtual time. interval must be > 0.
  Snapshotter(const MetricsRegistry& registry, double interval);

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Throws std::runtime_error when a file cannot be opened.
  void open_jsonl(const std::string& path);
  void open_csv(const std::string& path);

  /// Re-anchor the cadence: the next sample is due at `now` + interval.
  void start(double now) { next_due_ = now + interval_; }

  [[nodiscard]] double interval() const noexcept { return interval_; }
  [[nodiscard]] double next_due() const noexcept { return next_due_; }

  /// Take a sample stamped `now` unconditionally.
  void sample(double now);

  /// Take at most one sample if `now` has reached next_due(); advances
  /// next_due past `now` by whole intervals. Returns whether it sampled.
  bool sample_if_due(double now);

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  void flush();

 private:
  const MetricsRegistry* registry_;
  double interval_;
  double next_due_;
  std::vector<std::string> columns_;  // fixed at the first sample
  std::ofstream jsonl_;
  std::ofstream csv_;
  std::size_t samples_ = 0;
};

}  // namespace icollect::obs
