#pragma once

/// \file snapshotter.h
/// Virtual-time sampler: on a configurable interval, reads every metric
/// registered in a MetricsRegistry and appends one row to a JSONL stream
/// and/or a CSV stream. Drives the time-series half of a telemetry
/// bundle (snapshots.jsonl / snapshots.csv).
///
/// The caller owns the cadence: the embedding run loop advances virtual
/// time in chunks bounded by next_due() and calls sample_if_due() after
/// each chunk, so samples land at exact virtual times regardless of the
/// event mix (see core::CollectionSystem::run).
///
/// Live runtimes attach a ClockSource instead (wall clock or an engine's
/// own time base) and call the no-argument start()/sample_if_due()
/// overloads; the sampler then stamps rows from the clock, so the sim
/// and the live tools emit the same schema from the same code.
///
/// JSONL row: {"t":12.5,"<name>":<value>,...} — flat, one object per
/// line, columns in metric registration order. CSV mirrors the same
/// columns with a header row. Non-finite values export as JSON null and
/// an empty CSV field.

#include <fstream>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics_registry.h"

namespace icollect::obs {

class Snapshotter {
 public:
  /// Samples `registry` (not owned; must outlive the snapshotter) every
  /// `interval` units of virtual time. interval must be > 0.
  Snapshotter(const MetricsRegistry& registry, double interval);

  /// Clock-driven variant: rows stamp themselves from `clock` (not
  /// owned; must outlive the snapshotter) via the no-argument
  /// start()/sample()/sample_if_due() overloads below.
  Snapshotter(const MetricsRegistry& registry, double interval,
              const ClockSource* clock);

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Throws std::runtime_error when a file cannot be opened.
  void open_jsonl(const std::string& path);
  void open_csv(const std::string& path);

  /// Re-anchor the cadence: the next sample is due at `now` + interval.
  void start(double now) { next_due_ = now + interval_; }
  void start() { start(read_now()); }

  [[nodiscard]] double interval() const noexcept { return interval_; }
  [[nodiscard]] double next_due() const noexcept { return next_due_; }

  /// Take a sample stamped `now` unconditionally.
  void sample(double now);
  void sample() { sample(read_now()); }

  /// Take at most one sample if `now` has reached next_due(); advances
  /// next_due past `now` by whole intervals. Returns whether it sampled.
  bool sample_if_due(double now);
  bool sample_if_due() { return sample_if_due(read_now()); }

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  void flush();

 private:
  /// The attached clock's reading; requires a clock-driven snapshotter.
  [[nodiscard]] double read_now() const;

  const MetricsRegistry* registry_;
  const ClockSource* clock_ = nullptr;
  double interval_;
  double next_due_;
  std::vector<std::string> columns_;  // fixed at the first sample
  std::ofstream jsonl_;
  std::ofstream csv_;
  std::size_t samples_ = 0;
};

}  // namespace icollect::obs
