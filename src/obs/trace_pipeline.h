#pragma once

/// \file trace_pipeline.h
/// Structured trace pipeline: a ring-buffer sink for protocol trace
/// events with per-kind filtering, per-kind counts, and an optional
/// streaming JSONL writer. This replaces ad-hoc `TraceSink` lambdas as
/// the standard observer — the ring acts as an always-affordable flight
/// recorder (the last N events survive for post-mortem inspection even
/// when no file sink is open), and the JSONL stream is the
/// machine-readable export.
///
/// Depends only on the header-only event types in proto/trace.h; the p2p
/// engine library links *against* obs, not the other way around.

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "proto/trace.h"

namespace icollect::obs {

/// Bit for one trace kind inside a filter mask.
[[nodiscard]] constexpr std::uint32_t kind_bit(
    proto::TraceEventKind k) noexcept {
  return 1U << static_cast<unsigned>(k);
}

/// Mask accepting every kind.
inline constexpr std::uint32_t kAllTraceKinds =
    (1U << proto::kTraceEventKindCount) - 1U;

/// Parse a comma-separated list of kind names ("gossip,pull,decode")
/// into a filter mask, using the names of p2p::to_string(TraceEventKind).
/// Empty string or "all" accepts everything. Throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] std::uint32_t parse_trace_filter(std::string_view spec);

/// One event as a flat JSON object (no trailing newline):
/// {"t":1.5,"kind":"gossip","slot":3,"origin":7,"seq":9,"aux":12}
[[nodiscard]] std::string trace_event_json(const proto::TraceEvent& ev);

class TraceBuffer {
 public:
  /// `capacity` = number of events the ring retains (0 disables the ring;
  /// filtering, counting, and the JSONL stream still work).
  explicit TraceBuffer(std::size_t capacity = 4096);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Only kinds whose bit is set in `mask` are recorded; the rest are
  /// counted as filtered out and dropped.
  void set_filter(std::uint32_t mask) noexcept { mask_ = mask; }
  [[nodiscard]] std::uint32_t filter() const noexcept { return mask_; }

  /// Additionally stream every accepted event to `path` as JSONL.
  /// Throws std::runtime_error when the file cannot be opened.
  void open_jsonl(const std::string& path);

  void record(const proto::TraceEvent& ev);

  /// Adapter for p2p::Network::set_trace_sink(). The buffer must outlive
  /// the network it observes.
  [[nodiscard]] proto::TraceSink sink() {
    return [this](const proto::TraceEvent& ev) { record(ev); };
  }

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t filtered_out() const noexcept {
    return filtered_out_;
  }
  /// Accepted events evicted from the ring by newer ones.
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return overwritten_;
  }
  [[nodiscard]] std::uint64_t count(proto::TraceEventKind k) const {
    return per_kind_[static_cast<std::size_t>(k)];
  }
  /// Ring contents, oldest first.
  [[nodiscard]] std::vector<proto::TraceEvent> snapshot() const;

  void flush() {
    if (jsonl_.is_open()) jsonl_.flush();
  }

 private:
  std::vector<proto::TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest event
  std::size_t size_ = 0;
  std::uint32_t mask_ = kAllTraceKinds;
  std::array<std::uint64_t, proto::kTraceEventKindCount> per_kind_{};
  std::uint64_t accepted_ = 0;
  std::uint64_t filtered_out_ = 0;
  std::uint64_t overwritten_ = 0;
  std::ofstream jsonl_;
};

}  // namespace icollect::obs
