#include "obs/profiler.h"

#include <cstdio>

#include "obs/json.h"

namespace icollect::obs {

Profiler::Timer& Profiler::timer(std::string_view name) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return *it->second;
  Timer& t = timers_.emplace_back(this, std::string(name));
  index_.emplace(t.name(), &t);
  return t;
}

std::vector<const Profiler::Timer*> Profiler::timers() const {
  std::vector<const Timer*> out;
  out.reserve(timers_.size());
  for (const Timer& t : timers_) out.push_back(&t);
  return out;
}

std::string Profiler::table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %12s %12s %10s %10s\n", "scope",
                "count", "total ms", "mean us", "max us");
  out += line;
  for (const Timer& t : timers_) {
    const Stat& s = t.stat();
    std::snprintf(line, sizeof(line), "%-24s %12llu %12.3f %10.3f %10.3f\n",
                  t.name().c_str(), static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) * 1e-6, s.mean_ns() * 1e-3,
                  static_cast<double>(s.max_ns) * 1e-3);
    out += line;
  }
  return out;
}

std::string Profiler::json() const {
  JsonObject root;
  for (const Timer& t : timers_) {
    const Stat& s = t.stat();
    root.field_raw(t.name(), JsonObject{}
                                 .field("count", s.count)
                                 .field("total_ns", s.total_ns)
                                 .field("mean_ns", s.mean_ns())
                                 .field("max_ns", s.max_ns)
                                 .str());
  }
  return root.str();
}

void Profiler::reset() {
  for (Timer& t : timers_) t.stat_ = Stat{};
}

}  // namespace icollect::obs
