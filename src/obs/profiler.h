#pragma once

/// \file profiler.h
/// Lightweight wall-clock profiler for the simulator dispatch loop:
/// named aggregation cells (one per event type) updated by RAII scopes.
///
/// Hot-path contract: instrumented code holds a `Profiler::Timer*` that
/// is null when profiling is off, so the disabled cost of a ProfScope is
/// a single branch — no clock read, no lookup, no allocation. When
/// profiling is on, each scope is two steady_clock reads plus a handful
/// of adds on a pre-resolved cell (cells are resolved once, at
/// attachment time, via Profiler::timer()).
///
/// Scopes nest: the profiler tracks the live nesting depth, and a
/// timer's totals are *inclusive* of scopes opened inside it (e.g. the
/// GF(2^8) decode scope runs inside the server-pull scope).
///
/// By default scopes read steady_clock directly. set_clock() swaps in a
/// ClockSource (a ManualClock in tests, a virtual time base in a
/// harness) — scopes then time themselves with clock->now_ns().

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/clock.h"

namespace icollect::obs {

class ProfScope;

class Profiler {
 public:
  struct Stat {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    [[nodiscard]] double mean_ns() const noexcept {
      return count > 0 ? static_cast<double>(total_ns) /
                             static_cast<double>(count)
                       : 0.0;
    }
  };

  /// One named aggregation cell. Obtain via Profiler::timer(); the
  /// address is stable for the profiler's lifetime.
  class Timer {
   public:
    Timer(Profiler* owner, std::string name)
        : owner_{owner}, name_{std::move(name)} {}
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const Stat& stat() const noexcept { return stat_; }

   private:
    friend class Profiler;
    friend class ProfScope;
    Profiler* owner_;
    std::string name_;
    Stat stat_;
  };

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Find-or-create the cell for `name` (cold path; stable address).
  Timer& timer(std::string_view name);

  /// Time scopes from `clock` instead of steady_clock (nullptr reverts).
  /// `clock` is not owned and must outlive the profiler.
  void set_clock(const ClockSource* clock) noexcept { clock_ = clock; }

  /// The current reading of whichever clock scopes use, in ns.
  [[nodiscard]] std::uint64_t read_ns() const {
    if (clock_ != nullptr) return clock_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Number of currently-open scopes (0 outside any instrumented region).
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// All cells in registration order.
  [[nodiscard]] std::vector<const Timer*> timers() const;

  /// Human-readable per-event-type summary table.
  [[nodiscard]] std::string table() const;

  /// {"<name>":{"count":..,"total_ns":..,"max_ns":..},...}
  [[nodiscard]] std::string json() const;

  void reset();

 private:
  friend class ProfScope;
  std::deque<Timer> timers_;  // deque: stable addresses
  std::unordered_map<std::string, Timer*> index_;
  const ClockSource* clock_ = nullptr;
  int depth_ = 0;
};

/// RAII measurement scope. A null timer makes the scope a no-op.
class ProfScope {
 public:
  explicit ProfScope(Profiler::Timer* t) noexcept {
    if (t == nullptr) return;
    t_ = t;
    ++t->owner_->depth_;
    start_ns_ = t->owner_->read_ns();
  }
  ~ProfScope() {
    if (t_ == nullptr) return;
    const std::uint64_t end_ns = t_->owner_->read_ns();
    const std::uint64_t ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    --t_->owner_->depth_;
    Profiler::Stat& s = t_->stat_;
    ++s.count;
    s.total_ns += ns;
    if (ns > s.max_ns) s.max_ns = ns;
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler::Timer* t_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace icollect::obs
