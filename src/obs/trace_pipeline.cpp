#include "obs/trace_pipeline.h"

#include <cstdio>
#include <stdexcept>

namespace icollect::obs {

std::uint32_t parse_trace_filter(std::string_view spec) {
  if (spec.empty() || spec == "all") return kAllTraceKinds;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? spec.size()
                                                            : comma;
    std::string_view name = spec.substr(pos, end - pos);
    while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
    while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
    if (!name.empty()) {
      bool found = false;
      for (std::size_t k = 0; k < proto::kTraceEventKindCount; ++k) {
        const auto kind = static_cast<proto::TraceEventKind>(k);
        if (name == proto::to_string(kind)) {
          mask |= kind_bit(kind);
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::invalid_argument("unknown trace kind '" +
                                    std::string(name) + "'");
      }
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return mask == 0 ? kAllTraceKinds : mask;
}

std::string trace_event_json(const proto::TraceEvent& ev) {
  char buf[192];
  const int n = std::snprintf(
      buf, sizeof(buf),
      "{\"t\":%.9g,\"kind\":\"%s\",\"slot\":%zu,\"origin\":%u,\"seq\":%u,"
      "\"aux\":%llu}",
      ev.at, proto::to_string(ev.kind), ev.slot,
      static_cast<unsigned>(ev.segment.origin),
      static_cast<unsigned>(ev.segment.seq),
      static_cast<unsigned long long>(ev.aux));
  if (n <= 0) return {};
  const auto len = static_cast<std::size_t>(n) < sizeof(buf) - 1
                       ? static_cast<std::size_t>(n)
                       : sizeof(buf) - 1;
  return std::string(buf, len);
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(capacity), capacity_{capacity} {}

void TraceBuffer::open_jsonl(const std::string& path) {
  jsonl_.open(path, std::ios::out | std::ios::trunc);
  if (!jsonl_) {
    throw std::runtime_error("TraceBuffer: cannot open '" + path + "'");
  }
}

void TraceBuffer::record(const proto::TraceEvent& ev) {
  if ((mask_ & kind_bit(ev.kind)) == 0) {
    ++filtered_out_;
    return;
  }
  ++accepted_;
  ++per_kind_[static_cast<std::size_t>(ev.kind)];
  if (jsonl_.is_open()) {
    jsonl_ << trace_event_json(ev) << '\n';
  }
  if (capacity_ == 0) return;
  if (size_ == capacity_) {
    ring_[head_] = ev;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
    ++overwritten_;
  } else {
    ring_[(head_ + size_) % capacity_] = ev;
    ++size_;
  }
}

std::vector<proto::TraceEvent> TraceBuffer::snapshot() const {
  std::vector<proto::TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

}  // namespace icollect::obs
