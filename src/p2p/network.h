#pragma once

/// \file network.h
/// The indirect-collection simulation driver: an event-driven
/// realization of every process in Sec. 2 of the paper, built around the
/// transport-agnostic protocol cores in src/proto/.
///
///  - Segment injection: each peer injects a fresh segment of s blocks
///    at rate λ/s, provided its buffer has room for s blocks ("degree no
///    more than B − s").
///  - Gossip: at rate μ each peer with a non-empty buffer picks a
///    buffered segment u.a.r., re-codes one block and ships it to a
///    uniformly random neighbor that still needs blocks of that segment
///    and is not at its buffer cap.
///  - TTL: every block is deleted after an Exp(γ) lifetime.
///  - Server collection: at rate c_s each server asks a uniformly random
///    non-empty peer for a re-coded block of a uniformly random segment
///    in that peer's buffer (coupon-collector pull).
///  - Churn (optional): exponential peer lifetimes with replacement.
///
/// Every Sec. 2 *decision* (what to inject, which segment to gossip or
/// serve, whether a receiver may store, when a block expires) lives in
/// proto::PeerCore / proto::ServerCore; this driver owns what only a
/// global simulation can know — the event queue, the topology, churn,
/// the segment registry and the measurement plane. All transfers carry
/// real GF(2^8) coefficient vectors; innovation, decodability and
/// redundancy are computed, never assumed.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"
#include "obs/clock.h"
#include "obs/profiler.h"
#include "p2p/config.h"
#include "p2p/metrics.h"
#include "p2p/topology.h"
#include "proto/integrity.h"
#include "proto/peer_core.h"
#include "proto/pull_policy.h"
#include "proto/server_core.h"
#include "proto/trace.h"
#include "sched/rank_tracker.h"
#include "sim/poisson_process.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace icollect::p2p {

// The trace vocabulary is shared protocol surface (proto/trace.h); the
// re-exports keep the simulator driver's API self-contained.
using proto::TraceEvent;
using proto::TraceEventKind;
using proto::TraceSink;

/// A peer slot in the network: the protocol core plus the slot identity
/// that survives churn replacements. Under the replacement churn model
/// the slot persists while its occupant changes; `incarnation`
/// disambiguates delayed events (TTL expiries) that reference a previous
/// occupant.
struct Peer {
  std::size_t slot = 0;           ///< index in the topology
  std::uint64_t incarnation = 0;  ///< bumped on each replacement
  proto::PeerCore core;           ///< the Sec. 2 peer state machine

  Peer(std::size_t slot_idx, const proto::PeerCore::Params& params,
       coding::OriginId origin_id, common::Rng& rng)
      : slot{slot_idx}, core{params, origin_id, rng} {}

  [[nodiscard]] coding::OriginId origin() const noexcept {
    return core.origin();
  }
  [[nodiscard]] const proto::PeerBuffer& buffer() const noexcept {
    return core.buffer();
  }
};

/// Global bookkeeping for one injected segment.
struct SegmentInfo {
  sim::Time injected_at = 0.0;
  std::size_t origin_slot = 0;
  std::size_t segment_size = 0;
  std::size_t degree = 0;  ///< live block copies network-wide
  std::size_t collected = 0;  ///< useful blocks pulled by the servers (≤ s)
  bool decoded = false;
  bool lost = false;  ///< vanished from the network before decoding
  sim::Time decoded_at = 0.0;
  std::vector<std::uint32_t> original_crcs;  ///< when payloads in use
};

// DepartedDataStats lives in p2p/metrics.h (shared with the baseline).

/// Snapshot of the data "saved up in the network for future delivery"
/// (Theorem 4). `degree`-based counts follow the paper's approximation
/// (segment decodable iff it has >= s block copies); `rank`-based counts
/// are exact (union rank of all coefficient vectors in the network).
struct SavedDataCensus {
  std::size_t live_segments = 0;
  std::size_t undecoded_live_segments = 0;
  std::size_t decodable_by_degree = 0;
  std::size_t decodable_by_rank = 0;
  double saved_original_blocks_degree = 0.0;  ///< s * decodable_by_degree
  double saved_original_blocks_rank = 0.0;    ///< s * decodable_by_rank
  /// Partial credit: Σ max(0, network_rank − server_state) over undecoded
  /// live segments — blocks the servers could still usefully pull.
  double pending_innovative_blocks = 0.0;
};

class Network {
 public:
  /// Supplies the s original payload blocks of a new segment. Default
  /// (when unset and payload_bytes > 0): deterministic pseudo-random
  /// bytes from the simulation RNG.
  using PayloadSource = std::function<std::vector<std::vector<std::uint8_t>>(
      const Peer& origin, coding::SegmentId id, std::size_t segment_size,
      std::size_t payload_bytes)>;

  explicit Network(ProtocolConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Replace the payload source (call before running).
  void set_payload_source(PayloadSource source);

  /// Replace the server peer-selection strategy (call before running).
  /// The default proto::UniformPullPolicy reproduces the paper's uniform
  /// pull; the policy draws from the shared simulation RNG stream.
  void set_server_pull_policy(std::unique_ptr<proto::PullPolicy> policy) {
    ICOLLECT_EXPECTS(policy != nullptr);
    pull_policy_ = std::move(policy);
    if (pull_policy_->wants_feedback() && tracker_ == nullptr) {
      tracker_ = std::make_unique<sched::RankTracker>();
    }
  }

  /// The scheduling state behind rarest/deficit pulls; nullptr under
  /// the uniform policies (ProtocolConfig::pull_policy).
  [[nodiscard]] const sched::RankTracker* pull_tracker() const noexcept {
    return tracker_.get();
  }

  /// Install (or clear, with nullptr) a protocol event trace sink. All
  /// events are delivered in virtual-time order. No cost when unset.
  /// The standard sink is an obs::TraceBuffer (ring + filtered JSONL);
  /// any callable still works.
  void set_trace_sink(TraceSink sink) { trace_ = std::move(sink); }

  /// Attach (or detach, with nullptr) a wall-clock profiler to the
  /// dispatch loop: every protocol event handler plus the GF(2^8) decode
  /// path runs under a named scope ("net.inject", "net.gossip",
  /// "net.server_pull", "net.decode", "net.ttl_expire", "net.depart").
  /// Timer cells are resolved here, once — with no profiler attached the
  /// per-event cost is a single null check.
  void set_profiler(obs::Profiler* profiler);

  /// Drive segment injection from a time-varying per-peer block rate
  /// λ(t) instead of the constant `config().lambda` (flash crowds,
  /// diurnal load). Segments then arrive per peer at rate λ(t)/s.
  /// The profile must outlive the network; pass nullptr to return to the
  /// constant-rate process.
  void set_arrival_profile(const workload::ArrivalProfile* profile);

  /// Fault injection: partition the first ⌊N·fraction⌋ peer slots away
  /// from the rest of the network on [at, heal_at). An isolated peer's
  /// gossip firings are blocked (μ spent, nothing arrives), it is never
  /// chosen as a gossip target, and server pulls that land on it are
  /// wasted. The simulator analogue of LoopbackNet::schedule_partition.
  void set_isolation_window(double fraction, double at, double heal_at);

  /// Advance virtual time to `t` (absolute).
  void run_until(sim::Time t);

  /// Convenience: run to `t`, then reset the measurement window so that
  /// subsequent steady-state estimates exclude the warm-up transient.
  void warm_up(sim::Time t);

  /// Stop all segment injection (end of the reporting streams) while
  /// gossip, TTL and server collection continue — the Theorem 4 regime.
  void stop_injection();

  // --- observers ----------------------------------------------------------
  [[nodiscard]] sim::Time now() const noexcept { return sim_.now(); }
  [[nodiscard]] const ProtocolConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const NetworkMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const proto::ServerBank& servers() const noexcept {
    return server_core_.bank();
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Peer& peer(std::size_t slot) const {
    ICOLLECT_EXPECTS(slot < peers_.size());
    return peers_[slot];
  }
  [[nodiscard]] const std::unordered_map<coding::SegmentId, SegmentInfo>&
  segment_registry() const noexcept {
    return registry_;
  }
  /// Adversary wiring (configured via cfg.adversary): whether a slot is
  /// one of the dishonest ⌊N·fraction⌋, and the shared tag oracle
  /// (nullptr when integrity_checks == 0).
  [[nodiscard]] bool is_dishonest(std::size_t slot) const {
    ICOLLECT_EXPECTS(slot < dishonest_.size());
    return dishonest_[slot] != 0;
  }
  [[nodiscard]] std::size_t dishonest_count() const noexcept {
    return dishonest_count_;
  }
  [[nodiscard]] const proto::IntegrityAuthority* integrity() const noexcept {
    return integrity_.get();
  }
  [[nodiscard]] bool is_isolated(std::size_t slot) const {
    ICOLLECT_EXPECTS(slot < isolated_.size());
    return isolated_[slot] != 0;
  }

  // --- steady-state estimates over the current measurement window ---------
  /// Session throughput: the rate at which servers obtain useful (state-
  /// advancing / innovative) blocks — exactly the N·c·η of Theorem 2.
  [[nodiscard]] double throughput() const;
  /// Throughput normalized by the aggregate demand N·λ (Fig. 3/4 y-axis).
  [[nodiscard]] double normalized_throughput() const;
  /// Goodput: original blocks of *completed* segments per unit time (a
  /// stricter deliverable-data metric than the paper's throughput).
  [[nodiscard]] double goodput() const;
  [[nodiscard]] double normalized_goodput() const;
  /// Time-weighted mean blocks per peer: the empirical e(t) ≈ ρ.
  [[nodiscard]] double mean_blocks_per_peer() const;
  /// Time-weighted fraction of empty peers: the empirical z_0.
  [[nodiscard]] double empty_peer_fraction() const;
  /// Mean block delivery delay (segment delay / s; Fig. 5 metric).
  [[nodiscard]] double mean_block_delay() const;
  [[nodiscard]] double mean_segment_delay() const;
  /// Empirical storage overhead (1 − z̃_0)·μ/γ analogue: gossip-received
  /// blocks per peer = e − λ/γ; reported directly as e minus demand term.
  [[nodiscard]] double storage_overhead() const;

  /// Instantaneous peer-degree counts: index i = number of peers whose
  /// buffer holds exactly i blocks, for i in [0, max_degree].
  [[nodiscard]] std::vector<std::uint64_t> peer_degree_counts(
      std::size_t max_degree) const;

  /// Exact + degree-approximate census of data buffered for future
  /// delivery (Theorem 4 / Fig. 6).
  [[nodiscard]] SavedDataCensus saved_data_census() const;

  [[nodiscard]] std::size_t live_segment_count() const;

  /// How much of the data generated by already-departed peers the
  /// servers managed to obtain (before or after the departure — in the
  /// indirect scheme collection continues posthumously from the coded
  /// copies other peers hold).
  [[nodiscard]] DepartedDataStats departed_data_stats() const;

  /// Same accounting restricted to each departed peer's *last words*:
  /// blocks injected within `window` time units before its departure —
  /// the paper's motivating case ("peers tend to leave soon after the
  /// quality degrades, such statistics ... may be the most useful").
  /// Only segments still in the registry are counted (see
  /// compact_registry()).
  [[nodiscard]] DepartedDataStats last_words_stats(double window) const;

  /// Long-run memory control: drop registry entries for segments that
  /// are fully resolved (decoded or lost, zero live copies). Their
  /// contribution to departed_data_stats() is folded into a running
  /// baseline first, so the aggregate recovery numbers survive; windowed
  /// last_words_stats() afterwards only reflects the uncompacted tail.
  /// Returns the number of entries removed.
  std::size_t compact_registry();

 private:
  void do_inject(std::size_t slot);
  void schedule_profile_injection(std::size_t slot);
  void do_gossip(std::size_t slot);
  void do_server_pull();
  void do_ttl_expire(std::size_t slot, std::uint64_t incarnation,
                     coding::BlockHandle handle);
  void do_depart(std::size_t slot);

  /// Wire one slot's core to the driver: the stored hook maintains the
  /// registry degree, occupancy lists and time-weighted metrics; arm_ttl
  /// schedules the core-drawn Exp(γ) expiry on the event queue, stamped
  /// with the occupant's incarnation.
  void wire_core(std::size_t slot);

  /// Pick an eligible gossip destination for (source, segment) or
  /// proto::kNoSelection if none exists (uniform over the eligible
  /// neighbors; see proto/selection.h).
  [[nodiscard]] std::size_t pick_gossip_target(std::size_t source,
                                               const coding::SegmentId& seg);

  /// Apply the configured corruption strategy to an egress block of a
  /// dishonest slot (counts metrics_.blocks_corrupted).
  void corrupt_block(std::size_t slot, coding::CodedBlock& block);

  void on_segment_decoded(const proto::ServerBank::DecodeEvent& event);
  void note_degree_drop(const coding::SegmentId& id, std::size_t count);
  void update_occupancy(std::size_t slot, std::size_t before_size);
  void mark_non_empty(std::size_t slot);
  void mark_empty(std::size_t slot);

  ProtocolConfig cfg_;
  sim::Simulator sim_;
  sim::Rng rng_;
  Topology topology_;
  std::vector<Peer> peers_;
  /// The server half of the protocol, on the simulator's virtual clock.
  obs::CallbackClock sim_clock_;
  proto::ServerCore server_core_;
  std::unique_ptr<proto::PullPolicy> pull_policy_;
  /// Deficit state for feedback policies, fed straight from ServerBank
  /// outcomes (the simulator needs no BUFFER_SUMMARY — availability is
  /// the global view itself). nullptr under uniform policies.
  std::unique_ptr<sched::RankTracker> tracker_;
  NetworkMetrics metrics_;
  std::unordered_map<coding::SegmentId, SegmentInfo> registry_;
  PayloadSource payload_source_;
  const workload::ArrivalProfile* arrival_profile_ = nullptr;
  TraceSink trace_;

  // Pre-resolved profiler cells (null = profiling off; see set_profiler).
  obs::Profiler::Timer* prof_inject_ = nullptr;
  obs::Profiler::Timer* prof_gossip_ = nullptr;
  obs::Profiler::Timer* prof_server_pull_ = nullptr;
  obs::Profiler::Timer* prof_decode_ = nullptr;
  obs::Profiler::Timer* prof_ttl_ = nullptr;
  obs::Profiler::Timer* prof_depart_ = nullptr;

  void emit(TraceEventKind kind, std::size_t slot,
            const coding::SegmentId& segment, std::uint64_t aux) {
    if (trace_) trace_(TraceEvent{kind, sim_.now(), slot, segment, aux});
  }

  // Per-peer recurring processes (stable addresses → unique_ptr).
  std::vector<std::unique_ptr<sim::PoissonProcess>> injectors_;
  std::vector<std::unique_ptr<sim::PoissonProcess>> gossipers_;
  std::vector<std::unique_ptr<sim::PoissonProcess>> server_pullers_;

  // O(1) uniform selection among peers with non-empty buffers.
  std::vector<std::size_t> non_empty_slots_;
  std::vector<std::size_t> non_empty_pos_;  // slot -> index+1 (0 = absent)

  // Reused by do_server_pull's recode so steady-state pulls are
  // allocation-free (buffers grow once, then stay).
  coding::CodedBlock pull_scratch_;

  // --- adversary / fault-injection state (all inert by default) -----------
  /// Shared tag oracle (cfg.adversary.integrity_checks > 0); peers
  /// register injected segments, delivery paths verify against it.
  std::unique_ptr<proto::IntegrityAuthority> integrity_;
  std::vector<std::uint8_t> dishonest_;  ///< 1 = slot corrupts its egress
  std::size_t dishonest_count_ = 0;
  /// Per-dishonest-slot cache of the first genuinely sent block, for the
  /// replay strategy; cleared when the occupant departs.
  std::vector<std::optional<coding::CodedBlock>> replay_cache_;
  std::vector<std::uint8_t> isolated_;   ///< 1 = currently partitioned away

  std::unordered_map<coding::OriginId, sim::Time> departed_origins_;
  // Contribution of compacted registry entries to the departed totals.
  DepartedDataStats compacted_departed_;
  std::size_t empty_count_ = 0;
  std::size_t full_count_ = 0;
  coding::OriginId next_origin_ = 0;
  bool injection_stopped_ = false;
};

}  // namespace icollect::p2p
