#include "p2p/network_telemetry.h"

#include "p2p/direct_collector.h"
#include "p2p/network.h"

namespace icollect::p2p {

namespace {

/// Register a pull-gauge that reads a std::uint64_t counter.
template <typename Fn>
void count_gauge(obs::MetricsRegistry& reg, const char* name, Fn fn) {
  reg.gauge(name, [fn] { return static_cast<double>(fn()); });
}

}  // namespace

void register_network_metrics(obs::MetricsRegistry& reg, const Network& net) {
  const NetworkMetrics& m = net.metrics();
  const proto::ServerBank& srv = net.servers();

  // Lifetime counters (the measurement plane of Theorems 1-4).
  count_gauge(reg, "net.segments_injected", [&m] { return m.segments_injected; });
  count_gauge(reg, "net.blocks_injected", [&m] { return m.blocks_injected; });
  count_gauge(reg, "net.gossip_sent", [&m] { return m.gossip_sent; });
  count_gauge(reg, "net.gossip_no_target", [&m] { return m.gossip_no_target; });
  count_gauge(reg, "net.gossip_idle", [&m] { return m.gossip_idle; });
  count_gauge(reg, "net.gossip_lost",
              [&m] { return m.gossip_lost_in_transit; });
  count_gauge(reg, "net.injection_blocked",
              [&m] { return m.injection_blocked; });
  count_gauge(reg, "net.ttl_expirations", [&m] { return m.ttl_expirations; });
  count_gauge(reg, "net.server_pull_attempts",
              [&m] { return m.server_pull_attempts; });
  count_gauge(reg, "net.server_empty_probes",
              [&m] { return m.server_empty_probes; });
  count_gauge(reg, "net.peers_departed", [&m] { return m.peers_departed; });
  count_gauge(reg, "net.blocks_lost_to_churn",
              [&m] { return m.blocks_lost_to_churn; });
  count_gauge(reg, "net.segments_lost", [&m] { return m.segments_lost; });
  count_gauge(reg, "net.crc_failures",
              [&m] { return m.payload_crc_failures; });

  // Server-side collection state.
  count_gauge(reg, "net.server_pulls", [&srv] { return srv.pulls(); });
  count_gauge(reg, "net.innovative_pulls",
              [&srv] { return srv.innovative_pulls(); });
  count_gauge(reg, "net.redundant_pulls",
              [&srv] { return srv.redundant_pulls(); });
  count_gauge(reg, "net.segments_decoded",
              [&srv] { return srv.segments_decoded(); });
  count_gauge(reg, "net.original_blocks_recovered",
              [&srv] { return srv.original_blocks_recovered(); });
  count_gauge(reg, "net.segments_in_progress",
              [&srv] { return srv.segments_in_progress(); });

  // Instantaneous network state + derived steady-state estimates.
  reg.gauge("net.blocks_in_network", [&m] { return m.total_blocks.value(); });
  reg.gauge("net.empty_peers", [&m] { return m.empty_peers.value(); });
  reg.gauge("net.full_peers", [&m] { return m.full_peers.value(); });
  reg.gauge("net.blocks_per_peer",
            [&net] { return net.mean_blocks_per_peer(); });
  reg.gauge("net.empty_peer_fraction",
            [&net] { return net.empty_peer_fraction(); });
  reg.gauge("net.throughput", [&net] { return net.throughput(); });
  reg.gauge("net.normalized_throughput",
            [&net] { return net.normalized_throughput(); });
  reg.gauge("net.goodput", [&net] { return net.goodput(); });
  reg.gauge("net.mean_block_delay",
            [&net] { return net.mean_block_delay(); });
  reg.gauge("net.mean_segment_delay",
            [&net] { return net.mean_segment_delay(); });
  reg.gauge("net.storage_overhead",
            [&net] { return net.storage_overhead(); });

  // Departed-peer recovery (the paper's loss-resilience axis). These
  // walk the segment registry, which is fine at snapshot frequency.
  reg.gauge("net.departed_origins", [&net] {
    return static_cast<double>(net.departed_data_stats().departed_origins);
  });
  reg.gauge("net.departed_blocks_generated", [&net] {
    return static_cast<double>(net.departed_data_stats().blocks_generated);
  });
  reg.gauge("net.departed_blocks_delivered", [&net] {
    return static_cast<double>(net.departed_data_stats().blocks_delivered);
  });
  reg.gauge("net.departed_recovery_fraction", [&net] {
    return net.departed_data_stats().recovery_fraction();
  });
}

void register_direct_collector_metrics(obs::MetricsRegistry& reg,
                                       const DirectCollector& dc) {
  const DirectCollectorMetrics& m = dc.metrics();
  count_gauge(reg, "direct.blocks_generated",
              [&m] { return m.blocks_generated; });
  count_gauge(reg, "direct.blocks_collected",
              [&m] { return m.blocks_collected; });
  count_gauge(reg, "direct.blocks_dropped_overflow",
              [&m] { return m.blocks_dropped_overflow; });
  count_gauge(reg, "direct.blocks_lost_to_churn",
              [&m] { return m.blocks_lost_to_churn; });
  count_gauge(reg, "direct.peers_departed",
              [&m] { return m.peers_departed; });
  count_gauge(reg, "direct.pull_attempts", [&m] { return m.pull_attempts; });
  count_gauge(reg, "direct.idle_pulls", [&m] { return m.idle_pulls; });
  reg.gauge("direct.backlog", [&m] { return m.backlog.value(); });
  reg.gauge("direct.throughput", [&dc] { return dc.throughput(); });
  reg.gauge("direct.normalized_throughput",
            [&dc] { return dc.normalized_throughput(); });
  reg.gauge("direct.mean_delay", [&dc] { return dc.mean_delay(); });
  reg.gauge("direct.loss_fraction", [&dc] { return dc.loss_fraction(); });
  reg.gauge("direct.departed_recovery_fraction", [&dc] {
    return dc.departed_data_stats().recovery_fraction();
  });
}

}  // namespace icollect::p2p
