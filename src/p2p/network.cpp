#include "p2p/network.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/crc32.h"
#include "p2p/churn.h"
#include "proto/selection.h"
#include "sched/pull_policies.h"

namespace icollect::p2p {

namespace {
/// Rejection-sampling attempts before falling back to a full scan when
/// selecting a gossip target u.a.r. among eligible neighbors.
constexpr int kTargetSampleTries = 12;

/// Same, for finding a holder of the wanted segment among non-empty
/// peers under a scheduling pull policy.
constexpr int kHolderSampleTries = 16;
}  // namespace

Network::Network(ProtocolConfig cfg)
    : cfg_{std::move(cfg)},
      rng_{cfg_.seed},
      topology_{Topology::build(cfg_, rng_)},
      sim_clock_{[this] { return sim_.now(); }},
      server_core_{/*keep_payloads=*/cfg_.payload_bytes > 0, sim_clock_},
      pull_policy_{
          sched::make_pull_policy(pull_policy_kind(cfg_.pull_policy))} {
  cfg_.validate();
  if (pull_policy_->wants_feedback()) {
    tracker_ = std::make_unique<sched::RankTracker>();
  }
  proto::PeerCore::Params core_params;
  core_params.segment_size = cfg_.segment_size;
  core_params.buffer_cap = cfg_.buffer_cap;
  core_params.gamma = cfg_.gamma;
  core_params.payload_bytes = cfg_.payload_bytes;
  core_params.gossip_policy = cfg_.gossip_policy;
  peers_.reserve(cfg_.num_peers);
  for (std::size_t slot = 0; slot < cfg_.num_peers; ++slot) {
    peers_.emplace_back(slot, core_params, next_origin_++, rng_);
    wire_core(slot);
  }
  // Adversary wiring (inert at the defaults: no authority, no dishonest
  // slots, nobody isolated — and none of it draws from the RNG stream).
  dishonest_.assign(cfg_.num_peers, 0);
  isolated_.assign(cfg_.num_peers, 0);
  if (cfg_.adversary.integrity_checks > 0) {
    // The PRF key is seed-derived but domain-separated from every seed
    // used for an RNG stream.
    integrity_ = std::make_unique<proto::IntegrityAuthority>(
        proto::IntegrityParams{
            common::splitmix64(cfg_.seed ^ 0x1A76E9D2B4C05A31ULL),
            cfg_.adversary.integrity_checks});
    server_core_.set_integrity(integrity_.get());
    for (auto& p : peers_) p.core.set_integrity(integrity_.get());
  }
  dishonest_count_ = static_cast<std::size_t>(
      static_cast<double>(cfg_.num_peers) *
      cfg_.adversary.dishonest_fraction);
  for (std::size_t slot = 0; slot < dishonest_count_; ++slot) {
    dishonest_[slot] = 1;
  }
  if (dishonest_count_ > 0) replay_cache_.resize(cfg_.num_peers);

  non_empty_pos_.assign(cfg_.num_peers, 0);
  empty_count_ = cfg_.num_peers;
  metrics_.empty_peers.update(0.0, static_cast<double>(empty_count_));
  metrics_.full_peers.update(0.0, 0.0);
  metrics_.total_blocks.update(0.0, 0.0);

  server_core_.set_decode_callback(
      [this](const proto::ServerBank::DecodeEvent& ev) {
        on_segment_decoded(ev);
      });

  // Expected concurrent events: one injector + one gossiper timer per
  // peer, up to buffer_cap TTL timers per peer, one timer per server,
  // plus churn departure timers. Reserving up front keeps the hot loop
  // free of heap regrow/rehash churn.
  const std::size_t ttl_slack =
      cfg_.num_peers * std::min<std::size_t>(cfg_.buffer_cap, 2);
  sim_.reserve_events(cfg_.num_peers * (cfg_.churn.enabled ? 3 : 2) +
                      ttl_slack + cfg_.num_servers + 64);

  // Per-peer recurring processes. Rates are the paper's: injection λ/s,
  // gossip μ. Empty-buffer gossip firings are thinned inside do_gossip,
  // which leaves the conditional process exactly the one in the model.
  const double inject_rate =
      cfg_.lambda / static_cast<double>(cfg_.segment_size);
  for (std::size_t slot = 0; slot < cfg_.num_peers; ++slot) {
    injectors_.push_back(std::make_unique<sim::PoissonProcess>(
        sim_, rng_, inject_rate, [this, slot] { do_inject(slot); }));
    gossipers_.push_back(std::make_unique<sim::PoissonProcess>(
        sim_, rng_, cfg_.mu, [this, slot] { do_gossip(slot); }));
    injectors_.back()->start();
    gossipers_.back()->start();
  }
  for (std::size_t srv = 0; srv < cfg_.num_servers; ++srv) {
    server_pullers_.push_back(std::make_unique<sim::PoissonProcess>(
        sim_, rng_, cfg_.server_rate, [this] { do_server_pull(); }));
    server_pullers_.back()->start();
  }
  if (cfg_.churn.enabled) {
    for (std::size_t slot = 0; slot < cfg_.num_peers; ++slot) {
      sim_.schedule_after(sample_lifetime(cfg_.churn, rng_),
                          [this, slot] { do_depart(slot); });
    }
  }
}

void Network::wire_core(std::size_t slot) {
  proto::PeerCore& core = peers_[slot].core;
  // Every block landing in a peer buffer — injection, gossip, re-seed —
  // funnels through this hook: the driver maintains what only the global
  // view knows (registry degree, occupancy lists, time-weighted totals).
  core.set_stored_hook(
      [this, slot](const coding::SegmentId& seg, std::size_t before) {
        const auto rit = registry_.find(seg);
        ICOLLECT_ENSURES(rit != registry_.end());
        ++rit->second.degree;
        metrics_.total_blocks.add(sim_.now(), 1.0);
        update_occupancy(slot, before);
      });
  // The core draws the Exp(γ) lifetime; the driver owns the clock, so
  // expiry lands on the event queue stamped with the occupant's
  // incarnation (delayed expiries of a departed occupant are no-ops).
  core.set_arm_ttl([this, slot](coding::BlockHandle handle, double delay) {
    const std::uint64_t incarnation = peers_[slot].incarnation;
    sim_.schedule_after(delay, [this, slot, incarnation, handle] {
      do_ttl_expire(slot, incarnation, handle);
    });
  });
}

void Network::set_payload_source(PayloadSource source) {
  payload_source_ = std::move(source);
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    if (payload_source_) {
      peers_[slot].core.set_payload_source(
          [this, slot](const coding::SegmentId& id, std::size_t s,
                       std::size_t payload_bytes) {
            return payload_source_(peers_[slot], id, s, payload_bytes);
          });
    } else {
      peers_[slot].core.set_payload_source(nullptr);
    }
  }
}

void Network::set_profiler(obs::Profiler* profiler) {
  auto cell = [profiler](const char* name) {
    return profiler != nullptr ? &profiler->timer(name) : nullptr;
  };
  prof_inject_ = cell("net.inject");
  prof_gossip_ = cell("net.gossip");
  prof_server_pull_ = cell("net.server_pull");
  prof_decode_ = cell("net.decode");
  prof_ttl_ = cell("net.ttl_expire");
  prof_depart_ = cell("net.depart");
}

void Network::set_arrival_profile(const workload::ArrivalProfile* profile) {
  arrival_profile_ = profile;
  if (profile != nullptr) {
    for (auto& inj : injectors_) inj->stop();
    if (!injection_stopped_) {
      for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
        schedule_profile_injection(slot);
      }
    }
  } else if (!injection_stopped_) {
    for (auto& inj : injectors_) inj->start();
  }
}

void Network::schedule_profile_injection(std::size_t slot) {
  // Per-peer segment arrivals at rate λ(t)/s: sample the next λ(t) event
  // by thinning, then accept it with probability 1/s — an exact thinning
  // of the block process down to the segment process.
  ICOLLECT_EXPECTS(arrival_profile_ != nullptr);
  const double at =
      workload::next_arrival(*arrival_profile_, sim_.now(), rng_);
  sim_.schedule_at(at, [this, slot] {
    if (injection_stopped_ || arrival_profile_ == nullptr) return;
    if (rng_.uniform() * static_cast<double>(cfg_.segment_size) < 1.0) {
      do_inject(slot);
    }
    schedule_profile_injection(slot);
  });
}

void Network::set_isolation_window(double fraction, double at,
                                   double heal_at) {
  ICOLLECT_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  ICOLLECT_EXPECTS(heal_at > at);
  const auto count = static_cast<std::size_t>(
      static_cast<double>(cfg_.num_peers) * fraction);
  sim_.schedule_at(at, [this, count] {
    for (std::size_t slot = 0; slot < count; ++slot) isolated_[slot] = 1;
  });
  sim_.schedule_at(heal_at, [this, count] {
    for (std::size_t slot = 0; slot < count; ++slot) isolated_[slot] = 0;
  });
}

void Network::run_until(sim::Time t) { sim_.run_until(t); }

void Network::warm_up(sim::Time t) {
  run_until(t);
  metrics_.reset_measurement_window(sim_.now());
}

void Network::stop_injection() {
  injection_stopped_ = true;
  for (auto& p : injectors_) p->stop();
}

void Network::do_inject(std::size_t slot) {
  const obs::ProfScope prof{prof_inject_};
  Peer& p = peers_[slot];
  if (!p.core.can_inject()) {
    ++metrics_.injection_blocked;
    return;
  }
  // Register the segment before inject(): the per-block stored hooks
  // look it up as each systematic block lands.
  const coding::SegmentId id = p.core.next_segment_id();
  SegmentInfo info;
  info.injected_at = sim_.now();
  info.origin_slot = slot;
  info.segment_size = cfg_.segment_size;
  const auto rit = registry_.emplace(id, std::move(info)).first;
  proto::PeerCore::Injected injected = p.core.inject();
  ICOLLECT_ENSURES(injected.id == id);
  rit->second.original_crcs = std::move(injected.crcs);
  ++metrics_.segments_injected;
  metrics_.blocks_injected += cfg_.segment_size;
  metrics_.injected_blocks_window.record(cfg_.segment_size);
  emit(TraceEventKind::kSegmentInjected, slot, id, cfg_.segment_size);
}

std::size_t Network::pick_gossip_target(std::size_t source,
                                        const coding::SegmentId& seg) {
  // Sender-side filtering: the simulator's global view applies the
  // receiver's storage rule (proto::PeerCore::can_accept) before
  // sending, so every gossiped block lands.
  const auto eligible = [this, &seg](std::size_t cand) {
    return isolated_[cand] == 0 && peers_[cand].core.can_accept(seg);
  };
  return proto::uniform_over_eligible(
      rng_, topology_.degree(source), kTargetSampleTries,
      [this, source](std::size_t i) { return topology_.neighbor(source, i); },
      proto::EligibleRef{eligible});
}

void Network::do_gossip(std::size_t slot) {
  const obs::ProfScope prof{prof_gossip_};
  Peer& a = peers_[slot];
  if (isolated_[slot] != 0) {
    ++metrics_.gossip_blocked_isolated;  // μ spent, partitioned away
    return;
  }
  if (!a.core.has_blocks()) {
    ++metrics_.gossip_idle;
    return;
  }
  const coding::SegmentId seg = a.core.choose_gossip_segment();
  const std::size_t target = pick_gossip_target(slot, seg);
  if (target == proto::kNoSelection) {
    ++metrics_.gossip_no_target;
    return;
  }
  if (cfg_.gossip_loss > 0.0 && rng_.bernoulli(cfg_.gossip_loss)) {
    ++metrics_.gossip_lost_in_transit;  // μ spent, block never arrives
    emit(TraceEventKind::kGossipLost, slot, seg, target);
    return;
  }
  coding::CodedBlock block = a.core.recode(seg);
  if (dishonest_[slot] != 0) corrupt_block(slot, block);
  // The receiver's integrity check runs at delivery. The simulator's
  // sender-side can_accept filtering already guaranteed storage room;
  // this is the one acceptance rule a global view cannot pre-apply,
  // because it depends on the block's actual bytes.
  if (integrity_ != nullptr &&
      integrity_->verify(block) != proto::VerifyResult::kOk) {
    ++metrics_.blocks_quarantined;
    emit(TraceEventKind::kBlockQuarantined, target, block.segment, slot);
    return;
  }
  peers_[target].core.store(std::move(block));
  ++metrics_.gossip_sent;
  emit(TraceEventKind::kGossipSent, slot, seg, target);
}

void Network::do_server_pull() {
  const obs::ProfScope prof{prof_server_pull_};
  ++metrics_.server_pull_attempts;
  std::size_t slot = proto::kNoSelection;
  // Scheduling policies name the segment they want and bias peer
  // selection toward its holders — here with the simulator's exact
  // global view in place of the live BUFFER_SUMMARY estimates. A want
  // with no live holder is parked (suspend) and the pull falls back to
  // the paper's uniform rule, which doubles as discovery.
  std::optional<coding::SegmentId> want;
  if (tracker_ != nullptr) {
    if (tracker_->open_count() == 0 && tracker_->suspended_count() > 0) {
      tracker_->reactivate_all();
    }
    want = pull_policy_->want_segment(rng_, *tracker_);
    if (want) {
      if (!non_empty_slots_.empty()) {
        const auto by_slot = [&](std::size_t i) {
          return non_empty_slots_[i];
        };
        const auto holds = [&](std::size_t s) {
          return peers_[s].core.buffer().find(*want) != nullptr &&
                 !tracker_->is_exhausted(s, *want);
        };
        slot = proto::uniform_over_eligible(rng_, non_empty_slots_.size(),
                                            kHolderSampleTries, by_slot,
                                            holds);
      }
      if (slot == proto::kNoSelection) {
        tracker_->suspend(*want);
        want.reset();
      }
    }
  }
  if (slot == proto::kNoSelection) {
    if (cfg_.pull_policy == PullPolicy::kUniformAll) {
      // Blind probing: the pull is spent even if the probed peer has
      // nothing to offer.
      slot = pull_policy_->pick(rng_, peers_.size());
      if (!peers_[slot].core.has_blocks()) {
        ++metrics_.server_empty_probes;
        return;
      }
    } else {
      if (non_empty_slots_.empty()) return;
      slot =
          non_empty_slots_[pull_policy_->pick(rng_, non_empty_slots_.size())];
    }
  }
  Peer& d = peers_[slot];
  if (isolated_[slot] != 0) {
    // The pulled peer is unreachable: the pull is spent, nothing returns.
    ++metrics_.pulls_blocked_isolated;
    return;
  }
  const coding::SegmentId seg = want ? *want : d.core.choose_pull_segment();
  metrics_.server_pulls_window.record();
  proto::ServerBank::PullResult result;
  {
    // The GF(2^8) decode path: re-coding the pulled block and reducing
    // it through the server-side progressive decoder.
    const obs::ProfScope decode_prof{prof_decode_};
    if (cfg_.fidelity == CollectionFidelity::kStateCounter) {
      result = server_core_.on_pull_counted(seg, cfg_.segment_size);
    } else {
      // Recode into a long-lived scratch block so the steady-state pull
      // path performs no heap allocation.
      d.core.recode_into(seg, pull_scratch_);
      if (dishonest_[slot] != 0) corrupt_block(slot, pull_scratch_);
      result = server_core_.on_pull_block(pull_scratch_);
    }
  }
  if (result == proto::ServerBank::PullResult::kPolluted) {
    // Quarantined before Gaussian elimination; the pull is spent.
    ++metrics_.polluted_pulls;
    emit(TraceEventKind::kBlockQuarantined, slot, pull_scratch_.segment,
         slot);
    return;
  }
  // Attribute by the block actually offered: a replaying adversary may
  // answer the pull with a cached block of a *different* segment.
  const coding::SegmentId& offered =
      cfg_.fidelity == CollectionFidelity::kStateCounter
          ? seg
          : pull_scratch_.segment;
  if (result == proto::ServerBank::PullResult::kInnovative) {
    metrics_.innovative_pulls_window.record();
    const auto rit = registry_.find(offered);
    ICOLLECT_ENSURES(rit != registry_.end());
    ++rit->second.collected;
  }
  if (tracker_ != nullptr) {
    // Deficit feed, straight from the bank outcome. Decodes already
    // left the tracker via on_segment_decoded; redundant pulls build
    // the suspension streak that keeps rarest-first off segments whose
    // live span is exhausted.
    if (result == proto::ServerBank::PullResult::kInnovative) {
      tracker_->on_state(offered, server_core_.bank().state(offered),
                         cfg_.segment_size);
    } else if (result == proto::ServerBank::PullResult::kRedundant) {
      // The answering slot's whole span for this segment is already
      // known; stop re-targeting it until the suspension cycle resets.
      tracker_->mark_exhausted(slot, offered);
      tracker_->on_redundant(offered);
    }
  }
  emit(TraceEventKind::kServerPull, slot, offered,
       result == proto::ServerBank::PullResult::kInnovative ? 1 : 0);
}

void Network::on_segment_decoded(const proto::ServerBank::DecodeEvent& event) {
  if (tracker_ != nullptr) tracker_->on_decoded(event.id);
  const auto it = registry_.find(event.id);
  ICOLLECT_ENSURES(it != registry_.end());
  SegmentInfo& info = it->second;
  info.decoded = true;
  info.decoded_at = event.when;
  const auto s = static_cast<double>(info.segment_size);
  const double delay = event.when - info.injected_at;
  metrics_.segment_delay.add(delay);
  metrics_.block_delay.add(delay / s);
  metrics_.decoded_original_blocks.record(info.segment_size);
  emit(TraceEventKind::kSegmentDecoded, info.origin_slot, event.id,
       info.segment_size);
  if (event.decoder != nullptr && !info.original_crcs.empty()) {
    for (std::size_t k = 0; k < info.segment_size; ++k) {
      const auto& blk = event.decoder->original(k);
      if (common::crc32({blk.data(), blk.size()}) !=
          info.original_crcs[k]) {
        ++metrics_.payload_crc_failures;
      }
    }
  }
}

void Network::do_ttl_expire(std::size_t slot, std::uint64_t incarnation,
                            coding::BlockHandle handle) {
  const obs::ProfScope prof{prof_ttl_};
  Peer& p = peers_[slot];
  if (p.incarnation != incarnation) return;  // occupant changed (churn)
  const std::size_t before = p.buffer().size();
  const auto seg = p.core.on_ttl_expired(handle);
  if (!seg) return;  // already removed
  ++metrics_.ttl_expirations;
  metrics_.total_blocks.add(sim_.now(), -1.0);
  emit(TraceEventKind::kTtlExpired, slot, *seg, 0);
  note_degree_drop(*seg, 1);
  update_occupancy(slot, before);
}

void Network::do_depart(std::size_t slot) {
  const obs::ProfScope prof{prof_depart_};
  Peer& p = peers_[slot];
  // Account every buffered block's disappearance in the registry.
  for (const auto& seg_id : p.buffer().segments()) {
    const coding::SegmentBuffer* sb = p.buffer().find(seg_id);
    note_degree_drop(seg_id, sb->block_count());
  }
  const std::size_t before = p.buffer().size();
  const std::size_t lost = p.core.clear_all();
  ++metrics_.peers_departed;
  metrics_.blocks_lost_to_churn += lost;
  metrics_.total_blocks.add(sim_.now(), -static_cast<double>(lost));
  emit(TraceEventKind::kPeerDeparted, slot, coding::SegmentId{}, lost);
  update_occupancy(slot, before);

  // Replacement model: a fresh peer joins the same slot immediately.
  departed_origins_.emplace(p.origin(), sim_.now());
  ++p.incarnation;
  p.core.rebirth(next_origin_++);
  // The fresh occupant has sent nothing yet; a stale replay of the
  // predecessor's block would reference the departed origin.
  if (!replay_cache_.empty()) replay_cache_[slot].reset();

  sim_.schedule_after(sample_lifetime(cfg_.churn, rng_),
                      [this, slot] { do_depart(slot); });
}

void Network::corrupt_block(std::size_t slot, coding::CodedBlock& block) {
  ++metrics_.blocks_corrupted;
  switch (cfg_.adversary.strategy) {
    case proto::CorruptionStrategy::kRandomPayload:
      // Honest coding vector, scrambled data: the classic pollution
      // attack. Undetectable without a payload-aware check; with one,
      // caught w.p. 1 - 256^-checks.
      for (auto& byte : block.payload) {
        byte = static_cast<std::uint8_t>(rng_.gf_element());
      }
      break;
    case proto::CorruptionStrategy::kGarbageCoefficients:
      // Honest payload, scrambled header: frames and transport CRCs all
      // pass; only the coupled (c, p) relation exposes it. Kept
      // non-degenerate so the junk filter honest peers already run
      // cannot catch it trivially.
      rng_.fill_gf(block.coefficients);
      if (block.is_degenerate()) {
        block.coefficients.front() = rng_.gf_nonzero();
      }
      break;
    case proto::CorruptionStrategy::kReplay:
      // Resend the first block this occupant genuinely produced: valid
      // by construction, so it passes every per-block check and is
      // measured as redundancy instead.
      if (replay_cache_[slot].has_value()) {
        block = *replay_cache_[slot];
      } else {
        replay_cache_[slot] = block;
      }
      break;
  }
}

void Network::note_degree_drop(const coding::SegmentId& id,
                               std::size_t count) {
  const auto it = registry_.find(id);
  ICOLLECT_ENSURES(it != registry_.end());
  ICOLLECT_ENSURES(it->second.degree >= count);
  it->second.degree -= count;
  if (it->second.degree == 0 && !it->second.decoded && !it->second.lost) {
    it->second.lost = true;
    ++metrics_.segments_lost;
    emit(TraceEventKind::kSegmentLost, it->second.origin_slot, id,
         it->second.collected);
  }
}

void Network::update_occupancy(std::size_t slot, std::size_t before_size) {
  const Peer& p = peers_[slot];
  const std::size_t after = p.buffer().size();
  if (before_size == after) return;
  const bool was_empty = before_size == 0;
  const bool is_empty = after == 0;
  const bool was_full = before_size >= cfg_.buffer_cap;
  const bool is_full = after >= cfg_.buffer_cap;
  if (was_empty && !is_empty) {
    --empty_count_;
    mark_non_empty(slot);
    metrics_.empty_peers.update(sim_.now(), static_cast<double>(empty_count_));
  } else if (!was_empty && is_empty) {
    ++empty_count_;
    mark_empty(slot);
    metrics_.empty_peers.update(sim_.now(), static_cast<double>(empty_count_));
  }
  if (was_full != is_full) {
    full_count_ += is_full ? 1 : -1;
    metrics_.full_peers.update(sim_.now(), static_cast<double>(full_count_));
  }
}

void Network::mark_non_empty(std::size_t slot) {
  if (non_empty_pos_[slot] != 0) return;
  non_empty_slots_.push_back(slot);
  non_empty_pos_[slot] = non_empty_slots_.size();  // index + 1
}

void Network::mark_empty(std::size_t slot) {
  const std::size_t pos1 = non_empty_pos_[slot];
  if (pos1 == 0) return;
  const std::size_t pos = pos1 - 1;
  const std::size_t last = non_empty_slots_.size() - 1;
  if (pos != last) {
    non_empty_slots_[pos] = non_empty_slots_[last];
    non_empty_pos_[non_empty_slots_[pos]] = pos + 1;
  }
  non_empty_slots_.pop_back();
  non_empty_pos_[slot] = 0;
}

double Network::throughput() const {
  return metrics_.innovative_pulls_window.rate(sim_.now());
}

double Network::normalized_throughput() const {
  const double demand =
      static_cast<double>(cfg_.num_peers) * cfg_.lambda;
  return demand > 0.0 ? throughput() / demand : 0.0;
}

double Network::goodput() const {
  return metrics_.decoded_original_blocks.rate(sim_.now());
}

double Network::normalized_goodput() const {
  const double demand =
      static_cast<double>(cfg_.num_peers) * cfg_.lambda;
  return demand > 0.0 ? goodput() / demand : 0.0;
}

double Network::mean_blocks_per_peer() const {
  return metrics_.total_blocks.mean(sim_.now()) /
         static_cast<double>(cfg_.num_peers);
}

double Network::empty_peer_fraction() const {
  return metrics_.empty_peers.mean(sim_.now()) /
         static_cast<double>(cfg_.num_peers);
}

double Network::mean_block_delay() const {
  return metrics_.block_delay.mean();
}

double Network::mean_segment_delay() const {
  return metrics_.segment_delay.mean();
}

double Network::storage_overhead() const {
  // Theorem 1 decomposes ρ = overhead + λ/γ; the measured analogue is the
  // mean buffered blocks per peer minus the peer's own injected share.
  return mean_blocks_per_peer() - cfg_.lambda / cfg_.gamma;
}

std::vector<std::uint64_t> Network::peer_degree_counts(
    std::size_t max_degree) const {
  std::vector<std::uint64_t> counts(max_degree + 1, 0);
  for (const auto& p : peers_) {
    const std::size_t d = std::min(p.buffer().size(), max_degree);
    ++counts[d];
  }
  return counts;
}

SavedDataCensus Network::saved_data_census() const {
  SavedDataCensus out;
  // Exact union-rank per live segment: merge the coefficient rows held by
  // every peer into one probe decoder per segment. Cost is O(total
  // blocks) gathering plus small eliminations — fine at census frequency.
  std::unordered_map<coding::SegmentId, coding::Decoder> rank_probe;
  for (const auto& p : peers_) {
    for (const auto& seg_id : p.buffer().segments()) {
      const coding::SegmentBuffer* sb = p.buffer().find(seg_id);
      auto it = rank_probe.find(seg_id);
      if (it == rank_probe.end()) {
        it = rank_probe
                 .emplace(seg_id, coding::Decoder{seg_id,
                                                  sb->segment_size(), 0})
                 .first;
      }
      coding::Decoder& dec = it->second;
      sb->for_each_block([&dec, &seg_id](const coding::CodedBlock& b) {
        if (!dec.complete()) {
          coding::CodedBlock coeff_only;
          coeff_only.segment = seg_id;
          coeff_only.coefficients = b.coefficients;
          dec.add(coeff_only);
        }
      });
    }
  }
  for (const auto& [id, info] : registry_) {
    if (info.degree == 0) continue;
    ++out.live_segments;
    if (info.decoded) continue;
    ++out.undecoded_live_segments;
    const auto s = static_cast<double>(info.segment_size);
    if (info.degree >= info.segment_size) {
      ++out.decodable_by_degree;
      out.saved_original_blocks_degree += s;
    }
    const auto pit = rank_probe.find(id);
    const std::size_t net_rank =
        pit == rank_probe.end() ? 0 : pit->second.rank();
    if (net_rank == info.segment_size) {
      ++out.decodable_by_rank;
      out.saved_original_blocks_rank += s;
    }
    const std::size_t server_state = server_core_.bank().state(id);
    if (net_rank > server_state) {
      out.pending_innovative_blocks +=
          static_cast<double>(net_rank - server_state);
    }
  }
  return out;
}

DepartedDataStats Network::departed_data_stats() const {
  DepartedDataStats out =
      last_words_stats(std::numeric_limits<double>::infinity());
  out.blocks_generated += compacted_departed_.blocks_generated;
  out.blocks_delivered += compacted_departed_.blocks_delivered;
  return out;
}

std::size_t Network::compact_registry() {
  std::size_t removed = 0;
  for (auto it = registry_.begin(); it != registry_.end();) {
    const SegmentInfo& info = it->second;
    const bool resolved = info.degree == 0 && (info.decoded || info.lost);
    if (!resolved) {
      ++it;
      continue;
    }
    if (departed_origins_.contains(it->first.origin)) {
      compacted_departed_.blocks_generated += info.segment_size;
      compacted_departed_.blocks_delivered +=
          std::min(info.collected, info.segment_size);
    }
    it = registry_.erase(it);
    ++removed;
  }
  return removed;
}

DepartedDataStats Network::last_words_stats(double window) const {
  ICOLLECT_EXPECTS(window > 0.0);
  DepartedDataStats out;
  out.departed_origins = departed_origins_.size();
  for (const auto& [id, info] : registry_) {
    const auto dit = departed_origins_.find(id.origin);
    if (dit == departed_origins_.end()) continue;
    if (info.injected_at < dit->second - window) continue;
    out.blocks_generated += info.segment_size;
    out.blocks_delivered += std::min(info.collected, info.segment_size);
  }
  return out;
}

std::size_t Network::live_segment_count() const {
  std::size_t n = 0;
  for (const auto& [id, info] : registry_) {
    if (info.degree > 0) ++n;
  }
  return n;
}

}  // namespace icollect::p2p
