#include "p2p/direct_collector.h"

#include <utility>

#include "p2p/churn.h"

namespace icollect::p2p {

DirectCollector::DirectCollector(ProtocolConfig cfg, OverflowPolicy policy)
    : cfg_{std::move(cfg)}, policy_{policy}, rng_{cfg_.seed ^ 0xD19EC7C0ULL} {
  cfg_.validate();
  queues_.resize(cfg_.num_peers);
  non_empty_pos_.assign(cfg_.num_peers, 0);
  metrics_.backlog.update(0.0, 0.0);

  // Per-peer generation: one-shot rescheduling so a time-varying profile
  // (flash crowd) can modulate the rate; constant λ is the default.
  for (std::size_t slot = 0; slot < cfg_.num_peers; ++slot) {
    schedule_next_generation(slot);
  }
  for (std::size_t srv = 0; srv < cfg_.num_servers; ++srv) {
    server_pullers_.push_back(std::make_unique<sim::PoissonProcess>(
        sim_, rng_, cfg_.server_rate, [this] { do_pull(); }));
    server_pullers_.back()->start();
  }
  if (cfg_.churn.enabled) {
    for (std::size_t slot = 0; slot < cfg_.num_peers; ++slot) {
      sim_.schedule_after(sample_lifetime(cfg_.churn, rng_),
                          [this, slot] { do_depart(slot); });
    }
  }
}

void DirectCollector::set_arrival_profile(
    const workload::ArrivalProfile* profile) {
  profile_ = profile;
}

void DirectCollector::set_profiler(obs::Profiler* profiler) {
  auto cell = [profiler](const char* name) {
    return profiler != nullptr ? &profiler->timer(name) : nullptr;
  };
  prof_generate_ = cell("direct.generate");
  prof_pull_ = cell("direct.pull");
  prof_depart_ = cell("direct.depart");
}

void DirectCollector::set_last_words_window(double window) {
  ICOLLECT_EXPECTS(window > 0.0);
  last_words_window_ = window;
}

void DirectCollector::run_until(sim::Time t) { sim_.run_until(t); }

void DirectCollector::warm_up(sim::Time t) {
  run_until(t);
  metrics_.reset_measurement_window(sim_.now());
}

void DirectCollector::schedule_next_generation(std::size_t slot) {
  double at;
  if (profile_ != nullptr) {
    at = workload::next_arrival(*profile_, sim_.now(), rng_);
  } else if (cfg_.lambda > 0.0) {
    at = sim_.now() + rng_.exponential(cfg_.lambda);
  } else {
    return;  // no generation at all
  }
  sim_.schedule_at(at, [this, slot] { do_generate(slot); });
}

void DirectCollector::do_generate(std::size_t slot) {
  const obs::ProfScope prof{prof_generate_};
  schedule_next_generation(slot);
  ++metrics_.blocks_generated;
  metrics_.generated_window.record();
  PeerQueue& q = queues_[slot];
  ++q.generated_this_incarnation;
  const bool overflow = q.pending.size() >= cfg_.buffer_cap;
  const bool dropped =
      overflow && policy_ == OverflowPolicy::kDropNewest;
  if (last_words_window_ > 0.0) {
    q.recent_generations.emplace_back(sim_.now(), dropped);
    while (!q.recent_generations.empty() &&
           q.recent_generations.front().first <
               sim_.now() - last_words_window_) {
      q.recent_generations.pop_front();
    }
  }
  const std::size_t before = q.pending.size();
  if (overflow) {
    ++metrics_.blocks_dropped_overflow;
    if (policy_ == OverflowPolicy::kDropNewest) return;
    q.pending.pop_front();  // kDropOldest: overwrite stalest report
    --total_backlog_;
  }
  q.pending.push_back(sim_.now());
  ++total_backlog_;
  metrics_.backlog.update(sim_.now(), static_cast<double>(total_backlog_));
  backlog_changed(slot, before);
}

void DirectCollector::do_pull() {
  const obs::ProfScope prof{prof_pull_};
  ++metrics_.pull_attempts;
  if (non_empty_slots_.empty()) {
    ++metrics_.idle_pulls;
    return;
  }
  const std::size_t slot =
      non_empty_slots_[rng_.uniform_index(non_empty_slots_.size())];
  PeerQueue& q = queues_[slot];
  ICOLLECT_ENSURES(!q.pending.empty());
  const std::size_t before = q.pending.size();
  const sim::Time generated_at = q.pending.front();
  q.pending.pop_front();
  --total_backlog_;
  ++q.collected_this_incarnation;
  ++metrics_.blocks_collected;
  metrics_.collected_window.record();
  metrics_.delay.add(sim_.now() - generated_at);
  metrics_.backlog.update(sim_.now(), static_cast<double>(total_backlog_));
  backlog_changed(slot, before);
}

void DirectCollector::do_depart(std::size_t slot) {
  const obs::ProfScope prof{prof_depart_};
  PeerQueue& q = queues_[slot];
  const std::size_t before = q.pending.size();
  if (last_words_window_ > 0.0) {
    // "Last words": of the blocks generated within the window before
    // death, those still pending die with the peer; the rest had already
    // been pulled. (Overflow-dropped blocks count as generated + lost:
    // they are in recent_generations but never in pending — correct,
    // they were never delivered.)
    const sim::Time cutoff = sim_.now() - last_words_window_;
    std::uint64_t recent = 0;
    std::uint64_t recent_dropped = 0;
    for (const auto& [g, was_dropped] : q.recent_generations) {
      if (g < cutoff) continue;
      ++recent;
      if (was_dropped) ++recent_dropped;
    }
    std::uint64_t recent_pending = 0;
    for (const sim::Time g : q.pending) {
      if (g >= cutoff) ++recent_pending;
    }
    // A recent block was delivered iff it entered the queue (not
    // dropped) and is no longer pending. (Exact for kDropNewest; with
    // kDropOldest a recent block evicted by a later arrival is
    // mis-credited, but evictions target the oldest entry, which is
    // almost never inside the window.)
    const std::uint64_t undelivered =
        std::min(recent, recent_dropped + recent_pending);
    ++last_words_.departed_origins;
    last_words_.blocks_generated += recent;
    last_words_.blocks_delivered += recent - undelivered;
    q.recent_generations.clear();
  }
  metrics_.blocks_lost_to_churn += q.pending.size();
  total_backlog_ -= q.pending.size();
  q.pending.clear();
  ++metrics_.peers_departed;
  // The departed occupant's ledger: whatever was not collected by now is
  // permanently lost (including what overflowed earlier).
  ++departed_.departed_origins;
  departed_.blocks_generated += q.generated_this_incarnation;
  departed_.blocks_delivered += q.collected_this_incarnation;
  q.generated_this_incarnation = 0;
  q.collected_this_incarnation = 0;
  metrics_.backlog.update(sim_.now(), static_cast<double>(total_backlog_));
  backlog_changed(slot, before);
  sim_.schedule_after(sample_lifetime(cfg_.churn, rng_),
                      [this, slot] { do_depart(slot); });
}

void DirectCollector::backlog_changed(std::size_t slot, std::size_t before) {
  const std::size_t after = queues_[slot].pending.size();
  if (before == 0 && after > 0) mark_non_empty(slot);
  if (before > 0 && after == 0) mark_empty(slot);
}

void DirectCollector::mark_non_empty(std::size_t slot) {
  if (non_empty_pos_[slot] != 0) return;
  non_empty_slots_.push_back(slot);
  non_empty_pos_[slot] = non_empty_slots_.size();
}

void DirectCollector::mark_empty(std::size_t slot) {
  const std::size_t pos1 = non_empty_pos_[slot];
  if (pos1 == 0) return;
  const std::size_t pos = pos1 - 1;
  const std::size_t last = non_empty_slots_.size() - 1;
  if (pos != last) {
    non_empty_slots_[pos] = non_empty_slots_[last];
    non_empty_pos_[non_empty_slots_[pos]] = pos + 1;
  }
  non_empty_slots_.pop_back();
  non_empty_pos_[slot] = 0;
}

double DirectCollector::normalized_throughput() const {
  const double demand = static_cast<double>(cfg_.num_peers) * cfg_.lambda;
  return demand > 0.0 ? throughput() / demand : 0.0;
}

double DirectCollector::loss_fraction() const {
  if (metrics_.blocks_generated == 0) return 0.0;
  const auto lost =
      metrics_.blocks_dropped_overflow + metrics_.blocks_lost_to_churn;
  return static_cast<double>(lost) /
         static_cast<double>(metrics_.blocks_generated);
}

}  // namespace icollect::p2p
