#pragma once

/// \file config.h
/// Configuration of the indirect-collection protocol simulation: every
/// symbol of the paper's model (Sec. 2) in one validated aggregate.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "proto/adversary.h"
#include "proto/policy.h"
#include "proto/pull_policy.h"

namespace icollect::p2p {

/// How peers are wired to each other for gossip.
enum class TopologyKind {
  kComplete,       ///< every peer neighbors every other (the ODE regime)
  kErdosRenyi,     ///< G(n, p) with p chosen for a target mean degree
  kRandomRegular,  ///< every peer has exactly `degree` neighbors
};

[[nodiscard]] constexpr const char* to_string(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kErdosRenyi: return "erdos-renyi";
    case TopologyKind::kRandomRegular: return "random-regular";
  }
  return "?";
}

/// How server-side collection progress is tracked.
///
/// The paper's model (Sec. 3, "Server Collection") advances a segment's
/// collection state on *every* pull while the state is below s — i.e. it
/// idealizes coded blocks as always innovative until the segment is
/// decodable. kStateCounter reproduces that process exactly (and is what
/// the paper's own simulations evaluate). kRealCoding instead runs true
/// GF(2^8) Gaussian elimination at the servers: a pulled block can be
/// non-innovative when the pulled peer's span is already known to the
/// servers (e.g. after TTL expiries shrink a segment's global rank), so
/// measured throughput is a strict lower bound on the model's.
enum class CollectionFidelity {
  kRealCoding,    ///< true RLNC decoding at the servers (deployment truth)
  kStateCounter,  ///< the paper's idealized collection-state process
};

[[nodiscard]] constexpr const char* to_string(CollectionFidelity f) noexcept {
  switch (f) {
    case CollectionFidelity::kRealCoding: return "real-coding";
    case CollectionFidelity::kStateCounter: return "state-counter";
  }
  return "?";
}

/// How a server picks the peer to pull from.
///
/// The paper's rule is uniform over "all the peers with non-null
/// buffers" (Sec. 2), which presumes the servers track buffer occupancy.
/// kUniformAll drops that assumption — servers probe blindly and waste
/// the pull when they hit an empty peer — an ablation of the design
/// choice that matters exactly when z_0 is non-negligible.
enum class PullPolicy {
  kUniformNonEmpty,  ///< the paper's rule (occupancy-aware)
  kUniformAll,       ///< blind probing; empty hits are wasted
  kRarestFirst,      ///< lowest rank-deficit segment first (sched::)
  kDeficitWeighted,  ///< segments sampled ∝ remaining deficit (sched::)
};

[[nodiscard]] constexpr const char* to_string(PullPolicy p) noexcept {
  switch (p) {
    case PullPolicy::kUniformNonEmpty: return "uniform-non-empty";
    case PullPolicy::kUniformAll: return "uniform-all";
    case PullPolicy::kRarestFirst: return "rarest-first";
    case PullPolicy::kDeficitWeighted: return "deficit-weighted";
  }
  return "?";
}

/// The sched-layer policy kind a simulator PullPolicy maps to (both
/// occupancy variants are the uniform paper rule).
[[nodiscard]] constexpr proto::PullPolicyKind pull_policy_kind(
    PullPolicy p) noexcept {
  switch (p) {
    case PullPolicy::kUniformNonEmpty:
    case PullPolicy::kUniformAll:
      return proto::PullPolicyKind::kUniform;
    case PullPolicy::kRarestFirst:
      return proto::PullPolicyKind::kRarestFirst;
    case PullPolicy::kDeficitWeighted:
      return proto::PullPolicyKind::kDeficitWeighted;
  }
  return proto::PullPolicyKind::kUniform;
}

/// GossipPolicy — how a gossiping peer picks which buffered segment to
/// re-code and send — is protocol surface shared with the live runtime;
/// it lives in proto/policy.h and is re-exported here for the
/// simulator-facing configuration vocabulary.
using proto::GossipPolicy;
using proto::to_string;

/// How peer lifetimes are distributed under churn.
enum class LifetimeDistribution {
  kExponential,  ///< the paper's memoryless model (Sec. 4)
  kPareto,       ///< heavy-tailed, as measured in real P2P systems [7]
  kLogNormal,    ///< the eDonkey measurement study's session-length fit
};

[[nodiscard]] constexpr const char* to_string(LifetimeDistribution d) noexcept {
  switch (d) {
    case LifetimeDistribution::kExponential: return "exponential";
    case LifetimeDistribution::kPareto: return "pareto";
    case LifetimeDistribution::kLogNormal: return "log-normal";
  }
  return "?";
}

/// Lifetime-based churn with replacement (Sec. 4, refs [7],[8]): each
/// peer lives for a random lifetime with mean `mean_lifetime`; on expiry
/// its buffer is lost and a fresh peer takes its slot, keeping the
/// population size constant.
struct ChurnConfig {
  bool enabled = false;
  double mean_lifetime = 0.0;  ///< mean L of the lifetime distribution
  LifetimeDistribution distribution = LifetimeDistribution::kExponential;
  double pareto_shape = 2.0;  ///< α > 1 (only for kPareto); 2 = very heavy
  /// σ of the underlying normal (only for kLogNormal); the location is
  /// derived so the configured mean is preserved. σ≈1.5–2 matches the
  /// eDonkey study's spread between minute-scale and day-scale sessions.
  double lognormal_sigma = 1.5;
};

/// Byzantine-peer adversary (scenario pack): a fixed fraction of the
/// population corrupts every block it emits — gossip and pull replies
/// alike — per the configured strategy, and per-block integrity
/// verification quarantines what it can (proto/integrity.h).
struct AdversaryConfig {
  /// Fraction of peers that are dishonest, in [0, 1]. The first
  /// ⌊N·fraction⌋ slots are chosen — deterministic under a fixed seed,
  /// and unbiased under the complete topology where slots are
  /// exchangeable.
  double dishonest_fraction = 0.0;
  proto::CorruptionStrategy strategy =
      proto::CorruptionStrategy::kRandomPayload;
  /// Homomorphic integrity checks per block (0 = verification off).
  /// Escape probability for a forged block is 256^-checks.
  std::size_t integrity_checks = 0;
};

struct ProtocolConfig {
  // --- population & workload -------------------------------------------
  std::size_t num_peers = 200;   ///< N
  double lambda = 20.0;          ///< per-peer original-block rate λ
  std::size_t segment_size = 10; ///< s blocks per segment (1 = no coding)

  // --- peer resources ---------------------------------------------------
  double mu = 10.0;             ///< per-peer gossip upload rate μ
  double gamma = 1.0;           ///< per-block TTL expiry rate γ
  std::size_t buffer_cap = 120; ///< B, max blocks buffered per peer

  // --- servers ------------------------------------------------------------
  std::size_t num_servers = 4; ///< N_s collaborating logging servers
  double server_rate = 100.0;  ///< c_s, pulls per unit time per server

  // --- data plane ---------------------------------------------------------
  /// Bytes of real payload per block; 0 runs coefficients-only (exact
  /// linear algebra, no payload bytes — the right mode for large sweeps).
  std::size_t payload_bytes = 0;

  /// Server-side collection fidelity (see CollectionFidelity).
  CollectionFidelity fidelity = CollectionFidelity::kRealCoding;

  /// Server peer-selection rule (see PullPolicy).
  PullPolicy pull_policy = PullPolicy::kUniformNonEmpty;

  /// Gossip segment-selection rule (see GossipPolicy).
  GossipPolicy gossip_policy = GossipPolicy::kUniformSegment;

  /// Failure injection: probability that a gossiped block is lost in
  /// transit (the sender's μ is spent, nothing arrives). The paper
  /// assumes reliable transfers; this knob stresses that assumption.
  double gossip_loss = 0.0;

  // --- environment ----------------------------------------------------------
  TopologyKind topology = TopologyKind::kComplete;
  std::size_t mean_degree = 20;  ///< for Erdős–Rényi / random-regular
  ChurnConfig churn{};
  AdversaryConfig adversary{};
  std::uint64_t seed = 1;

  /// Normalized server capacity c = c_s * N_s / N (the paper's key knob).
  [[nodiscard]] double normalized_capacity() const noexcept {
    return server_rate * static_cast<double>(num_servers) /
           static_cast<double>(num_peers);
  }

  /// Set `server_rate` so that the normalized capacity equals `c`.
  void set_normalized_capacity(double c) {
    if (c < 0.0) throw std::invalid_argument("normalized capacity < 0");
    server_rate = c * static_cast<double>(num_peers) /
                  static_cast<double>(num_servers);
  }

  /// Throw std::invalid_argument on any inconsistent setting.
  void validate() const {
    auto fail = [](const std::string& what) {
      throw std::invalid_argument("ProtocolConfig: " + what);
    };
    if (num_peers < 2) fail("need at least 2 peers");
    if (lambda < 0.0) fail("lambda must be >= 0");
    if (segment_size == 0) fail("segment size must be >= 1");
    if (mu < 0.0) fail("mu must be >= 0");
    if (gamma <= 0.0) fail("gamma must be > 0");
    if (buffer_cap < segment_size) {
      fail("buffer cap must hold at least one segment (B >= s)");
    }
    if (num_servers == 0) fail("need at least one server");
    if (server_rate < 0.0) fail("server rate must be >= 0");
    if (topology != TopologyKind::kComplete) {
      if (mean_degree < 2) fail("mean degree must be >= 2");
      if (mean_degree >= num_peers) fail("mean degree must be < N");
    }
    if (churn.enabled && churn.mean_lifetime <= 0.0) {
      fail("churn mean lifetime must be > 0");
    }
    if (churn.enabled &&
        churn.distribution == LifetimeDistribution::kPareto &&
        churn.pareto_shape <= 1.0) {
      fail("Pareto lifetime shape must be > 1 (finite mean)");
    }
    if (churn.enabled &&
        churn.distribution == LifetimeDistribution::kLogNormal &&
        churn.lognormal_sigma <= 0.0) {
      fail("log-normal lifetime sigma must be > 0");
    }
    if (adversary.dishonest_fraction < 0.0 ||
        adversary.dishonest_fraction > 1.0) {
      fail("dishonest fraction must be in [0, 1]");
    }
    if (adversary.integrity_checks > 0 && payload_bytes == 0) {
      fail(
          "integrity checks need real payloads (payload_bytes > 0); "
          "checks over empty payloads are vacuous");
    }
    if (adversary.dishonest_fraction > 0.0 &&
        fidelity == CollectionFidelity::kStateCounter) {
      fail(
          "byzantine peers need real-coding fidelity (state-counter "
          "pulls carry no blocks to corrupt)");
    }
    if (adversary.dishonest_fraction > 0.0 && payload_bytes == 0 &&
        adversary.strategy == proto::CorruptionStrategy::kRandomPayload) {
      fail(
          "random-payload corruption needs payload_bytes > 0 (there is "
          "no payload to corrupt)");
    }
    if (gossip_loss < 0.0 || gossip_loss >= 1.0) {
      fail("gossip loss probability must be in [0, 1)");
    }
    if (fidelity == CollectionFidelity::kStateCounter && payload_bytes > 0) {
      fail(
          "state-counter fidelity cannot carry payloads (nothing is "
          "actually decoded); use real-coding fidelity");
    }
  }
};

}  // namespace icollect::p2p
