#include "p2p/topology.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace icollect::p2p {

Topology Topology::complete(std::size_t n) {
  ICOLLECT_EXPECTS(n >= 2);
  return Topology{TopologyKind::kComplete, n};
}

Topology Topology::erdos_renyi(std::size_t n, double mean_degree,
                               sim::Rng& rng) {
  ICOLLECT_EXPECTS(n >= 2);
  ICOLLECT_EXPECTS(mean_degree > 0.0 &&
                   mean_degree < static_cast<double>(n));
  Topology t{TopologyKind::kErdosRenyi, n};
  t.adj_.assign(n, {});
  const double p = mean_degree / static_cast<double>(n - 1);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) {
        t.adj_[u].push_back(v);
        t.adj_[v].push_back(u);
      }
    }
  }
  // Give isolated vertices one random edge so all peers can participate.
  for (std::size_t u = 0; u < n; ++u) {
    if (t.adj_[u].empty()) {
      std::size_t v = rng.uniform_index(n - 1);
      if (v >= u) ++v;
      t.adj_[u].push_back(v);
      t.adj_[v].push_back(u);
    }
  }
  return t;
}

Topology Topology::random_regular(std::size_t n, std::size_t degree,
                                  sim::Rng& rng) {
  ICOLLECT_EXPECTS(n >= 2);
  ICOLLECT_EXPECTS(degree >= 1 && degree < n);
  if ((n * degree) % 2 != 0) {
    throw std::invalid_argument("random_regular: n * degree must be even");
  }
  Topology t{TopologyKind::kRandomRegular, n};
  // Pairing (configuration) model with local swap-repair: when the next
  // pair would be a self-loop or multi-edge, swap its second stub with a
  // uniformly random later stub and retry. A bare restart-on-collision
  // policy would essentially never terminate (collision probability
  // approaches 1 for moderate degrees); swap-repair succeeds w.h.p.
  constexpr int kMaxRestarts = 50;
  for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
    std::vector<std::size_t> stubs;
    stubs.reserve(n * degree);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t k = 0; k < degree; ++k) stubs.push_back(v);
    }
    // Fisher-Yates shuffle with our deterministic Rng.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.uniform_index(i)]);
    }
    bool ok = true;
    std::vector<std::vector<std::size_t>> adj(n);
    auto is_bad = [&adj](std::size_t u, std::size_t v) {
      return u == v ||
             std::find(adj[u].begin(), adj[u].end(), v) != adj[u].end();
    };
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      constexpr int kMaxSwaps = 400;
      int swaps = 0;
      while (is_bad(stubs[i], stubs[i + 1]) && swaps < kMaxSwaps) {
        const std::size_t remaining = stubs.size() - (i + 1);
        if (remaining <= 1) break;  // nothing left to swap with
        const std::size_t j = i + 1 + rng.uniform_index(remaining);
        std::swap(stubs[i + 1], stubs[j]);
        ++swaps;
      }
      if (is_bad(stubs[i], stubs[i + 1])) {
        ok = false;
        break;
      }
      adj[stubs[i]].push_back(stubs[i + 1]);
      adj[stubs[i + 1]].push_back(stubs[i]);
    }
    if (ok) {
      t.adj_ = std::move(adj);
      return t;
    }
  }
  // Fall back to Erdős–Rényi at the same mean degree rather than spin:
  // the gossip protocol only needs a well-mixed sparse graph.
  Topology fallback =
      erdos_renyi(n, static_cast<double>(degree), rng);
  fallback.kind_ = TopologyKind::kRandomRegular;
  return fallback;
}

Topology Topology::build(const ProtocolConfig& cfg, sim::Rng& rng) {
  switch (cfg.topology) {
    case TopologyKind::kComplete:
      return complete(cfg.num_peers);
    case TopologyKind::kErdosRenyi:
      return erdos_renyi(cfg.num_peers,
                         static_cast<double>(cfg.mean_degree), rng);
    case TopologyKind::kRandomRegular:
      return random_regular(cfg.num_peers, cfg.mean_degree, rng);
  }
  throw std::invalid_argument("unknown topology kind");
}

std::size_t Topology::degree(std::size_t v) const {
  ICOLLECT_EXPECTS(v < n_);
  if (kind_ == TopologyKind::kComplete) return n_ - 1;
  return adj_[v].size();
}

std::size_t Topology::neighbor(std::size_t v, std::size_t idx) const {
  ICOLLECT_EXPECTS(v < n_);
  ICOLLECT_EXPECTS(idx < degree(v));
  if (kind_ == TopologyKind::kComplete) return idx < v ? idx : idx + 1;
  return adj_[v][idx];
}

std::size_t Topology::random_neighbor(std::size_t v, sim::Rng& rng) const {
  const std::size_t d = degree(v);
  ICOLLECT_EXPECTS(d > 0);
  return neighbor(v, rng.uniform_index(d));
}

bool Topology::connected() const {
  if (kind_ == TopologyKind::kComplete) return true;
  std::vector<char> seen(n_, 0);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (const std::size_t v : adj_[u]) {
      if (seen[v] == 0) {
        seen[v] = 1;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n_;
}

std::size_t Topology::edge_count() const {
  if (kind_ == TopologyKind::kComplete) return n_ * (n_ - 1) / 2;
  std::size_t total = 0;
  for (const auto& nb : adj_) total += nb.size();
  return total / 2;
}

}  // namespace icollect::p2p
