#pragma once

/// \file trace.h
/// Protocol event tracing: an optional observer stream of everything the
/// engine does, for debugging, visualization, and post-hoc analysis
/// (e.g. reconstructing a segment's full lifecycle). Zero cost when no
/// sink is installed.

#include <cstdint>
#include <functional>
#include <string>

#include "coding/segment_id.h"
#include "sim/event_queue.h"

namespace icollect::p2p {

enum class TraceEventKind : std::uint8_t {
  kSegmentInjected,  ///< slot = origin peer; aux = segment size
  kGossipSent,       ///< slot = sender;      aux = receiver slot
  kTtlExpired,       ///< slot = holder;      aux unused
  kServerPull,       ///< slot = pulled peer; aux = 1 if innovative
  kSegmentDecoded,   ///< slot unused;        aux = segment size
  kSegmentLost,      ///< slot unused;        aux = collected so far
  kPeerDeparted,     ///< slot = departing;   aux = blocks lost
};

[[nodiscard]] constexpr const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kSegmentInjected: return "inject";
    case TraceEventKind::kGossipSent: return "gossip";
    case TraceEventKind::kTtlExpired: return "ttl";
    case TraceEventKind::kServerPull: return "pull";
    case TraceEventKind::kSegmentDecoded: return "decode";
    case TraceEventKind::kSegmentLost: return "lost";
    case TraceEventKind::kPeerDeparted: return "depart";
  }
  return "?";
}

struct TraceEvent {
  TraceEventKind kind{};
  sim::Time at = 0.0;
  std::size_t slot = 0;
  coding::SegmentId segment{};
  std::uint64_t aux = 0;

  [[nodiscard]] std::string to_string() const {
    return std::string{p2p::to_string(kind)} + " t=" + std::to_string(at) +
           " slot=" + std::to_string(slot) + " seg=" + segment.to_string() +
           " aux=" + std::to_string(aux);
  }
};

/// Receives every protocol event in virtual-time order.
using TraceSink = std::function<void(const TraceEvent&)>;

}  // namespace icollect::p2p
