#pragma once

/// \file metrics.h
/// Measurement plane of the simulator: counters and time-weighted
/// signals matching the quantities of Theorems 1–4, with a warm-up
/// window reset so steady-state estimates exclude the transient.

#include <cstdint>

#include "stats/summary.h"
#include "stats/time_series.h"

namespace icollect::p2p {

/// Recovery accounting for the data of peers that have departed — the
/// paper's motivating loss case ("statistics from departed peers may be
/// the most useful to diagnose system outages"). Shared between the
/// indirect engine and the direct baseline so the two are comparable.
struct DepartedDataStats {
  std::uint64_t departed_origins = 0;
  std::uint64_t blocks_generated = 0;  ///< produced by now-departed peers
  std::uint64_t blocks_delivered = 0;  ///< of those, obtained by servers
  [[nodiscard]] double recovery_fraction() const noexcept {
    return blocks_generated > 0 ? static_cast<double>(blocks_delivered) /
                                      static_cast<double>(blocks_generated)
                                : 0.0;
  }
};

struct NetworkMetrics {
  // --- lifetime counters (never reset) -----------------------------------
  std::uint64_t segments_injected = 0;
  std::uint64_t blocks_injected = 0;
  std::uint64_t gossip_sent = 0;          ///< blocks actually transferred
  std::uint64_t gossip_no_target = 0;     ///< no eligible neighbor
  std::uint64_t gossip_idle = 0;          ///< sender buffer was empty
  std::uint64_t gossip_lost_in_transit = 0;  ///< failure injection drops
  std::uint64_t injection_blocked = 0;    ///< buffer lacked room for s blocks
  std::uint64_t ttl_expirations = 0;
  std::uint64_t server_pull_attempts = 0; ///< includes all-empty no-ops
  std::uint64_t server_empty_probes = 0;  ///< blind pulls that hit empty peers
  std::uint64_t peers_departed = 0;
  std::uint64_t blocks_lost_to_churn = 0;
  std::uint64_t segments_lost = 0;        ///< vanished undecoded (degree→0)
  std::uint64_t payload_crc_failures = 0; ///< end-to-end integrity errors

  // --- adversarial / fault-injection counters (scenario pack) -------------
  std::uint64_t blocks_corrupted = 0;     ///< byzantine egress corruptions
  std::uint64_t blocks_quarantined = 0;   ///< gossip rejected by integrity
  std::uint64_t polluted_pulls = 0;       ///< pulled blocks rejected by integrity
  std::uint64_t gossip_blocked_isolated = 0;  ///< sender partitioned away
  std::uint64_t pulls_blocked_isolated = 0;   ///< pulled peer partitioned away

  // --- windowed counters (reset at end of warm-up) ------------------------
  stats::RateEstimator decoded_original_blocks; ///< throughput numerator
  stats::RateEstimator injected_blocks_window;
  stats::RateEstimator server_pulls_window;
  stats::RateEstimator innovative_pulls_window;

  // --- time-weighted signals ----------------------------------------------
  stats::TimeWeighted total_blocks;  ///< network-wide block count = N·e(t)
  stats::TimeWeighted empty_peers;   ///< peers with empty buffers = N·z_0(t)
  stats::TimeWeighted full_peers;    ///< peers at the buffer cap = N·z_B(t)

  // --- delay samples --------------------------------------------------------
  stats::Summary segment_delay; ///< decode time − injection time
  stats::Summary block_delay;   ///< segment delay / s (paper's Fig. 5 metric)

  /// Discard the warm-up transient: restart all windowed estimators and
  /// time-weighted windows at `now`, and clear delay samples.
  void reset_measurement_window(double now) {
    decoded_original_blocks.reset_window(now);
    injected_blocks_window.reset_window(now);
    server_pulls_window.reset_window(now);
    innovative_pulls_window.reset_window(now);
    total_blocks.reset_window(now);
    empty_peers.reset_window(now);
    full_peers.reset_window(now);
    segment_delay.reset();
    block_delay.reset();
  }
};

}  // namespace icollect::p2p
