#pragma once

/// \file topology.h
/// Static neighbor graphs for gossip. "The neighbors of a peer are the
/// peers that maintain data connections with it" (Sec. 2); in P2P
/// streaming these partner graphs are well modeled as sparse random
/// graphs, while the paper's ODE analysis assumes uniform selection over
/// all peers — i.e. the complete graph — so both are provided (plus
/// random-regular, the usual middle ground).

#include <cstddef>
#include <vector>

#include "common/assert.h"
#include "p2p/config.h"
#include "sim/random.h"

namespace icollect::p2p {

class Topology {
 public:
  /// Complete graph on n vertices (adjacency is implicit: O(1) memory).
  [[nodiscard]] static Topology complete(std::size_t n);

  /// Erdős–Rényi G(n, p) with p = mean_degree / (n-1). Isolated vertices
  /// are given one random edge so every peer can gossip.
  [[nodiscard]] static Topology erdos_renyi(std::size_t n,
                                            double mean_degree,
                                            sim::Rng& rng);

  /// Random regular-ish graph via the pairing model (degree * n must be
  /// even); multi-edges/self-loops from the pairing are re-drawn, with a
  /// bounded number of restarts, then deduplicated (so the realized
  /// degree can occasionally be degree-1).
  [[nodiscard]] static Topology random_regular(std::size_t n,
                                               std::size_t degree,
                                               sim::Rng& rng);

  /// Build per a ProtocolConfig.
  [[nodiscard]] static Topology build(const ProtocolConfig& cfg,
                                      sim::Rng& rng);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Number of neighbors of vertex v.
  [[nodiscard]] std::size_t degree(std::size_t v) const;

  /// The idx-th neighbor of v (0 <= idx < degree(v)).
  [[nodiscard]] std::size_t neighbor(std::size_t v, std::size_t idx) const;

  /// Uniformly random neighbor of v. Precondition: degree(v) > 0.
  [[nodiscard]] std::size_t random_neighbor(std::size_t v,
                                            sim::Rng& rng) const;

  /// True if the graph is connected (BFS).
  [[nodiscard]] bool connected() const;

  /// Total number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const;

 private:
  Topology(TopologyKind kind, std::size_t n) : kind_{kind}, n_{n} {}

  TopologyKind kind_;
  std::size_t n_;
  std::vector<std::vector<std::size_t>> adj_;  // empty for kComplete
};

}  // namespace icollect::p2p
