#pragma once

/// \file direct_collector.h
/// The traditional baseline of Fig. 1(a): logging servers pull vital
/// statistics *directly* from peers, bounded by aggregate server
/// bandwidth c_s · N_s. Each peer accumulates its own original blocks in
/// a local report queue; a block is only safe once a server has
/// downloaded it. Consequences the paper motivates with:
///   - when the instantaneous generation rate exceeds server capacity the
///     backlog grows, report queues overflow, and data is dropped;
///   - when a peer departs, its entire undelivered queue is permanently
///     lost ("statistics from departed peers may be the most useful...").
///
/// The baseline shares the simulation kernel and the churn/arrival
/// machinery with the indirect engine so comparisons are apples-to-apples.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "obs/profiler.h"
#include "p2p/config.h"
#include "p2p/metrics.h"
#include "sim/poisson_process.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "stats/time_series.h"
#include "workload/generators.h"

namespace icollect::p2p {

/// What to do when a peer's report queue is full.
enum class OverflowPolicy {
  kDropNewest,  ///< refuse fresh measurements (queue keeps oldest)
  kDropOldest,  ///< overwrite the oldest pending report (ring-buffer logs)
};

struct DirectCollectorMetrics {
  std::uint64_t blocks_generated = 0;
  std::uint64_t blocks_collected = 0;
  std::uint64_t blocks_dropped_overflow = 0;
  std::uint64_t blocks_lost_to_churn = 0;
  std::uint64_t peers_departed = 0;
  std::uint64_t pull_attempts = 0;
  std::uint64_t idle_pulls = 0;  ///< pull found every queue empty
  stats::Summary delay;          ///< generation → server download
  stats::TimeWeighted backlog;   ///< total queued blocks network-wide
  stats::RateEstimator collected_window;
  stats::RateEstimator generated_window;

  void reset_measurement_window(double now) {
    collected_window.reset_window(now);
    generated_window.reset_window(now);
    backlog.reset_window(now);
    delay.reset();
  }
};

class DirectCollector {
 public:
  /// Uses these ProtocolConfig fields: num_peers, lambda, buffer_cap,
  /// num_servers, server_rate, churn, seed. (Coding/gossip fields are
  /// meaningless for the baseline and ignored.)
  explicit DirectCollector(ProtocolConfig cfg,
                           OverflowPolicy policy = OverflowPolicy::kDropNewest);

  DirectCollector(const DirectCollector&) = delete;
  DirectCollector& operator=(const DirectCollector&) = delete;

  /// Optional time-varying per-peer generation rate; when set it
  /// overrides the constant λ (used by the flash-crowd experiments).
  /// The profile object must outlive the collector.
  void set_arrival_profile(const workload::ArrivalProfile* profile);

  /// Attach (or detach, with nullptr) a wall-clock profiler: the event
  /// handlers run under "direct.generate" / "direct.pull" /
  /// "direct.depart" scopes. Single null check per event when detached.
  void set_profiler(obs::Profiler* profiler);

  void run_until(sim::Time t);
  void warm_up(sim::Time t);

  [[nodiscard]] sim::Time now() const noexcept { return sim_.now(); }
  [[nodiscard]] const DirectCollectorMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const ProtocolConfig& config() const noexcept { return cfg_; }

  /// Collected original blocks per unit time over the window.
  [[nodiscard]] double throughput() const {
    return metrics_.collected_window.rate(sim_.now());
  }
  /// Normalized by aggregate demand N·λ.
  [[nodiscard]] double normalized_throughput() const;
  /// Fraction of generated blocks (lifetime) that were dropped or lost.
  [[nodiscard]] double loss_fraction() const;
  [[nodiscard]] double mean_delay() const { return metrics_.delay.mean(); }
  /// Current total backlog across all peers.
  [[nodiscard]] std::size_t backlog_size() const noexcept {
    return total_backlog_;
  }

  /// Recovery of departed peers' data. In the direct scheme a departing
  /// peer's undelivered queue is gone forever, so this only counts blocks
  /// the servers pulled before the departure.
  [[nodiscard]] DepartedDataStats departed_data_stats() const noexcept {
    return departed_;
  }

  /// Enable "last words" accounting: of each departing peer's blocks
  /// generated within `window` time units before its departure, how many
  /// had the servers already pulled? (FIFO queues deliver oldest-first,
  /// so a loaded system loses exactly these freshest records.) Call
  /// before running.
  void set_last_words_window(double window);
  [[nodiscard]] DepartedDataStats last_words_stats() const noexcept {
    return last_words_;
  }

 private:
  struct PeerQueue {
    std::deque<sim::Time> pending;  ///< generation time of each block
    std::uint64_t generated_this_incarnation = 0;
    std::uint64_t collected_this_incarnation = 0;
    /// Recent generations within the last-words window (pruned lazily):
    /// time plus whether the block was dropped on arrival (queue full).
    std::deque<std::pair<sim::Time, bool>> recent_generations;
  };

  void do_generate(std::size_t slot);
  void do_pull();
  void do_depart(std::size_t slot);
  void schedule_next_generation(std::size_t slot);
  void backlog_changed(std::size_t slot, std::size_t before);
  void mark_non_empty(std::size_t slot);
  void mark_empty(std::size_t slot);

  ProtocolConfig cfg_;
  OverflowPolicy policy_;
  sim::Simulator sim_;
  sim::Rng rng_;
  const workload::ArrivalProfile* profile_ = nullptr;
  std::vector<PeerQueue> queues_;
  DirectCollectorMetrics metrics_;
  std::vector<std::unique_ptr<sim::PoissonProcess>> server_pullers_;
  std::vector<std::size_t> non_empty_slots_;
  std::vector<std::size_t> non_empty_pos_;  // slot -> index+1 (0 = absent)
  std::size_t total_backlog_ = 0;
  obs::Profiler::Timer* prof_generate_ = nullptr;
  obs::Profiler::Timer* prof_pull_ = nullptr;
  obs::Profiler::Timer* prof_depart_ = nullptr;
  DepartedDataStats departed_;
  double last_words_window_ = 0.0;  ///< 0 = disabled
  DepartedDataStats last_words_;
};

}  // namespace icollect::p2p
