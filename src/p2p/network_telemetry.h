#pragma once

/// \file network_telemetry.h
/// Bridges from the protocol engines to the observability layer:
/// register pull-based gauges for every NetworkMetrics /
/// DirectCollectorMetrics counter, the derived Theorem 1-4 steady-state
/// estimates, and the DepartedDataStats recovery accounting, onto an
/// obs::MetricsRegistry. Pull-based means the engine's hot path is
/// untouched — values are read only when a Snapshotter samples.
///
/// Lifetime: the engine must outlive the registry (the gauges capture a
/// reference to it).

#include "obs/metrics_registry.h"

namespace icollect::p2p {

class Network;
class DirectCollector;

/// Register the indirect engine's metrics under the "net." prefix.
void register_network_metrics(obs::MetricsRegistry& registry,
                              const Network& net);

/// Register the direct-baseline metrics under the "direct." prefix.
void register_direct_collector_metrics(obs::MetricsRegistry& registry,
                                       const DirectCollector& dc);

}  // namespace icollect::p2p
