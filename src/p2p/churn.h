#pragma once

/// \file churn.h
/// Peer-lifetime sampling for the replacement churn model.
///
/// The paper simulates exponential lifetimes (Sec. 4, after [7], [8]).
/// Measurement studies — including [7] (Leonard, Rai, Loguinov,
/// SIGMETRICS'05), the very reference the paper takes the replacement
/// model from — find real P2P lifetimes heavy-tailed, so the library
/// also offers Pareto lifetimes with the same mean: many short-lived
/// peers plus a persistent minority, which stresses the collection
/// pipeline quite differently from the memoryless case.

#include <cmath>

#include "common/assert.h"
#include "p2p/config.h"
#include "sim/random.h"

namespace icollect::p2p {

/// Draw one lifetime according to the churn configuration.
/// Precondition: cfg.enabled and cfg.mean_lifetime > 0.
[[nodiscard]] inline double sample_lifetime(const ChurnConfig& cfg,
                                            sim::Rng& rng) {
  ICOLLECT_EXPECTS(cfg.enabled);
  ICOLLECT_EXPECTS(cfg.mean_lifetime > 0.0);
  switch (cfg.distribution) {
    case LifetimeDistribution::kExponential:
      return rng.exponential(1.0 / cfg.mean_lifetime);
    case LifetimeDistribution::kPareto: {
      // Pareto(x_m, α) has mean x_m·α/(α−1) for α > 1; choose x_m so the
      // configured mean is preserved. Inverse-CDF sampling.
      const double alpha = cfg.pareto_shape;
      ICOLLECT_EXPECTS(alpha > 1.0);
      const double x_m = cfg.mean_lifetime * (alpha - 1.0) / alpha;
      double u;
      do {
        u = rng.uniform();
      } while (u <= 0.0);  // guard the open interval
      return x_m * std::pow(u, -1.0 / alpha);
    }
    case LifetimeDistribution::kLogNormal: {
      // LogNormal(μ, σ) has mean exp(μ + σ²/2); derive μ so the
      // configured mean is preserved. Box-Muller from two uniforms —
      // exactly two draws per lifetime, keeping the shared stream's
      // draw count deterministic (common::Rng has no normal()).
      const double sigma = cfg.lognormal_sigma;
      ICOLLECT_EXPECTS(sigma > 0.0);
      const double mu_log =
          std::log(cfg.mean_lifetime) - 0.5 * sigma * sigma;
      double u1;
      do {
        u1 = rng.uniform();
      } while (u1 <= 0.0);  // log(0) guard
      const double u2 = rng.uniform();
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
      return std::exp(mu_log + sigma * z);
    }
  }
  ICOLLECT_EXPECTS(false);  // unreachable
  return cfg.mean_lifetime;
}

}  // namespace icollect::p2p
