#pragma once

/// \file random.h
/// Simulator-side names for the shared random source.
///
/// The implementation lives in common/rng.h so the transport- and
/// clock-agnostic protocol core (src/proto/) can draw from the same
/// stream type without depending on the discrete-event kernel. This
/// header only re-exports the names under icollect::sim for the
/// simulator, runner, and workload call sites that grew up with them.

#include "common/rng.h"

namespace icollect::sim {

using common::splitmix64;
using Rng = common::Rng;

}  // namespace icollect::sim
