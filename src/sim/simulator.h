#pragma once

/// \file simulator.h
/// The discrete-event simulation driver: a virtual clock over an
/// EventQueue. Components schedule closures; the simulator executes them
/// in non-decreasing time order, advancing the clock to each event.
///
/// The paper's system is a continuous-time Markov chain — every action
/// (segment injection, gossip transfer, TTL expiry, server pull, peer
/// departure) occurs after an exponential waiting time. Simulating it
/// event-by-event with per-entity exponential timers is exact (no time
/// discretization), and the ODE systems of Sec. 3 are the fluid limit of
/// precisely this process, which is what makes the simulation-vs-ODE
/// comparisons in bench/ meaningful.

#include <cstdint>
#include <limits>
#include <utility>

#include "common/assert.h"
#include "sim/event_queue.h"

namespace icollect::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Pre-size the event queue for roughly `n` concurrent events (see
  /// EventQueue::reserve). Call once during setup, before the hot loop.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Schedule an action at absolute virtual time `at` (>= now()).
  EventId schedule_at(Time at, EventQueue::Action action) {
    ICOLLECT_EXPECTS(at >= now_);
    return queue_.schedule(at, std::move(action));
  }

  /// Schedule an action `delay` time units from now (delay >= 0).
  EventId schedule_after(Time delay, EventQueue::Action action) {
    ICOLLECT_EXPECTS(delay >= 0.0);
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Cancel a pending event; returns whether it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True if the event is scheduled and not yet fired/cancelled.
  [[nodiscard]] bool is_pending(EventId id) const {
    return queue_.is_pending(id);
  }

  /// Execute the single next event, if any. Returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    auto ev = queue_.pop();
    ICOLLECT_ENSURES(ev.at >= now_);
    now_ = ev.at;
    ++executed_;
    ev.action();
    return true;
  }

  /// Run until the virtual clock passes `end_time` or the queue drains.
  /// The clock is left at exactly `end_time` if the horizon was reached.
  void run_until(Time end_time) {
    ICOLLECT_EXPECTS(end_time >= now_);
    while (!queue_.empty() && queue_.peek_time() <= end_time) {
      step();
    }
    now_ = end_time;
  }

  /// Run until the queue is empty or `max_events` more events have fired.
  /// Returns the number of events executed by this call.
  std::uint64_t run_events(std::uint64_t max_events) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Number of live scheduled events.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace icollect::sim
