#pragma once

/// \file poisson_process.h
/// A recurring exponential timer: fires a callback at the events of a
/// Poisson process of a given (adjustable) rate on a Simulator.
///
/// Each of the paper's per-entity processes is one of these:
///   - per-peer segment injection at rate λ/s,
///   - per-peer gossip transmission at rate μ,
///   - per-server collection pulls at rate c_s,
/// (TTL expiry and churn lifetimes are one-shot exponentials and use the
/// Simulator directly).

#include <functional>
#include <utility>

#include "common/assert.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace icollect::sim {

class PoissonProcess {
 public:
  using Callback = std::function<void()>;

  /// Create a stopped process. `rate` must be > 0 when started; the
  /// callback is invoked at each event of the process.
  PoissonProcess(Simulator& simulator, Rng& rng, double rate,
                 Callback callback)
      : sim_{&simulator},
        rng_{&rng},
        rate_{rate},
        callback_{std::move(callback)} {
    ICOLLECT_EXPECTS(rate_ >= 0.0);
    ICOLLECT_EXPECTS(callback_ != nullptr);
  }

  PoissonProcess(const PoissonProcess&) = delete;
  PoissonProcess& operator=(const PoissonProcess&) = delete;

  ~PoissonProcess() { stop(); }

  /// Begin firing. Idempotent. No-op if rate is zero.
  void start() {
    if (running_ || rate_ <= 0.0) return;
    running_ = true;
    arm();
  }

  /// Stop firing; any armed event is cancelled. Idempotent.
  void stop() {
    running_ = false;
    if (pending_ != kInvalidEventId) {
      sim_->cancel(pending_);
      pending_ = kInvalidEventId;
    }
  }

  /// Change the rate. Takes effect from the *next* arming (exponential
  /// memorylessness makes rescheduling the in-flight gap optional; we
  /// re-arm immediately for responsiveness when the process is running).
  void set_rate(double rate) {
    ICOLLECT_EXPECTS(rate >= 0.0);
    rate_ = rate;
    if (running_) {
      stop();
      start();
    }
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void arm() {
    pending_ = sim_->schedule_after(rng_->exponential(rate_), [this] {
      pending_ = kInvalidEventId;
      // Re-arm before invoking so the callback may stop() us cleanly.
      if (running_) arm();
      callback_();
    });
  }

  Simulator* sim_;
  Rng* rng_;
  double rate_;
  Callback callback_;
  bool running_ = false;
  EventId pending_ = kInvalidEventId;
};

}  // namespace icollect::sim
