#pragma once

/// \file event_queue.h
/// A cancellable future-event list for discrete-event simulation.
///
/// Implementation: binary heap ordered by (time, sequence number) — the
/// sequence number gives FIFO tie-breaking so runs are deterministic —
/// plus an exact set of pending ids. Cancellation removes the id from the
/// pending set in O(1); the heap entry is dropped lazily when popped.
/// The heap is a plain vector managed with std::push_heap/pop_heap (not
/// std::priority_queue) so capacity can be reserved up front and the
/// popped action moved out without const_cast.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/assert.h"

namespace icollect::sim {

/// Simulation time, in the abstract "unit time" of the paper (rates λ, μ,
/// γ, c are all expressed per unit time).
using Time = double;

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel returned where "no event" is meaningful.
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Pre-size the heap and the pending-id set for roughly `n` concurrent
  /// events, so steady-state scheduling avoids rehash/regrow churn.
  void reserve(std::size_t n) {
    heap_.reserve(n);
    pending_.reserve(n);
  }

  /// Schedule `action` at absolute time `at`. Returns a cancellable id.
  EventId schedule(Time at, Action action) {
    ICOLLECT_EXPECTS(action != nullptr);
    const EventId id = next_id_++;
    heap_.push_back(Entry{at, id, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end());
    pending_.insert(id);
    return id;
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (false if it already fired, was already cancelled, or
  /// the id is invalid).
  bool cancel(EventId id) { return pending_.erase(id) > 0; }

  /// True if the given event has been scheduled and has neither fired nor
  /// been cancelled yet.
  [[nodiscard]] bool is_pending(EventId id) const {
    return pending_.contains(id);
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() {
    drop_dead_prefix();
    return heap_.empty();
  }

  /// Number of live (pending) events.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Number of heap entries including lazily-cancelled ones — for tests
  /// and capacity diagnostics.
  [[nodiscard]] std::size_t raw_size() const noexcept { return heap_.size(); }

  /// Heap capacity currently reserved — for tests and diagnostics.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Time of the next live event. Precondition: !empty().
  [[nodiscard]] Time peek_time() {
    drop_dead_prefix();
    ICOLLECT_EXPECTS(!heap_.empty());
    return heap_.front().at;
  }

  /// Pop and return the next live event. Precondition: !empty().
  struct Popped {
    Time at{};
    EventId id{};
    Action action;
  };
  [[nodiscard]] Popped pop() {
    drop_dead_prefix();
    ICOLLECT_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end());
    Entry& last = heap_.back();
    Popped out{last.at, last.id, std::move(last.action)};
    heap_.pop_back();
    pending_.erase(out.id);
    return out;
  }

 private:
  struct Entry {
    Time at;
    EventId id;  // doubles as the FIFO tie-breaker: ids are monotonic
    Action action;
    // Min-heap by (time, id): std heap algorithms build a max-heap, so
    // invert the ordering.
    bool operator<(const Entry& rhs) const noexcept {
      if (at != rhs.at) return at > rhs.at;
      return id > rhs.id;
    }
  };

  void drop_dead_prefix() {
    while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace icollect::sim
