#pragma once

/// \file io.h
/// Little-endian byte-order primitives for the wire protocol: an
/// appending writer over a caller-owned vector and a bounds-checked
/// reader over a span. The reader never throws and never reads out of
/// range — a failed read sets a sticky failure flag and returns zeros /
/// empty spans, so body parsers can decode optimistically and check
/// `ok()` once at the end. All multi-byte integers are little-endian on
/// the wire regardless of host order.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace icollect::wire {

/// Appends primitives to a byte vector (the frame/body under
/// construction). The vector is caller-owned so encoders can reuse one
/// buffer across frames and stay allocation-free at steady state.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_{&out} {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8U));
  }
  void u32(std::uint32_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8U));
    out_->push_back(static_cast<std::uint8_t>(v >> 16U));
    out_->push_back(static_cast<std::uint8_t>(v >> 24U));
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_->insert(out_->end(), b.begin(), b.end());
  }

  [[nodiscard]] std::size_t written() const noexcept { return out_->size(); }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked sequential reader over an immutable byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  [[nodiscard]] std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!ensure(2)) return 0;
    const auto v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8U));
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!ensure(4)) return 0;
    const std::uint32_t v =
        static_cast<std::uint32_t>(data_[pos_]) |
        (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8U) |
        (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16U) |
        (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24U);
    pos_ += 4;
    return v;
  }
  /// A view of the next `n` bytes (empty on underrun; failure latches).
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!ensure(n)) return {};
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// True if every read so far was in range.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True if the reader is healthy AND fully consumed — the acceptance
  /// test for a fixed-layout body (trailing garbage is a malformation).
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == data_.size(); }

 private:
  [[nodiscard]] bool ensure(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace icollect::wire
