#pragma once

/// \file message.h
/// The live-node protocol vocabulary: every message two icollect nodes
/// can exchange, as plain structs. This is the protocol from Sec. 2 of
/// the paper made concrete for real processes — gossip push
/// (GOSSIP_BLOCK), the servers' coupon-collector pull
/// (PULL_REQUEST / PULL_BLOCK), decode notification
/// (SEGMENT_DECODED_ACK), plus session bracketing (HELLO / BYE) with
/// version negotiation. Frame layout and the byte-level codec live in
/// frame.h; docs/PROTOCOL.md documents the format normatively.

#include <cstdint>
#include <variant>

#include "coding/coded_block.h"
#include "coding/segment_id.h"

namespace icollect::wire {

/// Protocol version this build speaks. A HELLO advertises an inclusive
/// [version_min, version_max] range; two nodes interoperate iff the
/// ranges intersect (they then speak the highest common version).
inline constexpr std::uint8_t kProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kHello = 1,
  kGossipBlock = 2,
  kPullRequest = 3,
  kPullBlock = 4,
  kSegmentDecodedAck = 5,
  kBye = 6,
};

[[nodiscard]] constexpr bool is_valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MessageType::kHello) &&
         t <= static_cast<std::uint8_t>(MessageType::kBye);
}

[[nodiscard]] constexpr const char* to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::kHello: return "hello";
    case MessageType::kGossipBlock: return "gossip-block";
    case MessageType::kPullRequest: return "pull-request";
    case MessageType::kPullBlock: return "pull-block";
    case MessageType::kSegmentDecodedAck: return "segment-decoded-ack";
    case MessageType::kBye: return "bye";
  }
  return "?";
}

enum class NodeRole : std::uint8_t {
  kPeer = 0,    ///< buffers and gossips coded blocks
  kServer = 1,  ///< pulls, decodes, acknowledges
};

[[nodiscard]] constexpr const char* to_string(NodeRole r) noexcept {
  switch (r) {
    case NodeRole::kPeer: return "peer";
    case NodeRole::kServer: return "server";
  }
  return "?";
}

/// Session opener; first frame on every connection, sent by both sides.
struct Hello {
  NodeRole role = NodeRole::kPeer;
  std::uint8_t version_min = kProtocolVersion;
  std::uint8_t version_max = kProtocolVersion;
  std::uint32_t node_id = 0;      ///< the sender's stable identity
  std::uint16_t segment_size = 0; ///< s the sender codes with
  std::uint32_t buffer_cap = 0;   ///< B (peers; 0 for servers)
};

/// One re-coded block pushed peer→peer (gossip), or forwarded
/// server→server to keep the collaborating servers' decoder banks
/// converged (the live realization of the paper's pooled server state).
struct GossipBlock {
  coding::CodedBlock block;
};

/// Server→peer: "send me one re-coded block of a uniformly random
/// segment in your buffer". `token` correlates the reply.
struct PullRequest {
  std::uint32_t token = 0;
};

/// Peer→server reply. `occupancy` piggybacks the peer's current buffered
/// block count so servers can steer pulls toward non-empty peers (the
/// paper's occupancy-aware pull rule) without a separate control
/// channel. `has_block` is false when the buffer was empty.
struct PullBlock {
  std::uint32_t token = 0;
  std::uint32_t occupancy = 0;
  bool has_block = false;
  coding::CodedBlock block;  ///< meaningful iff has_block
};

/// Server→all: a segment's collection completed (rank reached s).
struct SegmentDecodedAck {
  coding::SegmentId segment;
};

enum class ByeReason : std::uint8_t {
  kNormal = 0,
  kVersionMismatch = 1,
  kProtocolError = 2,
  kShutdown = 3,
};

[[nodiscard]] constexpr const char* to_string(ByeReason r) noexcept {
  switch (r) {
    case ByeReason::kNormal: return "normal";
    case ByeReason::kVersionMismatch: return "version-mismatch";
    case ByeReason::kProtocolError: return "protocol-error";
    case ByeReason::kShutdown: return "shutdown";
  }
  return "?";
}

/// Session closer; the connection is dropped after sending/receiving.
struct Bye {
  ByeReason reason = ByeReason::kNormal;
};

using Message = std::variant<Hello, GossipBlock, PullRequest, PullBlock,
                             SegmentDecodedAck, Bye>;

[[nodiscard]] constexpr MessageType type_of(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return MessageType::kHello;
    case 1: return MessageType::kGossipBlock;
    case 2: return MessageType::kPullRequest;
    case 3: return MessageType::kPullBlock;
    case 4: return MessageType::kSegmentDecodedAck;
    default: return MessageType::kBye;
  }
}

}  // namespace icollect::wire
