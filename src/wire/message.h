#pragma once

/// \file message.h
/// The live-node protocol vocabulary: every message two icollect nodes
/// can exchange, as plain structs. This is the protocol from Sec. 2 of
/// the paper made concrete for real processes — gossip push
/// (GOSSIP_BLOCK), the servers' coupon-collector pull
/// (PULL_REQUEST / PULL_BLOCK), decode notification
/// (SEGMENT_DECODED_ACK), plus session bracketing (HELLO / BYE) with
/// version negotiation. Frame layout and the byte-level codec live in
/// frame.h; docs/PROTOCOL.md documents the format normatively.

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment_id.h"

namespace icollect::wire {

/// Protocol version this build speaks. A HELLO advertises an inclusive
/// [version_min, version_max] range; two nodes interoperate iff the
/// ranges intersect (they then speak the highest common version).
inline constexpr std::uint8_t kProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kHello = 1,
  kGossipBlock = 2,
  kPullRequest = 3,
  kPullBlock = 4,
  kSegmentDecodedAck = 5,
  kBye = 6,
  kBufferSummary = 7,
};

[[nodiscard]] constexpr bool is_valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MessageType::kHello) &&
         t <= static_cast<std::uint8_t>(MessageType::kBufferSummary);
}

[[nodiscard]] constexpr const char* to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::kHello: return "hello";
    case MessageType::kGossipBlock: return "gossip-block";
    case MessageType::kPullRequest: return "pull-request";
    case MessageType::kPullBlock: return "pull-block";
    case MessageType::kSegmentDecodedAck: return "segment-decoded-ack";
    case MessageType::kBye: return "bye";
    case MessageType::kBufferSummary: return "buffer-summary";
  }
  return "?";
}

enum class NodeRole : std::uint8_t {
  kPeer = 0,    ///< buffers and gossips coded blocks
  kServer = 1,  ///< pulls, decodes, acknowledges
};

[[nodiscard]] constexpr const char* to_string(NodeRole r) noexcept {
  switch (r) {
    case NodeRole::kPeer: return "peer";
    case NodeRole::kServer: return "server";
  }
  return "?";
}

/// Session opener; first frame on every connection, sent by both sides.
struct Hello {
  NodeRole role = NodeRole::kPeer;
  std::uint8_t version_min = kProtocolVersion;
  std::uint8_t version_max = kProtocolVersion;
  std::uint32_t node_id = 0;      ///< the sender's stable identity
  std::uint16_t segment_size = 0; ///< s the sender codes with
  std::uint32_t buffer_cap = 0;   ///< B (peers; 0 for servers)
};

/// One re-coded block pushed peer→peer (gossip), or forwarded
/// server→server to keep the collaborating servers' decoder banks
/// converged (the live realization of the paper's pooled server state).
struct GossipBlock {
  coding::CodedBlock block;
};

/// Server→peer: "send me one re-coded block of a uniformly random
/// segment in your buffer". `token` correlates the reply.
///
/// Scheduling extension (wire-compatible with version-1 nodes that
/// never set it): `want` names the specific segment the pulling server
/// wants next — the peer answers with a re-code of that segment when it
/// holds it and falls back to the uniform rule otherwise — and
/// `want_summary` asks the peer to piggyback a BUFFER_SUMMARY on the
/// reply. When neither is set the body encodes in the original 4-byte
/// form, so default-policy traffic stays byte-identical.
struct PullRequest {
  std::uint32_t token = 0;
  bool want_summary = false;
  std::optional<coding::SegmentId> want;
};

/// Peer→server reply. `occupancy` piggybacks the peer's current buffered
/// block count so servers can steer pulls toward non-empty peers (the
/// paper's occupancy-aware pull rule) without a separate control
/// channel. `has_block` is false when the buffer was empty.
struct PullBlock {
  std::uint32_t token = 0;
  std::uint32_t occupancy = 0;
  bool has_block = false;
  coding::CodedBlock block;  ///< meaningful iff has_block
};

/// Server→all: a segment's collection completed (rank reached s).
struct SegmentDecodedAck {
  coding::SegmentId segment;
};

enum class ByeReason : std::uint8_t {
  kNormal = 0,
  kVersionMismatch = 1,
  kProtocolError = 2,
  kShutdown = 3,
};

[[nodiscard]] constexpr const char* to_string(ByeReason r) noexcept {
  switch (r) {
    case ByeReason::kNormal: return "normal";
    case ByeReason::kVersionMismatch: return "version-mismatch";
    case ByeReason::kProtocolError: return "protocol-error";
    case ByeReason::kShutdown: return "shutdown";
  }
  return "?";
}

/// Session closer; the connection is dropped after sending/receiving.
struct Bye {
  ByeReason reason = ByeReason::kNormal;
};

/// BUFFER_SUMMARY body codec version; bumped independently of the frame
/// protocol version so the summary format can evolve without a
/// HELLO-level break.
inline constexpr std::uint8_t kBufferSummaryVersion = 1;

/// Upper bound on segment ids per summary: caps decoder allocation
/// against forged counts and bounds the piggyback cost per pull reply.
inline constexpr std::size_t kMaxSummarySegments = 4096;

/// Peer→server: the ids of every segment currently in the sender's
/// buffer (truncated to kMaxSummarySegments in buffer order). Sent only
/// on request — a PullRequest with `want_summary` — so servers running
/// the default uniform policy generate zero summary traffic. Feeds
/// sched::RankTracker's per-peer availability estimates; staleness
/// bounding is the receiver's job (docs/PULL_POLICIES.md).
struct BufferSummary {
  std::vector<coding::SegmentId> segments;
};

using Message = std::variant<Hello, GossipBlock, PullRequest, PullBlock,
                             SegmentDecodedAck, Bye, BufferSummary>;

[[nodiscard]] constexpr MessageType type_of(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return MessageType::kHello;
    case 1: return MessageType::kGossipBlock;
    case 2: return MessageType::kPullRequest;
    case 3: return MessageType::kPullBlock;
    case 4: return MessageType::kSegmentDecodedAck;
    case 5: return MessageType::kBye;
    default: return MessageType::kBufferSummary;
  }
}

}  // namespace icollect::wire
