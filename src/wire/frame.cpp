#include "wire/frame.h"

#include <algorithm>

#include "common/crc32.h"
#include "wire/io.h"

namespace icollect::wire {

namespace {

/// Body size of a coded block: segment id + s + payload length prefix
/// + coefficients + payload.
std::size_t block_bytes(const coding::CodedBlock& b) {
  return 4 + 4 + 2 + 4 + b.coefficients.size() + b.payload.size();
}

void write_block(ByteWriter& w, const coding::CodedBlock& b) {
  w.u32(b.segment.origin);
  w.u32(b.segment.seq);
  w.u16(static_cast<std::uint16_t>(b.coefficients.size()));
  w.u32(static_cast<std::uint32_t>(b.payload.size()));
  w.bytes({b.coefficients.data(), b.coefficients.size()});
  w.bytes({b.payload.data(), b.payload.size()});
}

/// Read one coded block. Lengths are validated against the bytes
/// actually present *before* any allocation, so a forged length prefix
/// cannot balloon memory.
[[nodiscard]] bool read_block(ByteReader& r, coding::CodedBlock& out) {
  out.segment.origin = r.u32();
  out.segment.seq = r.u32();
  const std::uint16_t s = r.u16();
  const std::uint32_t payload_len = r.u32();
  if (!r.ok()) return false;
  if (s == 0 || s > kMaxWireSegmentSize) return false;
  if (static_cast<std::size_t>(s) + payload_len > r.remaining()) return false;
  const auto coeffs = r.bytes(s);
  const auto payload = r.bytes(payload_len);
  if (!r.ok()) return false;
  out.coefficients.assign(coeffs.begin(), coeffs.end());
  out.payload.assign(payload.begin(), payload.end());
  return true;
}

}  // namespace

void encode_body(const Message& m, std::vector<std::uint8_t>& out) {
  ByteWriter w{out};
  switch (type_of(m)) {
    case MessageType::kHello: {
      const auto& h = std::get<Hello>(m);
      w.u8(static_cast<std::uint8_t>(h.role));
      w.u8(h.version_min);
      w.u8(h.version_max);
      w.u8(0);  // reserved
      w.u32(h.node_id);
      w.u16(h.segment_size);
      w.u16(0);  // reserved
      w.u32(h.buffer_cap);
      break;
    }
    case MessageType::kGossipBlock:
      write_block(w, std::get<GossipBlock>(m).block);
      break;
    case MessageType::kPullRequest: {
      const auto& p = std::get<PullRequest>(m);
      w.u32(p.token);
      // Legacy 4-byte body unless a scheduling extension is in play —
      // the default uniform policy stays byte-identical on the wire.
      if (p.want_summary || p.want) {
        const std::uint8_t flags = static_cast<std::uint8_t>(
            (p.want_summary ? 1U : 0U) | (p.want ? 2U : 0U));
        w.u8(flags);
        if (p.want) {
          w.u32(p.want->origin);
          w.u32(p.want->seq);
        }
      }
      break;
    }
    case MessageType::kPullBlock: {
      const auto& p = std::get<PullBlock>(m);
      w.u32(p.token);
      w.u32(p.occupancy);
      w.u8(p.has_block ? 1 : 0);
      if (p.has_block) write_block(w, p.block);
      break;
    }
    case MessageType::kSegmentDecodedAck: {
      const auto& a = std::get<SegmentDecodedAck>(m);
      w.u32(a.segment.origin);
      w.u32(a.segment.seq);
      break;
    }
    case MessageType::kBye:
      w.u8(static_cast<std::uint8_t>(std::get<Bye>(m).reason));
      break;
    case MessageType::kBufferSummary: {
      const auto& s = std::get<BufferSummary>(m);
      const std::size_t count =
          std::min(s.segments.size(), kMaxSummarySegments);
      w.u8(kBufferSummaryVersion);
      w.u8(0);  // reserved
      w.u16(static_cast<std::uint16_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        w.u32(s.segments[i].origin);
        w.u32(s.segments[i].seq);
      }
      break;
    }
  }
}

DecodeStatus decode_body(MessageType type, std::span<const std::uint8_t> body,
                         Message& out) {
  ByteReader r{body};
  switch (type) {
    case MessageType::kHello: {
      Hello h;
      const std::uint8_t role = r.u8();
      h.version_min = r.u8();
      h.version_max = r.u8();
      (void)r.u8();  // reserved
      h.node_id = r.u32();
      h.segment_size = r.u16();
      (void)r.u16();  // reserved
      h.buffer_cap = r.u32();
      if (!r.done() || role > static_cast<std::uint8_t>(NodeRole::kServer) ||
          h.version_min > h.version_max) {
        return DecodeStatus::kMalformedBody;
      }
      h.role = static_cast<NodeRole>(role);
      out = h;
      return DecodeStatus::kFrame;
    }
    case MessageType::kGossipBlock: {
      GossipBlock g;
      if (!read_block(r, g.block) || !r.done()) {
        return DecodeStatus::kMalformedBody;
      }
      out = std::move(g);
      return DecodeStatus::kFrame;
    }
    case MessageType::kPullRequest: {
      PullRequest p;
      p.token = r.u32();
      if (!r.ok()) return DecodeStatus::kMalformedBody;
      if (!r.done()) {
        // Scheduling extension: flags byte, then the wanted segment id
        // when flag bit 1 is set. A flags byte that encodes nothing
        // (0) or unknown bits is malformed.
        const std::uint8_t flags = r.u8();
        if (!r.ok() || flags == 0 || flags > 3) {
          return DecodeStatus::kMalformedBody;
        }
        p.want_summary = (flags & 1U) != 0;
        if ((flags & 2U) != 0) {
          coding::SegmentId want;
          want.origin = r.u32();
          want.seq = r.u32();
          if (!r.ok()) return DecodeStatus::kMalformedBody;
          p.want = want;
        }
        if (!r.done()) return DecodeStatus::kMalformedBody;
      }
      out = p;
      return DecodeStatus::kFrame;
    }
    case MessageType::kPullBlock: {
      PullBlock p;
      p.token = r.u32();
      p.occupancy = r.u32();
      const std::uint8_t has = r.u8();
      if (!r.ok() || has > 1) return DecodeStatus::kMalformedBody;
      p.has_block = has == 1;
      if (p.has_block && !read_block(r, p.block)) {
        return DecodeStatus::kMalformedBody;
      }
      if (!r.done()) return DecodeStatus::kMalformedBody;
      out = std::move(p);
      return DecodeStatus::kFrame;
    }
    case MessageType::kSegmentDecodedAck: {
      SegmentDecodedAck a;
      a.segment.origin = r.u32();
      a.segment.seq = r.u32();
      if (!r.done()) return DecodeStatus::kMalformedBody;
      out = a;
      return DecodeStatus::kFrame;
    }
    case MessageType::kBye: {
      const std::uint8_t reason = r.u8();
      if (!r.done() ||
          reason > static_cast<std::uint8_t>(ByeReason::kShutdown)) {
        return DecodeStatus::kMalformedBody;
      }
      out = Bye{static_cast<ByeReason>(reason)};
      return DecodeStatus::kFrame;
    }
    case MessageType::kBufferSummary: {
      const std::uint8_t version = r.u8();
      (void)r.u8();  // reserved
      const std::uint16_t count = r.u16();
      if (!r.ok() || version != kBufferSummaryVersion ||
          count > kMaxSummarySegments) {
        return DecodeStatus::kMalformedBody;
      }
      // Validate the advertised count against the bytes actually
      // present before any allocation (same rule as read_block).
      if (static_cast<std::size_t>(count) * 8 != r.remaining()) {
        return DecodeStatus::kMalformedBody;
      }
      BufferSummary s;
      s.segments.resize(count);
      for (auto& id : s.segments) {
        id.origin = r.u32();
        id.seq = r.u32();
      }
      if (!r.done()) return DecodeStatus::kMalformedBody;
      out = std::move(s);
      return DecodeStatus::kFrame;
    }
  }
  return DecodeStatus::kBadType;
}

std::size_t frame_size(const Message& m) {
  std::size_t body = 0;
  switch (type_of(m)) {
    case MessageType::kHello: body = 16; break;
    case MessageType::kGossipBlock:
      body = block_bytes(std::get<GossipBlock>(m).block);
      break;
    case MessageType::kPullRequest: {
      const auto& p = std::get<PullRequest>(m);
      body = 4;
      if (p.want_summary || p.want) body += 1 + (p.want ? 8 : 0);
      break;
    }
    case MessageType::kPullBlock: {
      const auto& p = std::get<PullBlock>(m);
      body = 9 + (p.has_block ? block_bytes(p.block) : 0);
      break;
    }
    case MessageType::kSegmentDecodedAck: body = 8; break;
    case MessageType::kBye: body = 1; break;
    case MessageType::kBufferSummary:
      body = 4 + 8 * std::min(std::get<BufferSummary>(m).segments.size(),
                              kMaxSummarySegments);
      break;
  }
  return kFrameHeaderBytes + body;
}

void encode_frame(const Message& m, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  out.resize(header_at + kFrameHeaderBytes);
  const std::size_t body_at = out.size();
  encode_body(m, out);
  const std::size_t body_len = out.size() - body_at;
  const std::uint32_t crc =
      common::crc32({out.data() + body_at, body_len});

  // Fill the header in place now that the body length and CRC are known.
  std::uint8_t* h = out.data() + header_at;
  std::copy(kMagic.begin(), kMagic.end(), h);
  h[4] = kProtocolVersion;
  h[5] = static_cast<std::uint8_t>(type_of(m));
  h[6] = 0;
  h[7] = 0;
  const auto put32 = [](std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8U);
    p[2] = static_cast<std::uint8_t>(v >> 16U);
    p[3] = static_cast<std::uint8_t>(v >> 24U);
  };
  put32(h + 8, static_cast<std::uint32_t>(body_len));
  put32(h + 12, crc);
}

std::vector<std::uint8_t> encoded_frame(const Message& m) {
  std::vector<std::uint8_t> out;
  out.reserve(frame_size(m));
  encode_frame(m, out);
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before appending so the buffer's high-
  // water mark stays near one frame plus one read chunk.
  if (head_ > 0 && (head_ >= buf_.size() || head_ > 4096)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Result FrameDecoder::next() {
  if (is_error(latched_)) return {latched_, {}};
  const auto fail = [this](DecodeStatus s) -> Result {
    latched_ = s;
    ++errors_;
    ++by_status_[static_cast<std::size_t>(s)];
    return {s, {}};
  };
  if (buffered_bytes() < kFrameHeaderBytes) {
    return {DecodeStatus::kNeedMore, {}};
  }
  const std::uint8_t* h = buf_.data() + head_;
  if (!std::equal(kMagic.begin(), kMagic.end(), h)) {
    return fail(DecodeStatus::kBadMagic);
  }
  if (h[4] != kProtocolVersion) return fail(DecodeStatus::kBadVersion);
  if (!is_valid_type(h[5])) return fail(DecodeStatus::kBadType);
  const auto get32 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8U) |
           (static_cast<std::uint32_t>(p[2]) << 16U) |
           (static_cast<std::uint32_t>(p[3]) << 24U);
  };
  const std::uint32_t body_len = get32(h + 8);
  if (body_len > max_body_) return fail(DecodeStatus::kOversized);
  if (buffered_bytes() < kFrameHeaderBytes + body_len) {
    return {DecodeStatus::kNeedMore, {}};
  }
  const std::span<const std::uint8_t> body{h + kFrameHeaderBytes, body_len};
  if (common::crc32(body) != get32(h + 12)) {
    return fail(DecodeStatus::kBadCrc);
  }
  Message msg;
  const DecodeStatus st =
      decode_body(static_cast<MessageType>(h[5]), body, msg);
  if (st != DecodeStatus::kFrame) return fail(st);
  head_ += kFrameHeaderBytes + body_len;
  ++frames_;
  return {DecodeStatus::kFrame, std::move(msg)};
}

void FrameDecoder::reset() {
  if (is_error(latched_)) ++resyncs_;
  buf_.clear();
  head_ = 0;
  latched_ = DecodeStatus::kNeedMore;
}

}  // namespace icollect::wire
