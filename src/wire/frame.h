#pragma once

/// \file frame.h
/// Versioned, length-prefixed binary framing of wire::Message with
/// CRC-32 integrity — the unit a transport actually moves.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic  "iCoL" (0x69 0x43 0x6F 0x4C)
///        4     1  version (kProtocolVersion)
///        5     1  message type (wire::MessageType)
///        6     2  reserved (must be 0)
///        8     4  body length in bytes
///       12     4  CRC-32 (IEEE 802.3) of the body bytes
///       16   len  body (per-type layout; see docs/PROTOCOL.md)
///
/// Decoding is *bounded*: the advertised body length is validated
/// against the decoder's cap before any body buffering happens, so a
/// hostile 4 GiB length prefix costs 16 bytes of inspection, not an
/// allocation. Every rejection carries a typed DecodeStatus; the
/// decoder never throws on malformed input and never reads out of
/// range (see tests/wire_fuzz_test.cpp).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "wire/message.h"

namespace icollect::wire {

inline constexpr std::array<std::uint8_t, 4> kMagic{0x69, 0x43, 0x6F, 0x4C};
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Default cap on a frame body. Generous for any realistic coded block
/// (s + payload) yet small enough that a malicious length prefix cannot
/// balloon memory.
inline constexpr std::size_t kDefaultMaxBodyBytes = 1U << 20U;

/// Cap on the segment size s carried inside block-bearing bodies;
/// rejects absurd coefficient-vector lengths before allocation.
inline constexpr std::size_t kMaxWireSegmentSize = 1U << 14U;

enum class DecodeStatus : std::uint8_t {
  kFrame = 0,      ///< a complete, valid message was produced
  kNeedMore = 1,   ///< no complete frame buffered yet (not an error)
  kBadMagic = 2,   ///< stream does not start with the frame magic
  kBadVersion = 3, ///< frame version this build does not speak
  kBadType = 4,    ///< unknown message type
  kOversized = 5,  ///< advertised body length exceeds the decoder cap
  kBadCrc = 6,     ///< body bytes do not match the header CRC
  kMalformedBody = 7, ///< body structure invalid for its message type
};

[[nodiscard]] constexpr bool is_error(DecodeStatus s) noexcept {
  return s != DecodeStatus::kFrame && s != DecodeStatus::kNeedMore;
}

[[nodiscard]] constexpr const char* to_string(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadCrc: return "bad-crc";
    case DecodeStatus::kMalformedBody: return "malformed-body";
  }
  return "?";
}

/// Append the complete frame for `m` to `out` (header + body). Reusing
/// one `out` vector across sends keeps steady-state encoding
/// allocation-free once it has grown to the working frame size.
void encode_frame(const Message& m, std::vector<std::uint8_t>& out);

/// Convenience: the frame as a fresh vector.
[[nodiscard]] std::vector<std::uint8_t> encoded_frame(const Message& m);

/// Serialized size of the frame `m` would encode to.
[[nodiscard]] std::size_t frame_size(const Message& m);

/// Incremental frame decoder over an arbitrary byte stream: feed()
/// whatever chunks the transport delivers, then drain next() until it
/// reports kNeedMore. Any error status latches — the stream position is
/// unrecoverable (framing is lost), so the session owner should BYE and
/// close; reset() restarts a fresh stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_{max_body_bytes} {}

  /// Buffer incoming stream bytes. No parsing happens here.
  void feed(std::span<const std::uint8_t> bytes);

  struct Result {
    DecodeStatus status = DecodeStatus::kNeedMore;
    Message message;  ///< meaningful iff status == kFrame
  };

  /// Extract the next complete frame, or report why one is not
  /// available. After an error, returns the same error until reset().
  [[nodiscard]] Result next();

  /// Drop all buffered bytes and clear any latched error.
  void reset();

  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buf_.size() - head_;
  }
  [[nodiscard]] std::uint64_t frames_decoded() const noexcept {
    return frames_;
  }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }
  /// Errors of one specific kind (counted once per latch, not per
  /// repeated next() call on a latched decoder). Error statuses only.
  [[nodiscard]] std::uint64_t errors_by(DecodeStatus s) const noexcept {
    return by_status_[static_cast<std::size_t>(s)];
  }
  /// reset() calls that discarded a latched error — the session owner
  /// recovering framing after a poisoned stream.
  [[nodiscard]] std::uint64_t resyncs() const noexcept { return resyncs_; }
  [[nodiscard]] std::size_t max_body_bytes() const noexcept {
    return max_body_;
  }

 private:
  std::size_t max_body_;
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  ///< consumed prefix of buf_
  DecodeStatus latched_ = DecodeStatus::kNeedMore;
  std::uint64_t frames_ = 0;
  std::uint64_t errors_ = 0;
  std::array<std::uint64_t, 8> by_status_{};  ///< indexed by DecodeStatus
  std::uint64_t resyncs_ = 0;
};

/// Parse one message body of the given type (the bytes between two
/// frame boundaries, CRC already verified). Exposed separately so tests
/// can target body malformations without re-deriving CRCs.
[[nodiscard]] DecodeStatus decode_body(MessageType type,
                                       std::span<const std::uint8_t> body,
                                       Message& out);

/// Append the body encoding of `m` (no frame header) to `out`.
void encode_body(const Message& m, std::vector<std::uint8_t>& out);

}  // namespace icollect::wire
