/// \file flash_crowd.cpp
/// The Sec. 1 motivation, animated: a flash crowd multiplies the
/// vital-statistics load past the logging servers' bandwidth for a
/// bounded interval. The direct scheme's per-peer report queues overflow
/// and drop data; the indirect scheme spreads coded blocks across the
/// peer pool ("buffering zone") and the servers keep harvesting the
/// backlog after the burst passes ("smoothing factor").
///
///   ./flash_crowd [num_peers] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/icollect.h"

int main(int argc, char** argv) {
  using namespace icollect;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Base load 2 blocks/peer/unit; a 10x flash crowd in [20, 26).
  const workload::FlashCrowdProfile profile{2.0, 10.0, 20.0, 26.0};
  const double kEnd = 60.0;

  p2p::ProtocolConfig cfg;
  cfg.num_peers = n;
  cfg.lambda = 2.0;  // base rate; the profile overrides the time-variation
  cfg.mu = 8.0;
  cfg.gamma = 0.5;  // mean TTL of 2 time units of decentralized buffering
  cfg.segment_size = 10;
  cfg.buffer_cap = 120;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(4.0);  // covers the average, not the peak
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.seed = seed;

  std::printf("== flash crowd: N=%zu, base lambda=2, burst 10x in [20,26), "
              "c=4 ==\n\n",
              n);

  p2p::Network indirect{cfg};
  indirect.set_arrival_profile(&profile);

  p2p::ProtocolConfig dcfg = cfg;
  dcfg.buffer_cap = 40;  // a realistic bounded report queue
  p2p::DirectCollector direct{dcfg};
  direct.set_arrival_profile(&profile);
  direct.set_last_words_window(1.0);

  std::printf(
      " time | lambda | net blocks/peer | useful pulls/t | direct backlog "
      "| direct drops\n");
  std::printf(
      "------+--------+-----------------+----------------+----------------"
      "+-------------\n");
  std::uint64_t last_useful = 0;
  std::uint64_t last_drops = 0;
  for (double t = 4.0; t <= kEnd; t += 4.0) {
    indirect.run_until(t);
    direct.run_until(t);
    const std::uint64_t useful = indirect.servers().innovative_pulls();
    const std::uint64_t drops = direct.metrics().blocks_dropped_overflow;
    std::printf(" %4.0f | %6.1f | %15.1f | %14.1f | %14zu | %12llu\n", t,
                profile.rate(t),
                indirect.metrics().total_blocks.value() /
                    static_cast<double>(n),
                static_cast<double>(useful - last_useful) / 4.0,
                direct.backlog_size(),
                static_cast<unsigned long long>(drops - last_drops));
    last_useful = useful;
    last_drops = drops;
  }

  const auto& im = indirect.metrics();
  const auto& dm = direct.metrics();
  const double ind_frac =
      static_cast<double>(indirect.servers().innovative_pulls()) /
      static_cast<double>(im.blocks_injected);
  const double dir_frac = static_cast<double>(dm.blocks_collected) /
                          static_cast<double>(dm.blocks_generated);

  std::printf("\n-- end of session (t=%.0f) --\n", kEnd);
  std::printf("indirect: injected %llu blocks, servers obtained %.1f%%\n",
              static_cast<unsigned long long>(im.blocks_injected),
              100.0 * ind_frac);
  std::printf("direct:   generated %llu blocks, collected %.1f%% "
              "(overflow-dropped %llu)\n",
              static_cast<unsigned long long>(dm.blocks_generated),
              100.0 * dir_frac,
              static_cast<unsigned long long>(dm.blocks_dropped_overflow));
  std::printf(
      "\nReading the timeline: the indirect network's per-peer buffer level\n"
      "swells (20 -> ~50) to absorb the 10x spike and the servers' useful-\n"
      "pull rate keeps climbing for ~15 time units *after* the burst — the\n"
      "\"delayed fashion\" delivery the paper designs for — while the direct\n"
      "queues overflow during the burst and everything dropped is gone at\n"
      "once. (On gross fractions the direct scheme still leads: its pulls\n"
      "are never redundant. See bench/ablation_baseline_vs_indirect for\n"
      "which *kind* of data each scheme loses — the indirect scheme keeps\n"
      "departing peers' freshest records, the baseline loses them.)\n");
  return 0;
}
