/// \file capacity_planning.cpp
/// Use the paper's analytical model (Sec. 3 ODEs + Theorems 1-4) as a
/// provisioning tool: given a target collection efficiency and a cap on
/// per-peer storage overhead, search the (s, μ, γ, c) space for the
/// cheapest workable operating point — all without running a single
/// packet-level simulation — then validate the chosen point against the
/// event-driven simulator.
///
///   ./capacity_planning [lambda]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/icollect.h"

int main(int argc, char** argv) {
  using namespace icollect;

  const double lambda = argc > 1 ? std::strtod(argv[1], nullptr) : 20.0;
  const double target_efficiency = 0.95;  // want >= 95% of server capacity
  const double max_overhead = 15.0;       // <= 15 buffered blocks per peer
  const double gamma = 1.0;

  std::printf("== capacity planning via the fluid model ==\n");
  std::printf("demand lambda=%.0f per peer; want collection efficiency "
              ">= %.0f%% with storage overhead <= %.0f blocks/peer\n\n",
              lambda, 100.0 * target_efficiency, max_overhead);

  std::printf(" c    | best s | mu  | efficiency | overhead | delay  | "
              "normalized thr\n");
  std::printf("------+--------+-----+------------+----------+--------+"
              "----------------\n");

  struct Choice {
    double c = 0.0;
    std::size_t s = 0;
    double mu = 0.0;
    ode::OdeSolution sol;
    bool found = false;
  };
  Choice pick;

  for (const double c : {2.0, 4.0, 6.0, 8.0}) {
    Choice best;
    // Scan the knobs coarsely: the smallest s that reaches the target
    // (coding cost grows with s), at the smallest workable μ (upload
    // budget is precious on real peers).
    for (const double mu : {4.0, 8.0, 12.0}) {
      for (const std::size_t s : {1ul, 5ul, 10ul, 20ul, 30ul, 40ul}) {
        ode::OdeParams p;
        p.lambda = lambda;
        p.mu = mu;
        p.gamma = gamma;
        p.c = c;
        p.s = s;
        const auto sol = ode::IndirectOde{p}.solve();
        if (!sol.convergence.converged) continue;
        if (sol.collection_efficiency() < target_efficiency) continue;
        if (sol.storage_overhead() > max_overhead) continue;
        if (!best.found || s < best.s ||
            (s == best.s && mu < best.mu)) {
          best = Choice{c, s, mu, sol, true};
        }
        break;  // smallest s found for this μ; larger s only costs more
      }
    }
    if (best.found) {
      std::printf(" %4.0f | %6zu | %3.0f | %10.3f | %8.2f | %6.3f | %.3f\n",
                  best.c, best.s, best.mu,
                  best.sol.collection_efficiency(),
                  best.sol.storage_overhead(), best.sol.block_delay(),
                  best.sol.normalized_throughput());
      if (!pick.found) pick = best;
    } else {
      std::printf(" %4.0f |   none within the overhead/efficiency budget\n",
                  c);
    }
  }

  if (!pick.found) {
    std::printf("\nno feasible operating point; relax the constraints.\n");
    return 0;
  }

  std::printf("\nvalidating the c=%.0f plan (s=%zu, mu=%.0f) in the "
              "event-driven simulator...\n",
              pick.c, pick.s, pick.mu);
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 150;
  cfg.lambda = lambda;
  cfg.mu = pick.mu;
  cfg.gamma = gamma;
  cfg.segment_size = pick.s;
  cfg.buffer_cap = 160;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(pick.c);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.seed = 99;
  p2p::Network net{cfg};
  net.warm_up(10.0);
  net.run_until(net.now() + 25.0);

  std::printf("  model:      thr=%.3f  overhead=%.2f  delay=%.3f\n",
              pick.sol.normalized_throughput(), pick.sol.storage_overhead(),
              pick.sol.block_delay());
  std::printf("  simulation: thr=%.3f  overhead=%.2f  delay=%.3f\n",
              net.normalized_throughput(), net.storage_overhead(),
              net.mean_block_delay());
  std::printf("\ndone: provision c_s = c*N/N_s per server and ship the "
              "(s, mu, gamma) above to the peers.\n");
  return 0;
}
