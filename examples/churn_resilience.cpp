/// \file churn_resilience.cpp
/// "Ironically, since peers tend to leave soon after the quality
/// degrades, such statistics from departed peers may be the most useful
/// to diagnose system outages" (Sec. 1).
///
/// This example sweeps churn severity (mean peer lifetime) and compares,
/// for the direct baseline and the indirect scheme, how much of the data
/// of peers that later departed — and in particular their final
/// ("last words") measurements — the logging servers end up with.
///
///   ./churn_resilience [num_peers] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/icollect.h"

namespace {

using namespace icollect;

struct Outcome {
  double departed = 0.0;
  double last_words = 0.0;
};

Outcome run_direct(const p2p::ProtocolConfig& base, double window) {
  p2p::ProtocolConfig cfg = base;
  cfg.buffer_cap = 60;
  p2p::DirectCollector dc{cfg};
  dc.set_last_words_window(window);
  dc.run_until(40.0);
  return {dc.departed_data_stats().recovery_fraction(),
          dc.last_words_stats().recovery_fraction()};
}

Outcome run_indirect(const p2p::ProtocolConfig& base, std::size_t s,
                     double window) {
  p2p::ProtocolConfig cfg = base;
  cfg.segment_size = s;
  p2p::Network net{cfg};
  net.run_until(40.0);
  return {net.departed_data_stats().recovery_fraction(),
          net.last_words_stats(window).recovery_fraction()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  const double kWindow = 1.0;

  p2p::ProtocolConfig base;
  base.num_peers = n;
  base.lambda = 20.0;
  base.mu = 10.0;
  base.gamma = 1.0;
  base.segment_size = 10;
  base.buffer_cap = 120;
  base.num_servers = 4;
  base.set_normalized_capacity(5.0);
  base.fidelity = p2p::CollectionFidelity::kStateCounter;
  base.churn.enabled = true;
  base.seed = seed;

  std::printf("== churn resilience: recovery of departed peers' data ==\n");
  std::printf("N=%zu lambda=20 mu=10 gamma=1 c=5, last-words window=%.1f\n\n",
              n, kWindow);
  std::printf(
      " E[L] | direct dep | dir last-words | ind s=10 dep | ind s=10 "
      "last-words\n");
  std::printf(
      "------+------------+----------------+--------------+--------------"
      "----\n");

  for (const double lifetime : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    base.churn.mean_lifetime = lifetime;
    const Outcome d = run_direct(base, kWindow);
    const Outcome i10 = run_indirect(base, 10, kWindow);
    std::printf(" %4.0f | %10.3f | %14.3f | %12.3f | %18.3f\n", lifetime,
                d.departed, d.last_words, i10.departed, i10.last_words);
  }

  std::printf(
      "\nReading: overall departed-peer recovery is capped by c/lambda for\n"
      "everyone, but the *final* measurements before a departure — exactly\n"
      "the ones a postmortem needs — are nearly absent from the direct\n"
      "collector's FIFO queues while the indirect scheme keeps recovering\n"
      "them posthumously from gossiped coded copies.\n");
  return 0;
}
