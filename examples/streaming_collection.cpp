/// \file streaming_collection.cpp
/// The full story end to end: run a real P2P streaming session (the
/// application whose health the paper wants to monitor), let the
/// indirect collection protocol gather the session's *measured* vital
/// statistics, and then play network analyst — find the struggling
/// peers from the logging servers' recovered records alone.
///
///   ./streaming_collection [num_peers] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/icollect.h"

int main(int argc, char** argv) {
  using namespace icollect;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  // --- 1. the application: a live-streaming swarm -------------------------
  workload::StreamingConfig session_cfg;
  session_cfg.num_peers = n;
  session_cfg.chunk_rate = 10.0;
  session_cfg.partners = 6;
  session_cfg.request_rate = 40.0;
  // Aggregate upload (n*12 + 60) comfortably exceeds the aggregate
  // demand n*chunk_rate, so the swarm is healthy overall — the flagged
  // peers below are the genuinely unlucky tail, not a starved fleet.
  session_cfg.upload_chunks = 12.0;
  session_cfg.source_upload_chunks = 60.0;
  session_cfg.seed = seed;

  // --- 2. the collection protocol -----------------------------------------
  p2p::ProtocolConfig cfg;
  cfg.num_peers = n;
  cfg.lambda = 4.0;  // a few stats blocks per peer per time unit
  cfg.segment_size = 4;
  cfg.mu = 6.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 60;
  cfg.num_servers = 3;
  cfg.set_normalized_capacity(5.0);
  cfg.payload_bytes = 64;
  cfg.seed = seed;

  std::printf("== streaming session -> indirect collection -> analyst ==\n");
  std::printf("swarm: %zu peers at %g chunks/s; collection: s=%zu c=%.1f\n\n",
              n, session_cfg.chunk_rate, cfg.segment_size,
              cfg.normalized_capacity());

  CollectionSystem system{cfg};
  // Pre-run the session for 30 time units, sampling each peer every 0.5.
  system.use_streaming_session_payloads(session_cfg, 30.0, 0.5);
  system.run(30.0);

  const CollectionReport r = system.report();
  std::printf("collection: %llu segments decoded (%llu injected), "
              "CRC failures %llu\n",
              static_cast<unsigned long long>(r.segments_decoded),
              static_cast<unsigned long long>(r.segments_injected),
              static_cast<unsigned long long>(r.payload_crc_failures));

  // --- 3. the analyst ------------------------------------------------------
  const auto store = system.recovered_record_store();
  const auto health = store.health(0.0, 30.0);
  std::printf("\nrecovered %zu records from %zu peers\n", store.size(),
              store.peer_count());
  std::printf("fleet: continuity %.3f±%.3f | buffer %.2fs | download %.0f "
              "kbps | loss %.3f\n",
              health.continuity.mean(), health.continuity.stddev(),
              health.buffer_level.mean(), health.download_kbps.mean(),
              health.loss_rate.mean());

  const auto flagged = store.unhealthy_peers(0.95F, 0.25F);
  std::printf("\npeers flagged by their latest recovered report "
              "(continuity < 0.95 or loss > 0.25): %zu\n",
              flagged.size());
  for (std::size_t i = 0; i < flagged.size() && i < 8; ++i) {
    const auto last = store.latest(flagged[i]);
    std::printf("  peer %-4u cont=%.3f loss=%.3f buf=%.2fs (t=%.1f)\n",
                flagged[i], last->playback_continuity, last->loss_rate,
                last->buffer_level, last->timestamp);
  }
  std::printf(
      "\nEvery number above came out of the logging servers' decoded\n"
      "segments — measured by the swarm, packed into coded blocks,\n"
      "gossiped, pulled, and Gaussian-eliminated back into records.\n");
  return 0;
}
