/// \file quickstart.cpp
/// 60-second tour of the public API: run an indirect-collection session
/// with real vital-statistics payloads, print the report, compare the
/// headline numbers with the paper's fluid model, and show a few of the
/// records the logging servers recovered end-to-end.
///
///   ./quickstart [num_peers] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/icollect.h"

int main(int argc, char** argv) {
  using namespace icollect;

  p2p::ProtocolConfig cfg;
  cfg.num_peers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  cfg.lambda = 20.0;        // each peer produces 20 stats blocks / unit time
  cfg.segment_size = 10;    // RLNC over segments of 10 blocks
  cfg.mu = 10.0;            // gossip upload budget per peer
  cfg.gamma = 1.0;          // mean block TTL = 1 time unit
  cfg.buffer_cap = 120;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(5.0);  // c = 5 < λ: scarce server bandwidth
  cfg.payload_bytes = 64;            // real payload, CRC-verified
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("== icollect quickstart ==\n");
  std::printf("N=%zu peers, lambda=%.0f, s=%zu, mu=%.0f, gamma=%.0f, c=%.1f\n",
              cfg.num_peers, cfg.lambda, cfg.segment_size, cfg.mu, cfg.gamma,
              cfg.normalized_capacity());

  CollectionSystem system{cfg};
  system.use_vital_statistics_payloads();

  std::printf("warming up (10 time units)...\n");
  system.warm_up(10.0);
  std::printf("measuring (25 time units)...\n");
  system.run(25.0);

  const CollectionReport r = system.report();
  std::printf("\n-- session report --\n");
  std::printf("throughput            %8.1f original blocks/unit time\n",
              r.throughput);
  std::printf("normalized throughput %8.3f   (capacity bound %.3f)\n",
              r.normalized_throughput, r.capacity_bound);
  std::printf("mean block delay      %8.3f time units\n", r.mean_block_delay);
  std::printf("blocks per peer (rho) %8.2f\n", r.mean_blocks_per_peer);
  std::printf("storage overhead      %8.2f   (Theorem 1 bound mu/gamma=%.1f)\n",
              r.storage_overhead, r.overhead_bound);
  std::printf("empty-peer fraction   %8.4f\n", r.empty_peer_fraction);
  std::printf("segments: injected %llu, decoded %llu, lost %llu\n",
              static_cast<unsigned long long>(r.segments_injected),
              static_cast<unsigned long long>(r.segments_decoded),
              static_cast<unsigned long long>(r.segments_lost));
  std::printf("server pulls %llu (%.1f%% redundant)\n",
              static_cast<unsigned long long>(r.server_pulls),
              100.0 * r.redundancy_fraction());
  std::printf("payload CRC failures  %llu (must be 0)\n",
              static_cast<unsigned long long>(r.payload_crc_failures));
  std::printf("saved for future delivery: %.0f original blocks (exact rank)\n",
              r.saved.saved_original_blocks_rank);

  std::printf("\n-- fluid-model (Sec. 3 ODEs) comparison --\n");
  const auto ode = CollectionSystem::analyze(cfg);
  std::printf("rho:        ODE %6.2f | sim %6.2f\n", ode.rho(),
              r.mean_blocks_per_peer);
  std::printf("throughput: ODE %6.3f | sim %6.3f (normalized)\n",
              ode.normalized_throughput(), r.normalized_throughput);
  std::printf("delay:      ODE %6.3f | sim %6.3f (block delay)\n",
              ode.block_delay(), r.mean_block_delay);

  const auto records = system.recovered_records();
  std::printf("\n-- recovered vital statistics: %zu records --\n",
              records.size());
  for (std::size_t i = 0; i < records.size() && i < 5; ++i) {
    const auto& rec = records[i];
    std::printf(
        "  peer %-5u t=%6.2f buf=%5.1fs down=%6.1fkbps cont=%.3f "
        "loss=%.3f partners=%u\n",
        rec.peer, rec.timestamp, rec.buffer_level, rec.download_rate_kbps,
        rec.playback_continuity, rec.loss_rate, rec.partner_count);
  }

  // What an analyst would do with them: load the RecordStore and ask for
  // fleet-wide health over the measured window.
  const auto store = system.recovered_record_store();
  const auto health = store.health(0.0, 1e9);
  std::printf("\n-- analyst view (RecordStore) --\n");
  std::printf("records %zu from %zu distinct peers\n", store.size(),
              store.peer_count());
  std::printf("fleet health: continuity %.3f±%.3f, loss %.3f, "
              "buffer %.1fs, download %.0f kbps\n",
              health.continuity.mean(), health.continuity.stddev(),
              health.loss_rate.mean(), health.buffer_level.mean(),
              health.download_kbps.mean());
  std::printf("peers flagged unhealthy by their latest report: %zu\n",
              store.unhealthy_peers().size());
  std::printf("\nok.\n");
  return 0;
}
