/// \file segment_lifecycle.cpp
/// Follow individual segments through the protocol using the trace
/// stream: injection → gossip spread → server pulls → decoded or lost.
/// Prints a few complete lifecycles plus aggregate lifecycle statistics
/// (spread before first pull, pulls before decode, lifetime of lost
/// segments) — the microscope view behind the Fig. 3-6 aggregates.
///
///   ./segment_lifecycle [num_peers] [seed]

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "core/icollect.h"

namespace {

using namespace icollect;

struct Lifecycle {
  double injected_at = -1.0;
  std::size_t origin = 0;
  std::uint64_t gossip_copies = 0;
  std::uint64_t pulls = 0;
  std::uint64_t useful_pulls = 0;
  double first_pull_at = -1.0;
  double resolved_at = -1.0;  // decode or loss time
  bool decoded = false;
  bool lost = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;

  p2p::ProtocolConfig cfg;
  cfg.num_peers = n;
  cfg.lambda = 20.0;
  cfg.segment_size = 10;
  cfg.mu = 10.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 120;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(5.0);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.seed = seed;

  std::printf("== segment lifecycles: N=%zu lambda=20 s=10 mu=10 c=5 ==\n\n",
              n);

  p2p::Network net{cfg};
  std::unordered_map<coding::SegmentId, Lifecycle> lives;
  net.set_trace_sink([&](const proto::TraceEvent& ev) {
    switch (ev.kind) {
      case proto::TraceEventKind::kSegmentInjected: {
        Lifecycle life;
        life.injected_at = ev.at;
        life.origin = ev.slot;
        lives[ev.segment] = life;
        break;
      }
      case proto::TraceEventKind::kGossipSent:
        if (auto it = lives.find(ev.segment); it != lives.end()) {
          ++it->second.gossip_copies;
        }
        break;
      case proto::TraceEventKind::kServerPull:
        if (auto it = lives.find(ev.segment); it != lives.end()) {
          ++it->second.pulls;
          it->second.useful_pulls += ev.aux;
          if (it->second.first_pull_at < 0.0) {
            it->second.first_pull_at = ev.at;
          }
        }
        break;
      case proto::TraceEventKind::kSegmentDecoded:
        if (auto it = lives.find(ev.segment); it != lives.end()) {
          it->second.decoded = true;
          it->second.resolved_at = ev.at;
        }
        break;
      case proto::TraceEventKind::kSegmentLost:
        if (auto it = lives.find(ev.segment); it != lives.end()) {
          it->second.lost = true;
          it->second.resolved_at = ev.at;
        }
        break;
      default:
        break;
    }
  });
  net.run_until(20.0);

  // Show the first few resolved lifecycles of each fate.
  std::printf("sample lifecycles (s = %zu blocks each):\n",
              cfg.segment_size);
  int shown_decoded = 0;
  int shown_lost = 0;
  for (const auto& [id, life] : lives) {
    if (life.resolved_at < 0.0) continue;
    const bool show = (life.decoded && shown_decoded < 3) ||
                      (life.lost && shown_lost < 3);
    if (!show) continue;
    (life.decoded ? shown_decoded : shown_lost) += 1;
    std::printf(
        "  seg %-8s origin peer %-3zu  injected t=%6.2f  %2llu copies "
        "gossiped  %2llu pulls (%llu useful)  %s t=%6.2f  (alive %.2f)\n",
        id.to_string().c_str(), life.origin, life.injected_at,
        static_cast<unsigned long long>(life.gossip_copies),
        static_cast<unsigned long long>(life.pulls),
        static_cast<unsigned long long>(life.useful_pulls),
        life.decoded ? "DECODED" : "LOST   ", life.resolved_at,
        life.resolved_at - life.injected_at);
    if (shown_decoded >= 3 && shown_lost >= 3) break;
  }

  // Aggregates.
  stats::Summary life_decoded;
  stats::Summary life_lost;
  stats::Summary copies_decoded;
  stats::Summary copies_lost;
  stats::Summary pulls_decoded;
  std::size_t unresolved = 0;
  for (const auto& [id, life] : lives) {
    if (life.resolved_at < 0.0) {
      ++unresolved;
      continue;
    }
    const double alive = life.resolved_at - life.injected_at;
    if (life.decoded) {
      life_decoded.add(alive);
      copies_decoded.add(static_cast<double>(life.gossip_copies));
      pulls_decoded.add(static_cast<double>(life.pulls));
    } else {
      life_lost.add(alive);
      copies_lost.add(static_cast<double>(life.gossip_copies));
    }
  }
  std::printf("\n-- aggregates over %zu segments (%zu still unresolved) --\n",
              lives.size(), unresolved);
  std::printf("decoded:  %6llu segments, alive %.2f±%.2f, %.1f gossip "
              "copies, %.1f pulls to finish\n",
              static_cast<unsigned long long>(life_decoded.count()),
              life_decoded.mean(), life_decoded.stddev(),
              copies_decoded.mean(), pulls_decoded.mean());
  std::printf("lost:     %6llu segments, alive %.2f±%.2f, %.1f gossip "
              "copies\n",
              static_cast<unsigned long long>(life_lost.count()),
              life_lost.mean(), life_lost.stddev(), copies_lost.mean());
  std::printf(
      "\nthe ratio of the two populations is exactly what Fig. 3 plots as\n"
      "throughput, and the decoded population's alive-time is Fig. 5's\n"
      "delay — this is the same system seen one segment at a time.\n");
  return 0;
}
