/// PeerBuffer tests: capacity, segment organization, handle lifecycle.

#include <gtest/gtest.h>

#include <map>

#include "coding/encoder.h"
#include "proto/peer_buffer.h"

namespace icollect::proto {
namespace {

coding::CodedBlock block_of(coding::SegmentId id, std::size_t s,
                            common::Rng& rng) {
  coding::CodedBlock b;
  b.segment = id;
  b.coefficients.resize(s);
  do {
    rng.fill_gf(b.coefficients);
  } while (b.is_degenerate());
  return b;
}

TEST(PeerBuffer, StartsEmpty) {
  const PeerBuffer pb{10};
  EXPECT_TRUE(pb.empty());
  EXPECT_FALSE(pb.full());
  EXPECT_EQ(pb.size(), 0u);
  EXPECT_EQ(pb.segment_count(), 0u);
  EXPECT_TRUE(pb.has_room(10));
  EXPECT_FALSE(pb.has_room(11));
}

TEST(PeerBuffer, ZeroCapacityViolatesContract) {
  EXPECT_THROW((PeerBuffer{0}), icollect::ContractViolation);
}

TEST(PeerBuffer, InsertAndFindBySegment) {
  common::Rng rng{71};
  PeerBuffer pb{10};
  const coding::SegmentId s1{1, 0};
  const coding::SegmentId s2{2, 0};
  pb.insert(1, block_of(s1, 4, rng));
  pb.insert(2, block_of(s1, 4, rng));
  pb.insert(3, block_of(s2, 4, rng));
  EXPECT_EQ(pb.size(), 3u);
  EXPECT_EQ(pb.segment_count(), 2u);
  ASSERT_NE(pb.find(s1), nullptr);
  EXPECT_EQ(pb.find(s1)->block_count(), 2u);
  ASSERT_NE(pb.find(s2), nullptr);
  EXPECT_EQ(pb.find(s2)->block_count(), 1u);
  EXPECT_EQ(pb.find(coding::SegmentId{3, 0}), nullptr);
}

TEST(PeerBuffer, FullBufferRejectsInsert) {
  common::Rng rng{72};
  PeerBuffer pb{2};
  pb.insert(1, block_of({1, 0}, 2, rng));
  pb.insert(2, block_of({1, 0}, 2, rng));
  EXPECT_TRUE(pb.full());
  EXPECT_THROW(pb.insert(3, block_of({1, 0}, 2, rng)),
               icollect::ContractViolation);
}

TEST(PeerBuffer, DuplicateHandleViolatesContract) {
  common::Rng rng{73};
  PeerBuffer pb{4};
  pb.insert(7, block_of({1, 0}, 2, rng));
  EXPECT_THROW(pb.insert(7, block_of({1, 0}, 2, rng)),
               icollect::ContractViolation);
}

TEST(PeerBuffer, EraseReturnsSegmentAndPrunes) {
  common::Rng rng{74};
  PeerBuffer pb{10};
  const coding::SegmentId s1{1, 0};
  pb.insert(1, block_of(s1, 4, rng));
  pb.insert(2, block_of(s1, 4, rng));
  auto seg = pb.erase(1);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(*seg, s1);
  EXPECT_EQ(pb.size(), 1u);
  EXPECT_EQ(pb.segment_count(), 1u);
  seg = pb.erase(2);
  ASSERT_TRUE(seg.has_value());
  EXPECT_TRUE(pb.empty());
  EXPECT_EQ(pb.segment_count(), 0u);  // emptied segment entry dropped
  EXPECT_EQ(pb.find(s1), nullptr);
  EXPECT_FALSE(pb.erase(2).has_value());  // unknown handle
}

TEST(PeerBuffer, RandomSegmentIsUniformOverSegments) {
  common::Rng rng{75};
  PeerBuffer pb{100};
  // Segment A holds 9 blocks, B holds 1 — selection must be uniform over
  // *segments* (paper: "chooses a segment r u.a.r. from among all the
  // segments of which it has at least one block"), not over blocks.
  const coding::SegmentId a{1, 0};
  const coding::SegmentId b{2, 0};
  for (std::size_t k = 0; k < 9; ++k) pb.insert(k + 1, block_of(a, 4, rng));
  pb.insert(100, block_of(b, 4, rng));
  std::map<coding::SegmentId, int> hits;
  for (int t = 0; t < 4000; ++t) ++hits[pb.random_segment(rng)];
  EXPECT_NEAR(hits[a], 2000, 200);
  EXPECT_NEAR(hits[b], 2000, 200);
}

TEST(PeerBuffer, RandomSegmentOnEmptyViolatesContract) {
  common::Rng rng{76};
  const PeerBuffer pb{4};
  EXPECT_THROW((void)pb.random_segment(rng), icollect::ContractViolation);
}

TEST(PeerBuffer, AllHandlesAndClear) {
  common::Rng rng{77};
  PeerBuffer pb{10};
  pb.insert(5, block_of({1, 0}, 2, rng));
  pb.insert(9, block_of({2, 0}, 2, rng));
  auto hs = pb.all_handles();
  std::sort(hs.begin(), hs.end());
  EXPECT_EQ(hs, (std::vector<coding::BlockHandle>{5, 9}));
  EXPECT_EQ(pb.clear(), 2u);
  EXPECT_TRUE(pb.empty());
  EXPECT_TRUE(pb.all_handles().empty());
  EXPECT_TRUE(pb.segments().empty());
}

TEST(PeerBuffer, SegmentListTracksMembership) {
  common::Rng rng{78};
  PeerBuffer pb{10};
  for (std::uint32_t k = 0; k < 5; ++k) {
    pb.insert(k + 1, block_of({k, 0}, 2, rng));
  }
  EXPECT_EQ(pb.segments().size(), 5u);
  // Remove the middle segment's only block: list shrinks by one.
  pb.erase(3);
  EXPECT_EQ(pb.segments().size(), 4u);
  for (const auto& id : pb.segments()) {
    EXPECT_NE(pb.find(id), nullptr);
  }
}

}  // namespace
}  // namespace icollect::proto
