/// SegmentBuffer: per-peer per-segment storage, rank tracking, recoding.

#include <gtest/gtest.h>

#include <algorithm>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "sim/random.h"

namespace icollect::coding {
namespace {

std::vector<std::vector<std::uint8_t>> originals(std::size_t s,
                                                 std::size_t bytes,
                                                 sim::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> v(s);
  for (auto& b : v) {
    b.resize(bytes);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.gf_element());
  }
  return v;
}

TEST(SegmentBuffer, StartsEmpty) {
  const SegmentBuffer sb{SegmentId{1, 2}, 4};
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.block_count(), 0u);
  EXPECT_EQ(sb.rank(), 0u);
  EXPECT_FALSE(sb.full_rank());
}

TEST(SegmentBuffer, RankGrowsWithIndependentBlocks) {
  sim::Rng rng{41};
  const SegmentId id{1, 2};
  const SegmentEncoder enc{id, originals(4, 8, rng)};
  SegmentBuffer sb{id, 4};
  for (std::size_t k = 0; k < 4; ++k) {
    sb.add(k + 1, enc.systematic_block(k));
    EXPECT_EQ(sb.rank(), k + 1);
  }
  EXPECT_TRUE(sb.full_rank());
}

TEST(SegmentBuffer, DuplicateBlocksCountButDoNotRaiseRank) {
  sim::Rng rng{42};
  const SegmentId id{1, 2};
  const SegmentEncoder enc{id, originals(4, 8, rng)};
  SegmentBuffer sb{id, 4};
  const CodedBlock b = enc.encode(rng);
  sb.add(1, b);
  sb.add(2, b);
  EXPECT_EQ(sb.block_count(), 2u);
  EXPECT_EQ(sb.rank(), 1u);
}

TEST(SegmentBuffer, RemoveRecomputesRank) {
  sim::Rng rng{43};
  const SegmentId id{3, 3};
  const SegmentEncoder enc{id, originals(3, 8, rng)};
  SegmentBuffer sb{id, 3};
  sb.add(1, enc.systematic_block(0));
  sb.add(2, enc.systematic_block(1));
  sb.add(3, enc.systematic_block(2));
  EXPECT_TRUE(sb.full_rank());
  EXPECT_TRUE(sb.remove(2));
  EXPECT_EQ(sb.block_count(), 2u);
  EXPECT_EQ(sb.rank(), 2u);
  EXPECT_FALSE(sb.full_rank());
  EXPECT_FALSE(sb.remove(2));  // already gone
}

TEST(SegmentBuffer, HandlesAreReported) {
  sim::Rng rng{44};
  const SegmentId id{5, 5};
  const SegmentEncoder enc{id, originals(2, 4, rng)};
  SegmentBuffer sb{id, 2};
  sb.add(11, enc.encode(rng));
  sb.add(22, enc.encode(rng));
  auto hs = sb.handles();
  std::sort(hs.begin(), hs.end());
  EXPECT_EQ(hs, (std::vector<BlockHandle>{11, 22}));
}

TEST(SegmentBuffer, RecodeStaysInsideStoredSpan) {
  sim::Rng rng{45};
  const SegmentId id{6, 6};
  const SegmentEncoder enc{id, originals(5, 8, rng)};
  SegmentBuffer sb{id, 5};
  // Store only 2 independent blocks: the recoded output must lie in that
  // 2-dimensional span (never innovative to a decoder that knows it).
  sb.add(1, enc.encode(rng));
  sb.add(2, enc.encode(rng));
  Decoder span{id, 5, 8};
  sb.for_each_block([&](const CodedBlock& b) { span.add(b); });
  for (int t = 0; t < 50; ++t) {
    EXPECT_FALSE(span.is_innovative(sb.recode(rng)));
  }
}

TEST(SegmentBuffer, RecodePreservesPayloadConsistency) {
  // Decoding from recoded blocks must recover the true originals.
  sim::Rng rng{46};
  const SegmentId id{7, 7};
  const auto orig = originals(4, 16, rng);
  const SegmentEncoder enc{id, orig};
  SegmentBuffer sb{id, 4};
  for (std::size_t k = 0; k < 4; ++k) sb.add(k + 1, enc.systematic_block(k));
  Decoder dec{id, 4, 16};
  int guard = 0;
  while (!dec.complete() && ++guard < 100) dec.add(sb.recode(rng));
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.originals(), orig);
}

TEST(SegmentBuffer, RecodeNeverDegenerate) {
  sim::Rng rng{47};
  const SegmentId id{8, 8};
  const SegmentEncoder enc{id, originals(1, 2, rng)};
  SegmentBuffer sb{id, 1};
  sb.add(1, enc.systematic_block(0));
  for (int t = 0; t < 300; ++t) {
    EXPECT_FALSE(sb.recode(rng).is_degenerate());
  }
}

TEST(SegmentBuffer, RecodeOnEmptyViolatesContract) {
  sim::Rng rng{48};
  SegmentBuffer sb{SegmentId{9, 9}, 3};
  EXPECT_THROW((void)sb.recode(rng), ContractViolation);
}

TEST(SegmentBuffer, AddWrongSegmentViolatesContract) {
  sim::Rng rng{49};
  SegmentBuffer sb{SegmentId{1, 0}, 3};
  CodedBlock b;
  b.segment = SegmentId{1, 1};
  b.coefficients = {1, 0, 0};
  EXPECT_THROW(sb.add(1, b), ContractViolation);
}

TEST(SegmentBuffer, IsInnovativeAgreesWithRankChange) {
  sim::Rng rng{50};
  const SegmentId id{2, 9};
  const SegmentEncoder enc{id, originals(6, 4, rng)};
  SegmentBuffer sb{id, 6};
  for (std::size_t k = 0; k < 20; ++k) {
    const CodedBlock b = enc.encode(rng);
    const bool predicted = sb.is_innovative(b);
    const std::size_t before = sb.rank();
    sb.add(k + 1, b);
    EXPECT_EQ(predicted, sb.rank() > before);
  }
}

}  // namespace
}  // namespace icollect::coding
