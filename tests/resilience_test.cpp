/// Tests for the loss-resilience accounting: departed-peer recovery,
/// "last words" windows, and time-varying arrival profiles on both the
/// indirect engine and the direct baseline.

#include <gtest/gtest.h>

#include "p2p/direct_collector.h"
#include "p2p/network.h"

namespace icollect::p2p {
namespace {

ProtocolConfig churny_config() {
  ProtocolConfig cfg;
  cfg.num_peers = 80;
  cfg.lambda = 10.0;
  cfg.segment_size = 5;
  cfg.mu = 8.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 80;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(4.0);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 3.0;
  cfg.seed = 17;
  return cfg;
}

TEST(DepartedData, NetworkAccountingIsConsistent) {
  Network net{churny_config()};
  net.run_until(20.0);
  const auto stats = net.departed_data_stats();
  EXPECT_GT(stats.departed_origins, 0u);
  EXPECT_EQ(stats.departed_origins, net.metrics().peers_departed);
  EXPECT_GT(stats.blocks_generated, 0u);
  EXPECT_LE(stats.blocks_delivered, stats.blocks_generated);
  EXPECT_GE(stats.recovery_fraction(), 0.0);
  EXPECT_LE(stats.recovery_fraction(), 1.0);
}

TEST(DepartedData, WindowedIsSubsetOfTotal) {
  Network net{churny_config()};
  net.run_until(20.0);
  const auto total = net.departed_data_stats();
  const auto recent = net.last_words_stats(0.5);
  EXPECT_LE(recent.blocks_generated, total.blocks_generated);
  EXPECT_LE(recent.blocks_delivered, total.blocks_delivered);
  // A wider window converges to the total.
  const auto wide = net.last_words_stats(1e9);
  EXPECT_EQ(wide.blocks_generated, total.blocks_generated);
  EXPECT_EQ(wide.blocks_delivered, total.blocks_delivered);
}

TEST(DepartedData, InvalidWindowViolatesContract) {
  Network net{churny_config()};
  EXPECT_THROW((void)net.last_words_stats(0.0), ContractViolation);
}

TEST(DepartedData, NoChurnMeansNoDepartures) {
  auto cfg = churny_config();
  cfg.churn.enabled = false;
  Network net{cfg};
  net.run_until(10.0);
  const auto stats = net.departed_data_stats();
  EXPECT_EQ(stats.departed_origins, 0u);
  EXPECT_EQ(stats.blocks_generated, 0u);
}

TEST(DepartedData, PosthumousCollectionHappens) {
  // The indirect scheme's signature property: delivery counted for a
  // departed origin can exceed what was delivered at departure time.
  // Freeze churn after a while, then let the servers keep pulling and
  // check the departed-recovery improves.
  auto cfg = churny_config();
  cfg.set_normalized_capacity(1.0);  // scarce: big undelivered backlog
  Network net{cfg};
  net.run_until(10.0);
  const double early = net.departed_data_stats().recovery_fraction();
  net.run_until(30.0);
  // Same departed origins from the early period are still being served;
  // with more origins departing meanwhile this is not a strict per-origin
  // comparison, but with scarce capacity the aggregate must not collapse
  // and typically grows.
  const auto late = net.departed_data_stats();
  EXPECT_GT(late.blocks_delivered, 0u);
  EXPECT_GE(late.recovery_fraction(), early * 0.5);
}

TEST(DirectDepartedData, LedgerConservation) {
  auto cfg = churny_config();
  cfg.buffer_cap = 30;
  DirectCollector dc{cfg};
  dc.set_last_words_window(1.0);
  dc.run_until(25.0);
  const auto dep = dc.departed_data_stats();
  EXPECT_EQ(dep.departed_origins, dc.metrics().peers_departed);
  EXPECT_LE(dep.blocks_delivered, dep.blocks_generated);
  const auto lw = dc.last_words_stats();
  EXPECT_EQ(lw.departed_origins, dep.departed_origins);
  EXPECT_LE(lw.blocks_generated, dep.blocks_generated);
  EXPECT_LE(lw.blocks_delivered, lw.blocks_generated);
}

TEST(DirectDepartedData, LoadedFifoLosesLastWords) {
  // With c << lambda the FIFO backlog is ~B/c time deep, far beyond the
  // last-words window, so freshly generated blocks are almost never
  // collected before the peer dies.
  auto cfg = churny_config();
  cfg.lambda = 20.0;
  cfg.set_normalized_capacity(2.0);
  cfg.buffer_cap = 60;
  DirectCollector dc{cfg};
  dc.set_last_words_window(0.5);
  dc.run_until(30.0);
  const auto lw = dc.last_words_stats();
  ASSERT_GT(lw.blocks_generated, 100u);
  EXPECT_LT(lw.recovery_fraction(), 0.1);
}

TEST(DirectDepartedData, WindowMustBePositive) {
  DirectCollector dc{churny_config()};
  EXPECT_THROW(dc.set_last_words_window(0.0), ContractViolation);
}

TEST(ArrivalProfile, NetworkFollowsBurst) {
  ProtocolConfig cfg = churny_config();
  cfg.churn.enabled = false;
  cfg.lambda = 2.0;
  Network net{cfg};
  const workload::FlashCrowdProfile burst{2.0, 10.0, 5.0, 8.0};
  net.set_arrival_profile(&burst);
  net.run_until(5.0);
  const auto before = net.metrics().blocks_injected;
  net.run_until(8.0);
  const auto during = net.metrics().blocks_injected - before;
  net.run_until(11.0);
  const auto after = net.metrics().blocks_injected - before - during;
  // 3 time units at 10x the base rate vs 3 at the base rate.
  EXPECT_GT(during, 4 * after);
  EXPECT_GT(during, 4 * before / 5 * 3);  // roughly 10x the 5-unit ramp
}

TEST(ArrivalProfile, MeanRateMatchesConstantProcess) {
  // A constant profile must reproduce the built-in constant-λ process.
  ProtocolConfig cfg = churny_config();
  cfg.churn.enabled = false;
  Network with_profile{cfg};
  const workload::ConstantProfile flat{cfg.lambda};
  with_profile.set_arrival_profile(&flat);
  with_profile.run_until(20.0);
  Network builtin{cfg};
  builtin.run_until(20.0);
  const auto a = with_profile.metrics().segments_injected;
  const auto b = builtin.metrics().segments_injected;
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
              0.15 * static_cast<double>(b));
}

TEST(ArrivalProfile, ResettingToNullptrRestoresConstantRate) {
  ProtocolConfig cfg = churny_config();
  cfg.churn.enabled = false;
  Network net{cfg};
  const workload::ConstantProfile slow{0.1};
  net.set_arrival_profile(&slow);
  net.run_until(5.0);
  const auto trickle = net.metrics().segments_injected;
  net.set_arrival_profile(nullptr);
  net.run_until(10.0);
  const auto resumed = net.metrics().segments_injected - trickle;
  EXPECT_GT(resumed, trickle * 5);
}

TEST(ArrivalProfile, StopInjectionWinsOverProfile) {
  ProtocolConfig cfg = churny_config();
  cfg.churn.enabled = false;
  Network net{cfg};
  const workload::ConstantProfile flat{cfg.lambda};
  net.set_arrival_profile(&flat);
  net.run_until(5.0);
  net.stop_injection();
  const auto frozen = net.metrics().segments_injected;
  net.run_until(10.0);
  EXPECT_EQ(net.metrics().segments_injected, frozen);
}


TEST(RegistryCompaction, PreservesDepartedTotals) {
  auto cfg = churny_config();
  Network net{cfg};
  net.run_until(15.0);
  const auto before = net.departed_data_stats();
  const std::size_t entries_before = net.segment_registry().size();
  const std::size_t removed = net.compact_registry();
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(net.segment_registry().size(), entries_before - removed);
  const auto after = net.departed_data_stats();
  EXPECT_EQ(after.blocks_generated, before.blocks_generated);
  EXPECT_EQ(after.blocks_delivered, before.blocks_delivered);
}

TEST(RegistryCompaction, KeepsLiveAndPendingSegments) {
  auto cfg = churny_config();
  Network net{cfg};
  net.run_until(10.0);
  net.compact_registry();
  for (const auto& [id, info] : net.segment_registry()) {
    EXPECT_TRUE(info.degree > 0 || (!info.decoded && !info.lost))
        << id.to_string();
  }
  // The protocol must keep running normally after compaction.
  const auto decoded_before = net.servers().segments_decoded();
  net.run_until(15.0);
  EXPECT_GT(net.servers().segments_decoded(), decoded_before);
}

TEST(RegistryCompaction, IdempotentWhenNothingResolved) {
  auto cfg = churny_config();
  Network net{cfg};
  net.run_until(10.0);
  net.compact_registry();
  EXPECT_EQ(net.compact_registry(), 0u);
}

}  // namespace
}  // namespace icollect::p2p
