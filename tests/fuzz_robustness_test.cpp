/// Randomized robustness sweeps over the parsing and codec boundaries:
/// hostile bytes into the wire format and the record codec must either
/// round-trip or throw — never crash, never silently mis-parse.

#include <gtest/gtest.h>

#include <stdexcept>

#include "coding/coded_block.h"
#include "sim/random.h"
#include "workload/stats_record.h"

namespace icollect {
namespace {

TEST(WireFuzz, RandomBytesNeverCrash) {
  sim::Rng rng{9001};
  int parsed = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.uniform_index(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.gf_element());
    try {
      const auto block = coding::wire::deserialize(bytes);
      ++parsed;
      // Anything that parses must re-serialize to the identical bytes.
      EXPECT_EQ(coding::wire::serialize(block), bytes);
    } catch (const std::invalid_argument&) {
      // expected for malformed input
    }
  }
  // Random blobs occasionally satisfy the length equation; both outcomes
  // are fine, crashes are not. (This is a smoke bound, not a spec.)
  EXPECT_LT(parsed, 3000);
}

TEST(WireFuzz, TruncationsOfValidBlockAllRejected) {
  sim::Rng rng{9002};
  coding::CodedBlock b;
  b.segment = {12, 34};
  b.coefficients.resize(16);
  rng.fill_gf(b.coefficients);
  b.payload.resize(40);
  for (auto& x : b.payload) x = static_cast<std::uint8_t>(rng.gf_element());
  const auto bytes = coding::wire::serialize(b);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{bytes.data(), cut};
    EXPECT_THROW((void)coding::wire::deserialize(prefix),
                 std::invalid_argument)
        << "cut=" << cut;
  }
}

TEST(WireFuzz, SingleBitFlipsEitherRejectOrChangeOneField) {
  sim::Rng rng{9003};
  coding::CodedBlock b;
  b.segment = {5, 6};
  b.coefficients = {1, 2, 3, 4};
  b.payload = {9, 8, 7};
  const auto bytes = coding::wire::serialize(b);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x40;
    try {
      const auto parsed = coding::wire::deserialize(corrupted);
      // The wire format has no checksum by design (integrity lives in the
      // record layer) — a flip that still parses must land in exactly the
      // field covering byte i, everything else intact.
      EXPECT_EQ(coding::wire::serialize(parsed), corrupted);
    } catch (const std::invalid_argument&) {
      // flips in the length fields typically break the framing: fine.
    }
  }
}

TEST(RecordFuzz, RandomBytesNeverParseAsRecords) {
  sim::Rng rng{9004};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(workload::StatsRecord::kSerializedSize);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.gf_element());
    // CRC-32 makes an accidental pass a ~2^-32 event.
    EXPECT_FALSE(workload::StatsRecord::crc_ok(bytes));
  }
}

TEST(RecordFuzz, PackerRejectsCorruptedSegmentBodies) {
  sim::Rng rng{9005};
  const workload::RecordPacker packer{4, 64};
  std::vector<workload::StatsRecord> records;
  for (std::size_t i = 0; i < packer.capacity(); ++i) {
    workload::StatsRecord r;
    r.peer = static_cast<std::uint32_t>(i);
    r.timestamp = static_cast<double>(i);
    records.push_back(r);
  }
  const auto blocks = packer.pack(records);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = blocks;
    const std::size_t blk = rng.uniform_index(corrupted.size());
    const std::size_t off = rng.uniform_index(corrupted[blk].size());
    corrupted[blk][off] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    try {
      const auto out = packer.unpack(corrupted);
      // A flip inside the zero padding is legitimately invisible.
      EXPECT_EQ(out, records);
    } catch (const std::invalid_argument&) {
      // corruption detected: the expected outcome for header/record flips
    }
  }
}

}  // namespace
}  // namespace icollect
