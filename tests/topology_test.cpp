/// Neighbor-graph tests for all three topology kinds.

#include <gtest/gtest.h>

#include <set>

#include "p2p/topology.h"

namespace icollect::p2p {
namespace {

TEST(TopologyComplete, DegreesAndNeighbors) {
  const Topology t = Topology::complete(6);
  EXPECT_EQ(t.kind(), TopologyKind::kComplete);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.edge_count(), 15u);
  EXPECT_TRUE(t.connected());
  for (std::size_t v = 0; v < 6; ++v) {
    EXPECT_EQ(t.degree(v), 5u);
    std::set<std::size_t> nbrs;
    for (std::size_t i = 0; i < t.degree(v); ++i) {
      const std::size_t u = t.neighbor(v, i);
      EXPECT_NE(u, v);
      EXPECT_LT(u, 6u);
      nbrs.insert(u);
    }
    EXPECT_EQ(nbrs.size(), 5u);  // all distinct
  }
}

TEST(TopologyComplete, TooSmallViolatesContract) {
  EXPECT_THROW((void)Topology::complete(1), icollect::ContractViolation);
}

TEST(TopologyComplete, RandomNeighborNeverSelf) {
  const Topology t = Topology::complete(4);
  sim::Rng rng{31};
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(t.random_neighbor(2, rng), 2u);
  }
}

TEST(TopologyErdosRenyi, MeanDegreeApproximatelyTarget) {
  sim::Rng rng{32};
  const Topology t = Topology::erdos_renyi(400, 20.0, rng);
  EXPECT_EQ(t.kind(), TopologyKind::kErdosRenyi);
  double total = 0.0;
  for (std::size_t v = 0; v < t.size(); ++v) {
    total += static_cast<double>(t.degree(v));
    EXPECT_GE(t.degree(v), 1u);  // isolated vertices were repaired
  }
  EXPECT_NEAR(total / 400.0, 20.0, 2.0);
}

TEST(TopologyErdosRenyi, SymmetricAdjacency) {
  sim::Rng rng{33};
  const Topology t = Topology::erdos_renyi(60, 6.0, rng);
  for (std::size_t v = 0; v < t.size(); ++v) {
    for (std::size_t i = 0; i < t.degree(v); ++i) {
      const std::size_t u = t.neighbor(v, i);
      bool back = false;
      for (std::size_t j = 0; j < t.degree(u); ++j) {
        if (t.neighbor(u, j) == v) back = true;
      }
      EXPECT_TRUE(back) << v << "->" << u;
    }
  }
}

TEST(TopologyErdosRenyi, DenseEnoughIsConnected) {
  sim::Rng rng{34};
  // mean degree 12 >> ln(200) ≈ 5.3, connected w.h.p.
  const Topology t = Topology::erdos_renyi(200, 12.0, rng);
  EXPECT_TRUE(t.connected());
}

TEST(TopologyRandomRegular, ExactDegreeUsually) {
  sim::Rng rng{35};
  const Topology t = Topology::random_regular(100, 8, rng);
  EXPECT_EQ(t.kind(), TopologyKind::kRandomRegular);
  std::size_t exact = 0;
  for (std::size_t v = 0; v < t.size(); ++v) {
    EXPECT_GE(t.degree(v), 1u);
    if (t.degree(v) == 8u) ++exact;
  }
  // The pairing model with restarts yields exactly-regular graphs unless
  // it fell back; either way the bulk must be at the target degree.
  EXPECT_GE(exact, 80u);
}

TEST(TopologyRandomRegular, OddProductRejected) {
  sim::Rng rng{36};
  EXPECT_THROW((void)Topology::random_regular(5, 3, rng),
               std::invalid_argument);
}

TEST(TopologyRandomRegular, NoSelfLoops) {
  sim::Rng rng{37};
  const Topology t = Topology::random_regular(50, 4, rng);
  for (std::size_t v = 0; v < t.size(); ++v) {
    for (std::size_t i = 0; i < t.degree(v); ++i) {
      EXPECT_NE(t.neighbor(v, i), v);
    }
  }
}

TEST(TopologyBuild, DispatchesOnConfig) {
  sim::Rng rng{38};
  ProtocolConfig cfg;
  cfg.num_peers = 30;
  cfg.topology = TopologyKind::kComplete;
  EXPECT_EQ(Topology::build(cfg, rng).kind(), TopologyKind::kComplete);
  cfg.topology = TopologyKind::kErdosRenyi;
  cfg.mean_degree = 6;
  EXPECT_EQ(Topology::build(cfg, rng).kind(), TopologyKind::kErdosRenyi);
  cfg.topology = TopologyKind::kRandomRegular;
  EXPECT_EQ(Topology::build(cfg, rng).kind(), TopologyKind::kRandomRegular);
}

TEST(TopologyBuild, DeterministicGivenSeed) {
  sim::Rng rng1{55};
  sim::Rng rng2{55};
  const Topology a = Topology::erdos_renyi(80, 8.0, rng1);
  const Topology b = Topology::erdos_renyi(80, 8.0, rng2);
  for (std::size_t v = 0; v < 80; ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
    for (std::size_t i = 0; i < a.degree(v); ++i) {
      ASSERT_EQ(a.neighbor(v, i), b.neighbor(v, i));
    }
  }
}

}  // namespace
}  // namespace icollect::p2p
