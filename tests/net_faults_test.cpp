/// Tests for LoopbackNet fault injection (scenario pack): one-way
/// blackholed links, endpoint isolation with scheduled heal windows,
/// bytes in flight eaten by a partition that starts mid-flight, and the
/// slow-reader drain that pushes fast senders into send-queue refusals.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/loopback.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

namespace icollect::net {
namespace {

class RecordingHandler final : public TransportHandler {
 public:
  void on_peer_up(NodeId peer) override { ups.push_back(peer); }
  void on_peer_down(NodeId peer) override { downs.push_back(peer); }
  void on_bytes(NodeId peer, std::span<const std::uint8_t> bytes) override {
    auto& stream = received[peer];
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  std::vector<NodeId> ups;
  std::vector<NodeId> downs;
  std::unordered_map<NodeId, std::vector<std::uint8_t>> received;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(LoopbackFaults, BlockedLinkIsOneWayBlackhole) {
  LoopbackNet net{LoopbackNet::Options{}};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler ha;
  RecordingHandler hb;
  a.set_handler(&ha);
  b.set_handler(&hb);
  net.connect(a.id(), b.id());

  net.block_link(a.id(), b.id());
  EXPECT_TRUE(net.link_blocked(a.id(), b.id()));
  EXPECT_FALSE(net.link_blocked(b.id(), a.id()));

  // The sender cannot observe the fault: send() succeeds, the bytes
  // vanish, and neither side sees on_peer_down (unlike disconnect()).
  EXPECT_TRUE(a.send(b.id(), bytes_of("lost")));
  net.run_for(0.01);
  EXPECT_TRUE(hb.received[a.id()].empty());
  EXPECT_EQ(net.fault_drops(), 1U);
  EXPECT_TRUE(ha.downs.empty());
  EXPECT_TRUE(hb.downs.empty());

  // The reverse direction is unaffected — NAT-like asymmetry.
  EXPECT_TRUE(b.send(a.id(), bytes_of("back")));
  net.run_for(0.01);
  EXPECT_EQ(ha.received[b.id()], bytes_of("back"));

  net.unblock_link(a.id(), b.id());
  EXPECT_FALSE(net.link_blocked(a.id(), b.id()));
  EXPECT_TRUE(a.send(b.id(), bytes_of("healed")));
  net.run_for(0.01);
  EXPECT_EQ(hb.received[a.id()], bytes_of("healed"));
}

TEST(LoopbackFaults, IsolationBlackholesBothDirections) {
  LoopbackNet net{LoopbackNet::Options{}};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler ha;
  RecordingHandler hb;
  a.set_handler(&ha);
  b.set_handler(&hb);
  net.connect(a.id(), b.id());

  net.set_isolated(b.id(), true);
  EXPECT_TRUE(net.is_isolated(b.id()));
  EXPECT_TRUE(a.send(b.id(), bytes_of("in")));
  EXPECT_TRUE(b.send(a.id(), bytes_of("out")));
  net.run_for(0.01);
  EXPECT_TRUE(hb.received[a.id()].empty());
  EXPECT_TRUE(ha.received[b.id()].empty());
  EXPECT_EQ(net.fault_drops(), 2U);

  net.set_isolated(b.id(), false);
  EXPECT_TRUE(a.send(b.id(), bytes_of("again")));
  net.run_for(0.01);
  EXPECT_EQ(hb.received[a.id()], bytes_of("again"));
}

TEST(LoopbackFaults, InFlightBytesEatenByMidFlightPartition) {
  LoopbackNet::Options opts;
  opts.latency = 0.05;
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());

  ASSERT_TRUE(a.send(b.id(), bytes_of("midair")));
  EXPECT_EQ(net.in_flight_bytes(), 6U);
  net.run_for(0.01);            // bytes are in flight...
  net.set_isolated(b.id(), true);  // ...when the partition lands
  net.run_for(0.1);
  // Partitions don't wait for the pipe to empty: nothing arrives, the
  // fault is counted, and the sender's in-flight budget is released.
  EXPECT_TRUE(hb.received[a.id()].empty());
  EXPECT_EQ(net.fault_drops(), 1U);
  EXPECT_EQ(net.in_flight_bytes(), 0U);
}

TEST(LoopbackFaults, SchedulePartitionIsolatesThenHeals) {
  LoopbackNet net{LoopbackNet::Options{}};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  net.schedule_partition(0.1, 0.2, {b.id()});

  // Before the window: normal delivery.
  EXPECT_TRUE(a.send(b.id(), bytes_of("1")));
  net.run_for(0.05);
  EXPECT_EQ(hb.received[a.id()].size(), 1U);
  EXPECT_FALSE(net.is_isolated(b.id()));

  // Inside the window: blackholed.
  net.run_until(0.15);
  EXPECT_TRUE(net.is_isolated(b.id()));
  EXPECT_TRUE(a.send(b.id(), bytes_of("2")));
  net.run_until(0.19);
  EXPECT_EQ(hb.received[a.id()].size(), 1U);
  EXPECT_EQ(net.fault_drops(), 1U);

  // After the heal: delivery resumes without any reconnect.
  net.run_until(0.25);
  EXPECT_FALSE(net.is_isolated(b.id()));
  EXPECT_TRUE(a.send(b.id(), bytes_of("3")));
  net.run_for(0.05);
  EXPECT_EQ(hb.received[a.id()].size(), 2U);
}

TEST(LoopbackFaults, SlowReaderBackpressuresSenderIntoRefusals) {
  LoopbackNet::Options opts;
  opts.send_queue_cap_bytes = 100;
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  net.set_drain_rate(b.id(), 100.0);  // 100 bytes/sec: 0.4s per message

  const std::vector<std::uint8_t> msg(40, 0x5A);
  // Two 40-byte messages fit the 100-byte in-flight cap; the third is
  // refused because the slow reader still holds the first two.
  EXPECT_TRUE(a.send(b.id(), msg));
  EXPECT_TRUE(a.send(b.id(), msg));
  EXPECT_FALSE(a.send(b.id(), msg));
  EXPECT_EQ(net.backpressure_refusals(), 1U);
  EXPECT_EQ(net.in_flight_bytes(), 80U);

  // The drain serializes deliveries (~0.4s apart) instead of the
  // sub-millisecond link latency.
  net.run_for(0.2);
  EXPECT_TRUE(hb.received[a.id()].empty());
  net.run_for(0.3);
  EXPECT_EQ(hb.received[a.id()].size(), 40U);
  net.run_for(0.4);
  EXPECT_EQ(hb.received[a.id()].size(), 80U);
  EXPECT_EQ(net.in_flight_bytes(), 0U);

  // Once drained, the sender's budget is free again.
  EXPECT_TRUE(a.send(b.id(), msg));

  // Restoring unlimited drain returns to latency-bound delivery.
  net.set_drain_rate(b.id(), 0.0);
  net.run_for(0.5);
  const std::size_t before = hb.received[a.id()].size();
  EXPECT_TRUE(a.send(b.id(), msg));
  net.run_for(0.01);
  EXPECT_EQ(hb.received[a.id()].size(), before + 40U);
}

TEST(LoopbackFaults, FaultDropsAreDistinctFromRandomDrops) {
  LoopbackNet net{LoopbackNet::Options{}};  // drop_probability = 0
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  net.block_link(a.id(), b.id());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.send(b.id(), bytes_of("x")));
  }
  net.run_for(0.01);
  EXPECT_EQ(net.fault_drops(), 10U);
  EXPECT_EQ(net.drops(), 0U);

  obs::MetricsRegistry reg;
  net.attach_metrics(reg);
  ASSERT_NE(reg.find_gauge("loopback.fault_drops"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("loopback.fault_drops")->value(), 10.0);
}

}  // namespace
}  // namespace icollect::net
