/// RecordStore tests: indexing, ordering, health aggregation, and the
/// unhealthy-peer postmortem query.

#include <gtest/gtest.h>

#include "workload/record_store.h"

namespace icollect::workload {
namespace {

StatsRecord make(std::uint32_t peer, double t, float continuity = 0.99F,
                 float loss = 0.01F) {
  StatsRecord r;
  r.peer = peer;
  r.timestamp = t;
  r.playback_continuity = continuity;
  r.loss_rate = loss;
  r.buffer_level = 10.0F;
  r.download_rate_kbps = 400.0F;
  return r;
}

TEST(RecordStore, EmptyStore) {
  const RecordStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.peer_count(), 0u);
  EXPECT_TRUE(store.peer_history(1).empty());
  EXPECT_FALSE(store.latest(1).has_value());
  EXPECT_TRUE(store.peers().empty());
}

TEST(RecordStore, InsertAndQuery) {
  RecordStore store;
  store.insert(make(5, 1.0));
  store.insert(make(5, 2.0));
  store.insert(make(9, 1.5));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.peer_count(), 2u);
  EXPECT_EQ(store.peer_history(5).size(), 2u);
  EXPECT_EQ(store.peers(), (std::vector<std::uint32_t>{5, 9}));
  ASSERT_TRUE(store.latest(5).has_value());
  EXPECT_DOUBLE_EQ(store.latest(5)->timestamp, 2.0);
}

TEST(RecordStore, OutOfOrderArrivalsAreSorted) {
  RecordStore store;
  store.insert(make(1, 3.0));
  store.insert(make(1, 1.0));
  store.insert(make(1, 2.0));
  const auto history = store.peer_history(1);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_DOUBLE_EQ(history[0].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(history[1].timestamp, 2.0);
  EXPECT_DOUBLE_EQ(history[2].timestamp, 3.0);
  EXPECT_DOUBLE_EQ(store.latest(1)->timestamp, 3.0);
}

TEST(RecordStore, BulkInsert) {
  RecordStore store;
  const std::vector<StatsRecord> batch{make(1, 1.0), make(2, 1.0),
                                       make(1, 2.0)};
  store.insert(batch);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.peer_count(), 2u);
}

TEST(RecordStore, HealthWindowing) {
  RecordStore store;
  store.insert(make(1, 1.0, 0.90F, 0.10F));
  store.insert(make(1, 5.0, 0.98F, 0.02F));
  store.insert(make(2, 5.5, 0.96F, 0.04F));
  const auto all = store.health(0.0, 10.0);
  EXPECT_EQ(all.records, 3u);
  EXPECT_EQ(all.peers, 2u);
  EXPECT_NEAR(all.continuity.mean(), (0.90 + 0.98 + 0.96) / 3.0, 1e-6);
  const auto late = store.health(4.0, 10.0);
  EXPECT_EQ(late.records, 2u);
  EXPECT_EQ(late.peers, 2u);
  const auto none = store.health(20.0, 30.0);
  EXPECT_EQ(none.records, 0u);
  EXPECT_EQ(none.peers, 0u);
}

TEST(RecordStore, UnhealthyPeersUseLatestRecord) {
  RecordStore store;
  // Peer 1 was sick but recovered: healthy latest record.
  store.insert(make(1, 1.0, 0.50F, 0.40F));
  store.insert(make(1, 2.0, 0.99F, 0.01F));
  // Peer 2 degraded at the end (the churn-postmortem case).
  store.insert(make(2, 1.0, 0.99F, 0.01F));
  store.insert(make(2, 2.0, 0.60F, 0.30F));
  // Peer 3 healthy throughout.
  store.insert(make(3, 1.5));
  EXPECT_EQ(store.unhealthy_peers(), (std::vector<std::uint32_t>{2}));
  // Tighter thresholds flag the nominally-healthy 0.99-continuity peers too.
  EXPECT_EQ(store.unhealthy_peers(0.995F, 0.005F),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(store.unhealthy_peers(0.0F, 1.0F).empty());
}

}  // namespace
}  // namespace icollect::workload
