/// Deterministic RNG wrapper tests: ranges, moments, determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"

namespace icollect::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{4};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAndBounds) {
  Rng rng{5};
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const std::size_t k = rng.uniform_index(7);
    ASSERT_LT(k, 7u);
    ++hits[k];
  }
  for (int h : hits) EXPECT_GT(h, 700);  // each ≈ 1000
}

TEST(Rng, UniformIndexZeroViolatesContract) {
  Rng rng{6};
  EXPECT_THROW((void)rng.uniform_index(0), icollect::ContractViolation);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng{7};
  const double rate = 4.0;
  double sum = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialNonPositiveRateViolatesContract) {
  Rng rng{8};
  EXPECT_THROW((void)rng.exponential(0.0), icollect::ContractViolation);
  EXPECT_THROW((void)rng.exponential(-1.0), icollect::ContractViolation);
}

TEST(Rng, PoissonMeanAndVariance) {
  Rng rng{9};
  const double mean = 6.5;
  constexpr int kN = 30000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int x = rng.poisson(mean);
    ASSERT_GE(x, 0);
    sum += x;
    sumsq += static_cast<double>(x) * x;
  }
  const double m = sum / kN;
  const double var = sumsq / kN - m * m;
  EXPECT_NEAR(m, mean, 0.1);
  EXPECT_NEAR(var, mean, 0.3);  // Poisson: variance == mean
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng{10};
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{11};
  int heads = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
  EXPECT_THROW((void)rng.bernoulli(1.5), icollect::ContractViolation);
}

TEST(Rng, GfNonzeroNeverZeroAndCoversField) {
  Rng rng{12};
  std::vector<bool> seen(256, false);
  for (int i = 0; i < 20000; ++i) {
    const auto e = rng.gf_nonzero();
    ASSERT_NE(e, 0);
    seen[e] = true;
  }
  for (int v = 1; v < 256; ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(Rng, GfElementCoversIncludingZero) {
  Rng rng{13};
  std::vector<bool> seen(256, false);
  for (int i = 0; i < 30000; ++i) seen[rng.gf_element()] = true;
  for (int v = 0; v < 256; ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(Rng, FillGfFillsEverything) {
  Rng rng{14};
  std::vector<gf::Element> v(1000, 77);
  rng.fill_gf(v);
  int changed = 0;
  for (const auto e : v) {
    if (e != 77) ++changed;
  }
  EXPECT_GT(changed, 950);  // each stays 77 with prob 1/256
}

TEST(Rng, PickReturnsMembersUniformly) {
  Rng rng{15};
  const std::vector<int> items{10, 20, 30};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) {
    const int x = rng.pick(items);
    ASSERT_TRUE(x == 10 || x == 20 || x == 30);
    ++counts[x / 10 - 1];
  }
  for (const int c : counts) EXPECT_NEAR(c, 3000, 300);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), icollect::ContractViolation);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{99};
  Rng b = a.fork();
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace icollect::sim
