/// Transient-trajectory tests: the ODE warm-up path must rise
/// monotonically toward the known steady state.

#include <gtest/gtest.h>

#include "ode/closed_form.h"
#include "ode/indirect_ode.h"

namespace icollect::ode {
namespace {

OdeParams params() {
  OdeParams p;
  p.lambda = 20.0;
  p.mu = 10.0;
  p.gamma = 1.0;
  p.c = 5.0;
  p.s = 10;
  return p;
}

TEST(OdeTransient, StartsEmptyAndApproachesSteadyState) {
  const IndirectOde sys{params()};
  const auto traj = sys.transient(30.0, 1.0);
  ASSERT_GE(traj.size(), 30u);
  EXPECT_DOUBLE_EQ(traj.front().t, 0.0);
  EXPECT_DOUBLE_EQ(traj.front().e, 0.0);
  EXPECT_DOUBLE_EQ(traj.front().z0, 1.0);
  const double rho = closed_form::rho(20.0, 10.0, 1.0);
  EXPECT_NEAR(traj.back().e, rho, 0.05 * rho);
  EXPECT_LT(traj.back().z0, 1e-6);
}

TEST(OdeTransient, OccupancyIsMonotoneDuringFill) {
  const IndirectOde sys{params()};
  const auto traj = sys.transient(10.0, 0.5);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i].e, traj[i - 1].e - 1e-9) << "t=" << traj[i].t;
    EXPECT_LE(traj[i].z0, traj[i - 1].z0 + 1e-9) << "t=" << traj[i].t;
    EXPECT_GE(traj[i].t, traj[i - 1].t);
  }
}

TEST(OdeTransient, SamplesCarrySegmentsAndDecodedMass) {
  const IndirectOde sys{params()};
  const auto traj = sys.transient(20.0, 2.0);
  EXPECT_GT(traj.back().segments, 0.0);
  EXPECT_GT(traj.back().decoded_alive, 0.0);
  EXPECT_LT(traj.back().decoded_alive, traj.back().segments);
}

TEST(OdeTransient, WarmUpTimeIsSmallComparedToBenchDefaults) {
  // The benches warm up for 10 time units; the transient must be ~done
  // by then (e within 5% of its final value).
  const IndirectOde sys{params()};
  const auto traj = sys.transient(10.0, 10.0);
  const double rho = closed_form::rho(20.0, 10.0, 1.0);
  EXPECT_NEAR(traj.back().e, rho, 0.05 * rho);
}

TEST(OdeTransient, ContractsOnBadArguments) {
  const IndirectOde sys{params()};
  EXPECT_THROW((void)sys.transient(0.0, 1.0), icollect::ContractViolation);
  EXPECT_THROW((void)sys.transient(1.0, 0.0), icollect::ContractViolation);
}

}  // namespace
}  // namespace icollect::ode
