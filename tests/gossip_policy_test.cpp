/// Gossip segment-selection policy tests: PeerBuffer selection helpers
/// and end-to-end policy behavior.

#include <gtest/gtest.h>

#include "p2p/network.h"
#include "proto/peer_buffer.h"

namespace icollect::p2p {
namespace {

using proto::PeerBuffer;

coding::CodedBlock block_of(coding::SegmentId id, std::size_t s,
                            sim::Rng& rng) {
  coding::CodedBlock b;
  b.segment = id;
  b.coefficients.resize(s);
  do {
    rng.fill_gf(b.coefficients);
  } while (b.is_degenerate());
  return b;
}

TEST(GossipSelection, NewestTracksFirstArrivalOrder) {
  sim::Rng rng{61};
  PeerBuffer pb{20};
  pb.insert(1, block_of({1, 0}, 2, rng));
  pb.insert(2, block_of({2, 0}, 2, rng));
  EXPECT_EQ(pb.newest_segment(), (coding::SegmentId{2, 0}));
  // More blocks of an *old* segment do not make it newest.
  pb.insert(3, block_of({1, 0}, 2, rng));
  EXPECT_EQ(pb.newest_segment(), (coding::SegmentId{2, 0}));
  pb.insert(4, block_of({3, 0}, 2, rng));
  EXPECT_EQ(pb.newest_segment(), (coding::SegmentId{3, 0}));
}

TEST(GossipSelection, NewestRecomputedAfterEviction) {
  sim::Rng rng{62};
  PeerBuffer pb{20};
  pb.insert(1, block_of({1, 0}, 2, rng));
  pb.insert(2, block_of({2, 0}, 2, rng));
  pb.erase(2);  // the newest segment vanishes
  EXPECT_EQ(pb.newest_segment(), (coding::SegmentId{1, 0}));
}

TEST(GossipSelection, ReinsertionRefreshesArrival) {
  sim::Rng rng{63};
  PeerBuffer pb{20};
  pb.insert(1, block_of({1, 0}, 2, rng));
  pb.insert(2, block_of({2, 0}, 2, rng));
  pb.erase(1);  // segment 1 fully leaves...
  pb.insert(3, block_of({1, 0}, 2, rng));  // ...and arrives anew
  EXPECT_EQ(pb.newest_segment(), (coding::SegmentId{1, 0}));
}

TEST(GossipSelection, RarestPicksFewestBlocks) {
  sim::Rng rng{64};
  PeerBuffer pb{20};
  pb.insert(1, block_of({1, 0}, 4, rng));
  pb.insert(2, block_of({1, 0}, 4, rng));
  pb.insert(3, block_of({1, 0}, 4, rng));
  pb.insert(4, block_of({2, 0}, 4, rng));
  pb.insert(5, block_of({2, 0}, 4, rng));
  pb.insert(6, block_of({3, 0}, 4, rng));
  EXPECT_EQ(pb.rarest_segment(), (coding::SegmentId{3, 0}));
  pb.erase(5);
  pb.erase(4);  // segment 2 gone; 3 still rarest (1 block vs 3)
  EXPECT_EQ(pb.rarest_segment(), (coding::SegmentId{3, 0}));
}

TEST(GossipSelection, RarestTieBrokenByRecency) {
  sim::Rng rng{65};
  PeerBuffer pb{20};
  pb.insert(1, block_of({1, 0}, 4, rng));
  pb.insert(2, block_of({2, 0}, 4, rng));  // both have one block
  EXPECT_EQ(pb.rarest_segment(), (coding::SegmentId{2, 0}));
}

TEST(GossipSelection, EmptyBufferViolatesContract) {
  PeerBuffer pb{4};
  EXPECT_THROW((void)pb.newest_segment(), ContractViolation);
  EXPECT_THROW((void)pb.rarest_segment(), ContractViolation);
}

TEST(GossipPolicyEndToEnd, AllPoliciesKeepInvariants) {
  for (const auto policy :
       {GossipPolicy::kUniformSegment, GossipPolicy::kNewestFirst,
        GossipPolicy::kRarestFirst}) {
    ProtocolConfig cfg;
    cfg.num_peers = 50;
    cfg.lambda = 10.0;
    cfg.segment_size = 5;
    cfg.mu = 8.0;
    cfg.gamma = 1.0;
    cfg.buffer_cap = 60;
    cfg.num_servers = 2;
    cfg.set_normalized_capacity(3.0);
    cfg.fidelity = CollectionFidelity::kStateCounter;
    cfg.gossip_policy = policy;
    cfg.seed = 31;
    Network net{cfg};
    net.run_until(10.0);
    const auto& m = net.metrics();
    std::size_t in_network = 0;
    for (std::size_t slot = 0; slot < cfg.num_peers; ++slot) {
      in_network += net.peer(slot).buffer().size();
    }
    EXPECT_EQ(m.blocks_injected + m.gossip_sent,
              m.ttl_expirations + m.blocks_lost_to_churn + in_network)
        << to_string(policy);
    EXPECT_GT(m.gossip_sent, 0u) << to_string(policy);
  }
}

TEST(GossipPolicyEndToEnd, NewestFirstImprovesLastWordsUnderChurn) {
  ProtocolConfig cfg;
  cfg.num_peers = 100;
  cfg.lambda = 20.0;
  cfg.segment_size = 10;
  cfg.mu = 10.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 120;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(5.0);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 4.0;
  cfg.seed = 77;

  cfg.gossip_policy = GossipPolicy::kUniformSegment;
  Network uniform{cfg};
  uniform.run_until(30.0);

  cfg.gossip_policy = GossipPolicy::kNewestFirst;
  Network newest{cfg};
  newest.run_until(30.0);

  EXPECT_GT(newest.last_words_stats(1.0).recovery_fraction(),
            uniform.last_words_stats(1.0).recovery_fraction() * 1.3);
  // And steady throughput must not collapse.
  EXPECT_GT(newest.normalized_throughput(),
            uniform.normalized_throughput() * 0.8);
}

}  // namespace
}  // namespace icollect::p2p
