/// Field-axiom and table tests for GF(2^8).

#include <gtest/gtest.h>

#include "gf/gf256.h"

namespace icollect::gf {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x00, 0x00), 0x00);
  EXPECT_EQ(GF256::add(0xFF, 0xFF), 0x00);
  EXPECT_EQ(GF256::add(0xA5, 0x5A), 0xFF);
  EXPECT_EQ(GF256::add(0x01, 0x02), 0x03);
}

TEST(GF256, SubEqualsAdd) {
  for (unsigned a = 0; a < 256; a += 17) {
    for (unsigned b = 0; b < 256; b += 13) {
      EXPECT_EQ(GF256::sub(static_cast<Element>(a), static_cast<Element>(b)),
                GF256::add(static_cast<Element>(a), static_cast<Element>(b)));
    }
  }
}

TEST(GF256, MulMatchesReferenceExhaustively) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const auto ea = static_cast<Element>(a);
      const auto eb = static_cast<Element>(b);
      ASSERT_EQ(GF256::mul(ea, eb), GF256::mul_reference(ea, eb))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(GF256, MulZeroAnnihilates) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<Element>(a), 0), 0);
    EXPECT_EQ(GF256::mul(0, static_cast<Element>(a)), 0);
  }
}

TEST(GF256, MulOneIsIdentity) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<Element>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<Element>(a)), a);
  }
}

TEST(GF256, MulCommutative) {
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; b += 5) {
      EXPECT_EQ(GF256::mul(static_cast<Element>(a), static_cast<Element>(b)),
                GF256::mul(static_cast<Element>(b), static_cast<Element>(a)));
    }
  }
}

TEST(GF256, MulAssociative) {
  for (unsigned a = 1; a < 256; a += 37) {
    for (unsigned b = 1; b < 256; b += 31) {
      for (unsigned c = 1; c < 256; c += 29) {
        const auto ea = static_cast<Element>(a);
        const auto eb = static_cast<Element>(b);
        const auto ec = static_cast<Element>(c);
        EXPECT_EQ(GF256::mul(GF256::mul(ea, eb), ec),
                  GF256::mul(ea, GF256::mul(eb, ec)));
      }
    }
  }
}

TEST(GF256, DistributesOverAddition) {
  for (unsigned a = 0; a < 256; a += 11) {
    for (unsigned b = 0; b < 256; b += 13) {
      for (unsigned c = 0; c < 256; c += 17) {
        const auto ea = static_cast<Element>(a);
        const auto eb = static_cast<Element>(b);
        const auto ec = static_cast<Element>(c);
        EXPECT_EQ(GF256::mul(ea, GF256::add(eb, ec)),
                  GF256::add(GF256::mul(ea, eb), GF256::mul(ea, ec)));
      }
    }
  }
}

TEST(GF256, InverseIsTwoSided) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto ea = static_cast<Element>(a);
    const Element inv = GF256::inv(ea);
    EXPECT_EQ(GF256::mul(ea, inv), 1) << "a=" << a;
    EXPECT_EQ(GF256::mul(inv, ea), 1) << "a=" << a;
  }
}

TEST(GF256, InverseOfZeroViolatesContract) {
  EXPECT_THROW((void)GF256::inv(0), ContractViolation);
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 1; b < 256; b += 5) {
      const auto ea = static_cast<Element>(a);
      const auto eb = static_cast<Element>(b);
      EXPECT_EQ(GF256::mul(GF256::div(ea, eb), eb), ea);
    }
  }
}

TEST(GF256, DivisionByZeroViolatesContract) {
  EXPECT_THROW((void)GF256::div(1, 0), ContractViolation);
}

TEST(GF256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: powers 2^0..2^254 are distinct.
  std::array<bool, 256> seen{};
  Element x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "period shorter than 255 at i=" << i;
    seen[x] = true;
    x = GF256::mul(x, GF256::kGenerator);
  }
  EXPECT_EQ(x, 1) << "generator order must be exactly 255";
}

TEST(GF256, ExpLogRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto ea = static_cast<Element>(a);
    EXPECT_EQ(GF256::exp(GF256::log(ea)), ea);
  }
  for (unsigned i = 0; i < 255; ++i) {
    EXPECT_EQ(GF256::log(GF256::exp(i)), i);
  }
}

TEST(GF256, LogOfZeroViolatesContract) {
  EXPECT_THROW((void)GF256::log(0), ContractViolation);
}

TEST(GF256, PowMatchesRepeatedMultiplication) {
  for (unsigned a = 0; a < 256; a += 23) {
    Element acc = 1;
    for (unsigned n = 0; n < 40; ++n) {
      EXPECT_EQ(GF256::pow(static_cast<Element>(a), n), acc)
          << "a=" << a << " n=" << n;
      acc = GF256::mul(acc, static_cast<Element>(a));
    }
  }
}

TEST(GF256, PowZeroExponentIsOne) {
  EXPECT_EQ(GF256::pow(0, 0), 1);  // convention 0^0 = 1
  EXPECT_EQ(GF256::pow(77, 0), 1);
}

TEST(GF256, PowHugeExponentNoOverflow) {
  // Regression: log(a) * n used to be computed in 32 bits before the
  // mod-255 reduction, which overflows once n exceeds ~2^25 and silently
  // wraps to the wrong group exponent. Exponents reduce mod 255 for
  // a != 0, so a^n must equal a^(n mod 255) for arbitrarily large n.
  for (unsigned a = 1; a < 256; a += 13) {
    const auto ea = static_cast<Element>(a);
    for (const unsigned n :
         {1u << 26, (1u << 26) + 17u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
      EXPECT_EQ(GF256::pow(ea, n), GF256::pow(ea, n % 255))
          << "a=" << a << " n=" << n;
    }
  }
  // Spot value: 2^255 = 1 so 2^(k*255 + r) = 2^r even for huge k.
  EXPECT_EQ(GF256::pow(2, 255u * 13000000u + 7u), GF256::pow(2, 7));
}

TEST(GF256, MulRowMatchesScalarMul) {
  for (unsigned c = 0; c < 256; c += 9) {
    const Element* row = GF256::mul_row(static_cast<Element>(c));
    for (unsigned x = 0; x < 256; ++x) {
      ASSERT_EQ(row[x],
                GF256::mul(static_cast<Element>(c), static_cast<Element>(x)));
    }
  }
}

TEST(GF256, FrobeniusSquaringIsLinear) {
  // In characteristic 2, (a + b)^2 = a^2 + b^2.
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; b += 11) {
      const auto ea = static_cast<Element>(a);
      const auto eb = static_cast<Element>(b);
      EXPECT_EQ(GF256::pow(GF256::add(ea, eb), 2),
                GF256::add(GF256::pow(ea, 2), GF256::pow(eb, 2)));
    }
  }
}

/// Parameterized multiplicative-subgroup check: a^255 = 1 for all a != 0.
class GF256FermatTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GF256FermatTest, LittleFermat) {
  const auto a = static_cast<Element>(GetParam());
  EXPECT_EQ(GF256::pow(a, 255), 1);
  EXPECT_EQ(GF256::pow(a, 256), a);  // a^(q) = a (Frobenius fixed field)
}

INSTANTIATE_TEST_SUITE_P(AllNonZeroSamples, GF256FermatTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 16u, 29u, 77u,
                                           128u, 200u, 254u, 255u));

}  // namespace
}  // namespace icollect::gf
