/// The scenario pack, CTest-pinned: every scenario class (byzantine
/// pollution, partition/heal faults, trace-shaped load) runs
/// deterministically under a fixed seed in BOTH the virtual-time
/// simulator (p2p::Network) and the live loopback cluster
/// (node::LoopbackCluster), and the hostile behaviour is observable in
/// the counters the bench table reports:
///
///  - honest-majority byzantine runs still reach (honest) completion;
///  - polluted blocks are quarantined at accept time — BEFORE Gaussian
///    elimination — so no decoded payload ever fails its end-to-end CRC;
///  - partition-heal runs recover without violating send-queue caps.
///
/// Also covers the shared `--scenario` grammar (workload::ScenarioSpec)
/// and the trace-replay arrival profile it shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "node/cluster.h"
#include "p2p/network.h"
#include "workload/generators.h"
#include "workload/trace_replay.h"

namespace icollect {
namespace {

using workload::ScenarioSpec;
using workload::TraceReplayProfile;

// --- scenario grammar ------------------------------------------------------

TEST(ScenarioSpec, ClassDefaults) {
  const ScenarioSpec byz = ScenarioSpec::parse("byzantine");
  EXPECT_EQ(byz.kind, ScenarioSpec::Kind::kByzantine);
  EXPECT_DOUBLE_EQ(byz.dishonest_fraction, 0.25);
  EXPECT_EQ(byz.strategy, proto::CorruptionStrategy::kRandomPayload);
  EXPECT_EQ(byz.integrity_checks, 2U);
  EXPECT_STREQ(byz.kind_name(), "byzantine");

  const ScenarioSpec faults = ScenarioSpec::parse("faults");
  EXPECT_EQ(faults.kind, ScenarioSpec::Kind::kFaults);
  EXPECT_DOUBLE_EQ(faults.partition_fraction, 0.25);
  EXPECT_DOUBLE_EQ(faults.partition_at, 4.0);
  EXPECT_DOUBLE_EQ(faults.heal_at, 8.0);
  EXPECT_DOUBLE_EQ(faults.drain_bytes_per_sec, 0.0);

  const ScenarioSpec trace = ScenarioSpec::parse("trace");
  EXPECT_EQ(trace.kind, ScenarioSpec::Kind::kTrace);
  EXPECT_DOUBLE_EQ(trace.diurnal_amplitude, 0.6);
  EXPECT_DOUBLE_EQ(trace.burst_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(trace.mean_lifetime, 0.0);
}

TEST(ScenarioSpec, FullKeyParseInAnyOrder) {
  const ScenarioSpec byz = ScenarioSpec::parse(
      "byzantine:checks=4,strategy=garbage-coefficients,fraction=0.5");
  EXPECT_DOUBLE_EQ(byz.dishonest_fraction, 0.5);
  EXPECT_EQ(byz.strategy, proto::CorruptionStrategy::kGarbageCoefficients);
  EXPECT_EQ(byz.integrity_checks, 4U);

  const ScenarioSpec faults =
      ScenarioSpec::parse("faults:drain=512,heal=9,at=3,fraction=0.1");
  EXPECT_DOUBLE_EQ(faults.partition_fraction, 0.1);
  EXPECT_DOUBLE_EQ(faults.partition_at, 3.0);
  EXPECT_DOUBLE_EQ(faults.heal_at, 9.0);
  EXPECT_DOUBLE_EQ(faults.drain_bytes_per_sec, 512.0);

  const ScenarioSpec trace = ScenarioSpec::parse(
      "trace:lifetime=25,sigma=2,burst=6,burst-at=2,burst-len=3,"
      "period=20,amplitude=0.4");
  EXPECT_DOUBLE_EQ(trace.diurnal_amplitude, 0.4);
  EXPECT_DOUBLE_EQ(trace.diurnal_period, 20.0);
  EXPECT_DOUBLE_EQ(trace.burst_multiplier, 6.0);
  EXPECT_DOUBLE_EQ(trace.burst_at, 2.0);
  EXPECT_DOUBLE_EQ(trace.burst_len, 3.0);
  EXPECT_DOUBLE_EQ(trace.lognormal_sigma, 2.0);
  EXPECT_DOUBLE_EQ(trace.mean_lifetime, 25.0);
}

TEST(ScenarioSpec, StrictParseRejectsGarbage) {
  // Unknown class / key, malformed pairs and numbers, range violations:
  // all throw rather than silently running a different experiment.
  EXPECT_THROW((void)ScenarioSpec::parse("mystery"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("byzantine:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("faults:at"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("byzantine:fraction=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("byzantine:fraction=0.5x"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("byzantine:checks=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("byzantine:strategy=evil"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("byzantine:fraction=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("faults:at=5,heal=5"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("faults:drain=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("trace:amplitude=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("trace:period=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("trace:burst=0.5"),
               std::invalid_argument);
}

TEST(ScenarioSpec, ToJsonNamesTheActiveClass) {
  EXPECT_NE(ScenarioSpec::parse("byzantine:fraction=0.3")
                .to_json()
                .find("\"scenario\":\"byzantine\""),
            std::string::npos);
  EXPECT_NE(ScenarioSpec::parse("faults").to_json().find("\"heal\":8"),
            std::string::npos);
  EXPECT_NE(ScenarioSpec::parse("trace").to_json().find("\"burst\":4"),
            std::string::npos);
}

// --- trace-replay profile --------------------------------------------------

TEST(TraceReplay, DiurnalAndBurstShape) {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const TraceReplayProfile p{10.0, 0.5, 40.0,
                             {workload::BurstWindow{10.0, 15.0, 3.0}}};
  EXPECT_DOUBLE_EQ(p.rate(0.0), 10.0);          // sin(0) = 0
  EXPECT_NEAR(p.rate(10.0), 3.0 * 10.0 * 1.5, 1e-9);  // peak × burst
  EXPECT_NEAR(p.rate(15.0), 10.0 * (1.0 + 0.5 * std::sin(kTwoPi * 15 / 40)),
              1e-9);  // burst window is half-open: [10, 15)
  EXPECT_DOUBLE_EQ(p.max_rate(), 10.0 * 1.5 * 3.0);
  // The thinning bound really bounds: sample the whole cycle.
  for (double t = 0.0; t < 80.0; t += 0.25) {
    ASSERT_LE(p.rate(t), p.max_rate() + 1e-12) << t;
  }
}

TEST(TraceReplay, ScaledProfileDividesBlockRateIntoSegmentRate) {
  const TraceReplayProfile base{8.0, 0.25, 20.0, {}};
  const workload::ScaledProfile quarter{base, 0.25};
  EXPECT_DOUBLE_EQ(quarter.rate(5.0), base.rate(5.0) * 0.25);
  EXPECT_DOUBLE_EQ(quarter.max_rate(), base.max_rate() * 0.25);
}

TEST(TraceReplay, SpecBuildsTheProfileItNames) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "trace:amplitude=0.5,period=40,burst=3,burst-at=10,burst-len=5");
  const auto profile = spec.make_arrival_profile(10.0);
  EXPECT_NEAR(profile->rate(10.0), 45.0, 1e-9);
  EXPECT_DOUBLE_EQ(profile->rate(0.0), 10.0);
  // burst=1 collapses to a pure diurnal profile (no window at all).
  const auto flat = ScenarioSpec::parse("trace:burst=1,amplitude=0")
                        .make_arrival_profile(10.0);
  EXPECT_DOUBLE_EQ(flat->max_rate(), 10.0);
}

// --- simulator scenarios ---------------------------------------------------

p2p::ProtocolConfig sim_base() {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 40;
  cfg.lambda = 8.0;
  cfg.segment_size = 4;
  cfg.mu = 8.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 40;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(2.5);
  cfg.payload_bytes = 16;
  cfg.seed = 42;
  return cfg;
}

TEST(SimScenario, ByzantineQuarantinedBeforeElimination) {
  p2p::ProtocolConfig cfg = sim_base();
  cfg.adversary.dishonest_fraction = 0.25;
  cfg.adversary.strategy = proto::CorruptionStrategy::kRandomPayload;
  cfg.adversary.integrity_checks = 2;
  cfg.validate();
  p2p::Network net{cfg};
  EXPECT_EQ(net.dishonest_count(), 10U);
  EXPECT_TRUE(net.is_dishonest(0));
  EXPECT_FALSE(net.is_dishonest(10));
  ASSERT_NE(net.integrity(), nullptr);
  net.run_until(10.0);

  const auto& m = net.metrics();
  EXPECT_GT(m.blocks_corrupted, 0U);
  // Every corrupted block that reached an honest node was caught at
  // accept time — none survived into a buffer or a server bank, so no
  // decoded segment can fail its end-to-end payload CRC.
  EXPECT_GT(m.blocks_quarantined + m.polluted_pulls, 0U);
  EXPECT_EQ(m.payload_crc_failures, 0U);
  // The honest majority still makes progress.
  EXPECT_GT(m.segments_injected, 0U);
  EXPECT_GT(net.servers().segments_decoded(), 0U);
}

TEST(SimScenario, UncheckedPollutionReachesDecoders) {
  // The control: same attack, verification off. Pollution then spreads
  // through re-coding and is only visible AFTER Gaussian elimination,
  // as end-to-end payload CRC failures — exactly what the integrity
  // layer exists to prevent.
  p2p::ProtocolConfig cfg = sim_base();
  cfg.adversary.dishonest_fraction = 0.25;
  cfg.adversary.strategy = proto::CorruptionStrategy::kRandomPayload;
  cfg.adversary.integrity_checks = 0;
  cfg.validate();
  p2p::Network net{cfg};
  net.run_until(10.0);
  const auto& m = net.metrics();
  EXPECT_GT(m.blocks_corrupted, 0U);
  EXPECT_EQ(m.blocks_quarantined, 0U);
  EXPECT_EQ(m.polluted_pulls, 0U);
  EXPECT_GT(m.payload_crc_failures, 0U);
}

TEST(SimScenario, ReplayPassesChecksAndStaysClean) {
  // Replay is undetectable per-block by construction; its blocks are
  // valid, so nothing is quarantined AND nothing fails CRC — the damage
  // is pure redundancy, measured elsewhere.
  p2p::ProtocolConfig cfg = sim_base();
  cfg.adversary.dishonest_fraction = 0.25;
  cfg.adversary.strategy = proto::CorruptionStrategy::kReplay;
  cfg.adversary.integrity_checks = 2;
  cfg.validate();
  p2p::Network net{cfg};
  net.run_until(10.0);
  const auto& m = net.metrics();
  EXPECT_GT(m.blocks_corrupted, 0U);  // replays counted as corruptions
  EXPECT_EQ(m.blocks_quarantined, 0U);
  EXPECT_EQ(m.polluted_pulls, 0U);
  EXPECT_EQ(m.payload_crc_failures, 0U);
}

TEST(SimScenario, IsolationWindowBlocksThenHeals) {
  p2p::ProtocolConfig cfg = sim_base();
  p2p::Network net{cfg};
  net.set_isolation_window(0.25, 2.0, 4.0);
  net.run_until(1.9);
  EXPECT_FALSE(net.is_isolated(0));
  EXPECT_EQ(net.metrics().gossip_blocked_isolated, 0U);
  net.run_until(3.0);
  EXPECT_TRUE(net.is_isolated(0));
  EXPECT_FALSE(net.is_isolated(10));
  net.run_until(10.0);
  EXPECT_FALSE(net.is_isolated(0));  // healed
  const auto& m = net.metrics();
  EXPECT_GT(m.gossip_blocked_isolated, 0U);
  EXPECT_GT(m.pulls_blocked_isolated, 0U);
  // The collection recovers after the heal.
  EXPECT_GT(net.servers().segments_decoded(), 0U);
}

TEST(SimScenario, TraceProfileShapesInjection) {
  p2p::ProtocolConfig cfg = sim_base();
  const TraceReplayProfile calm{cfg.lambda, 0.0, 40.0, {}};
  const TraceReplayProfile storm{
      cfg.lambda, 0.0, 40.0, {workload::BurstWindow{0.0, 10.0, 4.0}}};
  p2p::Network a{cfg};
  a.set_arrival_profile(&calm);
  a.run_until(10.0);
  p2p::Network b{cfg};
  b.set_arrival_profile(&storm);
  b.run_until(10.0);
  EXPECT_GT(a.metrics().segments_injected, 0U);
  // A 4x flash crowd injects far more than the flat profile.
  EXPECT_GT(b.metrics().segments_injected,
            2 * a.metrics().segments_injected);
}

TEST(SimScenario, SeededRunsAreDeterministic) {
  const auto run = [] {
    p2p::ProtocolConfig cfg = sim_base();
    cfg.adversary.dishonest_fraction = 0.25;
    cfg.adversary.strategy = proto::CorruptionStrategy::kGarbageCoefficients;
    cfg.adversary.integrity_checks = 3;
    p2p::Network net{cfg};
    net.set_isolation_window(0.25, 3.0, 5.0);
    net.run_until(8.0);
    const auto& m = net.metrics();
    return std::tuple{m.segments_injected, m.blocks_corrupted,
                      m.blocks_quarantined, m.polluted_pulls,
                      m.gossip_blocked_isolated,
                      net.servers().segments_decoded()};
  };
  EXPECT_EQ(run(), run());
}

// --- loopback-cluster scenarios --------------------------------------------

node::ClusterConfig cluster_base() {
  node::ClusterConfig cfg;
  cfg.num_peers = 8;
  cfg.num_servers = 2;
  cfg.segment_size = 3;
  cfg.buffer_cap = 24;
  cfg.payload_bytes = 16;
  cfg.lambda = 6.0;
  cfg.mu = 6.0;
  cfg.gamma = 0.5;
  cfg.server_rate = 16.0;
  cfg.segments_per_peer = 2;
  cfg.retain_own_until_acked = true;
  cfg.seed = 9;
  return cfg;
}

TEST(ClusterScenario, ByzantineHonestMajorityCompletes) {
  node::ClusterConfig cfg = cluster_base();
  cfg.dishonest_fraction = 0.25;
  cfg.corruption = proto::CorruptionStrategy::kRandomPayload;
  cfg.integrity_checks = 2;
  node::LoopbackCluster cluster{cfg};
  EXPECT_EQ(cluster.dishonest_count(), 2U);
  EXPECT_TRUE(cluster.is_byzantine(0));
  EXPECT_FALSE(cluster.is_byzantine(2));
  ASSERT_NE(cluster.integrity(), nullptr);

  ASSERT_TRUE(cluster.run_to_completion(600.0));
  EXPECT_TRUE(cluster.honest_complete());
  EXPECT_EQ(cluster.honest_segments_injected(), 6U * 2U);
  EXPECT_GT(cluster.blocks_corrupted(), 0U);
  // Pollution was caught at the accept path — peer gossip ingress or
  // server pull ingress — never inside a decoder.
  EXPECT_GT(cluster.blocks_quarantined() + cluster.polluted_pulls(), 0U);
}

TEST(ClusterScenario, PartitionHealsAndRecoversWithinCaps) {
  node::ClusterConfig cfg = cluster_base();
  node::LoopbackCluster cluster{cfg};
  // Isolate a quarter of the peers on [1, 3): endpoint ids 0..N-1 are
  // the peers, in slot order.
  cluster.net().schedule_partition(1.0, 3.0, {0, 1});
  ASSERT_TRUE(cluster.run_to_completion(600.0));
  EXPECT_TRUE(cluster.complete());
  EXPECT_GT(cluster.net().fault_drops(), 0U);
  // Recovery must come from protocol retransmission (retained originals
  // re-seeded after the heal), not from overrunning the transport: the
  // send-queue cap is never violated or even hit in this regime.
  EXPECT_EQ(cluster.net().backpressure_refusals(), 0U);
  EXPECT_EQ(cluster.segments_decoded(), 8U * 2U);
}

TEST(ClusterScenario, SlowDrainPeerStillCompletes) {
  node::ClusterConfig cfg = cluster_base();
  node::LoopbackCluster cluster{cfg};
  // A slowloris-style reader: peer 0 absorbs gossip at a trickle. The
  // run must still complete — slow drain delays, it does not wedge.
  cluster.net().set_drain_rate(0, 4096.0);
  ASSERT_TRUE(cluster.run_to_completion(600.0));
  EXPECT_EQ(cluster.segments_decoded(), 8U * 2U);
}

TEST(ClusterScenario, TraceProfileDrivesLiveInjection) {
  node::ClusterConfig cfg = cluster_base();
  const TraceReplayProfile profile{
      cfg.lambda, 0.5, 40.0, {workload::BurstWindow{2.0, 4.0, 3.0}}};
  cfg.arrival = &profile;
  node::LoopbackCluster cluster{cfg};
  ASSERT_TRUE(cluster.run_to_completion(600.0));
  EXPECT_EQ(cluster.segments_injected(), 8U * 2U);
  EXPECT_EQ(cluster.segments_decoded(), 8U * 2U);
}

TEST(ClusterScenario, SeededRunsAreDeterministic) {
  const auto run = [] {
    node::ClusterConfig cfg = cluster_base();
    cfg.dishonest_fraction = 0.25;
    cfg.corruption = proto::CorruptionStrategy::kGarbageCoefficients;
    cfg.integrity_checks = 2;
    node::LoopbackCluster cluster{cfg};
    cluster.net().schedule_partition(1.0, 2.0, {2});
    const bool done = cluster.run_to_completion(600.0);
    return std::tuple{done, cluster.now(), cluster.segments_decoded(),
                      cluster.blocks_corrupted(),
                      cluster.blocks_quarantined(), cluster.polluted_pulls(),
                      cluster.net().fault_drops(), cluster.gossip_sent()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace icollect
