/// Failure injection: lossy gossip links. Conservation must still hold
/// (lost blocks are spent μ, not phantom storage), buffering must
/// degrade gracefully, and the facade must keep recovering valid data.

#include <gtest/gtest.h>

#include "core/collection_system.h"
#include "p2p/network.h"

namespace icollect::p2p {
namespace {

ProtocolConfig lossy_config(double loss) {
  ProtocolConfig cfg;
  cfg.num_peers = 80;
  cfg.lambda = 10.0;
  cfg.segment_size = 5;
  cfg.mu = 8.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 80;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(3.0);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.gossip_loss = loss;
  cfg.seed = 99;
  return cfg;
}

TEST(GossipLoss, ValidatedRange) {
  ProtocolConfig cfg = lossy_config(0.0);
  cfg.gossip_loss = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.gossip_loss = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.gossip_loss = 0.999;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(GossipLoss, ConservationHoldsWithDrops) {
  Network net{lossy_config(0.3)};
  net.run_until(12.0);
  const auto& m = net.metrics();
  EXPECT_GT(m.gossip_lost_in_transit, 0u);
  std::size_t in_network = 0;
  for (std::size_t slot = 0; slot < net.config().num_peers; ++slot) {
    in_network += net.peer(slot).buffer().size();
  }
  // Dropped blocks never entered the network, so the ledger is unchanged.
  EXPECT_EQ(m.blocks_injected + m.gossip_sent,
            m.ttl_expirations + m.blocks_lost_to_churn + in_network);
}

TEST(GossipLoss, DropRateMatchesConfiguredProbability) {
  Network net{lossy_config(0.25)};
  net.run_until(15.0);
  const auto& m = net.metrics();
  const double attempts =
      static_cast<double>(m.gossip_sent + m.gossip_lost_in_transit);
  ASSERT_GT(attempts, 1000.0);
  EXPECT_NEAR(static_cast<double>(m.gossip_lost_in_transit) / attempts,
              0.25, 0.03);
}

TEST(GossipLoss, BufferingShrinksButSystemKeepsWorking) {
  Network clean{lossy_config(0.0)};
  clean.warm_up(8.0);
  clean.run_until(clean.now() + 15.0);
  Network lossy{lossy_config(0.5)};
  lossy.warm_up(8.0);
  lossy.run_until(lossy.now() + 15.0);
  // Half the replication budget is burned: fewer blocks per peer...
  EXPECT_LT(lossy.mean_blocks_per_peer(),
            clean.mean_blocks_per_peer() * 0.9);
  // ...yet collection continues.
  EXPECT_GT(lossy.throughput(), 0.0);
  EXPECT_GT(lossy.servers().segments_decoded(), 0u);
}

TEST(GossipLoss, ZeroLossPathUnchanged) {
  Network net{lossy_config(0.0)};
  net.run_until(10.0);
  EXPECT_EQ(net.metrics().gossip_lost_in_transit, 0u);
}

TEST(GossipLoss, EndToEndPayloadsStillVerify) {
  ProtocolConfig cfg = lossy_config(0.3);
  cfg.fidelity = CollectionFidelity::kRealCoding;
  cfg.payload_bytes = 64;
  CollectionSystem sys{cfg};
  sys.use_vital_statistics_payloads();
  sys.run(15.0);
  const auto r = sys.report();
  EXPECT_GT(r.segments_decoded, 0u);
  EXPECT_EQ(r.payload_crc_failures, 0u);
  const auto store = sys.recovered_record_store();
  EXPECT_GT(store.size(), 0u);
  EXPECT_EQ(store.size(), sys.recovered_records().size());
}

}  // namespace
}  // namespace icollect::p2p
