/// \file buffer_pool_test.cpp
/// Contract tests for the reactor's shared buffer freelist: reuse is
/// observable through hits/misses, the outstanding high-water mark
/// tracks peak checkout, and the two anti-hoarding rules (freelist cap,
/// max retained capacity) drop buffers instead of pinning memory. The
/// ASan preset runs these too, so every acquire/release pairing here is
/// also a leak check.

#include "net/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace icollect::net {
namespace {

TEST(BufferPool, HitRateIsOneBeforeAnyAcquire) {
  const BufferPool pool;
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 1.0);
  const auto s = pool.stats();
  EXPECT_EQ(s.hits, 0U);
  EXPECT_EQ(s.misses, 0U);
  EXPECT_EQ(s.idle, 0U);
  EXPECT_EQ(s.outstanding, 0U);
}

TEST(BufferPool, FirstAcquireMissesThenReuseHits) {
  BufferPool pool;
  auto a = pool.acquire();
  EXPECT_GE(a.capacity(), BufferPool::Options{}.default_capacity);
  EXPECT_EQ(pool.stats().misses, 1U);
  EXPECT_EQ(pool.stats().outstanding, 1U);

  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().idle, 1U);
  EXPECT_EQ(pool.stats().outstanding, 0U);

  auto b = pool.acquire();
  EXPECT_EQ(pool.stats().hits, 1U);
  EXPECT_EQ(pool.stats().misses, 1U);
  EXPECT_EQ(pool.stats().idle, 0U);
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 0.5);
  pool.release(std::move(b));
}

TEST(BufferPool, RecycledBufferKeepsSizeAndContents) {
  // The no-clear contract: a recycled buffer comes back with whatever
  // size/contents it had, so a read buffer already at chunk size makes
  // resize(chunk) a no-op instead of a zero-fill. Callers must assign()
  // or resize() before trusting the bytes.
  BufferPool pool;
  auto a = pool.acquire();
  a.assign(128, std::uint8_t{0xBE});
  pool.release(std::move(a));
  const auto b = pool.acquire();
  ASSERT_EQ(b.size(), 128U);
  EXPECT_EQ(b[0], std::uint8_t{0xBE});
  EXPECT_EQ(b[127], std::uint8_t{0xBE});
}

TEST(BufferPool, MinCapacityHonoredOnHitAndMiss) {
  BufferPool pool{BufferPool::Options{
      .max_buffers = 4,
      .default_capacity = 256,
      .max_retained_capacity = 1U << 20U}};
  auto small = pool.acquire();
  EXPECT_GE(small.capacity(), 256U);
  pool.release(std::move(small));
  // A hit must still satisfy min_capacity even when the recycled buffer
  // was smaller.
  const auto big = pool.acquire(4096);
  EXPECT_GE(big.capacity(), 4096U);
}

TEST(BufferPool, OutstandingHighWaterMarkTracksPeakCheckout) {
  BufferPool pool;
  std::vector<BufferPool::Buffer> held;
  held.reserve(8);
  for (int i = 0; i < 8; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().outstanding, 8U);
  EXPECT_EQ(pool.stats().outstanding_hwm, 8U);
  for (auto& buf : held) pool.release(std::move(buf));
  held.clear();
  EXPECT_EQ(pool.stats().outstanding, 0U);
  // The mark is a high-water mark: it survives the drain.
  EXPECT_EQ(pool.stats().outstanding_hwm, 8U);
  auto one = pool.acquire();
  EXPECT_EQ(pool.stats().outstanding_hwm, 8U);
  pool.release(std::move(one));
}

TEST(BufferPool, FreelistCapDropsExcessReleases) {
  BufferPool pool{BufferPool::Options{
      .max_buffers = 2,
      .default_capacity = 64,
      .max_retained_capacity = 1U << 20U}};
  std::vector<BufferPool::Buffer> held;
  held.reserve(5);
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  for (auto& buf : held) pool.release(std::move(buf));
  const auto s = pool.stats();
  EXPECT_EQ(s.releases, 5U);
  EXPECT_EQ(s.idle, 2U);     // capped at max_buffers
  EXPECT_EQ(s.dropped, 3U);  // the rest destructed
}

TEST(BufferPool, OversizedBufferNotRetained) {
  BufferPool pool{BufferPool::Options{
      .max_buffers = 16,
      .default_capacity = 64,
      .max_retained_capacity = 1024}};
  auto buf = pool.acquire(64U * 1024U);  // outgrows the retention cap
  EXPECT_GE(buf.capacity(), 64U * 1024U);
  pool.release(std::move(buf));
  const auto s = pool.stats();
  EXPECT_EQ(s.dropped, 1U);
  EXPECT_EQ(s.idle, 0U);
  EXPECT_EQ(s.idle_bytes, 0U);
}

TEST(BufferPool, IdleBytesReflectRetainedCapacity) {
  BufferPool pool{BufferPool::Options{
      .max_buffers = 8,
      .default_capacity = 512,
      .max_retained_capacity = 1U << 20U}};
  auto a = pool.acquire();
  auto b = pool.acquire();
  const std::size_t cap = a.capacity() + b.capacity();
  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.stats().idle_bytes, cap);
}

}  // namespace
}  // namespace icollect::net
