/// Known-answer tests for the shared CRC-32 (common/crc32.h) — the
/// integrity primitive under both the vital-statistics records and the
/// wire-protocol frame check. The vectors are the standard IEEE 802.3 /
/// zlib check values, so a table-generation slip cannot hide behind a
/// self-consistent round trip.

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/crc32.h"

namespace icollect {
namespace {

std::uint32_t crc_of(std::string_view text) {
  return common::crc32(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc_of("123456789"), 0xCBF43926U);
}

TEST(Crc32, KnownAnswers) {
  EXPECT_EQ(crc_of(""), 0x00000000U);
  EXPECT_EQ(crc_of("a"), 0xE8B7BE43U);
  EXPECT_EQ(crc_of("abc"), 0x352441C2U);
  EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"),
            0x414FA339U);
}

TEST(Crc32, AllZeroAndAllOneBytes) {
  const std::vector<std::uint8_t> zeros(32, 0x00);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(common::crc32(zeros), 0x190A55ADU);
  EXPECT_EQ(common::crc32(ones), 0xFF6CAB0BU);
}

TEST(Crc32, TableSpotChecks) {
  // First/last table entries of the reflected 0xEDB88320 polynomial.
  EXPECT_EQ(common::detail::kCrcTable[0], 0x00000000U);
  EXPECT_EQ(common::detail::kCrcTable[1], 0x77073096U);
  EXPECT_EQ(common::detail::kCrcTable[255], 0x2D02EF8DU);
}

TEST(Crc32, SingleBitChangesCrc) {
  std::vector<std::uint8_t> data(64, 0xA5);
  const std::uint32_t base = common::crc32(data);
  data[17] ^= 0x01U;
  EXPECT_NE(common::crc32(data), base);
}

}  // namespace
}  // namespace icollect
