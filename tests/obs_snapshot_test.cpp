/// \file obs_snapshot_test.cpp
/// Snapshotter behavior: JSONL schema round-trip, CSV header/rows,
/// sample_if_due cadence (caller-supplied and clock-driven), and
/// non-finite value handling.

#include "obs/snapshotter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "obs/clock.h"
#include "obs/metrics_registry.h"

namespace {

using icollect::obs::MetricsRegistry;
using icollect::obs::Snapshotter;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Minimal flat-object JSONL parser for the fixed schema the Snapshotter
/// emits: {"k":num,...} with string keys and numeric/null values.
std::vector<std::pair<std::string, std::string>> parse_flat_object(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> out;
  if (line.empty()) {
    ADD_FAILURE() << "empty JSONL line";
    return out;
  }
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  std::size_t i = 1;
  while (i < line.size() - 1) {
    EXPECT_EQ(line[i], '"');
    const auto key_end = line.find('"', i + 1);
    const std::string key = line.substr(i + 1, key_end - i - 1);
    EXPECT_EQ(line[key_end + 1], ':');
    auto value_end = line.find(',', key_end + 2);
    if (value_end == std::string::npos) value_end = line.size() - 1;
    out.emplace_back(key, line.substr(key_end + 2, value_end - key_end - 2));
    i = value_end + 1;
  }
  return out;
}

TEST(Snapshotter, JsonlSchemaRoundTrip) {
  MetricsRegistry reg;
  auto& c = reg.counter("events");
  auto& g = reg.gauge("level");
  const std::string path = testing::TempDir() + "obs_snap_rt.jsonl";
  Snapshotter snap{reg, 1.0};
  snap.open_jsonl(path);
  snap.start(0.0);

  c.inc(3);
  g.set(1.5);
  snap.sample(1.0);
  c.inc(2);
  g.set(-0.25);
  snap.sample(2.0);
  snap.flush();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2U);

  const auto row0 = parse_flat_object(lines[0]);
  ASSERT_EQ(row0.size(), 3U);
  EXPECT_EQ(row0[0].first, "t");
  EXPECT_EQ(std::stod(row0[0].second), 1.0);
  EXPECT_EQ(row0[1].first, "events");
  EXPECT_EQ(std::stod(row0[1].second), 3.0);
  EXPECT_EQ(row0[2].first, "level");
  EXPECT_EQ(std::stod(row0[2].second), 1.5);

  const auto row1 = parse_flat_object(lines[1]);
  EXPECT_EQ(std::stod(row1[0].second), 2.0);
  EXPECT_EQ(std::stod(row1[1].second), 5.0);  // counters are cumulative
  EXPECT_EQ(std::stod(row1[2].second), -0.25);
}

TEST(Snapshotter, CsvHeaderAndRowsMatchRegistry) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.gauge("b").set(2.0);
  const std::string path = testing::TempDir() + "obs_snap.csv";
  Snapshotter snap{reg, 0.5};
  snap.open_csv(path);
  snap.start(0.0);
  snap.sample(0.5);
  snap.sample(1.0);
  snap.flush();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3U);  // header + 2 rows
  EXPECT_EQ(lines[0], "t,a,b");
  EXPECT_EQ(lines[1], "0.5,1,2");
}

TEST(Snapshotter, SampleIfDueCadence) {
  MetricsRegistry reg;
  reg.counter("c");
  Snapshotter snap{reg, 1.0};
  snap.start(0.0);
  EXPECT_DOUBLE_EQ(snap.next_due(), 1.0);

  EXPECT_FALSE(snap.sample_if_due(0.5));   // not due yet
  EXPECT_TRUE(snap.sample_if_due(1.0));    // exactly due
  EXPECT_DOUBLE_EQ(snap.next_due(), 2.0);
  EXPECT_FALSE(snap.sample_if_due(1.5));
  // A large jump takes ONE sample and advances past `now` in whole
  // intervals — no backfilled flood of rows.
  EXPECT_TRUE(snap.sample_if_due(5.25));
  EXPECT_DOUBLE_EQ(snap.next_due(), 6.0);
  EXPECT_EQ(snap.samples(), 2U);
}

TEST(Snapshotter, NonFiniteValuesExportAsNullAndEmptyCsv) {
  MetricsRegistry reg;
  reg.gauge("nan", [] { return std::nan(""); });
  reg.gauge("ok", [] { return 1.0; });
  const std::string jsonl = testing::TempDir() + "obs_snap_nan.jsonl";
  const std::string csv = testing::TempDir() + "obs_snap_nan.csv";
  Snapshotter snap{reg, 1.0};
  snap.open_jsonl(jsonl);
  snap.open_csv(csv);
  snap.start(0.0);
  snap.sample(1.0);
  snap.flush();

  const auto jl = read_lines(jsonl);
  ASSERT_EQ(jl.size(), 1U);
  EXPECT_NE(jl[0].find("\"nan\":null"), std::string::npos) << jl[0];
  const auto cl = read_lines(csv);
  ASSERT_EQ(cl.size(), 2U);
  EXPECT_EQ(cl[1], "1,,1");  // t, empty field, ok
}

TEST(Snapshotter, RejectsNonPositiveInterval) {
  MetricsRegistry reg;
  EXPECT_THROW((Snapshotter{reg, 0.0}), icollect::ContractViolation);
}

TEST(Snapshotter, ClockDrivenCadenceReadsTheClock) {
  // The clocked constructor lets the same Snapshotter run off any time
  // source — here a ManualClock stands in for the wall clock.
  MetricsRegistry reg;
  auto& c = reg.counter("events");
  icollect::obs::ManualClock clock;
  Snapshotter snap{reg, 1.0, &clock};
  snap.start();
  EXPECT_DOUBLE_EQ(snap.next_due(), 1.0);

  clock.advance(0.5);
  EXPECT_FALSE(snap.sample_if_due());
  c.inc();
  clock.advance(0.5);
  EXPECT_TRUE(snap.sample_if_due());
  EXPECT_DOUBLE_EQ(snap.next_due(), 2.0);
  // A stall longer than one interval takes one sample, no backfill.
  clock.advance(4.25);
  EXPECT_TRUE(snap.sample_if_due());
  EXPECT_DOUBLE_EQ(snap.next_due(), 6.0);
  EXPECT_EQ(snap.samples(), 2U);
}

TEST(Snapshotter, ClockDrivenJsonlStampsClockTime) {
  MetricsRegistry reg;
  reg.counter("c").inc(2);
  icollect::obs::ManualClock clock;
  clock.set(10.0);
  const std::string path = testing::TempDir() + "obs_snap_clock.jsonl";
  Snapshotter snap{reg, 1.0, &clock};
  snap.open_jsonl(path);
  snap.start();
  clock.advance(1.5);
  snap.sample();  // unconditional sample stamps clock->now()
  snap.flush();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1U);
  const auto row = parse_flat_object(lines[0]);
  ASSERT_FALSE(row.empty());
  EXPECT_EQ(row[0].first, "t");
  EXPECT_DOUBLE_EQ(std::stod(row[0].second), 11.5);
}

TEST(Snapshotter, CallbackClockAdaptsExternalTimeSource) {
  MetricsRegistry reg;
  reg.counter("c");
  double external = 0.0;
  icollect::obs::CallbackClock clock{[&external] { return external; }};
  Snapshotter snap{reg, 0.5, &clock};
  snap.start();
  external = 0.4;
  EXPECT_FALSE(snap.sample_if_due());
  external = 0.5;
  EXPECT_TRUE(snap.sample_if_due());
  EXPECT_EQ(snap.samples(), 1U);
}

}  // namespace
