/// Tests for the churn-extended fluid model (library extension; the
/// paper's ODEs cover only the static network).

#include <gtest/gtest.h>

#include "core/collection_system.h"
#include "ode/closed_form.h"
#include "ode/indirect_ode.h"
#include "p2p/network.h"

namespace icollect::ode {
namespace {

TEST(ChurnOde, ValidatesRate) {
  OdeParams p;
  p.churn_rate = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.churn_rate = 0.5;
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.gamma_eff(), p.gamma + 0.5);
}

TEST(ChurnOde, ZeroRateReducesToStaticModel) {
  OdeParams p;
  p.lambda = 8.0;
  p.mu = 6.0;
  p.gamma = 1.0;
  p.c = 3.0;
  p.s = 4;
  const auto stat = IndirectOde{p}.solve();
  p.churn_rate = 0.0;
  const auto churn0 = IndirectOde{p}.solve();
  EXPECT_NEAR(stat.normalized_throughput(), churn0.normalized_throughput(),
              1e-9);
  EXPECT_NEAR(stat.e, churn0.e, 1e-9);
}

TEST(ChurnOde, ChurnReducesOccupancy) {
  OdeParams p;
  p.lambda = 8.0;
  p.mu = 10.0;
  p.gamma = 1.0;
  p.c = 2.0;
  p.s = 1;
  const double e_static = IndirectOde{p}.solve().e;
  p.churn_rate = 0.5;  // E[L] = 2
  const double e_churn = IndirectOde{p}.solve().e;
  EXPECT_LT(e_churn, e_static * 0.85);
  // Mean-field prediction: e ≈ (λ + (1−z0)μ)/γ_eff.
  const double rho_eff = closed_form::rho(p.lambda, p.mu, p.gamma_eff());
  EXPECT_NEAR(e_churn, rho_eff, 0.05 * rho_eff);
}

TEST(ChurnOde, MatchesSimulationAtSOne) {
  // For s = 1 the only churn approximation is the z-side jump (exact),
  // so the extended model should track the churny simulation tightly.
  for (const double mu : {2.0, 10.0}) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = 150;
    cfg.lambda = 8.0;
    cfg.mu = mu;
    cfg.gamma = 1.0;
    cfg.segment_size = 1;
    cfg.buffer_cap = 140;
    cfg.num_servers = 4;
    cfg.set_normalized_capacity(2.0);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    cfg.churn.enabled = true;
    cfg.churn.mean_lifetime = 2.0;
    cfg.seed = 8;
    p2p::Network net{cfg};
    net.warm_up(10.0);
    net.run_until(net.now() + 25.0);
    const auto sol = CollectionSystem::analyze(cfg);
    EXPECT_GT(sol.params.churn_rate, 0.0);
    EXPECT_NEAR(sol.normalized_throughput(), net.normalized_throughput(),
                0.04)
        << "mu=" << mu;
  }
}

TEST(ChurnOde, OverestimatesAtLargeSegments) {
  // The mean-field w/m treatment ignores the within-peer loss
  // correlation, which is exactly what breaks large segments under
  // churn — so the model must sit *above* the simulation at s = 20.
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 120;
  cfg.lambda = 8.0;
  cfg.mu = 10.0;
  cfg.gamma = 1.0;
  cfg.segment_size = 20;
  cfg.buffer_cap = 140;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(8.0);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 2.0;
  cfg.seed = 8;
  p2p::Network net{cfg};
  net.warm_up(10.0);
  net.run_until(net.now() + 25.0);
  const auto sol = CollectionSystem::analyze(cfg);
  EXPECT_GT(sol.normalized_throughput(),
            net.normalized_throughput() * 1.2);
}

TEST(ChurnOde, FacadeMapsChurnRate) {
  p2p::ProtocolConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 4.0;
  const auto p = CollectionSystem::ode_params(cfg);
  EXPECT_DOUBLE_EQ(p.churn_rate, 0.25);
  cfg.churn.enabled = false;
  EXPECT_DOUBLE_EQ(CollectionSystem::ode_params(cfg).churn_rate, 0.0);
}

}  // namespace
}  // namespace icollect::ode
