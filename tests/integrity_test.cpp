/// Tests for the homomorphic per-block integrity check
/// (proto/integrity.h): valid blocks and arbitrary re-codings pass,
/// every corruption strategy that CAN be caught is caught, replay
/// passes by construction, and the forgery escape rate matches the
/// 256^-checks bound.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_block.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "proto/adversary.h"
#include "proto/integrity.h"

namespace icollect::proto {
namespace {

using coding::CodedBlock;
using coding::SegmentId;

std::vector<std::vector<std::uint8_t>> random_originals(common::Rng& rng,
                                                        std::size_t s,
                                                        std::size_t len) {
  std::vector<std::vector<std::uint8_t>> originals(s);
  for (auto& b : originals) {
    b.resize(len);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.gf_element());
  }
  return originals;
}

/// An honest coded block: p = sum_k c_k * b_k.
CodedBlock combine(const SegmentId& id,
                   std::span<const std::vector<std::uint8_t>> originals,
                   std::span<const gf::Element> coeffs) {
  CodedBlock block;
  block.segment = id;
  block.coefficients.assign(coeffs.begin(), coeffs.end());
  block.payload.assign(originals.front().size(), 0);
  for (std::size_t k = 0; k < originals.size(); ++k) {
    for (std::size_t i = 0; i < block.payload.size(); ++i) {
      block.payload[i] = gf::GF256::add(
          block.payload[i], gf::GF256::mul(coeffs[k], originals[k][i]));
    }
  }
  return block;
}

CodedBlock random_valid_block(common::Rng& rng, const SegmentId& id,
                              std::span<const std::vector<std::uint8_t>>
                                  originals) {
  std::vector<gf::Element> coeffs(originals.size());
  do {
    rng.fill_gf(coeffs);
  } while (CodedBlock{id, coeffs, {}}.is_degenerate());
  return combine(id, originals, coeffs);
}

TEST(Integrity, ValidBlocksAndRecodingsPass) {
  common::Rng rng{0x11};
  IntegrityAuthority auth{IntegrityParams{0xFEEDULL, 3}};
  const SegmentId id{7, 1};
  const auto originals = random_originals(rng, 4, 24);
  auth.register_segment(id, originals);
  EXPECT_TRUE(auth.known(id));
  EXPECT_EQ(auth.segments(), 1U);
  EXPECT_EQ(auth.checks(), 3U);

  // Unit vectors (the originals themselves, as coded blocks).
  for (std::size_t k = 0; k < originals.size(); ++k) {
    std::vector<gf::Element> unit(originals.size(), 0);
    unit[k] = 1;
    EXPECT_EQ(auth.verify(combine(id, originals, unit)), VerifyResult::kOk);
  }

  // Random combinations, then combinations OF combinations — the
  // re-coding an honest relay applies. Linearity must keep them valid.
  for (int i = 0; i < 50; ++i) {
    const CodedBlock a = random_valid_block(rng, id, originals);
    const CodedBlock b = random_valid_block(rng, id, originals);
    ASSERT_EQ(auth.verify(a), VerifyResult::kOk);
    ASSERT_EQ(auth.verify(b), VerifyResult::kOk);
    const auto alpha = static_cast<gf::Element>(rng.gf_nonzero());
    const auto beta = static_cast<gf::Element>(rng.gf_element());
    CodedBlock mixed;
    mixed.segment = id;
    mixed.coefficients.resize(originals.size());
    mixed.payload.resize(a.payload.size());
    for (std::size_t k = 0; k < originals.size(); ++k) {
      mixed.coefficients[k] =
          gf::GF256::add(gf::GF256::mul(alpha, a.coefficients[k]),
                         gf::GF256::mul(beta, b.coefficients[k]));
    }
    for (std::size_t j = 0; j < a.payload.size(); ++j) {
      mixed.payload[j] = gf::GF256::add(gf::GF256::mul(alpha, a.payload[j]),
                                        gf::GF256::mul(beta, b.payload[j]));
    }
    ASSERT_EQ(auth.verify(mixed), VerifyResult::kOk);
  }
}

TEST(Integrity, RandomPayloadCorruptionCaught) {
  common::Rng rng{0x22};
  IntegrityAuthority auth{IntegrityParams{0xABCULL, 4}};
  const SegmentId id{3, 9};
  const auto originals = random_originals(rng, 5, 32);
  auth.register_segment(id, originals);
  for (int i = 0; i < 200; ++i) {
    CodedBlock block = random_valid_block(rng, id, originals);
    // The kRandomPayload attack: honest coefficients, scrambled payload.
    CodedBlock forged = block;
    for (auto& byte : forged.payload) {
      byte = static_cast<std::uint8_t>(rng.gf_element());
    }
    if (forged.payload == block.payload) continue;  // astronomically rare
    ASSERT_EQ(auth.verify(forged), VerifyResult::kCheckFailed);
  }
}

TEST(Integrity, GarbageCoefficientsCaught) {
  // The attack a transport CRC can never see: the payload is a real
  // combination, only the claimed coefficients lie about WHICH one.
  common::Rng rng{0x33};
  IntegrityAuthority auth{IntegrityParams{0xDEFULL, 4}};
  const SegmentId id{12, 0};
  const auto originals = random_originals(rng, 4, 16);
  auth.register_segment(id, originals);
  for (int i = 0; i < 200; ++i) {
    CodedBlock block = random_valid_block(rng, id, originals);
    CodedBlock forged = block;
    do {
      rng.fill_gf(forged.coefficients);
    } while (forged.is_degenerate() ||
             forged.coefficients == block.coefficients);
    ASSERT_EQ(auth.verify(forged), VerifyResult::kCheckFailed);
  }
}

TEST(Integrity, ReplayPassesByConstruction) {
  // A replayed block IS in the span — no per-block check can reject it.
  // The scenario pack measures replay damage as redundancy instead.
  common::Rng rng{0x44};
  IntegrityAuthority auth{IntegrityParams{0x123ULL, 4}};
  const SegmentId id{1, 1};
  const auto originals = random_originals(rng, 3, 8);
  auth.register_segment(id, originals);
  const CodedBlock block = random_valid_block(rng, id, originals);
  EXPECT_EQ(auth.verify(block), VerifyResult::kOk);
  EXPECT_EQ(auth.verify(block), VerifyResult::kOk);  // ... and again
}

TEST(Integrity, UnknownSegmentQuarantined) {
  // Tags are registered synchronously at injection, so an unknown id
  // means a forged segment — rejected, not given the benefit of doubt.
  common::Rng rng{0x55};
  IntegrityAuthority auth{IntegrityParams{0x321ULL, 2}};
  const SegmentId known{5, 5};
  const auto originals = random_originals(rng, 4, 8);
  auth.register_segment(known, originals);
  CodedBlock block = random_valid_block(rng, known, originals);
  block.segment = SegmentId{5, 6};  // same origin, forged seq
  EXPECT_EQ(auth.verify(block), VerifyResult::kUnknownSegment);
  EXPECT_FALSE(auth.known(block.segment));
}

TEST(Integrity, ShapeMismatchRejected) {
  common::Rng rng{0x66};
  IntegrityAuthority auth{IntegrityParams{0x777ULL, 2}};
  const SegmentId id{2, 4};
  const auto originals = random_originals(rng, 4, 12);
  auth.register_segment(id, originals);
  const CodedBlock block = random_valid_block(rng, id, originals);

  CodedBlock wrong_s = block;
  wrong_s.coefficients.push_back(0);
  EXPECT_EQ(auth.verify(wrong_s), VerifyResult::kShapeMismatch);

  CodedBlock wrong_len = block;
  wrong_len.payload.pop_back();
  EXPECT_EQ(auth.verify(wrong_len), VerifyResult::kShapeMismatch);
}

TEST(Integrity, ForgetDropsTags) {
  common::Rng rng{0x77};
  IntegrityAuthority auth{IntegrityParams{0x999ULL, 2}};
  const SegmentId id{8, 8};
  const auto originals = random_originals(rng, 3, 8);
  auth.register_segment(id, originals);
  const CodedBlock block = random_valid_block(rng, id, originals);
  EXPECT_EQ(auth.verify(block), VerifyResult::kOk);
  auth.forget(id);
  EXPECT_FALSE(auth.known(id));
  EXPECT_EQ(auth.verify(block), VerifyResult::kUnknownSegment);
  // A slot reused after forget() may register the id afresh.
  auth.register_segment(id, originals);
  EXPECT_EQ(auth.verify(block), VerifyResult::kOk);
}

TEST(Integrity, EscapeRateMatchesChecksBound) {
  // With k=1 check a random forgery escapes with probability 1/256;
  // 8000 trials give a mean of 31 escapes — accept a generous band.
  // With k=4 the bound is 2^-32: zero escapes, ever, in practice.
  common::Rng rng{0x88};
  const SegmentId id{6, 2};
  IntegrityAuthority weak{IntegrityParams{0x1357ULL, 1}};
  IntegrityAuthority strong{IntegrityParams{0x1357ULL, 4}};
  const auto originals = random_originals(rng, 4, 16);
  weak.register_segment(id, originals);
  strong.register_segment(id, originals);

  int weak_escapes = 0;
  int strong_escapes = 0;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    CodedBlock forged = random_valid_block(rng, id, originals);
    for (auto& byte : forged.payload) {
      byte = static_cast<std::uint8_t>(rng.gf_element());
    }
    if (weak.verify(forged) == VerifyResult::kOk) ++weak_escapes;
    if (strong.verify(forged) == VerifyResult::kOk) ++strong_escapes;
  }
  EXPECT_GT(weak_escapes, 5) << "k=1 should leak a few forgeries";
  EXPECT_LT(weak_escapes, 90) << "k=1 escape rate far above 1/256";
  EXPECT_EQ(strong_escapes, 0) << "k=4 escape probability is 2^-32";
}

TEST(Integrity, DeterministicAcrossInstances) {
  // Same key, same originals: an authority rebuilt from scratch reaches
  // identical verdicts (the PRF chain has no hidden state).
  common::Rng rng{0x99};
  const SegmentId id{4, 4};
  const auto originals = random_originals(rng, 4, 16);
  IntegrityAuthority a{IntegrityParams{0xAAULL, 3}};
  IntegrityAuthority b{IntegrityParams{0xAAULL, 3}};
  a.register_segment(id, originals);
  b.register_segment(id, originals);
  for (int i = 0; i < 100; ++i) {
    CodedBlock block = random_valid_block(rng, id, originals);
    if (rng.bernoulli(0.5)) {
      block.payload[rng.uniform_index(block.payload.size())] ^= 0x5A;
    }
    EXPECT_EQ(a.verify(block), b.verify(block));
  }
}

}  // namespace
}  // namespace icollect::proto
