/// Vital-statistics record serialization and segment packing tests.

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/crc32.h"
#include "workload/stats_record.h"

namespace icollect::workload {
namespace {

StatsRecord sample_record() {
  StatsRecord r;
  r.peer = 4242;
  r.timestamp = 123.456;
  r.buffer_level = 11.5F;
  r.download_rate_kbps = 412.0F;
  r.upload_rate_kbps = 380.5F;
  r.playback_continuity = 0.987F;
  r.loss_rate = 0.013F;
  r.rtt_ms = 85.25F;
  r.partner_count = 14;
  r.channel_id = 3;
  return r;
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (the canonical check value).
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(common::crc32({digits, 9}), 0xCBF43926U);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(common::crc32({}), 0x00000000U);
}

TEST(StatsRecordTest, SerializedSizeIsFixed) {
  EXPECT_EQ(sample_record().serialize().size(), StatsRecord::kSerializedSize);
}

TEST(StatsRecordTest, RoundTrip) {
  const StatsRecord r = sample_record();
  const auto bytes = r.serialize();
  EXPECT_TRUE(StatsRecord::crc_ok(bytes));
  EXPECT_EQ(StatsRecord::deserialize(bytes), r);
}

TEST(StatsRecordTest, CorruptionDetected) {
  auto bytes = sample_record().serialize();
  for (std::size_t i = 0; i < bytes.size(); i += 5) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(StatsRecord::crc_ok(corrupted)) << "byte " << i;
    EXPECT_THROW((void)StatsRecord::deserialize(corrupted),
                 std::invalid_argument);
  }
}

TEST(StatsRecordTest, WrongSizeRejected) {
  auto bytes = sample_record().serialize();
  bytes.pop_back();
  EXPECT_FALSE(StatsRecord::crc_ok(bytes));
  EXPECT_THROW((void)StatsRecord::deserialize(bytes), std::invalid_argument);
}

TEST(RecordPacker, CapacityArithmetic) {
  // 10 blocks × 64 bytes = 640; (640 − 4) / 48 = 13 records.
  const RecordPacker p{10, 64};
  EXPECT_EQ(p.capacity(), 13u);
}

TEST(RecordPacker, TooSmallSegmentRejected) {
  EXPECT_THROW((RecordPacker{1, 16}), std::invalid_argument);
}

TEST(RecordPacker, PackUnpackRoundTrip) {
  const RecordPacker p{4, 64};
  std::vector<StatsRecord> records;
  for (unsigned i = 0; i < p.capacity(); ++i) {
    StatsRecord r = sample_record();
    r.peer = i;
    r.timestamp = i * 1.5;
    records.push_back(r);
  }
  const auto blocks = p.pack(records);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(p.unpack(blocks), records);
}

TEST(RecordPacker, PartialFillRoundTrip) {
  const RecordPacker p{4, 64};
  std::vector<StatsRecord> records{sample_record()};
  const auto blocks = p.pack(records);
  EXPECT_EQ(p.unpack(blocks), records);
}

TEST(RecordPacker, EmptyBatchRoundTrip) {
  const RecordPacker p{2, 64};
  const auto blocks = p.pack({});
  EXPECT_TRUE(p.unpack(blocks).empty());
}

TEST(RecordPacker, OverCapacityRejected) {
  const RecordPacker p{2, 64};
  std::vector<StatsRecord> too_many(p.capacity() + 1, sample_record());
  EXPECT_THROW((void)p.pack(too_many), std::invalid_argument);
}

TEST(RecordPacker, UnpackWrongShapeRejected) {
  const RecordPacker p{3, 32};
  std::vector<std::vector<std::uint8_t>> wrong_count(2,
                                                     std::vector<std::uint8_t>(32, 0));
  EXPECT_THROW((void)p.unpack(wrong_count), std::invalid_argument);
  std::vector<std::vector<std::uint8_t>> wrong_size(3,
                                                    std::vector<std::uint8_t>(31, 0));
  EXPECT_THROW((void)p.unpack(wrong_size), std::invalid_argument);
}

TEST(RecordPacker, UnpackCorruptedBodyRejected) {
  const RecordPacker p{2, 64};
  std::vector<StatsRecord> one{sample_record()};
  auto blocks = p.pack(one);
  blocks[0][10] ^= 0xFF;  // corrupt inside the first record
  EXPECT_THROW((void)p.unpack(blocks), std::invalid_argument);
}

TEST(RecordPacker, UnpackBogusCountRejected) {
  const RecordPacker p{2, 64};
  auto blocks = p.pack({});
  blocks[0][0] = 0xFF;  // absurd record count
  blocks[0][1] = 0xFF;
  EXPECT_THROW((void)p.unpack(blocks), std::invalid_argument);
}

}  // namespace
}  // namespace icollect::workload
