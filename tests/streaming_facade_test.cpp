/// Facade integration of the streaming-session workload: measured
/// records flow through the collection protocol end to end.

#include <gtest/gtest.h>

#include "core/collection_system.h"

namespace icollect {
namespace {

p2p::ProtocolConfig protocol_config(std::size_t n) {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = n;
  cfg.lambda = 4.0;
  cfg.segment_size = 4;
  cfg.mu = 6.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 60;
  cfg.num_servers = 3;
  cfg.set_normalized_capacity(5.0);
  cfg.payload_bytes = 64;
  cfg.seed = 44;
  return cfg;
}

workload::StreamingConfig session_config(std::size_t n) {
  workload::StreamingConfig s;
  s.num_peers = n;
  s.chunk_rate = 10.0;
  s.partners = 5;
  s.request_rate = 30.0;
  s.upload_chunks = 12.0;
  s.source_upload_chunks = 50.0;
  s.seed = 44;
  return s;
}

TEST(StreamingFacade, RecordsFlowEndToEnd) {
  CollectionSystem sys{protocol_config(40)};
  sys.use_streaming_session_payloads(session_config(40), 20.0, 0.5);
  sys.run(20.0);
  const auto r = sys.report();
  EXPECT_GT(r.segments_decoded, 0u);
  EXPECT_EQ(r.payload_crc_failures, 0u);
  const auto records = sys.recovered_records();
  ASSERT_FALSE(records.empty());
  for (const auto& rec : records) {
    EXPECT_GE(rec.timestamp, 0.0);
    EXPECT_LE(rec.timestamp, 20.0);
    EXPECT_GE(rec.playback_continuity, 0.0F);
    EXPECT_LE(rec.playback_continuity, 1.0F);
    EXPECT_GE(rec.download_rate_kbps, 0.0F);
  }
  const auto store = sys.recovered_record_store();
  EXPECT_GT(store.peer_count(), 5u);
}

TEST(StreamingFacade, RecordTimestampsNeverExceedInjectionTime) {
  // The feed only releases records whose measurement time has passed on
  // the collection clock, so no segment can carry "future" data.
  CollectionSystem sys{protocol_config(30)};
  sys.use_streaming_session_payloads(session_config(30), 15.0, 0.5);
  sys.run(6.0);
  for (const auto& rec : sys.recovered_records()) {
    EXPECT_LE(rec.timestamp, 6.0);
  }
}

TEST(StreamingFacade, PeerCountMismatchRejected) {
  CollectionSystem sys{protocol_config(40)};
  EXPECT_THROW(
      sys.use_streaming_session_payloads(session_config(30), 10.0, 1.0),
      std::invalid_argument);
}

TEST(StreamingFacade, RequiresPayloadBytes) {
  auto cfg = protocol_config(30);
  cfg.payload_bytes = 0;
  CollectionSystem sys{cfg};
  EXPECT_THROW(
      sys.use_streaming_session_payloads(session_config(30), 10.0, 1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace icollect
