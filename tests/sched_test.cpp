/// Pull-scheduling subsystem tests (src/sched/): RankTracker deficit
/// bookkeeping, suspension and staleness semantics, the documented RNG
/// draw contracts of the rarest-first and deficit-weighted policies,
/// and end-to-end pins — at fixed seeds the feedback policies must not
/// need more pulls than the uniform control, in both the event-driven
/// simulator and the live loopback cluster.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.h"
#include "node/cluster.h"
#include "p2p/network.h"
#include "proto/pull_policy.h"
#include "sched/pull_policies.h"
#include "sched/rank_tracker.h"

namespace icollect {
namespace {

using coding::SegmentId;
using sched::RankTracker;
using sched::RankTrackerOptions;

constexpr SegmentId kA{1, 0};
constexpr SegmentId kB{2, 0};
constexpr SegmentId kC{2, 1};

// --- RankTracker deficit bookkeeping --------------------------------------

TEST(Sched, StateOpensAndUpdatesDeficits) {
  RankTracker t;
  EXPECT_EQ(t.open_count(), 0U);
  EXPECT_EQ(t.total_deficit(), 0U);

  t.on_state(kA, 1, 4);  // deficit 3
  t.on_state(kB, 3, 4);  // deficit 1
  EXPECT_EQ(t.open_count(), 2U);
  EXPECT_EQ(t.deficit(kA), 3U);
  EXPECT_EQ(t.deficit(kB), 1U);
  EXPECT_EQ(t.total_deficit(), 4U);

  t.on_state(kA, 2, 4);  // advance: deficit 2
  EXPECT_EQ(t.deficit(kA), 2U);
  EXPECT_EQ(t.total_deficit(), 3U);
}

TEST(Sched, FullStateCountsAsDecoded) {
  RankTracker t;
  t.on_state(kA, 2, 4);
  t.on_state(kA, 4, 4);  // collected == s
  EXPECT_EQ(t.open_count(), 0U);
  EXPECT_EQ(t.deficit(kA), 0U);
  EXPECT_EQ(t.total_deficit(), 0U);
}

TEST(Sched, DecodedSegmentNeverReenters) {
  RankTracker t;
  t.on_state(kA, 1, 4);
  t.on_decoded(kA);
  EXPECT_EQ(t.open_count(), 0U);
  // A late state report for a decoded segment must not reopen it (bank
  // callbacks can interleave with offer processing).
  t.on_state(kA, 2, 4);
  EXPECT_EQ(t.open_count(), 0U);
  EXPECT_EQ(t.total_deficit(), 0U);
}

TEST(Sched, RedundantStreakSuspendsAndEvidenceReactivates) {
  RankTracker t{RankTrackerOptions{.redundant_suspend_streak = 2}};
  t.on_state(kA, 1, 4);
  t.on_redundant(kA);
  EXPECT_FALSE(t.is_suspended(kA));
  t.on_redundant(kA);
  EXPECT_TRUE(t.is_suspended(kA));
  EXPECT_EQ(t.open_count(), 0U);
  EXPECT_EQ(t.suspended_count(), 1U);
  // Suspended deficits leave the weighted total.
  EXPECT_EQ(t.total_deficit(), 0U);
  EXPECT_EQ(t.deficit(kA), 3U);  // still remembered

  // An innovative advance is fresh evidence: the segment reactivates
  // with its streak reset.
  t.on_state(kA, 2, 4);
  EXPECT_FALSE(t.is_suspended(kA));
  EXPECT_EQ(t.open_count(), 1U);
  EXPECT_EQ(t.total_deficit(), 2U);
  t.on_redundant(kA);
  EXPECT_FALSE(t.is_suspended(kA));  // streak restarted from zero
}

TEST(Sched, ReactivateAllIsTheEscapeHatch) {
  RankTracker t{RankTrackerOptions{.redundant_suspend_streak = 1}};
  t.on_state(kA, 1, 4);
  t.on_state(kB, 2, 4);
  t.on_redundant(kA);
  t.on_redundant(kB);
  EXPECT_EQ(t.open_count(), 0U);
  EXPECT_EQ(t.suspended_count(), 2U);
  t.reactivate_all();
  EXPECT_EQ(t.open_count(), 2U);
  EXPECT_EQ(t.suspended_count(), 0U);
  EXPECT_EQ(t.total_deficit(), 5U);
}

TEST(Sched, ExhaustionPerPeerClearsOnSuspensionCycle) {
  RankTracker t{RankTrackerOptions{.redundant_suspend_streak = 2}};
  t.on_state(kA, 1, 4);
  t.mark_exhausted(7, kA);
  EXPECT_TRUE(t.is_exhausted(7, kA));
  EXPECT_FALSE(t.is_exhausted(8, kA));
  EXPECT_FALSE(t.is_exhausted(7, kB));

  // Suspension and reactivation forget the exhaustion evidence: spans
  // drift while a segment is parked.
  t.on_redundant(kA);
  t.on_redundant(kA);
  ASSERT_TRUE(t.is_suspended(kA));
  t.reactivate_all();
  EXPECT_FALSE(t.is_exhausted(7, kA));
}

// --- per-peer availability (BUFFER_SUMMARY merges) ------------------------

TEST(Sched, SummaryMergeReplacesWholesale) {
  RankTracker t;
  const std::array<SegmentId, 2> first{kA, kB};
  t.merge_summary(5, first, 1.0);
  EXPECT_TRUE(t.peer_has(5, kA, 1.5));
  EXPECT_TRUE(t.peer_has(5, kB, 1.5));

  const std::array<SegmentId, 1> second{kC};
  t.merge_summary(5, second, 2.0);
  EXPECT_FALSE(t.peer_has(5, kA, 2.1));  // old report fully replaced
  EXPECT_TRUE(t.peer_has(5, kC, 2.1));
}

TEST(Sched, SummariesExpireAtTheStalenessBound) {
  RankTracker t{RankTrackerOptions{.staleness_bound = 1.0}};
  const std::array<SegmentId, 1> segs{kA};
  t.merge_summary(5, segs, 10.0);
  EXPECT_TRUE(t.peer_fresh(5, 10.5));
  EXPECT_TRUE(t.peer_has(5, kA, 11.0));   // exactly at the bound
  EXPECT_FALSE(t.peer_has(5, kA, 11.01));  // past it
  EXPECT_FALSE(t.peer_fresh(5, 11.01));
  EXPECT_FALSE(t.peer_fresh(6, 10.0));  // never reported
}

TEST(Sched, SummaryAdvertisingSuspendedSegmentReactivatesIt) {
  RankTracker t{RankTrackerOptions{.redundant_suspend_streak = 1}};
  t.on_state(kA, 1, 4);
  t.on_redundant(kA);
  ASSERT_TRUE(t.is_suspended(kA));
  const std::array<SegmentId, 1> segs{kA};
  t.merge_summary(5, segs, 1.0);
  EXPECT_FALSE(t.is_suspended(kA));
  EXPECT_EQ(t.open_count(), 1U);
}

TEST(Sched, ForgetPeerDropsItsReport) {
  RankTracker t;
  const std::array<SegmentId, 1> segs{kA};
  t.merge_summary(5, segs, 1.0);
  EXPECT_EQ(t.tracked_peers(), 1U);
  t.forget_peer(5);
  EXPECT_EQ(t.tracked_peers(), 0U);
  EXPECT_FALSE(t.peer_has(5, kA, 1.0));
}

// --- policy draw contracts ------------------------------------------------

TEST(PullPolicy, RarestPicksUniqueMinimumWithoutDrawing) {
  RankTracker t;
  t.on_state(kA, 1, 4);  // deficit 3
  t.on_state(kB, 3, 4);  // deficit 1 — the unique minimum
  sched::RarestFirstPullPolicy policy;
  common::Rng rng{11};
  common::Rng twin{11};
  const auto want = policy.want_segment(rng, t);
  ASSERT_TRUE(want.has_value());
  EXPECT_EQ(*want, kB);
  // No tie ⇒ no RNG draw: the stream must match an untouched twin.
  EXPECT_EQ(rng.uniform_index(1U << 20), twin.uniform_index(1U << 20));
}

TEST(PullPolicy, RarestBreaksTiesWithExactlyOneDraw) {
  RankTracker t;
  t.on_state(kA, 2, 4);  // deficit 2
  t.on_state(kB, 2, 4);  // deficit 2 — tied minimum
  t.on_state(kC, 1, 4);  // deficit 3
  sched::RarestFirstPullPolicy policy;
  common::Rng rng{11};
  common::Rng twin{11};
  const auto want = policy.want_segment(rng, t);
  ASSERT_TRUE(want.has_value());
  EXPECT_TRUE(*want == kA || *want == kB);
  // Exactly one uniform_index(ties) draw.
  (void)twin.uniform_index(2);
  EXPECT_EQ(rng.uniform_index(1U << 20), twin.uniform_index(1U << 20));
}

TEST(PullPolicy, RarestReturnsNulloptOnEmptyView) {
  RankTracker t;
  sched::RarestFirstPullPolicy policy;
  common::Rng rng{11};
  common::Rng twin{11};
  EXPECT_FALSE(policy.want_segment(rng, t).has_value());
  EXPECT_EQ(rng.uniform_index(1U << 20), twin.uniform_index(1U << 20));
}

TEST(PullPolicy, DeficitWeightedDrawsOnceAndSamplesProportionally) {
  RankTracker t;
  t.on_state(kA, 1, 4);  // deficit 3
  t.on_state(kB, 3, 4);  // deficit 1
  sched::DeficitWeightedPullPolicy policy;
  {
    common::Rng rng{11};
    common::Rng twin{11};
    ASSERT_TRUE(policy.want_segment(rng, t).has_value());
    (void)twin.uniform_index(4);  // exactly one draw over total_deficit
    EXPECT_EQ(rng.uniform_index(1U << 20), twin.uniform_index(1U << 20));
  }
  common::Rng rng{29};
  std::map<SegmentId, int> counts;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) ++counts[*policy.want_segment(rng, t)];
  // P(kA) = 3/4: a binomial(4000, .75) stays within ±4σ ≈ ±110 of 3000.
  EXPECT_NEAR(counts[kA], 3000, 150);
  EXPECT_EQ(counts[kA] + counts[kB], kTrials);
}

TEST(PullPolicy, PoliciesAreDeterministicUnderAFixedSeed) {
  RankTracker t;
  t.on_state(kA, 2, 4);
  t.on_state(kB, 2, 4);
  t.on_state(kC, 1, 4);
  for (const proto::PullPolicyKind kind :
       {proto::PullPolicyKind::kRarestFirst,
        proto::PullPolicyKind::kDeficitWeighted}) {
    const auto policy = sched::make_pull_policy(kind);
    common::Rng a{123};
    common::Rng b{123};
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(policy->want_segment(a, t), policy->want_segment(b, t));
    }
  }
}

TEST(PullPolicy, FactoryAndNameParsingRoundTrip) {
  using proto::PullPolicyKind;
  EXPECT_EQ(proto::parse_pull_policy_kind("uniform"),
            PullPolicyKind::kUniform);
  EXPECT_EQ(proto::parse_pull_policy_kind("rarest"),
            PullPolicyKind::kRarestFirst);
  EXPECT_EQ(proto::parse_pull_policy_kind("rarest-first"),
            PullPolicyKind::kRarestFirst);
  EXPECT_EQ(proto::parse_pull_policy_kind("deficit"),
            PullPolicyKind::kDeficitWeighted);
  EXPECT_EQ(proto::parse_pull_policy_kind("deficit-weighted"),
            PullPolicyKind::kDeficitWeighted);
  EXPECT_FALSE(proto::parse_pull_policy_kind("round-robin").has_value());
  EXPECT_FALSE(proto::parse_pull_policy_kind("").has_value());

  EXPECT_FALSE(
      sched::make_pull_policy(PullPolicyKind::kUniform)->wants_feedback());
  EXPECT_TRUE(sched::make_pull_policy(PullPolicyKind::kRarestFirst)
                  ->wants_feedback());
  EXPECT_TRUE(sched::make_pull_policy(PullPolicyKind::kDeficitWeighted)
                  ->wants_feedback());
}

// --- end-to-end pins: feedback beats uniform at fixed seeds ---------------

/// Simulator pulls-to-completion (the BENCH_pulls.json table-A protocol
/// in miniature): inject for a fixed window under the paper's
/// state-counter collection process, stop injection, drain until every
/// segment resolves, count pulls.
std::uint64_t sim_pulls_to_completion(p2p::PullPolicy policy,
                                      std::uint64_t seed) {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 30;
  cfg.segment_size = 4;
  cfg.lambda = 8.0;
  cfg.mu = 8.0;
  cfg.gamma = 0.25;
  cfg.buffer_cap = 32;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(2.0);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.pull_policy = policy;
  cfg.seed = seed;
  p2p::Network net{cfg};
  net.run_until(2.0);
  net.stop_injection();
  const auto all_resolved = [&] {
    for (const auto& [id, info] : net.segment_registry()) {
      if (!info.decoded && !info.lost) return false;
    }
    return true;
  };
  double t = 2.0;
  while (!all_resolved() && t < 300.0) {
    t += 0.25;
    net.run_until(t);
  }
  EXPECT_TRUE(all_resolved());
  return net.metrics().server_pull_attempts;
}

TEST(PullPolicy, SimulatorRarestNeedsNoMorePullsThanUniform) {
  std::uint64_t uniform = 0;
  std::uint64_t rarest = 0;
  std::uint64_t deficit = 0;
  for (const std::uint64_t seed : {101U, 202U, 303U}) {
    uniform += sim_pulls_to_completion(p2p::PullPolicy::kUniformNonEmpty,
                                       seed);
    rarest += sim_pulls_to_completion(p2p::PullPolicy::kRarestFirst, seed);
    deficit +=
        sim_pulls_to_completion(p2p::PullPolicy::kDeficitWeighted, seed);
  }
  EXPECT_LE(rarest, uniform);
  EXPECT_LE(deficit, uniform);
}

/// Live-cluster pulls-to-completion: every peer injects a fixed budget
/// over the real wire protocol, run to completion, count pulls.
std::uint64_t cluster_pulls_to_completion(proto::PullPolicyKind policy,
                                          std::uint64_t seed) {
  node::ClusterConfig cfg;
  cfg.num_peers = 12;
  cfg.num_servers = 2;
  cfg.segment_size = 4;
  cfg.buffer_cap = 32;
  cfg.payload_bytes = 16;
  cfg.lambda = 6.0;
  cfg.mu = 6.0;
  cfg.gamma = 0.5;
  cfg.server_rate = 16.0;
  cfg.segments_per_peer = 3;
  cfg.retain_own_until_acked = true;
  cfg.pull_policy = policy;
  cfg.seed = seed;
  cfg.net.seed = seed;
  node::LoopbackCluster cluster{cfg};
  EXPECT_TRUE(cluster.run_to_completion(600.0));
  return cluster.pulls_sent();
}

TEST(PullPolicy, ClusterRarestNeedsNoMorePullsThanUniform) {
  std::uint64_t uniform = 0;
  std::uint64_t rarest = 0;
  std::uint64_t deficit = 0;
  for (const std::uint64_t seed : {11U, 22U, 33U}) {
    uniform +=
        cluster_pulls_to_completion(proto::PullPolicyKind::kUniform, seed);
    rarest += cluster_pulls_to_completion(
        proto::PullPolicyKind::kRarestFirst, seed);
    deficit += cluster_pulls_to_completion(
        proto::PullPolicyKind::kDeficitWeighted, seed);
  }
  EXPECT_LE(rarest, uniform);
  EXPECT_LE(deficit, uniform);
}

/// The BUFFER_SUMMARY feedback loop actually runs under the live
/// policies (and stays silent under uniform).
TEST(PullPolicy, ClusterFeedbackFlowsOnlyUnderSchedulingPolicies) {
  for (const proto::PullPolicyKind kind :
       {proto::PullPolicyKind::kUniform,
        proto::PullPolicyKind::kRarestFirst}) {
    node::ClusterConfig cfg;
    cfg.num_peers = 8;
    cfg.num_servers = 2;
    cfg.segment_size = 4;
    cfg.segments_per_peer = 2;
    cfg.payload_bytes = 16;
    cfg.retain_own_until_acked = true;
    cfg.pull_policy = kind;
    cfg.seed = 5;
    cfg.net.seed = 5;
    node::LoopbackCluster cluster{cfg};
    EXPECT_TRUE(cluster.run_to_completion(600.0));
    std::uint64_t summaries = 0;
    for (std::size_t i = 0; i < cfg.num_servers; ++i) {
      summaries += cluster.server(i).summaries_received();
    }
    if (kind == proto::PullPolicyKind::kUniform) {
      EXPECT_EQ(summaries, 0U);
      EXPECT_EQ(cluster.server(0).tracker(), nullptr);
    } else {
      EXPECT_GT(summaries, 0U);
      EXPECT_NE(cluster.server(0).tracker(), nullptr);
    }
  }
}

}  // namespace
}  // namespace icollect
