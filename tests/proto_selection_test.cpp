/// Negative-path and edge-case tests for the shared selection idiom
/// (proto/selection.h) and the server pull-target seam
/// (proto/pull_policy.h): empty candidate sets, single candidates,
/// all-ineligible rosters, the exhaustive-scan fallback, the documented
/// RNG draw sequence, and uniformity over the eligible subset.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "proto/pull_policy.h"
#include "proto/selection.h"

namespace icollect::proto {
namespace {

const auto kAlwaysEligible = [](std::size_t) { return true; };
const auto kNeverEligible = [](std::size_t) { return false; };

TEST(Selection, EmptyCandidateSetDrawsNothing) {
  common::Rng rng{1};
  common::Rng twin{1};
  EXPECT_EQ(uniform_over_eligible(rng, 0, 12, kAlwaysEligible),
            kNoSelection);
  // n == 0 must return before touching the RNG: the next draw matches a
  // fresh stream.
  EXPECT_EQ(rng.uniform_index(1000), twin.uniform_index(1000));
}

TEST(Selection, SingleCandidateAlwaysChosen) {
  common::Rng rng{2};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(uniform_over_eligible(rng, 1, 4, kAlwaysEligible), 0U);
  }
}

TEST(Selection, SingleIneligibleCandidateIsNoSelection) {
  common::Rng rng{3};
  EXPECT_EQ(uniform_over_eligible(rng, 1, 4, kNeverEligible), kNoSelection);
}

TEST(Selection, AllIneligibleRosterFallsThroughScanToNoSelection) {
  common::Rng rng{4};
  // Every probe rejects, the exhaustive scan finds nothing — the
  // fallback must report kNoSelection, not loop or pick garbage.
  for (int probes : {0, 1, 12}) {
    EXPECT_EQ(uniform_over_eligible(rng, 64, probes, kNeverEligible),
              kNoSelection);
  }
}

TEST(Selection, ScanFallbackFindsTheNeedle) {
  // One eligible candidate in a large roster with few probes: rejection
  // sampling will usually miss it, the guaranteed scan must not.
  common::Rng rng{5};
  const auto only_777 = [](std::size_t i) { return i == 777; };
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(uniform_over_eligible(rng, 1000, 2, only_777), 777U);
  }
}

TEST(Selection, ZeroProbesStillSelectsViaScan) {
  common::Rng rng{6};
  const auto evens = [](std::size_t i) { return i % 2 == 0; };
  for (int i = 0; i < 50; ++i) {
    const std::size_t got = uniform_over_eligible(rng, 10, 0, evens);
    ASSERT_NE(got, kNoSelection);
    EXPECT_EQ(got % 2, 0U);
  }
}

TEST(Selection, DrawSequenceIsOneUniformPerProbe) {
  // Documented contract: with an always-eligible roster the first probe
  // wins, consuming exactly one uniform_index(n) — twin streams agree.
  common::Rng rng{7};
  common::Rng twin{7};
  const std::size_t got = uniform_over_eligible(rng, 37, 12, kAlwaysEligible);
  EXPECT_EQ(got, twin.uniform_index(37));
  // And the streams stay in lockstep afterwards.
  EXPECT_EQ(rng.uniform_index(1000), twin.uniform_index(1000));
}

TEST(Selection, IndexFnMapsProbesToCandidates) {
  // Adjacency-list style: positions [0, n) map through a neighbor table
  // and the *mapped* candidate is tested and returned.
  common::Rng rng{8};
  const std::array<std::size_t, 4> neighbors{10, 20, 30, 40};
  const auto map = [&](std::size_t i) { return neighbors[i]; };
  const auto eligible = [](std::size_t cand) { return cand >= 30; };
  for (int i = 0; i < 50; ++i) {
    const std::size_t got =
        uniform_over_eligible(rng, neighbors.size(), 3, map, eligible);
    EXPECT_TRUE(got == 30 || got == 40) << got;
  }
}

TEST(Selection, UniformOverTheEligibleSubset) {
  // Conditioning on eligibility IS uniform over the eligible set: the
  // ineligible half is never chosen and the eligible half is flat.
  common::Rng rng{9};
  const auto evens = [](std::size_t i) { return i % 2 == 0; };
  constexpr std::size_t kN = 20;
  constexpr int kTrials = 20000;
  std::array<int, kN> counts{};
  for (int i = 0; i < kTrials; ++i) {
    const std::size_t got = uniform_over_eligible(rng, kN, 12, evens);
    ASSERT_NE(got, kNoSelection);
    ++counts[got];
  }
  const double expected = kTrials / 10.0;  // 10 eligible slots
  for (std::size_t i = 0; i < kN; ++i) {
    if (i % 2 != 0) {
      EXPECT_EQ(counts[i], 0) << "ineligible candidate " << i << " chosen";
    } else {
      EXPECT_NEAR(counts[i], expected, 0.15 * expected) << i;
    }
  }
}

TEST(PullPolicy, UniformPickDrawsExactlyOnce) {
  UniformPullPolicy policy;
  common::Rng rng{10};
  common::Rng twin{10};
  const std::size_t got = policy.pick(rng, 17);
  EXPECT_EQ(got, twin.uniform_index(17));
  EXPECT_EQ(rng.uniform_index(1000), twin.uniform_index(1000));
}

TEST(PullPolicy, PickFilteredEmptyEligibleSet) {
  UniformPullPolicy policy;
  common::Rng rng{11};
  EXPECT_EQ(policy.pick_filtered(rng, 32, 16, kNeverEligible),
            kNoSelection);
  EXPECT_EQ(policy.pick_filtered(rng, 0, 16, kAlwaysEligible),
            kNoSelection);
}

TEST(PullPolicy, PickFilteredSingleCandidate) {
  UniformPullPolicy policy;
  common::Rng rng{12};
  EXPECT_EQ(policy.pick_filtered(rng, 1, 16, kAlwaysEligible), 0U);
}

TEST(PullPolicy, PickFilteredHonorsEligibility) {
  UniformPullPolicy policy;
  common::Rng rng{13};
  const auto last_only = [](std::size_t i) { return i == 31; };
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(policy.pick_filtered(rng, 32, 4, last_only), 31U);
  }
}

}  // namespace
}  // namespace icollect::proto
