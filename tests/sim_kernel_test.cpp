/// Discrete-event kernel tests: event queue ordering/cancellation, the
/// simulator clock, and Poisson process timers.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/poisson_process.h"
#include "sim/simulator.h"

namespace icollect::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.is_pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.is_pending(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peek_time(), 2.0);  // cancelled head is skipped
}

TEST(EventQueue, NullActionViolatesContract) {
  EventQueue q;
  EXPECT_THROW((void)q.schedule(1.0, nullptr), icollect::ContractViolation);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Time> seen;
  sim.schedule_at(2.5, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(0.5, [&] { seen.push_back(sim.now()); });
  sim.run_until(10.0);
  EXPECT_EQ(seen, (std::vector<Time>{0.5, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(5.0, [&] { late_fired = true; });
  sim.run_until(4.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  sim.run_until(6.0);
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, SchedulingInThePastViolatesContract) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run_until(2.0);
  EXPECT_THROW((void)sim.schedule_at(1.5, [] {}),
               icollect::ContractViolation);
  EXPECT_THROW((void)sim.schedule_after(-0.1, [] {}),
               icollect::ContractViolation);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.schedule_after(1.0, step);
  };
  sim.schedule_after(1.0, step);
  sim.run_until(100.0);
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CancelledEventNotExecuted) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.is_pending(id));
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunEventsBounded) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i + 1.0, [] {});
  EXPECT_EQ(sim.run_events(4), 4u);
  EXPECT_EQ(sim.pending_events(), 6u);
}

TEST(PoissonProcess, EmpiricalRateMatches) {
  Simulator sim;
  Rng rng{77};
  std::size_t fires = 0;
  PoissonProcess proc{sim, rng, 5.0, [&] { ++fires; }};
  proc.start();
  sim.run_until(2000.0);
  const double rate = static_cast<double>(fires) / 2000.0;
  EXPECT_NEAR(rate, 5.0, 0.2);  // ±4σ ≈ ±0.14
}

TEST(PoissonProcess, StopHalts) {
  Simulator sim;
  Rng rng{78};
  std::size_t fires = 0;
  PoissonProcess proc{sim, rng, 10.0, [&] { ++fires; }};
  proc.start();
  sim.run_until(10.0);
  const std::size_t at_stop = fires;
  EXPECT_GT(at_stop, 0u);
  proc.stop();
  sim.run_until(20.0);
  EXPECT_EQ(fires, at_stop);
}

TEST(PoissonProcess, StartIsIdempotent) {
  Simulator sim;
  Rng rng{79};
  std::size_t fires = 0;
  PoissonProcess proc{sim, rng, 100.0, [&] { ++fires; }};
  proc.start();
  proc.start();  // must not double-arm
  sim.run_until(1.0);
  EXPECT_NEAR(static_cast<double>(fires), 100.0, 45.0);
}

TEST(PoissonProcess, SetRateTakesEffect) {
  Simulator sim;
  Rng rng{80};
  std::size_t fires = 0;
  PoissonProcess proc{sim, rng, 1.0, [&] { ++fires; }};
  proc.start();
  sim.run_until(100.0);
  const auto slow = fires;
  proc.set_rate(50.0);
  sim.run_until(200.0);
  const auto fast = fires - slow;
  EXPECT_GT(fast, slow * 10);
}

TEST(PoissonProcess, ZeroRateNeverFires) {
  Simulator sim;
  Rng rng{81};
  std::size_t fires = 0;
  PoissonProcess proc{sim, rng, 0.0, [&] { ++fires; }};
  proc.start();
  EXPECT_FALSE(proc.running());
  sim.run_until(50.0);
  EXPECT_EQ(fires, 0u);
}

TEST(PoissonProcess, CallbackMayStopTheProcess) {
  Simulator sim;
  Rng rng{82};
  std::size_t fires = 0;
  PoissonProcess proc{sim, rng, 10.0, [&] {
                        if (++fires == 3) proc.stop();
                      }};
  proc.start();
  sim.run_until(1000.0);
  EXPECT_EQ(fires, 3u);
}

}  // namespace
}  // namespace icollect::sim
