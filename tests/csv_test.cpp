/// CsvWriter tests: escaping rules, row building, file round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/csv.h"

namespace icollect::stats {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "csv_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, PlainFieldsUnquoted) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("3.14"), "3.14");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST_F(CsvTest, SpecialFieldsQuoted) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(CsvTest, WritesRowsAndCounts) {
  {
    CsvWriter w{path_};
    w.write_row({"s", "throughput", "note"});
    w.row().add(std::size_t{10}).add(0.25).add("with,comma").end();
    w.flush();
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const std::string content = slurp(path_);
  EXPECT_EQ(content, "s,throughput,note\n10,0.25,\"with,comma\"\n");
}

TEST_F(CsvTest, NumericFormattingRoundTrips) {
  {
    CsvWriter w{path_};
    w.row().add(1.0 / 3.0).add(std::uint64_t{123456789012345ULL}).end();
    w.flush();
  }
  const std::string content = slurp(path_);
  double d = 0.0;
  unsigned long long u = 0;
  ASSERT_EQ(std::sscanf(content.c_str(), "%lf,%llu", &d, &u), 2);
  EXPECT_NEAR(d, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(u, 123456789012345ULL);
}

TEST_F(CsvTest, UnopenableFileThrows) {
  EXPECT_THROW(CsvWriter{"/nonexistent-dir/zzz/file.csv"},
               std::runtime_error);
}

}  // namespace
}  // namespace icollect::stats
