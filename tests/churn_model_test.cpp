/// Lifetime-distribution tests (exponential vs Pareto churn) and the
/// server pull-policy ablation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "p2p/churn.h"
#include "p2p/network.h"

namespace icollect::p2p {
namespace {

ChurnConfig expo(double mean) {
  ChurnConfig c;
  c.enabled = true;
  c.mean_lifetime = mean;
  return c;
}

ChurnConfig pareto(double mean, double shape) {
  ChurnConfig c = expo(mean);
  c.distribution = LifetimeDistribution::kPareto;
  c.pareto_shape = shape;
  return c;
}

TEST(ChurnModel, ExponentialMeanMatches) {
  sim::Rng rng{301};
  const auto cfg = expo(3.0);
  double sum = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) sum += sample_lifetime(cfg, rng);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(ChurnModel, ParetoMeanMatches) {
  sim::Rng rng{302};
  const auto cfg = pareto(3.0, 3.0);  // finite variance at alpha=3
  double sum = 0.0;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) sum += sample_lifetime(cfg, rng);
  EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

TEST(ChurnModel, ParetoRespectsMinimum) {
  sim::Rng rng{303};
  const auto cfg = pareto(3.0, 2.0);
  const double x_m = 3.0 * (2.0 - 1.0) / 2.0;  // 1.5
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(sample_lifetime(cfg, rng), x_m);
  }
}

TEST(ChurnModel, ParetoIsHeavierTailedThanExponential) {
  sim::Rng rng{304};
  const auto e = expo(3.0);
  const auto p = pareto(3.0, 2.0);
  std::vector<double> es, ps;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    es.push_back(sample_lifetime(e, rng));
    ps.push_back(sample_lifetime(p, rng));
  }
  std::sort(es.begin(), es.end());
  std::sort(ps.begin(), ps.end());
  const auto q = [](const std::vector<double>& v, double f) {
    return v[static_cast<std::size_t>(f * (v.size() - 1))];
  };
  // Same mean, but the Pareto's extreme quantile dominates (heavy tail:
  // for α=2 the p99.9 is ~1.5·√1000 ≈ 47 vs the exponential's
  // 3·ln 1000 ≈ 21).
  EXPECT_GT(q(ps, 0.999), q(es, 0.999) * 1.5);
  // And because the mass needed for that tail comes from somewhere, the
  // Pareto's *maximum* dwarfs the exponential's while both share mean 3.
  EXPECT_GT(ps.back(), es.back());
}

TEST(ChurnModel, ContractsOnMisuse) {
  sim::Rng rng{305};
  ChurnConfig off;
  EXPECT_THROW((void)sample_lifetime(off, rng), ContractViolation);
  auto bad = pareto(1.0, 0.9);  // infinite-mean shape
  EXPECT_THROW((void)sample_lifetime(bad, rng), ContractViolation);
}

TEST(ChurnModel, ParetoConfigValidates) {
  ProtocolConfig cfg;
  cfg.churn = pareto(2.0, 0.5);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.churn = pareto(2.0, 1.5);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ChurnModel, NetworkRunsUnderParetoChurn) {
  ProtocolConfig cfg;
  cfg.num_peers = 60;
  cfg.lambda = 8.0;
  cfg.segment_size = 4;
  cfg.mu = 6.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 60;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(3.0);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.churn = pareto(2.0, 2.0);
  cfg.seed = 5;
  Network net{cfg};
  net.run_until(15.0);
  EXPECT_GT(net.metrics().peers_departed, 0u);
  EXPECT_GT(net.servers().segments_decoded(), 0u);
}

TEST(PullPolicy, BlindProbingWastesPullsWhenPeersAreEmpty) {
  // Sparse load → many empty peers → blind probing loses throughput,
  // the occupancy-aware rule (the paper's) does not.
  ProtocolConfig cfg;
  cfg.num_peers = 100;
  cfg.lambda = 0.4;
  cfg.segment_size = 1;
  cfg.mu = 0.4;
  cfg.gamma = 1.0;  // z0 is large: most peers idle most of the time
  cfg.buffer_cap = 30;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(0.3);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.seed = 10;

  cfg.pull_policy = PullPolicy::kUniformNonEmpty;
  Network aware{cfg};
  aware.warm_up(10.0);
  aware.run_until(aware.now() + 40.0);

  cfg.pull_policy = PullPolicy::kUniformAll;
  Network blind{cfg};
  blind.warm_up(10.0);
  blind.run_until(blind.now() + 40.0);

  EXPECT_GT(blind.metrics().server_empty_probes, 0u);
  EXPECT_EQ(aware.metrics().server_empty_probes, 0u);
  EXPECT_GT(aware.normalized_throughput(),
            blind.normalized_throughput() * 1.1);
}

TEST(PullPolicy, PoliciesAgreeWhenNoPeerIsEmpty) {
  // Heavy load: z0 ≈ 0 so blind probing almost never misses.
  ProtocolConfig cfg;
  cfg.num_peers = 80;
  cfg.lambda = 20.0;
  cfg.segment_size = 5;
  cfg.mu = 10.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 120;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(4.0);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.seed = 11;

  cfg.pull_policy = PullPolicy::kUniformNonEmpty;
  Network aware{cfg};
  aware.warm_up(8.0);
  aware.run_until(aware.now() + 20.0);

  cfg.pull_policy = PullPolicy::kUniformAll;
  Network blind{cfg};
  blind.warm_up(8.0);
  blind.run_until(blind.now() + 20.0);

  EXPECT_NEAR(aware.normalized_throughput(), blind.normalized_throughput(),
              0.1 * aware.normalized_throughput());
}

}  // namespace
}  // namespace icollect::p2p
