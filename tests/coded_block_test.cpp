/// Coded-block structure and wire-format tests.

#include <gtest/gtest.h>

#include <stdexcept>

#include "coding/coded_block.h"
#include "sim/random.h"

namespace icollect::coding {
namespace {

TEST(SegmentIdTest, OrderingAndEquality) {
  const SegmentId a{1, 2};
  const SegmentId b{1, 3};
  const SegmentId c{2, 0};
  EXPECT_EQ(a, (SegmentId{1, 2}));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.to_string(), "1:2");
}

TEST(SegmentIdTest, HashSpreadsDistinctIds) {
  std::hash<SegmentId> h;
  EXPECT_NE(h(SegmentId{0, 1}), h(SegmentId{1, 0}));
  EXPECT_NE(h(SegmentId{3, 4}), h(SegmentId{4, 3}));
}

TEST(CodedBlockTest, SystematicShape) {
  const auto b = CodedBlock::systematic(SegmentId{7, 1}, 5, 2, {1, 2, 3});
  EXPECT_EQ(b.segment_size(), 5u);
  EXPECT_EQ(b.coefficients, (std::vector<gf::Element>{0, 0, 1, 0, 0}));
  EXPECT_EQ(b.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(b.is_degenerate());
}

TEST(CodedBlockTest, SystematicIndexOutOfRangeViolatesContract) {
  EXPECT_THROW((void)CodedBlock::systematic(SegmentId{}, 3, 3, {}),
               ContractViolation);
}

TEST(CodedBlockTest, DegenerateDetection) {
  CodedBlock b;
  b.coefficients = {0, 0, 0};
  EXPECT_TRUE(b.is_degenerate());
  b.coefficients[1] = 9;
  EXPECT_FALSE(b.is_degenerate());
}

TEST(WireFormat, RoundTrip) {
  CodedBlock b;
  b.segment = SegmentId{0xDEADBEEF, 42};
  b.coefficients = {1, 0, 7, 9};
  b.payload = {10, 20, 30, 40, 50};
  const auto bytes = wire::serialize(b);
  EXPECT_EQ(bytes.size(), wire::serialized_size(4, 5));
  const CodedBlock back = wire::deserialize(bytes);
  EXPECT_EQ(back.segment, b.segment);
  EXPECT_EQ(back.coefficients, b.coefficients);
  EXPECT_EQ(back.payload, b.payload);
}

TEST(WireFormat, RoundTripEmptyPayload) {
  CodedBlock b;
  b.segment = SegmentId{1, 1};
  b.coefficients = {5};
  const auto bytes = wire::serialize(b);
  const CodedBlock back = wire::deserialize(bytes);
  EXPECT_EQ(back.coefficients, b.coefficients);
  EXPECT_TRUE(back.payload.empty());
}

TEST(WireFormat, TruncatedHeaderRejected) {
  const std::vector<std::uint8_t> tiny(3, 0);
  EXPECT_THROW((void)wire::deserialize(tiny), std::invalid_argument);
}

TEST(WireFormat, LengthMismatchRejected) {
  CodedBlock b;
  b.segment = SegmentId{1, 1};
  b.coefficients = {5, 6};
  b.payload = {9};
  auto bytes = wire::serialize(b);
  bytes.push_back(0);  // trailing garbage
  EXPECT_THROW((void)wire::deserialize(bytes), std::invalid_argument);
  bytes.pop_back();
  bytes.pop_back();  // truncation
  EXPECT_THROW((void)wire::deserialize(bytes), std::invalid_argument);
}

TEST(WireFormat, ZeroSegmentSizeRejected) {
  // Hand-build a header with s = 0.
  std::vector<std::uint8_t> bytes(wire::kHeaderBytes, 0);
  EXPECT_THROW((void)wire::deserialize(bytes), std::invalid_argument);
}

TEST(WireFormat, RandomizedRoundTrips) {
  sim::Rng rng{99};
  for (int t = 0; t < 50; ++t) {
    CodedBlock b;
    b.segment = SegmentId{static_cast<OriginId>(rng.uniform_index(1 << 20)),
                          static_cast<std::uint32_t>(rng.uniform_index(1000))};
    b.coefficients.resize(1 + rng.uniform_index(64));
    rng.fill_gf(b.coefficients);
    b.payload.resize(rng.uniform_index(256));
    for (auto& x : b.payload) x = static_cast<std::uint8_t>(rng.gf_element());
    const CodedBlock back = wire::deserialize(wire::serialize(b));
    ASSERT_EQ(back.segment, b.segment);
    ASSERT_EQ(back.coefficients, b.coefficients);
    ASSERT_EQ(back.payload, b.payload);
  }
}

}  // namespace
}  // namespace icollect::coding
