/// Tests for the transport substrate: the hashed TimerWheel contract
/// (tick quantization, in-tick ordering, cancellation, wrap-around) and
/// the deterministic LoopbackNet (latency, chunked delivery, seeded
/// drops, backpressure, link teardown).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/loopback.h"
#include "net/timer_wheel.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

namespace icollect::net {
namespace {

TEST(TimerWheel, FiresAtQuantizedTime) {
  TimerWheel w{0.01};
  std::vector<double> fired;
  w.schedule_after(0.034, [&] { fired.push_back(w.now()); });
  w.advance_to(0.03);
  EXPECT_TRUE(fired.empty());
  w.advance_to(0.05);
  ASSERT_EQ(fired.size(), 1U);
  // 0.034 rounds up to the next whole tick.
  EXPECT_NEAR(fired[0], 0.04, 1e-9);
}

TEST(TimerWheel, ZeroDelayFiresNextTickNotThisOne) {
  TimerWheel w{0.01};
  int fired = 0;
  w.schedule_after(0.0, [&] { ++fired; });
  EXPECT_EQ(fired, 0);
  w.advance(1);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, InTickOrderIsSchedulingOrder) {
  TimerWheel w{0.01};
  std::string order;
  w.schedule_after(0.005, [&] { order += 'a'; });
  w.schedule_after(0.005, [&] { order += 'b'; });
  w.schedule_after(0.005, [&] { order += 'c'; });
  w.advance(1);
  EXPECT_EQ(order, "abc");
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel w{0.01};
  int fired = 0;
  const auto id = w.schedule_after(0.02, [&] { ++fired; });
  EXPECT_EQ(w.pending(), 1U);
  EXPECT_TRUE(w.cancel(id));
  EXPECT_FALSE(w.cancel(id));  // second cancel is a no-op
  w.advance(10);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(w.pending(), 0U);
}

TEST(TimerWheel, WrapAroundBeyondSlotCount) {
  // A delay many times the slot count must still fire exactly once, at
  // the right tick — the wheel re-files future-round entries.
  TimerWheel w{0.01, 8};
  int fired = 0;
  w.schedule_after(1.0, [&] { ++fired; });  // 100 ticks on an 8-slot wheel
  w.advance(99);
  EXPECT_EQ(fired, 0);
  w.advance(1);
  EXPECT_EQ(fired, 1);
  w.advance(200);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CallbackMayReschedule) {
  TimerWheel w{0.01};
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) w.schedule_after(0.01, tick);
  };
  w.schedule_after(0.01, tick);
  w.advance(100);
  EXPECT_EQ(fired, 5);
}

/// Records every transport event for later inspection.
class RecordingHandler final : public TransportHandler {
 public:
  void on_peer_up(NodeId peer) override { ups.push_back(peer); }
  void on_peer_down(NodeId peer) override { downs.push_back(peer); }
  void on_bytes(NodeId peer, std::span<const std::uint8_t> bytes) override {
    ++reads;
    auto& stream = received[peer];
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  std::vector<NodeId> ups;
  std::vector<NodeId> downs;
  std::unordered_map<NodeId, std::vector<std::uint8_t>> received;
  int reads = 0;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Loopback, ConnectFiresPeerUpBothSides) {
  LoopbackNet net{LoopbackNet::Options{}};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler ha;
  RecordingHandler hb;
  a.set_handler(&ha);
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  ASSERT_EQ(ha.ups.size(), 1U);
  ASSERT_EQ(hb.ups.size(), 1U);
  EXPECT_EQ(ha.ups[0], b.id());
  EXPECT_EQ(hb.ups[0], a.id());
}

TEST(Loopback, DeliveryHonorsLatency) {
  LoopbackNet::Options opts;
  opts.latency = 0.05;
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  ASSERT_TRUE(a.send(b.id(), bytes_of("hello")));
  net.run_for(0.04);
  EXPECT_TRUE(hb.received[a.id()].empty());
  net.run_for(0.02);
  EXPECT_EQ(hb.received[a.id()], bytes_of("hello"));
  EXPECT_EQ(net.bytes_delivered(), 5U);
}

TEST(Loopback, ChunkedDeliverySplitsReads) {
  LoopbackNet::Options opts;
  opts.chunk_bytes = 3;
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  ASSERT_TRUE(a.send(b.id(), bytes_of("0123456789")));
  net.run_for(0.01);
  EXPECT_EQ(hb.received[a.id()], bytes_of("0123456789"));
  EXPECT_EQ(hb.reads, 4);  // 3+3+3+1
}

TEST(Loopback, SendToUnconnectedPeerRefused) {
  LoopbackNet net{LoopbackNet::Options{}};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  EXPECT_FALSE(a.send(b.id(), bytes_of("x")));
  EXPECT_EQ(net.sends(), 0U);
}

TEST(Loopback, DisconnectFiresPeerDownAndSendsStop) {
  LoopbackNet net{LoopbackNet::Options{}};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler ha;
  RecordingHandler hb;
  a.set_handler(&ha);
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  net.disconnect(a.id(), b.id());
  ASSERT_EQ(ha.downs.size(), 1U);
  ASSERT_EQ(hb.downs.size(), 1U);
  EXPECT_FALSE(a.send(b.id(), bytes_of("x")));
}

TEST(Loopback, DropsAreSeededAndCounted) {
  const auto run = [](std::uint64_t seed) {
    LoopbackNet::Options opts;
    opts.drop_probability = 0.5;
    opts.seed = seed;
    LoopbackNet net{opts};
    auto& a = net.create_endpoint();
    auto& b = net.create_endpoint();
    RecordingHandler hb;
    b.set_handler(&hb);
    net.connect(a.id(), b.id());
    for (int i = 0; i < 200; ++i) {
      a.send(b.id(), bytes_of("x"));
    }
    net.run_for(0.1);
    return std::pair{net.drops(), hb.received[a.id()].size()};
  };
  const auto [drops1, got1] = run(7);
  const auto [drops2, got2] = run(7);
  EXPECT_EQ(drops1, drops2);  // same seed → identical loss pattern
  EXPECT_EQ(got1, got2);
  EXPECT_GT(drops1, 50U);  // p=0.5 over 200 sends
  EXPECT_LT(drops1, 150U);
  EXPECT_EQ(got1 + drops1, 200U);
}

TEST(Loopback, BackpressureCapsInFlightBytes) {
  LoopbackNet::Options opts;
  opts.send_queue_cap_bytes = 10;
  opts.latency = 1.0;  // keep everything in flight
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  EXPECT_TRUE(a.send(b.id(), bytes_of("12345678")));
  EXPECT_FALSE(a.send(b.id(), bytes_of("overflow")));
  EXPECT_EQ(net.backpressure_refusals(), 1U);
  // Delivery drains the in-flight budget; sending works again.
  net.run_for(1.1);
  EXPECT_TRUE(a.send(b.id(), bytes_of("again")));
}

TEST(Loopback, InstrumentationCountersTrackTraffic) {
  LoopbackNet::Options opts;
  opts.chunk_bytes = 4;
  opts.latency = 0.05;
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());

  ASSERT_TRUE(a.send(b.id(), bytes_of("0123456789")));  // 10 bytes
  // In flight: sent but not yet delivered.
  EXPECT_EQ(net.bytes_sent(), 10U);
  EXPECT_EQ(net.in_flight_bytes(), 10U);
  EXPECT_EQ(net.in_flight_high_watermark(), 10U);
  EXPECT_EQ(net.deliveries(), 0U);

  net.run_for(0.06);
  EXPECT_EQ(net.in_flight_bytes(), 0U);
  EXPECT_EQ(net.deliveries(), 1U);  // one send...
  EXPECT_EQ(net.chunks(), 3U);      // ...split into 4+4+2 reads
  EXPECT_EQ(net.bytes_delivered(), 10U);
  // The high watermark survives the drain.
  EXPECT_EQ(net.in_flight_high_watermark(), 10U);
}

TEST(Loopback, DroppedSendsCountAsSentNotInFlight) {
  LoopbackNet::Options opts;
  opts.drop_probability = 0.5;
  opts.latency = 10.0;  // nothing delivers during the test
  opts.seed = 3;
  LoopbackNet net{opts};
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  net.connect(a.id(), b.id());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.send(b.id(), bytes_of("x")));  // "sent" from a's view
  }
  EXPECT_EQ(net.bytes_sent(), 100U);
  EXPECT_GT(net.drops(), 0U);
  // Dropped bytes were never enqueued: only survivors are in flight.
  EXPECT_EQ(net.in_flight_bytes(), 100U - net.drops());
  EXPECT_EQ(net.deliveries(), 0U);
}

TEST(Loopback, AttachMetricsExportsPullGauges) {
  LoopbackNet net{LoopbackNet::Options{}};
  icollect::obs::MetricsRegistry reg;
  net.attach_metrics(reg, "lo.");
  auto& a = net.create_endpoint();
  auto& b = net.create_endpoint();
  RecordingHandler hb;
  b.set_handler(&hb);
  net.connect(a.id(), b.id());
  ASSERT_TRUE(a.send(b.id(), bytes_of("hello")));
  net.run_for(0.01);

  // Gauges are pull-based: they read the live counters at sample time.
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.sends")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.bytes_out")->value(), 5.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.bytes_in")->value(), 5.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.deliveries")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.drops")->value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.in_flight_bytes")->value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.in_flight_hwm")->value(), 5.0);
  ASSERT_TRUE(a.send(b.id(), bytes_of("!!")));
  EXPECT_DOUBLE_EQ(reg.find_gauge("lo.sends")->value(), 2.0);
}

}  // namespace
}  // namespace icollect::net
