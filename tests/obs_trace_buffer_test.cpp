/// \file obs_trace_buffer_test.cpp
/// Trace pipeline: ring overwrite semantics, per-kind filtering, filter
/// spec parsing, per-kind counts, JSONL export, and the sink adapter.

#include "obs/trace_pipeline.h"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using icollect::obs::kAllTraceKinds;
using icollect::obs::kind_bit;
using icollect::obs::parse_trace_filter;
using icollect::obs::trace_event_json;
using icollect::obs::TraceBuffer;
using icollect::proto::TraceEvent;
using icollect::proto::TraceEventKind;

TraceEvent make_event(TraceEventKind kind, double at, std::uint64_t aux = 0) {
  TraceEvent ev;
  ev.kind = kind;
  ev.at = at;
  ev.slot = 3;
  ev.segment = icollect::coding::SegmentId{7, 9};
  ev.aux = aux;
  return ev;
}

TEST(ParseTraceFilter, EmptyAndAllAcceptEverything) {
  EXPECT_EQ(parse_trace_filter(""), kAllTraceKinds);
  EXPECT_EQ(parse_trace_filter("all"), kAllTraceKinds);
}

TEST(ParseTraceFilter, NamedKinds) {
  const auto mask = parse_trace_filter("gossip,pull,gossip-lost");
  EXPECT_EQ(mask, kind_bit(TraceEventKind::kGossipSent) |
                      kind_bit(TraceEventKind::kServerPull) |
                      kind_bit(TraceEventKind::kGossipLost));
  EXPECT_EQ(parse_trace_filter("decode"),
            kind_bit(TraceEventKind::kSegmentDecoded));
}

TEST(ParseTraceFilter, UnknownNameThrows) {
  EXPECT_THROW(parse_trace_filter("gossip,bogus"), std::invalid_argument);
}

TEST(TraceBuffer, RingOverwritesOldest) {
  TraceBuffer buf{4};
  for (int i = 0; i < 10; ++i) {
    buf.record(make_event(TraceEventKind::kGossipSent, i));
  }
  EXPECT_EQ(buf.capacity(), 4U);
  EXPECT_EQ(buf.size(), 4U);
  EXPECT_EQ(buf.accepted(), 10U);
  EXPECT_EQ(buf.overwritten(), 6U);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 4U);
  // Oldest first: the survivors are events 6..9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[i].at, static_cast<double>(6 + i));
  }
}

TEST(TraceBuffer, FilterDropsUnwantedKinds) {
  TraceBuffer buf{8};
  buf.set_filter(kind_bit(TraceEventKind::kServerPull));
  buf.record(make_event(TraceEventKind::kGossipSent, 1.0));
  buf.record(make_event(TraceEventKind::kServerPull, 2.0));
  buf.record(make_event(TraceEventKind::kTtlExpired, 3.0));
  EXPECT_EQ(buf.accepted(), 1U);
  EXPECT_EQ(buf.filtered_out(), 2U);
  EXPECT_EQ(buf.size(), 1U);
  EXPECT_EQ(buf.count(TraceEventKind::kServerPull), 1U);
  EXPECT_EQ(buf.count(TraceEventKind::kGossipSent), 0U);
}

TEST(TraceBuffer, PerKindCounts) {
  TraceBuffer buf{2};  // counts keep accumulating past ring capacity
  for (int i = 0; i < 5; ++i) {
    buf.record(make_event(TraceEventKind::kGossipSent, i));
  }
  buf.record(make_event(TraceEventKind::kSegmentDecoded, 9.0));
  EXPECT_EQ(buf.count(TraceEventKind::kGossipSent), 5U);
  EXPECT_EQ(buf.count(TraceEventKind::kSegmentDecoded), 1U);
}

TEST(TraceBuffer, ZeroCapacityStillCountsAndFilters) {
  TraceBuffer buf{0};
  buf.record(make_event(TraceEventKind::kGossipSent, 1.0));
  EXPECT_EQ(buf.size(), 0U);
  EXPECT_EQ(buf.accepted(), 1U);
  EXPECT_TRUE(buf.snapshot().empty());
}

TEST(TraceBuffer, JsonlStreamsAcceptedEvents) {
  const std::string path = testing::TempDir() + "obs_trace.jsonl";
  {
    TraceBuffer buf{4};
    buf.set_filter(kind_bit(TraceEventKind::kGossipSent));
    buf.open_jsonl(path);
    buf.record(make_event(TraceEventKind::kGossipSent, 1.5, 12));
    buf.record(make_event(TraceEventKind::kServerPull, 2.0));  // filtered
    buf.flush();
  }
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_EQ(lines[0],
            "{\"t\":1.5,\"kind\":\"gossip\",\"slot\":3,\"origin\":7,"
            "\"seq\":9,\"aux\":12}");
}

TEST(TraceEventJson, FormatsAllFields) {
  const auto json = trace_event_json(
      make_event(TraceEventKind::kGossipLost, 0.25, 42));
  EXPECT_EQ(json,
            "{\"t\":0.25,\"kind\":\"gossip-lost\",\"slot\":3,\"origin\":7,"
            "\"seq\":9,\"aux\":42}");
}

TEST(TraceBuffer, SinkAdapterRecords) {
  TraceBuffer buf{4};
  const icollect::proto::TraceSink sink = buf.sink();
  sink(make_event(TraceEventKind::kPeerDeparted, 3.0));
  EXPECT_EQ(buf.accepted(), 1U);
  EXPECT_EQ(buf.count(TraceEventKind::kPeerDeparted), 1U);
}

}  // namespace
