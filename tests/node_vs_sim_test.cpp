/// The live-node acceptance gate: a loopback cluster of real
/// PeerNode/ServerNode state machines exchanging framed bytes must
/// reproduce the simulator's steady-state measurements at the same
/// operating point (s, mu, gamma, B, c_s) — the node runtime is the
/// same protocol one abstraction level down, so its throughput and
/// storage must land inside the simulator's replica confidence band.
///
/// Known, deliberate divergences bounded by the allowance terms:
///  - gossip eligibility is receiver-side in the live protocol
///    (sender picks blindly, receiver drops full/full-rank) vs the
///    simulator's sender-side filter;
///  - each live server decodes into its own bank and forwards
///    innovative pulls to its peers servers, vs the simulator's single
///    pooled bank (forwarding latency can double-count a block);
///  - live servers steer pulls away from peers that recently reported
///    an empty buffer (occupancy staleness window), while the simulator
///    samples non-empty peers omnisciently.
/// Simulator-fidelity knobs that have no sim counterpart
/// (retain_own_until_acked, drop_on_ack) stay off here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "node/cluster.h"
#include "p2p/config.h"
#include "runner/replica_runner.h"

namespace icollect {
namespace {

constexpr std::size_t kPeers = 16;
constexpr std::size_t kServers = 2;
constexpr std::size_t kSegmentSize = 4;
constexpr std::size_t kBufferCap = 32;
constexpr double kLambda = 8.0;
constexpr double kMu = 6.0;
constexpr double kGamma = 1.0;
constexpr double kCapacity = 4.0;  // c < lambda: server-limited regime

constexpr double kWarm = 10.0;
constexpr double kMeasure = 40.0;
constexpr std::size_t kReplicas = 8;

runner::AggregateReport simulator_band() {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = kPeers;
  cfg.num_servers = kServers;
  cfg.segment_size = kSegmentSize;
  cfg.buffer_cap = kBufferCap;
  cfg.lambda = kLambda;
  cfg.mu = kMu;
  cfg.gamma = kGamma;
  cfg.set_normalized_capacity(kCapacity);
  cfg.fidelity = p2p::CollectionFidelity::kRealCoding;

  runner::ReplicaPlan plan;
  plan.config = cfg;
  plan.warm = kWarm;
  plan.measure = kMeasure;
  plan.replicas = kReplicas;
  plan.cell = 1;
  runner::ThreadPool pool{runner::ThreadPool::resolve_jobs(0)};
  const runner::ReplicaRunner engine{runner::SeedSequence{771}};
  return engine.run(plan, pool);
}

struct ClusterPoint {
  double normalized_throughput;
  double mean_blocks_per_peer;
};

ClusterPoint run_cluster(std::uint64_t seed) {
  node::ClusterConfig cfg;
  cfg.num_peers = kPeers;
  cfg.num_servers = kServers;
  cfg.segment_size = kSegmentSize;
  cfg.buffer_cap = kBufferCap;
  cfg.lambda = kLambda;
  cfg.mu = kMu;
  cfg.gamma = kGamma;
  cfg.server_rate = kCapacity * static_cast<double>(kPeers) /
                    static_cast<double>(kServers);
  cfg.segments_per_peer = 0;  // unbounded: steady state, like the sim
  cfg.payload_bytes = 0;      // coefficients-only, like the sim
  cfg.seed = seed;
  cfg.net.seed = seed;
  node::LoopbackCluster cluster{cfg};
  cluster.run_for(kWarm);
  cluster.begin_measurement();
  cluster.run_for(kMeasure);
  return {cluster.normalized_throughput(), cluster.mean_blocks_per_peer()};
}

TEST(NodeVsSim, SteadyStateInsideSimulatorBand) {
  const auto agg = simulator_band();
  ASSERT_EQ(agg.replicas(), kReplicas);
  const double sim_tp = agg.mean("normalized_throughput");
  const double sim_tp_ci = agg.ci95("normalized_throughput");
  const double sim_rho = agg.mean("mean_blocks_per_peer");
  const double sim_rho_ci = agg.ci95("mean_blocks_per_peer");

  // The operating point must be the intended server-limited one:
  // throughput pinned near c/lambda, buffers clearly unsaturated.
  ASSERT_GT(sim_tp, 0.2);
  ASSERT_LT(sim_rho, 0.9 * static_cast<double>(kBufferCap));

  // Average two cluster seeds: one live run is a single replica, so
  // give it the same noise-reduction courtesy the sim side gets.
  const auto a = run_cluster(21);
  const auto b = run_cluster(22);
  const double live_tp =
      0.5 * (a.normalized_throughput + b.normalized_throughput);
  const double live_rho =
      0.5 * (a.mean_blocks_per_peer + b.mean_blocks_per_peer);

  // Throughput: allowance covers the pull-steering and forwarding
  // divergences; the CI covers Monte-Carlo noise on the sim side.
  EXPECT_NEAR(live_tp, sim_tp, 0.10 * std::max(sim_tp, 0.1) + sim_tp_ci)
      << "live=" << live_tp << " sim=" << sim_tp << " ci=" << sim_tp_ci;

  // The capacity bound applies to the live system exactly as to the
  // sim: pulls cannot beat min(c, lambda)/lambda.
  EXPECT_LE(live_tp,
            std::min(kCapacity / kLambda, 1.0) * 1.02 + sim_tp_ci);

  // Storage: receiver-side gossip drops change who stores what, not how
  // much — mean occupancy must match within a modest band.
  EXPECT_NEAR(live_rho, sim_rho,
              0.15 * std::max(sim_rho, 1.0) + sim_rho_ci)
      << "live=" << live_rho << " sim=" << sim_rho << " ci=" << sim_rho_ci;
}

}  // namespace
}  // namespace icollect
