/// Unit tests for the extracted protocol core (src/proto/): the peer
/// and server state machines of Sec. 2 exercised directly — no event
/// queue, no transport — through the same typed inputs both drivers
/// feed them. Every test suite here is named ProtoCore.* so the asan
/// and tsan presets pick the whole file up via their test filters.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/clock.h"
#include "proto/peer_core.h"
#include "proto/pull_policy.h"
#include "proto/selection.h"
#include "proto/server_bank.h"
#include "proto/server_core.h"

namespace icollect::proto {
namespace {

/// A PeerCore plus the minimal driver scaffolding every test needs: an
/// arm_ttl sink that records (handle, delay) pairs instead of arming
/// real timers.
struct TestPeer {
  common::Rng rng;
  PeerCore core;
  std::vector<std::pair<coding::BlockHandle, double>> armed;

  explicit TestPeer(const PeerCore::Params& params,
                    coding::OriginId origin = 1, std::uint64_t seed = 42)
      : rng{seed}, core{params, origin, rng} {
    core.set_arm_ttl([this](coding::BlockHandle h, double delay) {
      armed.emplace_back(h, delay);
    });
  }
};

PeerCore::Params small_params() {
  PeerCore::Params p;
  p.segment_size = 3;
  p.buffer_cap = 9;
  p.gamma = 1.0;
  return p;
}

coding::CodedBlock foreign_block(coding::SegmentId id, std::size_t s,
                                 common::Rng& rng) {
  coding::CodedBlock b;
  b.segment = id;
  b.coefficients.resize(s);
  do {
    rng.fill_gf(b.coefficients);
  } while (b.is_degenerate());
  return b;
}

TEST(ProtoCore, InjectSeedsSystematicBlocksAndArmsTtls) {
  TestPeer t{small_params()};
  ASSERT_TRUE(t.core.can_inject());
  const coding::SegmentId expected = t.core.next_segment_id();
  const auto injected = t.core.inject();
  EXPECT_EQ(injected.id, expected);
  EXPECT_TRUE(injected.crcs.empty());  // payload_bytes == 0
  EXPECT_EQ(t.core.buffer().size(), 3u);
  EXPECT_EQ(t.core.buffer().segment_count(), 1u);
  EXPECT_TRUE(t.core.is_own(injected.id));
  // One Exp(γ) lifetime armed per systematic block, all positive.
  ASSERT_EQ(t.armed.size(), 3u);
  for (const auto& [handle, delay] : t.armed) EXPECT_GT(delay, 0.0);
  // The seeded segment is immediately at full local rank.
  const coding::SegmentBuffer* sb = t.core.buffer().find(injected.id);
  ASSERT_NE(sb, nullptr);
  EXPECT_TRUE(sb->full_rank());
}

TEST(ProtoCore, CanInjectRequiresRoomForWholeSegment) {
  auto params = small_params();
  params.buffer_cap = 5;  // room for one segment (3) but not two
  TestPeer t{params};
  EXPECT_TRUE(t.core.can_inject());
  (void)t.core.inject();
  EXPECT_FALSE(t.core.can_inject());  // 2 free slots < s = 3
}

TEST(ProtoCore, SequentialInjectionsGetDistinctIds) {
  TestPeer t{small_params()};
  const auto a = t.core.inject();
  const auto b = t.core.inject();
  EXPECT_EQ(a.id.origin, b.id.origin);
  EXPECT_NE(a.id, b.id);
}

TEST(ProtoCore, AcceptStoresForeignBlock) {
  TestPeer t{small_params()};
  auto block = foreign_block({7, 0}, 3, t.rng);
  EXPECT_EQ(t.core.accept(std::move(block)),
            PeerCore::AcceptResult::kStored);
  EXPECT_EQ(t.core.buffer().size(), 1u);
  EXPECT_EQ(t.armed.size(), 1u);
}

TEST(ProtoCore, AcceptRejectsShapeMismatchAndDegenerate) {
  TestPeer t{small_params()};
  // Wrong segment size.
  auto wrong = foreign_block({7, 0}, 4, t.rng);
  EXPECT_EQ(t.core.accept(std::move(wrong)),
            PeerCore::AcceptResult::kShapeMismatch);
  // All-zero coefficient vector.
  coding::CodedBlock degenerate;
  degenerate.segment = {7, 1};
  degenerate.coefficients.assign(3, 0);
  EXPECT_EQ(t.core.accept(std::move(degenerate)),
            PeerCore::AcceptResult::kShapeMismatch);
  EXPECT_TRUE(t.core.buffer().empty());
}

TEST(ProtoCore, AcceptRejectsWhenBufferFull) {
  auto params = small_params();
  params.buffer_cap = 3;
  TestPeer t{params};
  (void)t.core.inject();  // fills the buffer exactly
  EXPECT_TRUE(t.core.buffer().full());
  auto block = foreign_block({7, 0}, 3, t.rng);
  EXPECT_EQ(t.core.accept(std::move(block)),
            PeerCore::AcceptResult::kBufferFull);
  EXPECT_FALSE(t.core.can_accept({7, 0}));
}

TEST(ProtoCore, AcceptRejectsFullRankSegment) {
  TestPeer t{small_params()};
  const auto injected = t.core.inject();  // own segment at rank s
  auto block = foreign_block(injected.id, 3, t.rng);
  EXPECT_EQ(t.core.accept(std::move(block)),
            PeerCore::AcceptResult::kSegmentFullRank);
  EXPECT_FALSE(t.core.can_accept(injected.id));
  // A different segment is still welcome.
  EXPECT_TRUE(t.core.can_accept({7, 0}));
}

TEST(ProtoCore, DropOnAckRefusesAckedSegmentBlocks) {
  auto params = small_params();
  params.drop_on_ack = true;
  TestPeer t{params};
  auto first = foreign_block({7, 0}, 3, t.rng);
  EXPECT_EQ(t.core.accept(std::move(first)),
            PeerCore::AcceptResult::kStored);
  EXPECT_EQ(t.core.on_ack({7, 0}), PeerCore::AckResult::kOtherSegment);
  // The ACK evicted the buffered block...
  EXPECT_TRUE(t.core.buffer().empty());
  // ...and later arrivals of the segment are refused outright.
  auto late = foreign_block({7, 0}, 3, t.rng);
  EXPECT_EQ(t.core.accept(std::move(late)),
            PeerCore::AcceptResult::kAckedSegment);
}

TEST(ProtoCore, AckResultsDistinguishOwnDuplicateOther) {
  TestPeer t{small_params()};
  const auto injected = t.core.inject();
  EXPECT_EQ(t.core.on_ack(injected.id), PeerCore::AckResult::kOwnSegment);
  EXPECT_EQ(t.core.on_ack(injected.id), PeerCore::AckResult::kDuplicate);
  EXPECT_EQ(t.core.on_ack({99, 0}), PeerCore::AckResult::kOtherSegment);
  EXPECT_TRUE(t.core.is_acked(injected.id));
}

TEST(ProtoCore, TtlExpiryRemovesBlockOnceAndGoesStale) {
  TestPeer t{small_params()};
  const auto injected = t.core.inject();
  ASSERT_EQ(t.armed.size(), 3u);
  const coding::BlockHandle h = t.armed.front().first;
  const auto seg = t.core.on_ttl_expired(h);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(*seg, injected.id);
  EXPECT_EQ(t.core.buffer().size(), 2u);
  // The same handle firing again (stale timer) is a no-op.
  EXPECT_FALSE(t.core.on_ttl_expired(h).has_value());
  EXPECT_EQ(t.core.buffer().size(), 2u);
}

TEST(ProtoCore, ReseedOwnRestoresFullRankUntilAcked) {
  auto params = small_params();
  params.retain_own_until_acked = true;
  TestPeer t{params};
  const auto injected = t.core.inject();
  // Thin the own segment by one block via TTL expiry.
  const auto seg = t.core.on_ttl_expired(t.armed.front().first);
  ASSERT_TRUE(seg.has_value());
  t.core.reseed_own(*seg);
  EXPECT_GE(t.core.reseeds(), 1u);
  const coding::SegmentBuffer* sb = t.core.buffer().find(injected.id);
  ASSERT_NE(sb, nullptr);
  EXPECT_TRUE(sb->full_rank());
  // After the ACK the retained encoder is released: a later expiry is
  // not re-seeded.
  EXPECT_EQ(t.core.on_ack(injected.id), PeerCore::AckResult::kOwnSegment);
  const auto again = t.core.on_ttl_expired(t.armed[1].first);
  ASSERT_TRUE(again.has_value());
  const std::uint64_t reseeds_before = t.core.reseeds();
  t.core.reseed_own(*again);
  EXPECT_EQ(t.core.reseeds(), reseeds_before);
}

TEST(ProtoCore, RecodeStaysInsideTheSegment) {
  TestPeer t{small_params()};
  const auto injected = t.core.inject();
  const coding::CodedBlock b = t.core.recode(injected.id);
  EXPECT_EQ(b.segment, injected.id);
  EXPECT_EQ(b.segment_size(), 3u);
  EXPECT_FALSE(b.is_degenerate());
  // recode_into produces the same shape without reallocating semantics.
  coding::CodedBlock out;
  t.core.recode_into(injected.id, out);
  EXPECT_EQ(out.segment, injected.id);
  EXPECT_EQ(out.segment_size(), 3u);
  EXPECT_FALSE(out.is_degenerate());
}

TEST(ProtoCore, AnswerPullEmptyBufferReturnsFalse) {
  TestPeer t{small_params()};
  coding::CodedBlock out;
  EXPECT_FALSE(t.core.answer_pull(out));
  (void)t.core.inject();
  EXPECT_TRUE(t.core.answer_pull(out));
  EXPECT_EQ(out.segment_size(), 3u);
}

TEST(ProtoCore, RebirthResetsIdentityAndHistory) {
  TestPeer t{small_params()};
  const auto injected = t.core.inject();
  (void)t.core.on_ack(injected.id);
  EXPECT_EQ(t.core.clear_all(), 3u);
  t.core.rebirth(77);
  EXPECT_EQ(t.core.origin(), 77u);
  EXPECT_FALSE(t.core.is_own(injected.id));
  EXPECT_FALSE(t.core.is_acked(injected.id));
  EXPECT_EQ(t.core.next_segment_id(), (coding::SegmentId{77, 0}));
}

TEST(ProtoCore, PayloadInjectionRecordsCrcs) {
  auto params = small_params();
  params.payload_bytes = 16;
  params.record_own_crcs = true;
  TestPeer t{params};
  const auto injected = t.core.inject();
  ASSERT_EQ(injected.crcs.size(), 3u);
  const auto* crcs = t.core.original_crcs(injected.id);
  ASSERT_NE(crcs, nullptr);
  EXPECT_EQ(*crcs, injected.crcs);
}

TEST(ProtoCore, PayloadSourceOverridesGeneratedBytes) {
  auto params = small_params();
  params.payload_bytes = 4;
  TestPeer t{params};
  t.core.set_payload_source([](const coding::SegmentId&, std::size_t s,
                               std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> blocks(s);
    for (std::size_t k = 0; k < s; ++k) {
      blocks[k].assign(bytes, static_cast<std::uint8_t>(k + 1));
    }
    return blocks;
  });
  const auto injected = t.core.inject();
  ASSERT_EQ(injected.crcs.size(), 3u);
  // Identical payloads across runs → identical CRCs: the source, not
  // the RNG stream, determined the bytes.
  TestPeer u{params, /*origin=*/1, /*seed=*/999};
  u.core.set_payload_source([](const coding::SegmentId&, std::size_t s,
                               std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> blocks(s);
    for (std::size_t k = 0; k < s; ++k) {
      blocks[k].assign(bytes, static_cast<std::uint8_t>(k + 1));
    }
    return blocks;
  });
  EXPECT_EQ(u.core.inject().crcs, injected.crcs);
}

TEST(ProtoCore, StoredHookSeesPreInsertOccupancy) {
  TestPeer t{small_params()};
  std::vector<std::size_t> before_counts;
  t.core.set_stored_hook(
      [&](const coding::SegmentId&, std::size_t blocks_before) {
        before_counts.push_back(blocks_before);
      });
  (void)t.core.inject();
  EXPECT_EQ(before_counts, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ProtoCore, ServerCoreDecodesAndForwardsInnovativeOnly) {
  double now = 5.0;
  const obs::CallbackClock clock{[&now] { return now; }};
  ServerCore server{/*keep_payloads=*/false, clock};
  std::vector<ServerBank::DecodeEvent> decodes;
  server.set_decode_callback(
      [&](const ServerBank::DecodeEvent& ev) { decodes.push_back(ev); });

  // Feed the three systematic blocks of one segment.
  const coding::SegmentId id{3, 0};
  for (std::size_t k = 0; k < 3; ++k) {
    const auto result =
        server.on_pull_block(coding::CodedBlock::systematic(id, 3, k, {}));
    EXPECT_EQ(result, ServerBank::PullResult::kInnovative);
    EXPECT_TRUE(ServerCore::should_forward(result));
    now += 1.0;
  }
  ASSERT_EQ(decodes.size(), 1u);
  EXPECT_EQ(decodes.front().id, id);
  EXPECT_EQ(decodes.front().when, 7.0);  // clock at the completing offer
  EXPECT_TRUE(server.bank().is_decoded(id));

  // Once decoded, further pulls of the segment are waste, not forwarded.
  const auto stale =
      server.on_pull_block(coding::CodedBlock::systematic(id, 3, 0, {}));
  EXPECT_EQ(stale, ServerBank::PullResult::kAlreadyDecoded);
  EXPECT_FALSE(ServerCore::should_forward(stale));
}

TEST(ProtoCore, ServerCoreCountedModeAdvancesStatePerPull) {
  double now = 0.0;
  const obs::CallbackClock clock{[&now] { return now; }};
  ServerCore server{/*keep_payloads=*/false, clock};
  const coding::SegmentId id{4, 0};
  EXPECT_EQ(server.on_pull_counted(id, 2),
            ServerBank::PullResult::kInnovative);
  EXPECT_EQ(server.bank().state(id), 1u);
  EXPECT_EQ(server.on_pull_counted(id, 2),
            ServerBank::PullResult::kInnovative);
  EXPECT_TRUE(server.bank().is_decoded(id));
  EXPECT_EQ(server.on_pull_counted(id, 2),
            ServerBank::PullResult::kAlreadyDecoded);
}

TEST(ProtoCore, UniformOverEligibleHonorsPredicate) {
  common::Rng rng{7};
  const auto even_only = [](std::size_t i) { return i % 2 == 0; };
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t pick =
        uniform_over_eligible(rng, 10, 4, EligibleRef{even_only});
    ASSERT_NE(pick, kNoSelection);
    EXPECT_EQ(pick % 2, 0u);
  }
  // No eligible candidate → kNoSelection, even through the scan.
  const auto none = [](std::size_t) { return false; };
  EXPECT_EQ(uniform_over_eligible(rng, 10, 4, EligibleRef{none}),
            kNoSelection);
  // Empty candidate set short-circuits before any draw.
  common::Rng untouched{11};
  const auto all = [](std::size_t) { return true; };
  EXPECT_EQ(uniform_over_eligible(untouched, 0, 4, EligibleRef{all}),
            kNoSelection);
}

TEST(ProtoCore, UniformPullPolicyMatchesRawDraws) {
  // pick() must be exactly one uniform_index draw — the determinism
  // contract both drivers' goldens rest on.
  common::Rng a{13};
  common::Rng b{13};
  const UniformPullPolicy policy;
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_EQ(policy.pick(a, 17), b.uniform_index(17));
  }
}

}  // namespace
}  // namespace icollect::proto
